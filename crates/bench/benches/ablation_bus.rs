//! Ablation A2 as a bench: the degradation model and B_prom allocator
//! across EIB capacities (also guards the allocator's performance,
//! which runs on every health change in the simulator).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dra_core::analysis::degradation::{b_faulty_fraction, DegradationParams};
use dra_core::eib::bandwidth::promised_bandwidth;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_bus");

    for &bus_gbps in &[5.0f64, 40.0, 80.0] {
        g.bench_with_input(
            BenchmarkId::new("degradation_sweep", format!("{bus_gbps:.0}G")),
            &bus_gbps,
            |b, &bus| {
                b.iter(|| {
                    let mut acc = 0.0;
                    for &load in &[0.15, 0.3, 0.5, 0.7] {
                        let p = DegradationParams {
                            bus_capacity_bps: bus * 1e9,
                            ..DegradationParams::paper(load)
                        };
                        for x in 1..6 {
                            acc += b_faulty_fraction(&p, x);
                        }
                    }
                    acc
                })
            },
        );
    }

    g.bench_function("allocator_64_flows_oversubscribed", |b| {
        let requests: Vec<f64> = (1..=64).map(|i| i as f64 * 1e9).collect();
        b.iter(|| promised_bandwidth(&requests, 40e9))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
