//! Ablation A1 as a bench: solve cost and result spread across the
//! paper's ambiguous Markov semantics (T′ reading × zone bound).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dra_core::analysis::reliability::{
    dra_model, reliability_curve, DraParams, TprimeSemantics, ZoneInterBound,
};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_zones");
    g.sample_size(10);

    for tprime in [TprimeSemantics::Literal, TprimeSemantics::Strict] {
        for bound in [
            ZoneInterBound::Extended,
            ZoneInterBound::Saturate,
            ZoneInterBound::ToF,
        ] {
            g.bench_with_input(
                BenchmarkId::new("solve", format!("{tprime:?}_{bound:?}")),
                &(tprime, bound),
                |b, &(tprime, bound)| {
                    b.iter(|| {
                        let model = dra_model(&DraParams {
                            tprime,
                            bound,
                            ..DraParams::new(9, 4)
                        });
                        reliability_curve(&model.chain, model.start, model.failed, &[40_000.0])[0]
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
