//! Coverage-planner and Monte Carlo throughput. The planner runs once
//! per packet in the DRA simulator, so its cost bounds the event rate;
//! the MC estimator's replication rate bounds validation turnaround.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dra_core::coverage::{CoveragePlanner, LcView};
use dra_core::montecarlo::{inflated_rates, run_dra_mc, McConfig, McMode};
use dra_net::protocol::ProtocolKind;
use dra_router::components::{ComponentKind, Health};

fn views(n: usize, failures: usize) -> Vec<LcView> {
    let mut v: Vec<LcView> = (0..n)
        .map(|i| LcView::healthy(ProtocolKind::ALL[i % 3], 8.5e9))
        .collect();
    for (k, view) in v.iter_mut().enumerate().take(failures) {
        let kind = [ComponentKind::Lfe, ComponentKind::Sru, ComponentKind::Pdlu][k % 3];
        view.components.set(kind, Health::Failed);
    }
    v
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("coverage");

    for &(n, failures) in &[(6usize, 0usize), (6, 2), (16, 5)] {
        let v = views(n, failures);
        let planner = CoveragePlanner::new(true);
        g.bench_with_input(
            BenchmarkId::new("plan", format!("n{n}_f{failures}")),
            &v,
            |b, v| {
                b.iter(|| {
                    let mut acc = 0u32;
                    for ingress in 0..n as u16 {
                        let egress = (ingress + 1) % n as u16;
                        let r = planner.plan(v, ingress, egress);
                        acc = acc.wrapping_add(r.uses_eib_data() as u32);
                    }
                    acc
                })
            },
        );
    }

    g.sample_size(10);
    g.bench_function("monte_carlo_1k_reps", |b| {
        let cfg = McConfig {
            n: 6,
            m: 3,
            rates: inflated_rates(1000.0),
            replications: 1_000,
            seed: 7,
        };
        b.iter(|| run_dra_mc(&cfg, McMode::Reliability { horizon_h: 40.0 }).mean)
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
