//! Event-kernel throughput: schedule/dispatch cost with varying queue
//! depths, the floor under every packet-level experiment.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dra_des::{Ctx, Model, Simulation};

struct Chain {
    remaining: u64,
}

impl Model for Chain {
    type Event = u8;
    fn handle(&mut self, _ev: u8, ctx: &mut Ctx<'_, u8>) {
        if self.remaining > 0 {
            self.remaining -= 1;
            ctx.schedule(1.0, 0);
        }
    }
}

/// A model that keeps `width` events pending at all times.
struct Fanout {
    remaining: u64,
}

impl Model for Fanout {
    type Event = u8;
    fn handle(&mut self, ev: u8, ctx: &mut Ctx<'_, u8>) {
        if ev == 0 {
            // seed
            for _ in 0..1024 {
                ctx.schedule(1.0, 1);
            }
        } else if self.remaining > 0 {
            self.remaining -= 1;
            ctx.schedule(1.0, 1);
        }
    }
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("des_kernel");

    g.bench_function("chain_100k_events", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(Chain { remaining: 100_000 }, 1);
            sim.schedule(0.0, 0);
            sim.run_to_completion()
        })
    });

    {
        let &width = &1024u64;
        g.bench_with_input(
            BenchmarkId::new("fanout_100k_events", width),
            &width,
            |b, _| {
                b.iter(|| {
                    let mut sim = Simulation::new(Fanout { remaining: 100_000 }, 1);
                    sim.schedule(0.0, 0);
                    sim.run_to_completion()
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
