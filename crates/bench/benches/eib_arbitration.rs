//! EIB mechanics: the distributed TDM arbiter's turn machinery, the
//! B_prom allocation, and the CSMA/CD control channel under load.

use criterion::{criterion_group, criterion_main, Criterion};
use dra_core::eib::arbiter::TdmArbiter;
use dra_core::eib::bandwidth::promised_bandwidth;
use dra_core::eib::control::{CsmaChannel, TxResult};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("eib");

    g.bench_function("tdm_turn_cycle_8lp", |b| {
        let mut a = TdmArbiter::new(8);
        for lc in 0..8 {
            a.establish(lc);
        }
        b.iter(|| {
            let who = a.whose_turn().unwrap();
            a.finish_turn();
            who
        })
    });

    g.bench_function("tdm_churn_establish_release", |b| {
        let mut a = TdmArbiter::new(16);
        let mut on = [false; 16];
        let mut k = 0usize;
        b.iter(|| {
            let lc = k % 16;
            k += 1;
            if on[lc] {
                a.release(lc);
                on[lc] = false;
            } else {
                a.establish(lc);
                on[lc] = true;
            }
            a.beta()
        })
    });

    g.bench_function("b_prom_16_flows", |b| {
        let requests: Vec<f64> = (1..=16).map(|i| i as f64 * 1e9).collect();
        b.iter(|| promised_bandwidth(&requests, 40e9))
    });

    g.bench_function("csma_uncontended_tx", |b| {
        let mut ch = CsmaChannel::new(1e9, 50e-9);
        let mut now = 0.0;
        b.iter(|| {
            match ch.attempt(now) {
                TxResult::Started { tx, done_at } => {
                    ch.complete(tx);
                    now = done_at;
                }
                TxResult::Deferred { until } => now = until,
                TxResult::Collided { jam_until } => now = jam_until,
            }
            now
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
