//! Crossbar scheduling throughput: iSLIP matching cost per slot under
//! saturated uniform load, across port counts and iteration counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dra_net::packet::PacketId;
use dra_net::sar::Cell;
use dra_router::fabric::{Crossbar, OutputQueuedFabric};

fn saturate(xb: &mut Crossbar, n: usize, backlog: usize) {
    for i in 0..n as u16 {
        for o in 0..n as u16 {
            for k in 0..backlog as u64 {
                let _ = xb.enqueue(Cell {
                    src_lc: i,
                    dst_lc: o,
                    packet: PacketId(((i as u64) << 40) | ((o as u64) << 20) | k),
                    seq: 0,
                    total: 1,
                    payload_bytes: 48,
                });
            }
        }
    }
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fabric");
    for &n in &[4usize, 8, 16] {
        for &iters in &[1usize, 2, 4] {
            g.bench_with_input(
                BenchmarkId::new("islip_slot", format!("p{n}_i{iters}")),
                &(n, iters),
                |b, &(n, iters)| {
                    let mut xb = Crossbar::new(n, 1 << 20, iters, 5, 4);
                    saturate(&mut xb, n, 4096);
                    b.iter(|| {
                        if xb.is_empty() {
                            saturate(&mut xb, n, 4096);
                        }
                        xb.schedule_slot().len()
                    })
                },
            );
        }
    }
    // Idealized output-queued reference: the upper bound iSLIP chases.
    for &n in &[8usize, 16] {
        g.bench_with_input(BenchmarkId::new("oq_slot", format!("p{n}")), &n, |b, &n| {
            let mut oq = OutputQueuedFabric::new(n, 1 << 20);
            let refill = |oq: &mut OutputQueuedFabric| {
                for i in 0..n as u16 {
                    for o in 0..n as u16 {
                        for k in 0..1024u64 {
                            let _ = oq.enqueue(Cell {
                                src_lc: i,
                                dst_lc: o,
                                packet: PacketId(((i as u64) << 40) | ((o as u64) << 20) | k),
                                seq: 0,
                                total: 1,
                                payload_bytes: 48,
                            });
                        }
                    }
                }
            };
            refill(&mut oq);
            b.iter(|| {
                if oq.is_empty() {
                    refill(&mut oq);
                }
                oq.schedule_slot().len()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
