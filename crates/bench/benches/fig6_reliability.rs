//! Benchmarks the Figure-6 pipeline: building and transiently solving
//! the DRA reliability model at the paper's extremes, so regressions
//! in the solver show up before they distort experiment turnaround.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dra_core::analysis::reliability::{dra_model, reliability_curve, DraParams};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_reliability");
    g.sample_size(10);

    let times: Vec<f64> = (0..=12).map(|k| k as f64 * 5_000.0).collect();
    for &(n, m) in &[(3usize, 2usize), (9, 4), (9, 8)] {
        g.bench_with_input(
            BenchmarkId::new("curve", format!("N{n}_M{m}")),
            &(n, m),
            |b, &(n, m)| {
                b.iter(|| {
                    let model = dra_model(&DraParams::new(n, m));
                    reliability_curve(&model.chain, model.start, model.failed, &times)
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
