//! Benchmarks the Figure-7 pipeline: steady-state availability solves
//! across the (M, N) grid.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dra_core::analysis::availability::dra_availability;
use dra_core::analysis::reliability::DraParams;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_availability");
    g.sample_size(10);

    for &(n, m) in &[(3usize, 2usize), (9, 4), (9, 8)] {
        g.bench_with_input(
            BenchmarkId::new("steady_state", format!("N{n}_M{m}")),
            &(n, m),
            |b, &(n, m)| b.iter(|| dra_availability(&DraParams::new(n, m), 1.0 / 3.0)),
        );
    }

    // The full grid, as the repro binary computes it.
    g.bench_function("full_grid_mu3", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for n in 3..=9 {
                acc += dra_availability(&DraParams::new(n, 2), 1.0 / 3.0);
            }
            for m in 4..=8 {
                acc += dra_availability(&DraParams::new(9, m), 1.0 / 3.0);
            }
            acc
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
