//! Benchmarks the Figure-8 pipeline — trivially cheap analytically,
//! included for completeness plus a short packet-simulation variant
//! that measures the cost of regenerating the figure by simulation.

use criterion::{criterion_group, criterion_main, Criterion};
use dra_core::analysis::degradation::{figure8_series, DegradationParams};
use dra_core::sim::{DraConfig, DraRouter};
use dra_router::bdr::BdrConfig;
use dra_router::components::ComponentKind;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_degradation");
    g.sample_size(10);

    g.bench_function("analytic_all_series", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &load in &[0.15, 0.3, 0.5, 0.7] {
                for (_, pct) in figure8_series(&DegradationParams::paper(load)) {
                    acc += pct;
                }
            }
            acc
        })
    });

    g.bench_function("simulated_point_l30_x2", |b| {
        b.iter(|| {
            let mut sim = DraRouter::simulation(
                DraConfig {
                    router: BdrConfig {
                        n_lcs: 6,
                        load: 0.30,
                        ..BdrConfig::default()
                    },
                    ..Default::default()
                },
                7,
            );
            sim.run_until(0.2e-3);
            let now = sim.now();
            sim.model_mut()
                .fail_component_now(0, ComponentKind::Sru, now);
            sim.model_mut()
                .fail_component_now(1, ComponentKind::Sru, now);
            sim.run_until(0.6e-3);
            sim.model().metrics.total_delivered_bytes()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
