//! FIB lookup throughput: the compiled DIR-24-8 table (scalar and
//! batched, as the ingress path issues it) vs binary trie vs multibit
//! stride vs the linear reference, on a synthetic Internet-like table.
//! This is the LFE's hot path — and the cost a remote lookup (REQ_L)
//! adds is one of these plus two control packets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dra_net::addr::Ipv4Addr;
use dra_net::fib::{synthetic_routes, Dir248Fib, Fib, LinearFib, StrideFib, TrieFib};

fn build<F: Fib + Default>(routes: &[(dra_net::addr::Ipv4Prefix, u16)]) -> F {
    let mut fib = F::default();
    for &(p, nh) in routes {
        fib.insert(p, nh);
    }
    fib
}

fn probes(n: usize) -> Vec<Ipv4Addr> {
    let mut s = 0xBEEF_u64;
    (0..n)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            Ipv4Addr(s as u32)
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("lpm");
    let routes = synthetic_routes(10_000, 16, 42);
    let addrs = probes(1024);

    let trie: TrieFib = build(&routes);
    let stride: StrideFib = build(&routes);
    let linear: LinearFib = build(&routes);
    let dir: Dir248Fib = build(&routes);

    g.bench_function(BenchmarkId::new("lookup_1k", "dir248"), |b| {
        b.iter(|| {
            addrs
                .iter()
                .filter_map(|&a| dir.lookup(a))
                .map(u64::from)
                .sum::<u64>()
        })
    });
    let mut out = vec![None; addrs.len()];
    g.bench_function(BenchmarkId::new("lookup_1k", "dir248_batched"), |b| {
        b.iter(|| {
            dir.lookup_batch(&addrs, &mut out);
            out.iter().flatten().copied().map(u64::from).sum::<u64>()
        })
    });
    g.bench_function(BenchmarkId::new("lookup_1k", "trie"), |b| {
        b.iter(|| {
            addrs
                .iter()
                .filter_map(|&a| trie.lookup(a))
                .map(u64::from)
                .sum::<u64>()
        })
    });
    g.bench_function(BenchmarkId::new("lookup_1k", "stride"), |b| {
        b.iter(|| {
            addrs
                .iter()
                .filter_map(|&a| stride.lookup(a))
                .map(u64::from)
                .sum::<u64>()
        })
    });
    // The linear scan is O(routes); bench on fewer probes.
    let few = &addrs[..16];
    g.bench_function(BenchmarkId::new("lookup_16", "linear"), |b| {
        b.iter(|| {
            few.iter()
                .filter_map(|&a| linear.lookup(a))
                .map(u64::from)
                .sum::<u64>()
        })
    });

    g.bench_function("trie_build_10k", |b| {
        b.iter(|| build::<TrieFib>(&routes).len())
    });
    g.bench_function("stride_build_10k", |b| {
        b.iter(|| build::<StrideFib>(&routes).len())
    });
    g.bench_function("dir248_build_10k", |b| {
        b.iter(|| build::<Dir248Fib>(&routes).len())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
