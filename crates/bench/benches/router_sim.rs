//! Whole-simulator throughput: how much wall time one millisecond of
//! simulated router costs, for BDR and DRA, healthy and under
//! coverage. This is the number that bounds experiment turnaround.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dra_core::sim::{DraConfig, DraRouter};
use dra_router::bdr::{BdrConfig, BdrRouter};
use dra_router::components::ComponentKind;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("router_sim");
    g.sample_size(10);

    for &load in &[0.15f64, 0.5] {
        g.bench_with_input(
            BenchmarkId::new("bdr_1ms", format!("l{:.0}", load * 100.0)),
            &load,
            |b, &load| {
                b.iter(|| {
                    let mut sim = BdrRouter::simulation(
                        BdrConfig {
                            n_lcs: 6,
                            load,
                            ..BdrConfig::default()
                        },
                        1,
                    );
                    sim.run_until(1e-3);
                    sim.events_processed()
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("dra_healthy_1ms", format!("l{:.0}", load * 100.0)),
            &load,
            |b, &load| {
                b.iter(|| {
                    let mut sim = DraRouter::simulation(
                        DraConfig {
                            router: BdrConfig {
                                n_lcs: 6,
                                load,
                                ..BdrConfig::default()
                            },
                            ..Default::default()
                        },
                        1,
                    );
                    sim.run_until(1e-3);
                    sim.events_processed()
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("dra_covering_1ms", format!("l{:.0}", load * 100.0)),
            &load,
            |b, &load| {
                b.iter(|| {
                    let mut sim = DraRouter::simulation(
                        DraConfig {
                            router: BdrConfig {
                                n_lcs: 6,
                                load,
                                ..BdrConfig::default()
                            },
                            ..Default::default()
                        },
                        1,
                    );
                    sim.run_until(0.1e-3);
                    let now = sim.now();
                    sim.model_mut()
                        .fail_component_now(0, ComponentKind::Sru, now);
                    sim.model_mut()
                        .fail_component_now(1, ComponentKind::Lfe, now);
                    sim.run_until(1e-3);
                    sim.events_processed()
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
