//! Segmentation-and-reassembly throughput — the SRU's per-packet work
//! on both sides of the fabric.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dra_net::addr::Ipv4Addr;
use dra_net::packet::{Packet, PacketId};
use dra_net::protocol::ProtocolKind;
use dra_net::sar::{segment, Reassembler};

fn packet(id: u64, bytes: u32) -> Packet {
    Packet::new(
        PacketId(id),
        Ipv4Addr(1),
        Ipv4Addr(2),
        bytes,
        ProtocolKind::Ethernet,
        0.0,
    )
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("sar");

    for &bytes in &[40u32, 576, 1500] {
        g.bench_with_input(BenchmarkId::new("segment", bytes), &bytes, |b, &bytes| {
            let p = packet(1, bytes);
            b.iter(|| segment(&p, 0, 3).len())
        });
    }

    g.bench_function("segment_reassemble_1500", |b| {
        let p = packet(1, 1500);
        b.iter(|| {
            let cells = segment(&p, 0, 3);
            let mut r = Reassembler::new();
            let mut out = None;
            for cell in &cells {
                if let Ok(Some(done)) = r.push(cell, 0.0) {
                    out = Some(done);
                }
            }
            out
        })
    });

    g.bench_function("interleaved_reassembly_64_flows", |b| {
        // 64 packets' cells arriving round-robin interleaved.
        let packets: Vec<Packet> = (0..64).map(|i| packet(i, 1500)).collect();
        let all_cells: Vec<Vec<_>> = packets.iter().map(|p| segment(p, 0, 1)).collect();
        let n_cells = all_cells[0].len();
        b.iter(|| {
            let mut r = Reassembler::new();
            let mut done = 0;
            for k in 0..n_cells {
                for cells in &all_cells {
                    if let Ok(Some(_)) = r.push(&cells[k], 0.0) {
                        done += 1;
                    }
                }
            }
            done
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
