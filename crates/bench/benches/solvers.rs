//! Solver comparison: uniformization vs RK45 for transients,
//! LU vs Gauss–Seidel vs power iteration for steady states.

use criterion::{criterion_group, criterion_main, Criterion};
use dra_core::analysis::reliability::{dra_model, DraParams};
use dra_markov::steady::{steady_state, SteadyMethod};
use dra_markov::transient::{transient, transient_rk45, OdeOptions, TransientOptions};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("solvers");
    g.sample_size(10);

    let model = dra_model(&DraParams::new(9, 4));
    let pi0 = model.chain.point_mass(model.start).unwrap();

    g.bench_function("uniformization_t40k", |b| {
        b.iter(|| transient(&model.chain, &pi0, 40_000.0, TransientOptions::default()).unwrap())
    });
    g.bench_function("rk45_t400", |b| {
        // RK45 at the full 40 kh horizon is orders slower; bench a
        // shorter horizon to keep the suite fast while still exposing
        // the per-step cost.
        b.iter(|| transient_rk45(&model.chain, &pi0, 400.0, OdeOptions::default()).unwrap())
    });

    g.bench_function("expm_t400", |b| {
        b.iter(|| dra_markov::transient::transient_expm(&model.chain, &pi0, 400.0).unwrap())
    });

    let avail = dra_model(&DraParams::with_repair(9, 4, 1.0 / 3.0));
    g.bench_function("steady_lu", |b| {
        b.iter(|| steady_state(&avail.chain, SteadyMethod::DirectLu).unwrap())
    });
    g.bench_function("steady_gauss_seidel", |b| {
        b.iter(|| steady_state(&avail.chain, SteadyMethod::GaussSeidel).unwrap())
    });
    g.bench_function("steady_power", |b| {
        b.iter(|| steady_state(&avail.chain, SteadyMethod::Power).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
