//! Hot-path throughput harness: one `BENCH_*.json` artifact per PR.
//!
//! Unlike the criterion microbenches (statistical, human-read), this
//! harness produces a small machine-readable artifact so successive
//! PRs can be compared number-to-number:
//!
//! * **DES kernel** — events/second through [`dra_des::Simulation`]
//!   for a depth-1 chain, wide fan-outs, and a bimodal mix with
//!   far-future stragglers (the shape fault-injection runs produce);
//! * **iSLIP fabric** — matched slots/second and cells/second of
//!   [`dra_router::fabric::Crossbar::schedule_slot`] in two regimes:
//!   the tracked `islip` section runs a sparse scatter backlog at
//!   64/128/256 ports (arbitration-bound — the matching has to search),
//!   and `islip_saturated` keeps the saturated-uniform workload at
//!   8–256 ports (desynchronized pointers hit immediately, so it
//!   measures queue/memory machinery);
//! * **lookup** — longest-prefix-match throughput of the compiled
//!   [`Dir248Fib`] (batched) against [`TrieFib`] (scalar, the
//!   executable spec) on a 100k-route synthetic table, under a
//!   uniform-random address stream and a skewed stream with the
//!   locality real traffic has; each entry carries the in-artifact
//!   `dir248_vs_trie` ratio;
//! * **ingress** — packets/second through the allocation-free ingress
//!   pipeline: the batched LFE front end alone
//!   ([`ArrivalTrain::pop`] per slot train), then the full SAR round
//!   trip (pop → segment into cells → egress reassembly);
//! * **topo** — the network-of-routers layer: routes/second through
//!   the topology → BFS → compiled-FIB setup path on BA(64), and
//!   delivered packets/second through a healthy 4×4-mesh
//!   co-simulation (the topo sweep's unit of work);
//! * **pdes** — the conservative parallel network engine
//!   ([`dra_topo::pdes`]) vs the serial oracle on 64- and 128-router
//!   networks: delivered packets/second at `sim_threads` 1 and 4 with
//!   a bit-identity assertion between the two, plus the speedup ratio
//!   (meaningful only on multi-core hosts);
//! * **rareevent** — wall-clock cost of reaching a target relative
//!   confidence interval on the steady-state unavailability at the
//!   paper's **real** (uninflated) failure rates, for the
//!   [`dra_core::rareevent`] estimators versus a brute-force projection
//!   `N = (1.96/δ)² (1−γ̂)/γ̂` cycles at the measured per-cycle cost —
//!   the headline speedup CI enforces;
//! * **end-to-end** — wall-clock events/second and delivered
//!   cells/second for one BDR + DRA faceoff cell (same seed, same
//!   scripted SRU failure — the campaign grid's unit of work).
//!
//! Usage:
//!
//! ```text
//! bench-hotpath [--quick] [--telemetry] [--out PATH] [--baseline PATH]
//! bench-hotpath --check PATH
//! ```
//!
//! `--baseline` embeds a previous artifact and adds per-entry and
//! minimum/p50/p99 speedup factors; `--check` validates an artifact's
//! schema (used by CI's bench-smoke job) and exits non-zero on
//! violations. `--telemetry` (needs the `telemetry` cargo feature)
//! runs the end-to-end cell with the flight-recorder hub enabled and
//! embeds the resulting `dra-telemetry/v1` snapshot in the artifact —
//! those end-to-end timings carry observation cost, so never compare
//! a `--telemetry` artifact against a clean baseline.

use dra_campaign::json::{parse, Json};
use dra_core::sim::{DraConfig, DraRouter};
use dra_des::stats::LogHistogram;
use dra_des::{Ctx, Model, Simulation};
use dra_net::addr::{Ipv4Addr, Ipv4Prefix};
use dra_net::fib::{synthetic_routes, Dir248Fib, Fib, TrieFib};
use dra_net::packet::{Packet, PacketId, PacketIdGen};
use dra_net::protocol::ProtocolKind;
use dra_net::sar::{segment_cells, Cell, Reassembler, CELL_PAYLOAD};
use dra_net::traffic::PoissonGen;
use dra_router::bdr::{BdrConfig, BdrRouter};
use dra_router::components::ComponentKind;
use dra_router::fabric::Crossbar;
use dra_router::ingress::ArrivalTrain;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// The artifact format identifier; bump when the layout changes.
const BENCH_FORMAT: &str = "dra-bench/v1";

// ------------------------------------------------------- counting allocator

/// Counts every heap allocation (alloc, zeroed, and growth realloc) so
/// the simulation sections can report `allocs_per_event` next to their
/// throughput: the zero-alloc hot-path claim, measured where the
/// throughput is measured. One relaxed atomic increment per allocation
/// is noise against a real allocator call, and steady-state hot loops
/// make no allocator calls at all — which is exactly what the column
/// is there to prove.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Allocations counted so far; diff around a timed region.
fn allocs_now() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------- DES kernel

/// Self-rescheduling chain: exactly one event pending at all times.
struct Chain {
    remaining: u64,
}

impl Model for Chain {
    type Event = u8;
    fn handle(&mut self, _ev: u8, ctx: &mut Ctx<'_, u8>) {
        if self.remaining > 0 {
            self.remaining -= 1;
            ctx.schedule(1.0, 0);
        }
    }
}

/// Keeps `width` events pending at all times (router-like occupancy).
struct Fanout {
    remaining: u64,
    width: u64,
}

impl Model for Fanout {
    type Event = u8;
    fn handle(&mut self, ev: u8, ctx: &mut Ctx<'_, u8>) {
        if ev == 0 {
            for _ in 0..self.width {
                ctx.schedule(1.0, 1);
            }
        } else if self.remaining > 0 {
            self.remaining -= 1;
            ctx.schedule(1.0, 1);
        }
    }
}

/// A near-term event cluster plus sparse far-future stragglers — the
/// queue shape produced by packet events mixed with armed fault/repair
/// timers hours ahead.
struct Bimodal {
    remaining: u64,
    width: u64,
}

impl Model for Bimodal {
    type Event = u8;
    fn handle(&mut self, ev: u8, ctx: &mut Ctx<'_, u8>) {
        match ev {
            0 => {
                for _ in 0..self.width {
                    ctx.schedule(1.0, 1);
                }
                for k in 0..32u64 {
                    ctx.schedule(1e7 + k as f64, 2);
                }
            }
            1 if self.remaining > 0 => {
                self.remaining -= 1;
                ctx.schedule(1.0, 1);
            }
            _ => {}
        }
    }
}

/// Run one kernel workload `reps` times, keep the best rate.
fn kernel_entry<M, F>(name: &str, reps: u32, build: F) -> Json
where
    M: Model,
    F: Fn() -> Simulation<M>,
{
    let mut best_rate = 0.0f64;
    let mut events = 0u64;
    for _ in 0..reps {
        let mut sim = build();
        let t0 = Instant::now();
        events = sim.run_to_completion();
        let dt = t0.elapsed().as_secs_f64().max(1e-9);
        best_rate = best_rate.max(events as f64 / dt);
    }
    Json::obj(vec![
        ("name", Json::Str(name.to_string())),
        ("events", Json::Num(events as f64)),
        ("events_per_sec", Json::Num(best_rate)),
    ])
}

fn bench_des_kernel(quick: bool) -> Json {
    let n: u64 = if quick { 200_000 } else { 4_000_000 };
    let reps = if quick { 1 } else { 3 };
    let entries = vec![
        kernel_entry("chain", reps, || {
            let mut sim = Simulation::new(Chain { remaining: n }, 1);
            sim.schedule(0.0, 0);
            sim
        }),
        kernel_entry("fanout_1024", reps, || {
            let mut sim = Simulation::new(
                Fanout {
                    remaining: n,
                    width: 1024,
                },
                1,
            );
            sim.schedule(0.0, 0);
            sim
        }),
        kernel_entry("fanout_8192", reps, || {
            let mut sim = Simulation::new(
                Fanout {
                    remaining: n,
                    width: 8192,
                },
                1,
            );
            sim.schedule(0.0, 0);
            sim
        }),
        kernel_entry("bimodal_4096", reps, || {
            let mut sim = Simulation::new(
                Bimodal {
                    remaining: n,
                    width: 4096,
                },
                1,
            );
            sim.schedule(0.0, 0);
            sim
        }),
    ];
    Json::Arr(entries)
}

// ------------------------------------------------------------- iSLIP fabric

/// Saturated uniform backlog: every VOQ holds `per_voq` cells. After
/// iSLIP desynchronizes, every grant pointer sits on a requesting
/// input, so arbitration scans terminate immediately and the workload
/// measures queue/memory machinery rather than the matching search.
fn saturate(xb: &mut Crossbar, n: usize, per_voq: u64) {
    for i in 0..n as u16 {
        for o in 0..n as u16 {
            for k in 0..per_voq {
                let _ = xb.enqueue(Cell {
                    src_lc: i,
                    dst_lc: o,
                    packet: PacketId(((i as u64) << 40) | ((o as u64) << 20) | k),
                    seq: 0,
                    total: 1,
                    payload_bytes: CELL_PAYLOAD,
                });
            }
        }
    }
}

/// Sparse scatter backlog: each input holds cells for 4 pseudo-random
/// outputs (the occupancy shape a load≤0.6 faceoff actually puts in
/// the fabric). Most VOQs are empty, so the round-robin selection has
/// to *search* — this is the regime where arbitration cost, not
/// memcpy, bounds the simulation.
fn scatter(xb: &mut Crossbar, n: usize, per_voq: u64) {
    for i in 0..n as u16 {
        for t in 0..4u16 {
            let o = (i.wrapping_mul(37).wrapping_add(t.wrapping_mul(17) + 11)) % n as u16;
            for k in 0..per_voq {
                let _ = xb.enqueue(Cell {
                    src_lc: i,
                    dst_lc: o,
                    packet: PacketId(((i as u64) << 40) | ((o as u64) << 20) | k),
                    seq: 0,
                    total: 1,
                    payload_bytes: CELL_PAYLOAD,
                });
            }
        }
    }
}

/// One iSLIP throughput sweep over `ports`, reloading the fabric with
/// `reload` whenever it drains.
fn islip_sweep(
    ports: &[usize],
    reps: u32,
    quick: bool,
    per_voq_of: impl Fn(usize) -> u64,
    reload: impl Fn(&mut Crossbar, usize, u64),
) -> Json {
    let mut entries = Vec::new();
    for &n in ports {
        let slots: u64 = (if quick { 400_000 } else { 4_000_000 } / n as u64).max(10_000);
        let per_voq = per_voq_of(n);
        let mut best_rate = 0.0f64;
        let mut cells = 0u64;
        for _ in 0..reps {
            let mut xb = Crossbar::new(n, per_voq as usize, 2, 5, 4);
            reload(&mut xb, n, per_voq);
            cells = 0;
            let t0 = Instant::now();
            for _ in 0..slots {
                if xb.is_empty() {
                    reload(&mut xb, n, per_voq);
                }
                cells += xb.schedule_slot().len() as u64;
            }
            let dt = t0.elapsed().as_secs_f64().max(1e-9);
            best_rate = best_rate.max(slots as f64 / dt);
        }
        let cells_per_slot = cells as f64 / slots as f64;
        entries.push(Json::obj(vec![
            ("ports", Json::Num(n as f64)),
            ("slots", Json::Num(slots as f64)),
            ("slots_per_sec", Json::Num(best_rate)),
            ("cells_per_sec", Json::Num(best_rate * cells_per_slot)),
        ]));
    }
    Json::Arr(entries)
}

/// The tracked `islip` section: the arbitration-bound scatter workload
/// at the scaling port counts (64/128/256) this rewrite targets.
fn bench_islip(quick: bool) -> Json {
    let ports: &[usize] = if quick { &[64] } else { &[64, 128, 256] };
    let reps = if quick { 1 } else { 3 };
    islip_sweep(ports, reps, quick, |_| 64, scatter)
}

/// The `islip_saturated` continuity section: PR 2's saturated-uniform
/// workload at every port count. Total backlog is capped (~4M cells)
/// as n² VOQs multiply, so 256 ports measures the fabric rather than
/// a multi-gigabyte queue build.
fn bench_islip_saturated(quick: bool) -> Json {
    let ports: &[usize] = if quick {
        &[8, 16]
    } else {
        &[8, 16, 32, 64, 128, 256]
    };
    let reps = if quick { 1 } else { 3 };
    islip_sweep(
        ports,
        reps,
        quick,
        |n| ((1u64 << 22) / (n as u64 * n as u64)).clamp(64, 4096),
        saturate,
    )
}

// ------------------------------------------------------------------- lookup

/// A tiny xorshift64 used to pre-draw address streams outside the
/// timed loops (the bench must time lookups, not random numbers).
fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// LPM throughput: the compiled DIR-24-8 table (batched lookups, as the
/// ingress path issues them) against the path-compressed trie that is
/// its executable spec. Both tables hold the same synthetic route mix;
/// the hit counts are asserted equal, which also keeps the optimizer
/// from deleting either loop.
fn bench_lookup(quick: bool) -> Json {
    let n_routes = if quick { 20_000 } else { 100_000 };
    let passes = if quick { 4u32 } else { 64 };
    let reps = if quick { 1 } else { 3 };
    let routes = synthetic_routes(n_routes, 64, 0xF1B);
    let mut dir = Dir248Fib::new();
    let mut trie = TrieFib::new();
    for &(p, nh) in &routes {
        dir.insert(p, nh);
        trie.insert(p, nh);
    }

    const STREAM: usize = 1 << 16;
    let mut entries = Vec::new();
    for stream in ["uniform", "skewed"] {
        let mut state = 0x5EED_0BAD_u64 | 1;
        let addrs: Vec<Ipv4Addr> = (0..STREAM)
            .map(|_| {
                let r = xorshift(&mut state);
                if stream == "uniform" || r & 7 == 0 {
                    Ipv4Addr(r as u32)
                } else {
                    // 7 of 8 draws land inside an installed prefix with
                    // random host bits — the locality real traffic has.
                    let (p, _) = routes[(r >> 16) as usize % routes.len()];
                    let host_mask = ((1u64 << (32 - p.len())) - 1) as u32;
                    Ipv4Addr(p.addr().0 | (xorshift(&mut state) as u32 & host_mask))
                }
            })
            .collect();
        let lookups = STREAM as u64 * passes as u64;
        let mut out = vec![None; STREAM];

        let mut dir_rate = 0.0f64;
        let mut dir_hits = 0usize;
        for _ in 0..reps {
            let mut hits = 0usize;
            let t0 = Instant::now();
            for _ in 0..passes {
                dir.lookup_batch(&addrs, &mut out);
                hits += out.iter().filter(|o| o.is_some()).count();
            }
            let dt = t0.elapsed().as_secs_f64().max(1e-9);
            dir_hits = hits;
            dir_rate = dir_rate.max(lookups as f64 / dt);
        }

        let mut trie_rate = 0.0f64;
        let mut trie_hits = 0usize;
        for _ in 0..reps {
            let mut hits = 0usize;
            let t0 = Instant::now();
            for _ in 0..passes {
                for &a in &addrs {
                    hits += usize::from(trie.lookup(a).is_some());
                }
            }
            let dt = t0.elapsed().as_secs_f64().max(1e-9);
            trie_hits = hits;
            trie_rate = trie_rate.max(lookups as f64 / dt);
        }
        assert_eq!(
            dir_hits, trie_hits,
            "tables disagree on the {stream} stream"
        );

        entries.push(Json::obj(vec![
            ("stream", Json::Str(stream.to_string())),
            ("routes", Json::Num(n_routes as f64)),
            ("lookups", Json::Num(lookups as f64)),
            ("dir248_per_sec", Json::Num(dir_rate)),
            ("trie_per_sec", Json::Num(trie_rate)),
            ("dir248_vs_trie", Json::Num(dir_rate / trie_rate)),
        ]));
    }
    Json::Arr(entries)
}

// ------------------------------------------------------------------ ingress

/// The per-packet ingress pipeline, isolated from the DES. Two
/// workloads: `train_pop` is the batched LFE front end alone (traffic
/// draw + one `lookup_batch` per slot train), and `sar_roundtrip`
/// follows each routed packet through segmentation and the egress
/// slot-table reassembler to completion.
fn bench_ingress(quick: bool) -> Json {
    let n_lcs: usize = 8;
    let packets: u64 = if quick { 200_000 } else { 2_000_000 };
    let reps = if quick { 1 } else { 3 };

    // The table the trains resolve against: full synthetic pressure
    // plus the /16s the generator actually draws destinations from.
    let mut fib = Dir248Fib::new();
    for (p, nh) in synthetic_routes(if quick { 20_000 } else { 100_000 }, n_lcs as u16, 0xF1B) {
        fib.insert(p, nh);
    }
    let bases: Vec<Ipv4Addr> = (0..n_lcs).map(BdrConfig::dst_base_of).collect();
    for (lc, &base) in bases.iter().enumerate() {
        fib.insert(Ipv4Prefix::new(base, 16), lc as u16);
    }

    let mut entries = Vec::new();

    // Workload 1: ArrivalTrain::pop per slot train.
    {
        let mut best = 0.0f64;
        let mut routed = 0u64;
        for rep in 0..reps {
            let mut gen = PoissonGen::new(0.6 * 10e9, &bases);
            let mut rng = SmallRng::seed_from_u64(0x1237 + rep as u64);
            let mut train = ArrivalTrain::new();
            routed = 0;
            let t0 = Instant::now();
            for _ in 0..packets {
                let (_, route) = train.pop(&mut gen, &mut rng, &fib);
                routed += u64::from(route.is_some());
            }
            let dt = t0.elapsed().as_secs_f64().max(1e-9);
            best = best.max(packets as f64 / dt);
        }
        assert!(routed > 0, "no arrival resolved a route");
        entries.push(Json::obj(vec![
            ("name", Json::Str("train_pop".to_string())),
            ("packets", Json::Num(packets as f64)),
            ("packets_per_sec", Json::Num(best)),
        ]));
    }

    // Workload 2: pop → Packet → segment_cells → Reassembler::push.
    {
        let sar_packets = packets / 4; // each packet fans out into cells
        let mut best = (0.0f64, 0.0f64); // (packets/s, cells/s)
        let mut completed = 0u64;
        for rep in 0..reps {
            let mut gen = PoissonGen::new(0.6 * 10e9, &bases);
            let mut rng = SmallRng::seed_from_u64(0x5A5A + rep as u64);
            let mut train = ArrivalTrain::new();
            let mut ids = PacketIdGen::new();
            let mut reasm = Reassembler::new();
            let mut now = 0.0f64;
            let mut cells = 0u64;
            completed = 0;
            let t0 = Instant::now();
            for _ in 0..sar_packets {
                let (arrival, route) = train.pop(&mut gen, &mut rng, &fib);
                now += arrival.dt;
                let Some(egress) = route else { continue };
                let packet = Packet::new(
                    ids.next_id(),
                    bases[0],
                    arrival.dst,
                    arrival.ip_bytes,
                    ProtocolKind::Ethernet,
                    now,
                );
                for cell in segment_cells(&packet, 0, egress) {
                    cells += 1;
                    if let Ok(Some(_)) = reasm.push(&cell, now) {
                        completed += 1;
                    }
                }
            }
            let dt = t0.elapsed().as_secs_f64().max(1e-9);
            if sar_packets as f64 / dt > best.0 {
                best = (sar_packets as f64 / dt, cells as f64 / dt);
            }
        }
        assert!(completed > 0, "no packet reassembled");
        entries.push(Json::obj(vec![
            ("name", Json::Str("sar_roundtrip".to_string())),
            ("packets", Json::Num(sar_packets as f64)),
            ("packets_per_sec", Json::Num(best.0)),
            ("cells_per_sec", Json::Num(best.1)),
        ]));
    }

    Json::Arr(entries)
}

// --------------------------------------------------------------------- topo

/// The network-of-routers layer, measured at its two cost centers:
/// `route_compile` is the per-replication setup every topo-sweep cell
/// pays (build BA(64), BFS route derivation, compile one DIR-24-8 FIB
/// per node), and `mesh_4x4_net` is wall-clock end-to-end packets per
/// second through a healthy 4×4-mesh co-simulation of 16 embedded
/// routers — the sweep's unit of work.
fn bench_topo(quick: bool) -> Json {
    use dra_core::handle::ArchKind;
    use dra_topo::engine::build_network;
    use dra_topo::link::LinkConfig;
    use dra_topo::routes::{compile_fibs, RouteTables};
    use dra_topo::spec::{FlowSpec, TopoCellSpec, TopoFaultSpec};
    use dra_topo::topology::{Topology, TopologyKind};

    let reps = if quick { 1 } else { 3 };
    let mut entries = Vec::new();

    // Workload 1: topology → routes → compiled FIBs, rate in installed
    // routes (node × destination-prefix pairs) per second.
    {
        let kind = TopologyKind::BarabasiAlbert {
            n: 64,
            m: 2,
            seed: 7,
        };
        let passes = if quick { 4u32 } else { 32 };
        let mut best = 0.0f64;
        let mut routes_installed = 0u64;
        for _ in 0..reps {
            routes_installed = 0;
            let t0 = Instant::now();
            for _ in 0..passes {
                let topo = Topology::build(kind);
                let tables = RouteTables::derive(&topo);
                let fibs = compile_fibs(&topo, &tables);
                routes_installed += fibs.iter().map(|f| f.len() as u64).sum::<u64>();
                std::hint::black_box(&fibs);
            }
            let dt = t0.elapsed().as_secs_f64().max(1e-9);
            best = best.max(routes_installed as f64 / dt);
        }
        assert!(routes_installed > 0, "no routes compiled");
        entries.push(Json::obj(vec![
            ("name", Json::Str("route_compile".to_string())),
            ("items", Json::Num(routes_installed as f64)),
            ("rate_per_sec", Json::Num(best)),
        ]));
    }

    // Workload 2: delivered end-to-end packets per wall-clock second
    // on a healthy 4×4 mesh (DRA routers, the pricier architecture).
    {
        let horizon = if quick { 5e-3 } else { 20e-3 };
        let cell = TopoCellSpec {
            id: "bench/mesh-4x4".into(),
            arch: ArchKind::Dra,
            topology: TopologyKind::Mesh2D { rows: 4, cols: 4 },
            link: LinkConfig::default(),
            flows: FlowSpec {
                n_flows: 24,
                rate_pps: 40_000.0,
                packet_bytes: 700,
            },
            faults: TopoFaultSpec::None,
            horizon_s: horizon,
            drain_s: horizon * 0.25,
            replications: 1,
            seed_group: 0,
        };
        let mut best = 0.0f64;
        let mut best_ev = 0.0f64;
        let mut delivered = 0u64;
        let mut events = 0u64;
        let mut min_ape = f64::INFINITY;
        for _ in 0..reps {
            #[cfg_attr(not(feature = "telemetry"), allow(unused_mut))]
            let mut net = build_network(&cell, 0xD8A_70B0, 0);
            // Under `--telemetry` this row measures the *live* network
            // scope (counters + sampled spans on every hop), so the
            // artifact discloses collection-on overhead next to the
            // clean baselines it must never be compared against.
            #[cfg(feature = "telemetry")]
            if dra_telemetry::enabled() {
                net.enable_net_telemetry(64);
            }
            let mut sim = net.simulation(0xD8A_70B0);
            let a0 = allocs_now();
            let t0 = Instant::now();
            sim.run_until(horizon);
            let dt = t0.elapsed().as_secs_f64().max(1e-9);
            let allocs = allocs_now() - a0;
            let stats = &sim.model().stats;
            assert!(stats.conserved(), "bench cell violated conservation");
            delivered = stats.delivered;
            events = sim.events_processed();
            best = best.max(delivered as f64 / dt);
            best_ev = best_ev.max(events as f64 / dt);
            // Minimum across reps: the first rep pays one-time pool
            // and table warmup that later reps (and long sweeps) don't.
            min_ape = min_ape.min(allocs as f64 / events.max(1) as f64);
        }
        assert!(delivered > 0, "bench cell delivered nothing");
        entries.push(Json::obj(vec![
            ("name", Json::Str("mesh_4x4_net".to_string())),
            ("items", Json::Num(delivered as f64)),
            ("rate_per_sec", Json::Num(best)),
            ("events", Json::Num(events as f64)),
            ("events_per_sec", Json::Num(best_ev)),
            ("allocs_per_event", Json::Num(min_ape)),
        ]));
    }

    Json::Arr(entries)
}

// --------------------------------------------------------------------- pdes

/// The conservative parallel network engine against the serial oracle
/// on the scale sweep's workloads (64- and 128-router networks). Each
/// entry runs the identical cell at `sim_threads` 1 and 4, asserts the
/// final counters and latency moments agree bit-for-bit, and reports
/// delivered end-to-end packets per wall-clock second for both plus
/// the ratio. The speedup is only meaningful on a multi-core host —
/// on a single-core runner the windowed engine pays its barrier cost
/// for nothing and the ratio sits at or below 1.
fn bench_pdes(quick: bool) -> Json {
    use dra_core::handle::ArchKind;
    use dra_topo::engine::build_network;
    use dra_topo::link::LinkConfig;
    use dra_topo::spec::{FlowSpec, TopoCellSpec, TopoFaultSpec};
    use dra_topo::topology::TopologyKind;

    let reps = if quick { 1 } else { 3 };
    let threads = 4usize;
    let horizon = if quick { 4e-3 } else { 12e-3 };
    let cases: &[(&str, TopologyKind)] = if quick {
        &[("mesh_8x8", TopologyKind::Mesh2D { rows: 8, cols: 8 })]
    } else {
        &[
            ("mesh_8x8", TopologyKind::Mesh2D { rows: 8, cols: 8 }),
            (
                "ba_128",
                TopologyKind::BarabasiAlbert {
                    n: 128,
                    m: 2,
                    seed: 11,
                },
            ),
        ]
    };
    let mut entries = Vec::new();
    for &(name, topology) in cases {
        let cell = TopoCellSpec {
            id: format!("bench/{name}"),
            arch: ArchKind::Dra,
            topology,
            link: LinkConfig::default(),
            flows: FlowSpec {
                n_flows: if quick { 24 } else { 48 },
                rate_pps: 40_000.0,
                packet_bytes: 700,
            },
            faults: TopoFaultSpec::None,
            horizon_s: horizon,
            drain_s: horizon * 0.25,
            replications: 1,
            seed_group: 0,
        };
        // Serial oracle, run through the kernel directly so it also
        // yields the event count — the shared denominator for both
        // engines' `events_per_sec` and `allocs_per_event` (the
        // parallel engine does the same logical work; charging it the
        // serial event count makes the two rows comparable).
        let mut serial_rate = 0.0f64;
        let mut serial_ev_rate = 0.0f64;
        let mut serial_events = 0u64;
        let mut serial_ape = f64::INFINITY;
        let mut serial_last = None;
        for _ in 0..reps {
            let net = build_network(&cell, 0xD8A_70B0, 0);
            let mut sim = net.simulation(0xD8A_70B0);
            let a0 = allocs_now();
            let t0 = Instant::now();
            sim.run_until(horizon);
            let dt = t0.elapsed().as_secs_f64().max(1e-9);
            let allocs = allocs_now() - a0;
            let stats = sim.model().stats.clone();
            assert!(stats.conserved(), "bench pdes cell not conserved");
            serial_events = sim.events_processed();
            serial_rate = serial_rate.max(stats.delivered as f64 / dt);
            serial_ev_rate = serial_ev_rate.max(serial_events as f64 / dt);
            // Minimum across reps: the first rep pays one-time warmup.
            serial_ape = serial_ape.min(allocs as f64 / serial_events.max(1) as f64);
            serial_last = Some(stats);
        }
        let serial = serial_last.expect("reps >= 1");
        let mut par_rate = 0.0f64;
        let mut par_ev_rate = 0.0f64;
        let mut par_ape = f64::INFINITY;
        let mut par_last = None;
        for _ in 0..reps {
            let mut net = build_network(&cell, 0xD8A_70B0, 0);
            net.cfg.sim_threads = threads;
            let a0 = allocs_now();
            let t0 = Instant::now();
            let done = net.run(0xD8A_70B0, horizon);
            let dt = t0.elapsed().as_secs_f64().max(1e-9);
            let allocs = allocs_now() - a0;
            assert!(done.stats.conserved(), "bench pdes cell not conserved");
            par_rate = par_rate.max(done.stats.delivered as f64 / dt);
            par_ev_rate = par_ev_rate.max(serial_events as f64 / dt);
            par_ape = par_ape.min(allocs as f64 / serial_events.max(1) as f64);
            par_last = Some(done.stats);
        }
        let parallel = par_last.expect("reps >= 1");
        assert_eq!(serial.injected, parallel.injected, "{name}: injected");
        assert_eq!(serial.delivered, parallel.delivered, "{name}: delivered");
        assert_eq!(serial.drops, parallel.drops, "{name}: drops");
        assert_eq!(
            serial.latency.mean().to_bits(),
            parallel.latency.mean().to_bits(),
            "{name}: latency moments must be bit-identical"
        );
        assert!(serial.delivered > 0, "{name}: delivered nothing");
        entries.push(Json::obj(vec![
            ("name", Json::Str(name.to_string())),
            ("items", Json::Num(serial.delivered as f64)),
            ("rate_per_sec", Json::Num(par_rate)),
            ("serial_per_sec", Json::Num(serial_rate)),
            ("threads", Json::Num(threads as f64)),
            ("speedup_vs_serial", Json::Num(par_rate / serial_rate)),
            ("events", Json::Num(serial_events as f64)),
            ("events_per_sec", Json::Num(par_ev_rate)),
            ("serial_events_per_sec", Json::Num(serial_ev_rate)),
            ("allocs_per_event", Json::Num(par_ape)),
            ("serial_allocs_per_event", Json::Num(serial_ape)),
        ]));
    }
    Json::Arr(entries)
}

// ---------------------------------------------------------------- rareevent

/// Wall-clock-to-target-relative-CI for the rare-event estimators at
/// the paper's real rates.
///
/// Brute-force Monte Carlo cannot produce a live CI here in bench time
/// (a down event occurs once in ~10⁵ cycles), so its row is a
/// *projection*: measure the per-cycle wall cost over a calibration
/// run, take the cycle count a relative CI of `δ` needs —
/// `N = (1.96/δ)² (1−γ̂)/γ̂`, with `γ̂` the per-cycle down probability
/// estimated by the failure-biasing run — and multiply. The
/// accelerated rows are *measured*: cycles double until the achieved
/// relative CI meets the method's target (0.10 for likelihood-ratio
/// biasing, 0.25 for splitting — splitting's variance reduction is
/// real but modest here, since the rarity is one fast λ/μ race rather
/// than a long chain of levels; the artifact reports that honestly).
/// Each row's `speedup` compares the projected brute wall-clock *at
/// the row's achieved CI* against the row's measured wall-clock.
fn bench_rareevent(quick: bool) -> Json {
    use dra_core::rareevent::{estimate, RareConfig, RareMethod};
    use dra_router::components::FailureRates;

    let configs: &[(usize, usize)] = if quick { &[(3, 2)] } else { &[(3, 2), (9, 4)] };
    let mut entries = Vec::new();
    for &(n, m) in configs {
        let base = RareConfig {
            n,
            m,
            rates: FailureRates::PAPER,
            mu: 1.0 / 3.0,
            cycles: 1,
            seed: 0x0B0B_5EED,
        };

        // Calibration: brute-force per-cycle wall cost at these rates.
        let brute_cycles = if quick { 50_000 } else { 400_000 };
        let t0 = Instant::now();
        let brute = estimate(
            &RareConfig {
                cycles: brute_cycles,
                ..base
            },
            RareMethod::BruteForce,
        );
        let brute_wall = t0.elapsed().as_secs_f64().max(1e-9);
        let cycle_cost = brute_wall / brute_cycles as f64;
        assert!(brute.cycles == brute_cycles);

        // Accelerated runs: double cycles until the target relative CI
        // is met (cap keeps a pathological host bounded).
        let mut gamma_hat = 0.0f64;
        let mut rows = Vec::new();
        for (method, target) in [
            (RareMethod::FailureBiasing { bias: 0.5 }, 0.10),
            (RareMethod::Splitting { clones: 100 }, 0.25),
        ] {
            let mut cycles = if quick { 5_000 } else { 20_000 };
            let cap = 2_000_000usize;
            let (est, wall) = loop {
                let t0 = Instant::now();
                let est = estimate(&RareConfig { cycles, ..base }, method);
                let wall = t0.elapsed().as_secs_f64().max(1e-9);
                if est.rel_ci() <= target || cycles >= cap {
                    break (est, wall);
                }
                cycles *= 2;
            };
            assert!(
                est.rel_ci().is_finite(),
                "{} saw no down event at n{n}m{m}",
                method.name()
            );
            if matches!(method, RareMethod::FailureBiasing { .. }) {
                gamma_hat = est.gamma;
            }
            rows.push((method.name(), target, cycles, wall, est));
        }
        assert!(gamma_hat > 0.0, "failure biasing estimated zero gamma");

        // Projected brute cycles/wall to reach relative CI `delta`.
        let project = |delta: f64| {
            let z = 1.96 / delta;
            z * z * (1.0 - gamma_hat) / gamma_hat
        };

        // Brute row: measured calibration cost, projected to the
        // likelihood-ratio target; speedup 1 by definition.
        let brute_target = 0.10;
        entries.push(Json::obj(vec![
            ("config", Json::Str(format!("n{n}m{m}"))),
            ("method", Json::Str("brute-force".into())),
            ("target_rel_ci", Json::Num(brute_target)),
            ("cycles", Json::Num(brute_cycles as f64)),
            ("wall_s", Json::Num(brute_wall)),
            ("cycles_per_sec", Json::Num(1.0 / cycle_cost)),
            (
                "projected_brute_cycles",
                Json::Num(project(brute_target).ceil()),
            ),
            (
                "projected_brute_s",
                Json::Num(project(brute_target) * cycle_cost),
            ),
            ("speedup", Json::Num(1.0)),
        ]));
        for (name, target, cycles, wall, est) in rows {
            let achieved = est.rel_ci();
            let projected_s = project(achieved) * cycle_cost;
            entries.push(Json::obj(vec![
                ("config", Json::Str(format!("n{n}m{m}"))),
                ("method", Json::Str(name.into())),
                ("target_rel_ci", Json::Num(target)),
                ("cycles", Json::Num(cycles as f64)),
                ("wall_s", Json::Num(wall)),
                ("rel_ci", Json::Num(achieved)),
                ("unavailability", Json::Num(est.unavailability)),
                ("ci95", Json::Num(est.ci_half)),
                ("jumps", Json::Num(est.jumps as f64)),
                (
                    "projected_brute_cycles",
                    Json::Num(project(achieved).ceil()),
                ),
                ("projected_brute_s", Json::Num(projected_s)),
                ("speedup", Json::Num(projected_s / wall)),
            ]));
        }
    }
    Json::Arr(entries)
}

// --------------------------------------------------------------- end-to-end

/// One faceoff cell: 8 cards at load 0.6, an SRU failure mid-run.
fn bench_end_to_end(quick: bool) -> Json {
    let horizon = if quick { 3e-3 } else { 30e-3 };
    let fail_at = horizon / 3.0;
    let seed = 4242;
    let reps = if quick { 1 } else { 3 };
    let cfg = BdrConfig {
        n_lcs: 8,
        load: 0.6,
        ..BdrConfig::default()
    };

    let mut entries = Vec::new();
    for arch in ["bdr", "dra"] {
        let mut best = (0.0f64, 0.0f64); // (events/s, cells/s)
        let mut events = 0u64;
        // Delivered-packet latency distribution of the cell; the run
        // is deterministic per seed, so every rep produces the same
        // histogram and keeping the last suffices.
        let mut latency = dra_router::metrics::latency_histogram();
        for _ in 0..reps {
            let t0 = Instant::now();
            let (ev, delivered_bytes, lat) = match arch {
                "bdr" => {
                    let mut sim = BdrRouter::simulation(cfg.clone(), seed);
                    sim.run_until(fail_at);
                    let now = sim.now();
                    sim.model_mut()
                        .fail_component_now(0, ComponentKind::Sru, now);
                    sim.run_until(horizon);
                    (
                        sim.events_processed(),
                        sim.model().metrics.total_delivered_bytes(),
                        sim.model().metrics.latency_hist_total(),
                    )
                }
                _ => {
                    let dcfg = DraConfig {
                        router: cfg.clone(),
                        ..Default::default()
                    };
                    let mut sim = DraRouter::simulation(dcfg, seed);
                    sim.run_until(fail_at);
                    let now = sim.now();
                    sim.model_mut()
                        .fail_component_now(0, ComponentKind::Sru, now);
                    sim.run_until(horizon);
                    (
                        sim.events_processed(),
                        sim.model().metrics.total_delivered_bytes(),
                        sim.model().metrics.latency_hist_total(),
                    )
                }
            };
            let dt = t0.elapsed().as_secs_f64().max(1e-9);
            events = ev;
            latency = lat;
            let cells = delivered_bytes as f64 / CELL_PAYLOAD as f64;
            if ev as f64 / dt > best.0 {
                best = (ev as f64 / dt, cells / dt);
            }
        }
        assert!(latency.count() > 0, "{arch} cell delivered no packets");
        // A quantile landing in the overflow bucket comes back as
        // +inf; clamp to the layout's upper bound so the artifact
        // stays plain JSON.
        let q = |p: f64| {
            let v = latency.quantile(p);
            if v.is_finite() {
                v
            } else {
                dra_router::metrics::LATENCY_HIST_HI
            }
        };
        entries.push(Json::obj(vec![
            ("arch", Json::Str(arch.to_string())),
            ("sim_seconds", Json::Num(horizon)),
            ("events", Json::Num(events as f64)),
            ("events_per_sec", Json::Num(best.0)),
            ("cells_per_sec", Json::Num(best.1)),
            ("latency_p50_s", Json::Num(q(0.5))),
            ("latency_p99_s", Json::Num(q(0.99))),
        ]));
    }
    Json::Arr(entries)
}

// ------------------------------------------------------------------ speedup

fn rate_of(entry: &Json, key: &str) -> Option<f64> {
    entry.get(key).and_then(Json::as_f64)
}

/// Per-entry current/baseline ratios for one section, matched by `id`.
fn section_speedups(current: &Json, baseline: &Json, id: &str, rate: &str) -> Vec<(String, f64)> {
    let (Some(cur), Some(base)) = (current.as_arr(), baseline.as_arr()) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for c in cur {
        let (Some(cid), Some(crate_)) = (c.get(id), rate_of(c, rate)) else {
            continue;
        };
        let matched = base
            .iter()
            .find(|b| b.get(id) == Some(cid))
            .and_then(|b| rate_of(b, rate));
        if let Some(brate) = matched {
            if brate > 0.0 {
                let label = match cid {
                    Json::Str(s) => s.clone(),
                    Json::Num(x) => format!("{x}"),
                    _ => continue,
                };
                out.push((label, crate_ / brate));
            }
        }
    }
    out
}

fn speedup_section(artifact: &Json, baseline: &Json) -> Json {
    let mut pairs = Vec::new();
    let mut push_min = |name: &str, ratios: &[(String, f64)]| {
        if ratios.is_empty() {
            return;
        }
        let entries: Vec<(String, Json)> = ratios
            .iter()
            .map(|(k, v)| (k.clone(), Json::Num(*v)))
            .collect();
        let min = ratios.iter().map(|(_, v)| *v).fold(f64::INFINITY, f64::min);
        // Bucketed p50/p99 of the per-entry ratios: the minimum alone
        // is dominated by the noisiest workload, while the quantiles
        // show whether the section as a whole moved. Ratios cluster
        // around 1.0, so a wide log layout keeps them all in-range.
        let mut hist = LogHistogram::new(1e-3, 1e3, 240);
        for (_, v) in ratios {
            hist.record(*v);
        }
        pairs.push((name.to_string(), Json::Obj(entries)));
        pairs.push((format!("{name}_min"), Json::Num(min)));
        pairs.push((format!("{name}_p50"), Json::Num(hist.quantile(0.5))));
        pairs.push((format!("{name}_p99"), Json::Num(hist.quantile(0.99))));
    };
    for (section, id, rate) in [
        ("des_kernel", "name", "events_per_sec"),
        ("islip", "ports", "slots_per_sec"),
        ("islip_saturated", "ports", "slots_per_sec"),
        ("lookup", "stream", "dir248_per_sec"),
        ("ingress", "name", "packets_per_sec"),
        ("topo", "name", "rate_per_sec"),
        ("pdes", "name", "rate_per_sec"),
        ("end_to_end", "arch", "events_per_sec"),
    ] {
        if let (Some(c), Some(b)) = (artifact.get(section), baseline.get(section)) {
            push_min(section, &section_speedups(c, b, id, rate));
        }
    }
    Json::Obj(pairs)
}

// ----------------------------------------------------------------- checking

/// Validate an artifact against the `dra-bench/v1` schema.
fn check(artifact: &Json) -> Result<(), String> {
    match artifact.get("format").and_then(Json::as_str) {
        Some(BENCH_FORMAT) => {}
        other => return Err(format!("format must be {BENCH_FORMAT:?}, got {other:?}")),
    }
    artifact
        .get("quick")
        .filter(|q| matches!(q, Json::Bool(_)))
        .ok_or("missing boolean `quick`")?;
    let sections: [(&str, &[&str]); 3] = [
        ("des_kernel", &["name", "events", "events_per_sec"]),
        (
            "islip",
            &["ports", "slots", "slots_per_sec", "cells_per_sec"],
        ),
        (
            "end_to_end",
            &[
                "arch",
                "sim_seconds",
                "events",
                "events_per_sec",
                "cells_per_sec",
            ],
        ),
    ];
    for (section, fields) in sections {
        check_section(artifact, section, fields)?;
    }
    // Optional since dra-bench/v1 artifacts predating the workload
    // split (BENCH_pr2.json) lack it; validated whenever present.
    if artifact.get("islip_saturated").is_some() {
        check_section(
            artifact,
            "islip_saturated",
            &["ports", "slots", "slots_per_sec", "cells_per_sec"],
        )?;
    }
    // Likewise optional: artifacts predating the datapath rewrite
    // (BENCH_pr2/pr3.json) lack the lookup and ingress sections.
    if artifact.get("lookup").is_some() {
        check_section(
            artifact,
            "lookup",
            &[
                "stream",
                "routes",
                "lookups",
                "dir248_per_sec",
                "trie_per_sec",
                "dir248_vs_trie",
            ],
        )?;
    }
    if artifact.get("ingress").is_some() {
        check_section(artifact, "ingress", &["name", "packets", "packets_per_sec"])?;
    }
    // Optional: artifacts predating the network-of-routers layer
    // (BENCH_pr2..pr4.json) lack the topo section.
    if artifact.get("topo").is_some() {
        check_section(artifact, "topo", &["name", "items", "rate_per_sec"])?;
    }
    // Optional: artifacts predating the parallel network engine lack
    // the pdes section.
    if let Some(pdes) = artifact.get("pdes") {
        check_section(
            artifact,
            "pdes",
            &[
                "name",
                "items",
                "rate_per_sec",
                "serial_per_sec",
                "threads",
                "speedup_vs_serial",
            ],
        )?;
        // Artifacts since the hot-path overhaul (BENCH_pr9.json) also
        // carry event-rate and allocation columns; when the first
        // entry has them, every entry must.
        let has_alloc_cols = pdes
            .as_arr()
            .and_then(|a| a.first())
            .and_then(|e| e.get("allocs_per_event"))
            .is_some();
        if has_alloc_cols {
            check_section(
                artifact,
                "pdes",
                &[
                    "events",
                    "events_per_sec",
                    "serial_events_per_sec",
                    "allocs_per_event",
                    "serial_allocs_per_event",
                ],
            )?;
        }
    }
    // Optional: artifacts predating the rare-event estimators lack
    // this section. When present, the headline acceleration — the best
    // measured-vs-projected-brute speedup at matched relative CI —
    // must clear 100x, or the estimators have regressed into noise.
    if let Some(re) = artifact.get("rareevent") {
        check_section(
            artifact,
            "rareevent",
            &[
                "config",
                "method",
                "target_rel_ci",
                "cycles",
                "wall_s",
                "projected_brute_s",
                "speedup",
            ],
        )?;
        let best = re
            .as_arr()
            .into_iter()
            .flatten()
            .filter_map(|e| e.get("speedup").and_then(Json::as_f64))
            .fold(0.0f64, f64::max);
        if best < 100.0 {
            return Err(format!(
                "rareevent headline speedup {best:.1}x below the 100x floor"
            ));
        }
    }
    Ok(())
}

fn check_section(artifact: &Json, section: &str, fields: &[&str]) -> Result<(), String> {
    let arr = artifact
        .get(section)
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("missing array `{section}`"))?;
    if arr.is_empty() {
        return Err(format!("`{section}` must not be empty"));
    }
    for (i, entry) in arr.iter().enumerate() {
        for &field in fields {
            let v = entry
                .get(field)
                .ok_or_else(|| format!("{section}[{i}] missing `{field}`"))?;
            if let Some(x) = v.as_f64() {
                if !(x.is_finite() && x >= 0.0) {
                    return Err(format!("{section}[{i}].{field} not a finite rate: {x}"));
                }
                if field.ends_with("_per_sec") && x == 0.0 {
                    return Err(format!("{section}[{i}].{field} is zero"));
                }
            }
        }
    }
    Ok(())
}

// --------------------------------------------------------------------- main

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(path) = arg_value(&args, "--check") {
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
        let artifact = parse(&text).unwrap_or_else(|e| panic!("{path}: bad JSON: {e:?}"));
        match check(&artifact) {
            Ok(()) => {
                println!("{path}: OK ({BENCH_FORMAT})");
                return;
            }
            Err(msg) => {
                eprintln!("{path}: schema violation: {msg}");
                std::process::exit(1);
            }
        }
    }

    let quick = args.iter().any(|a| a == "--quick");
    let telemetry = args.iter().any(|a| a == "--telemetry");
    #[cfg(not(feature = "telemetry"))]
    if telemetry {
        eprintln!(
            "bench-hotpath: --telemetry requires a build with the `telemetry` \
             cargo feature (cargo run --features telemetry ...)"
        );
        std::process::exit(1);
    }
    eprintln!("bench-hotpath: DES kernel ...");
    let des = bench_des_kernel(quick);
    eprintln!("bench-hotpath: iSLIP fabric (scatter) ...");
    let islip = bench_islip(quick);
    eprintln!("bench-hotpath: iSLIP fabric (saturated) ...");
    let islip_sat = bench_islip_saturated(quick);
    eprintln!("bench-hotpath: FIB lookup ...");
    let lookup = bench_lookup(quick);
    eprintln!("bench-hotpath: ingress pipeline ...");
    let ingress = bench_ingress(quick);
    eprintln!("bench-hotpath: network-of-routers ...");
    let topo = bench_topo(quick);
    eprintln!("bench-hotpath: parallel network engine ...");
    let pdes = bench_pdes(quick);
    eprintln!("bench-hotpath: rare-event estimators ...");
    let rare = bench_rareevent(quick);
    eprintln!("bench-hotpath: end-to-end faceoff cell ...");
    #[cfg(feature = "telemetry")]
    if telemetry {
        dra_telemetry::enable(dra_telemetry::Config::default());
    }
    let e2e = bench_end_to_end(quick);
    #[cfg(feature = "telemetry")]
    let telemetry_section = if telemetry {
        let snap = dra_telemetry::snapshot().expect("telemetry hub was enabled");
        dra_telemetry::disable();
        Some(parse(&snap.to_json_string()).expect("snapshot emits valid JSON"))
    } else {
        None
    };

    let mut artifact = Json::obj(vec![
        ("format", Json::Str(BENCH_FORMAT.to_string())),
        ("quick", Json::Bool(quick)),
        ("des_kernel", des),
        ("islip", islip),
        ("islip_saturated", islip_sat),
        ("lookup", lookup),
        ("ingress", ingress),
        ("topo", topo),
        ("pdes", pdes),
        ("rareevent", rare),
        ("end_to_end", e2e),
    ]);
    #[cfg(feature = "telemetry")]
    if let Some(section) = telemetry_section {
        if let Json::Obj(pairs) = &mut artifact {
            pairs.push(("telemetry".to_string(), section));
        }
    }

    if let Some(path) = arg_value(&args, "--baseline") {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let baseline = parse(&text).unwrap_or_else(|e| panic!("{path}: bad JSON: {e:?}"));
        let speedup = speedup_section(&artifact, &baseline);
        if let Json::Obj(pairs) = &mut artifact {
            pairs.push(("baseline".to_string(), baseline));
            pairs.push(("speedup".to_string(), speedup));
        }
    }

    check(&artifact).expect("freshly produced artifact must satisfy its own schema");
    let rendered = artifact.to_string_pretty();
    match arg_value(&args, "--out") {
        Some(path) => {
            std::fs::write(&path, rendered + "\n")
                .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
            eprintln!("bench-hotpath: wrote {path}");
        }
        None => println!("{rendered}"),
    }
}
