//! Ablations A1–A3 (DESIGN.md §4/§5):
//!
//! * **A1** — the paper's ambiguous Markov semantics: T′ reading
//!   (Literal vs Strict) × Zone-LC_inter bound (Extended / Saturate /
//!   ToF), on both R(t) and availability.
//! * **A2** — EIB data-line capacity sensitivity for Figure 8.
//! * **A3** — repair-rate sweep for availability.
//! * **A4** — rate-parameter elasticities: which component actually
//!   limits DRA's dependability.
//! * **A5** — repair-time distribution: the paper assumes a *fixed*
//!   repair but models it exponentially; Erlang-k phase-type repair
//!   interpolates between the two and shows the figures are robust.

use dra_bench::{parallel_map, print_table};
use dra_core::analysis::availability::{bdr_availability, dra_availability};
use dra_core::analysis::degradation::{b_faulty_fraction, DegradationParams};
use dra_core::analysis::nines::format_nines;
use dra_core::analysis::reliability::{
    dra_model, reliability_curve, DraParams, TprimeSemantics, ZoneInterBound,
};
use dra_router::components::FailureRates;

fn a1_semantics() {
    let mut rows = Vec::new();
    for tprime in [TprimeSemantics::Literal, TprimeSemantics::Strict] {
        for bound in [
            ZoneInterBound::Extended,
            ZoneInterBound::Saturate,
            ZoneInterBound::ToF,
        ] {
            let params = DraParams {
                bound,
                tprime,
                ..DraParams::new(9, 4)
            };
            let model = dra_model(&params);
            let r40 = reliability_curve(&model.chain, model.start, model.failed, &[40_000.0])[0];
            let a = dra_availability(&params, 1.0 / 3.0);
            rows.push(vec![
                format!("{tprime:?}"),
                format!("{bound:?}"),
                format!("{r40:.5}"),
                format_nines(a),
            ]);
        }
    }
    print_table(
        "A1 — semantics ablation (N=9, M=4): paper values need Literal T'",
        &["T' semantics", "inter bound", "R(40kh)", "A (mu=1/3)"],
        &rows,
    );
}

fn a2_bus_capacity() {
    let mut rows = Vec::new();
    for bus_gbps in [5.0, 10.0, 20.0, 40.0, 80.0] {
        let mut row = vec![format!("{bus_gbps:.0} Gbps")];
        for &load in &[0.15, 0.5, 0.7] {
            let p = DegradationParams {
                bus_capacity_bps: bus_gbps * 1e9,
                ..DegradationParams::paper(load)
            };
            // X_faulty = 2: the regime where the paper's plot sits
            // between full service and collapse.
            row.push(format!("{:.1}%", 100.0 * b_faulty_fraction(&p, 2)));
        }
        rows.push(row);
    }
    print_table(
        "A2 — EIB capacity sensitivity (N=6, X_faulty=2)",
        &["B_BUS", "L=15%", "L=50%", "L=70%"],
        &rows,
    );
    println!(
        "  The paper's default (40 Gbps) never binds for N=6; the bus only\n  \
         becomes the bottleneck below ~10 Gbps at moderate loads."
    );
}

fn a3_repair_sweep() {
    let mus: Vec<f64> = vec![
        1.0 / 48.0,
        1.0 / 24.0,
        1.0 / 12.0,
        1.0 / 6.0,
        1.0 / 3.0,
        1.0,
    ];
    let cells: Vec<f64> = mus.clone();
    let results = parallel_map(cells, |&mu| {
        (
            bdr_availability(&FailureRates::PAPER, mu),
            dra_availability(&DraParams::new(3, 2), mu),
            dra_availability(&DraParams::new(9, 4), mu),
        )
    });
    let rows: Vec<Vec<String>> = mus
        .iter()
        .zip(&results)
        .map(|(&mu, &(bdr, small, big))| {
            vec![
                format!("1/{:.0} h", 1.0 / mu),
                format_nines(bdr),
                format_nines(small),
                format_nines(big),
            ]
        })
        .collect();
    print_table(
        "A3 — repair-rate sweep",
        &["mu", "BDR", "DRA N=3 M=2", "DRA N=9 M=4"],
        &rows,
    );
}

fn a4_sensitivities() {
    use dra_core::analysis::sensitivity::sensitivity_report;
    for &(n, m) in &[(3usize, 2usize), (9, 8)] {
        let rep = sensitivity_report(&DraParams::new(n, m), 1.0 / 3.0, 40_000.0, 0.05);
        let rows: Vec<Vec<String>> = rep
            .iter()
            .map(|s| {
                vec![
                    s.param.name().to_string(),
                    format!("{:+.3}", s.unreliability_elasticity),
                    format!("{:+.3}", s.unavailability_elasticity),
                ]
            })
            .collect();
        print_table(
            &format!("A4 — elasticities of 1-R(40kh) and 1-A (N={n}, M={m})"),
            &["parameter", "d(1-R)/d(rate) rel.", "d(1-A)/d(rate) rel."],
            &rows,
        );
    }
    println!(
        "  Reading: at small N the LC_UA unit rates dominate; at N=9, M=8 the\n  \
         EIB/bus-controller pair becomes the limiting single point of failure."
    );
}

fn a5_repair_distribution() {
    use dra_core::analysis::availability::dra_availability_erlang;
    let mu = 1.0 / 3.0;
    let mut rows = Vec::new();
    for &(n, m) in &[(3usize, 2usize), (9, 4)] {
        let p = DraParams::new(n, m);
        let base_unavail = 1.0 - dra_availability_erlang(&p, mu, 1);
        for k in [1usize, 2, 4, 8, 16] {
            let a = dra_availability_erlang(&p, mu, k);
            rows.push(vec![
                format!("N={n} M={m}"),
                k.to_string(),
                format_nines(a),
                format!("{:.3}", (1.0 - a) / base_unavail),
            ]);
        }
    }
    print_table(
        "A5 — Erlang-k repair (k=1 exponential ... k→∞ fixed), mu=1/3",
        &["config", "k", "availability", "unavail / k=1"],
        &rows,
    );
    println!(
        "  Reading: tightening the repair distribution toward the paper's\n  \
         'fixed time' assumption only *reduces* unavailability (fewer long\n  \
         repairs overlapping second failures); the nines of Figure 7 stand."
    );
}

fn main() {
    a1_semantics();
    a2_bus_capacity();
    a3_repair_sweep();
    a4_sensitivities();
    a5_repair_distribution();
}
