//! Run the entire evaluation in one go: Figures 5–8, the validation
//! suite, the ablations, and the latency study. Pass `--quick` to
//! shrink every sweep.
//!
//! Each section is the same code the individual `repro-*` binaries
//! run; this driver simply re-executes them as child processes so
//! their output order matches EXPERIMENTS.md.

use std::process::Command;

fn main() {
    let quick = dra_bench::quick_mode();
    let me = std::env::current_exe().expect("own path");
    let dir = me.parent().expect("bin directory");
    let sections = [
        "repro-fig5",
        "repro-fig6",
        "repro-fig7",
        "repro-fig8",
        "repro-validate",
        "repro-ablation",
        "repro-latency",
    ];
    let mut failures = 0;
    for bin in sections {
        println!("\n================ {bin} ================");
        let mut cmd = Command::new(dir.join(bin));
        if quick {
            cmd.arg("--quick");
        }
        match cmd.status() {
            Ok(status) if status.success() => {}
            Ok(status) => {
                eprintln!("{bin} exited with {status}");
                failures += 1;
            }
            Err(e) => {
                eprintln!("could not launch {bin}: {e} (build with `cargo build --release -p dra-bench` first)");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        std::process::exit(1);
    }
    println!("\nAll sections completed. See EXPERIMENTS.md for the reading guide.");
}
