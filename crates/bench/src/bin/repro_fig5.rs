//! Figure 5 regenerator: prints the state/transition inventory of the
//! BDR and DRA Markov models, so the model structure can be checked
//! against the paper's diagrams.

use dra_bench::print_table;
use dra_core::analysis::reliability::{
    bdr_reliability_model, dra_model, DraParams, ZoneInterBound,
};
use dra_router::components::FailureRates;

fn describe(chain: &dra_markov::Ctmc, title: &str) {
    let mut rows = Vec::new();
    for s in chain.states() {
        let transitions: Vec<String> = chain
            .generator()
            .row_entries(s.index())
            .filter(|&(c, v)| c != s.index() && v > 0.0)
            .map(|(c, v)| {
                let target = chain.state_by_index(c).expect("generator index in range");
                format!("-> {} @ {:.2e}", chain.label(target), v)
            })
            .collect();
        rows.push(vec![
            chain.label(s).to_string(),
            format!("{:.3e}", chain.exit_rate(s)),
            transitions.join(", "),
        ]);
    }
    print_table(title, &["state", "exit rate", "transitions"], &rows);
}

fn main() {
    println!("Figure 5 — Markov model structure (paper §5.1)");

    let bdr = bdr_reliability_model(&FailureRates::PAPER, None);
    describe(&bdr.chain, "Fig 5(a): BDR reliability model");

    let p = DraParams::new(3, 2);
    let model = dra_model(&p);
    describe(
        &model.chain,
        "Fig 5(b): DRA reliability model, minimal configuration (N=3, M=2)",
    );

    // Structural summary across the paper's sweep range.
    let mut rows = Vec::new();
    for &(n, m) in &[(3usize, 2usize), (6, 2), (9, 2), (9, 4), (9, 8)] {
        for bound in [
            ZoneInterBound::Extended,
            ZoneInterBound::Saturate,
            ZoneInterBound::ToF,
        ] {
            let model = dra_model(&DraParams {
                bound,
                ..DraParams::new(n, m)
            });
            rows.push(vec![
                n.to_string(),
                m.to_string(),
                format!("{bound:?}"),
                model.chain.n_states().to_string(),
                model.chain.generator().nnz().to_string(),
            ]);
        }
    }
    print_table(
        "DRA model sizes over the Figure-6 sweep",
        &["N", "M", "bound", "states", "transitions"],
        &rows,
    );
}
