//! Figure 6 regenerator: LC reliability R(t) under BDR and DRA.
//!
//! Reproduces both panels of the paper's Figure 6:
//! * fixed M = 2, N ∈ {3…9};
//! * fixed N = 9, M ∈ {4…8};
//!
//! plus the BDR curve, over t ∈ [0, 60 000] hours.

use dra_bench::{parallel_map, print_csv, print_table, quick_mode};
use dra_core::analysis::reliability::{
    bdr_reliability_model, dra_model, reliability_curve, DraParams,
};
use dra_router::components::FailureRates;

fn main() {
    let step = if quick_mode() { 20_000.0 } else { 5_000.0 };
    let times: Vec<f64> = (0..)
        .map(|k| k as f64 * step)
        .take_while(|&t| t <= 60_000.0)
        .collect();

    // Series: BDR, then the paper's two sweeps.
    let mut series: Vec<(String, Option<(usize, usize)>)> = vec![("BDR".to_string(), None)];
    for n in 3..=9 {
        series.push((format!("DRA M=2 N={n}"), Some((n, 2))));
    }
    for m in 4..=8 {
        series.push((format!("DRA N=9 M={m}"), Some((9, m))));
    }

    let times_ref = &times;
    let curves: Vec<Vec<f64>> = parallel_map(series.clone(), |(_, nm)| match nm {
        None => {
            let model = bdr_reliability_model(&FailureRates::PAPER, None);
            reliability_curve(&model.chain, model.start, model.failed, times_ref)
        }
        Some((n, m)) => {
            let model = dra_model(&DraParams::new(*n, *m));
            reliability_curve(&model.chain, model.start, model.failed, times_ref)
        }
    });

    let mut headers: Vec<&str> = vec!["t (h)"];
    for (name, _) in &series {
        headers.push(name);
    }
    let rows: Vec<Vec<String>> = times
        .iter()
        .enumerate()
        .map(|(i, &t)| {
            let mut row = vec![format!("{t:.0}")];
            for curve in &curves {
                row.push(format!("{:.6}", curve[i]));
            }
            row
        })
        .collect();

    print_table("Figure 6 — LC reliability R(t)", &headers, &rows);
    print_csv(&headers, &rows);

    // The paper's headline comparisons.
    let idx_40k = times.iter().position(|&t| t >= 40_000.0).unwrap_or(0);
    println!("\nPaper anchors at t = {:.0} h:", times[idx_40k]);
    println!(
        "  BDR R = {:.4}  (paper: drops below 0.5)",
        curves[0][idx_40k]
    );
    let n9m4 = series
        .iter()
        .position(|(name, _)| name == "DRA N=9 M=4")
        .expect("series present");
    println!(
        "  DRA N=9 M=4 R = {:.4}  (paper: remains close to 1.0)",
        curves[n9m4][idx_40k]
    );
    let m2n3 = series
        .iter()
        .position(|(name, _)| name == "DRA M=2 N=3")
        .expect("series present");
    println!(
        "  DRA M=2 N=3 R = {:.4}  (paper: reasonably large improvement over BDR)",
        curves[m2n3][idx_40k]
    );
}
