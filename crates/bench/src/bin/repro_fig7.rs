//! Figure 7 regenerator: steady-state LC availability in the paper's
//! `9^k x` notation, for BDR and DRA over the (M, N) grid with repair
//! rates μ = 1/3 and μ = 1/12.

use dra_bench::{parallel_map, print_csv, print_table};
use dra_core::analysis::availability::{bdr_availability, dra_availability};
use dra_core::analysis::nines::format_nines;
use dra_core::analysis::reliability::DraParams;
use dra_router::components::FailureRates;

fn main() {
    let mus = [(1.0 / 3.0, "mu=1/3"), (1.0 / 12.0, "mu=1/12")];

    for (mu, mu_name) in mus {
        // BDR row.
        let a_bdr = bdr_availability(&FailureRates::PAPER, mu);
        println!(
            "\nBDR availability ({mu_name}): {} ({:.10})",
            format_nines(a_bdr),
            a_bdr
        );

        // DRA grid: M=2 with N=3..9, then N=9 with M=4..8 (the
        // configurations Figure 7 reports).
        let mut cells: Vec<(usize, usize)> = (3..=9).map(|n| (n, 2)).collect();
        cells.extend((4..=8).map(|m| (9, m)));

        let avails = parallel_map(cells.clone(), |&(n, m)| {
            dra_availability(&DraParams::new(n, m), mu)
        });

        let rows: Vec<Vec<String>> = cells
            .iter()
            .zip(&avails)
            .map(|(&(n, m), &a)| {
                vec![
                    n.to_string(),
                    m.to_string(),
                    format_nines(a),
                    format!("{a:.12}"),
                ]
            })
            .collect();
        print_table(
            &format!("Figure 7 — DRA availability ({mu_name})"),
            &["N", "M", "nines", "value"],
            &rows,
        );
        print_csv(&["N", "M", "nines", "value"], &rows);
    }

    println!("\nPaper anchors:");
    println!("  BDR: 9^4 (mu=1/3), 9^3 (mu=1/12)");
    println!("  DRA M=2 N=3: 9^8 (mu=1/3), 9^7 (mu=1/12)");
    println!("  DRA saturates at 9^9 (mu=1/3) / 9^8 (mu=1/12) for M >= 4");
}
