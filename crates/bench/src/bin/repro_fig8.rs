//! Figure 8 regenerator: bandwidth available to faulty linecards
//! (normalized to their load, in %) as failures accumulate, for N = 6
//! and loads L ∈ {15%, 30%, 50%, 70%}.

use dra_bench::{print_csv, print_table};
use dra_core::analysis::degradation::{figure8_series, DegradationParams};

fn main() {
    let loads = [0.15, 0.30, 0.50, 0.70];
    let series: Vec<Vec<(usize, f64)>> = loads
        .iter()
        .map(|&l| figure8_series(&DegradationParams::paper(l)))
        .collect();

    let headers = ["X_faulty", "L=15%", "L=30%", "L=50%", "L=70%"];
    let rows: Vec<Vec<String>> = (0..series[0].len())
        .map(|i| {
            let mut row = vec![series[0][i].0.to_string()];
            for s in &series {
                row.push(format!("{:.1}%", s[i].1));
            }
            row
        })
        .collect();
    print_table(
        "Figure 8 — % of required bandwidth available to faulty LCs (N=6)",
        &headers,
        &rows,
    );
    print_csv(&headers, &rows);

    println!("\nPaper anchors:");
    println!("  L=15%: 100% for every X_faulty up to N-1 = 5");
    println!("  L=70%, X_faulty=5: below 10% (exact: 3/35 = 8.6%)");

    // Larger-N companion claim: more cards help while failures are few.
    let mut rows = Vec::new();
    for n in [6usize, 8, 12] {
        let p = DegradationParams {
            n,
            ..DegradationParams::paper(0.5)
        };
        let s = figure8_series(&p);
        rows.push(vec![
            n.to_string(),
            format!("{:.1}%", s[0].1),
            format!("{:.1}%", s[1].1),
            format!("{:.1}%", s[s.len() - 1].1),
        ]);
    }
    print_table(
        "Larger N at L=50%: B_faulty for X=1, X=2, X=N-1",
        &["N", "X=1", "X=2", "X=N-1"],
        &rows,
    );
}
