//! E7 — the latency price of coverage (an axis §5.3 never measured:
//! the paper analyzes bandwidth under failures, not delay).
//!
//! For each load, one card's LFE, another's SRU, and a third's
//! (egress) SRU are failed simultaneously, so the four coverage paths
//! run side by side in one router; the table reports per-path mean
//! latency of delivered packets.

use dra_bench::{print_table, quick_mode};
use dra_core::sim::{DraConfig, DraRouter, PathKind};
use dra_router::bdr::BdrConfig;
use dra_router::components::ComponentKind;

fn run(load: f64) -> Vec<(PathKind, u64, f64, f64)> {
    let mut sim = DraRouter::simulation(
        DraConfig {
            router: BdrConfig {
                n_lcs: 6,
                load,
                ..BdrConfig::default()
            },
            ..Default::default()
        },
        0xE7,
    );
    sim.run_until(1e-3);
    let now = sim.now();
    // Three distinct failure modes at once.
    sim.model_mut()
        .fail_component_now(0, ComponentKind::Lfe, now);
    sim.model_mut()
        .fail_component_now(1, ComponentKind::Sru, now);
    sim.model_mut()
        .fail_component_now(2, ComponentKind::Sru, now);
    sim.run_until(6e-3);
    PathKind::ALL
        .iter()
        .map(|&p| {
            let w = sim.model().latency_by_path(p);
            let p95 = sim.model().latency_hist_by_path(p).quantile(0.95);
            (p, w.count(), w.mean(), p95)
        })
        .collect()
}

fn main() {
    let loads: &[f64] = if quick_mode() {
        &[0.15, 0.5]
    } else {
        &[0.05, 0.15, 0.3, 0.5]
    };
    println!("E7 — per-path delivered-packet latency (N=6; LFE@LC0, SRU@LC1, SRU@LC2 failed)");
    for &load in loads {
        let rows: Vec<Vec<String>> = run(load)
            .into_iter()
            .map(|(p, n, mean, p95)| {
                let fmt = |v: f64| {
                    if n > 0 && v.is_finite() {
                        format!("{:.2} us", v * 1e6)
                    } else {
                        "-".to_string()
                    }
                };
                vec![p.name().to_string(), n.to_string(), fmt(mean), fmt(p95)]
            })
            .collect();
        print_table(
            &format!("load = {:.0}%", load * 100.0),
            &["path", "packets", "mean latency", "p95"],
            &rows,
        );
    }
    println!(
        "\nReading: EIB data-line detours add transfer + helper-pipeline time\n\
         (tens of microseconds at the promised rates); remote lookups add two\n\
         control packets plus CSMA/CD queueing, which grows with load. The\n\
         paper's bandwidth-only degradation story understates the user-visible\n\
         cost of coverage at high load."
    );
}
