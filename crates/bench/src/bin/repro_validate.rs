//! E5 — validation the paper never had:
//!
//! 1. **Monte Carlo vs Markov** on inflated failure rates (the paper's
//!    rates give probabilities near 1e−9, unreachable by sampling;
//!    inflating all rates by the same factor preserves the model
//!    structure and every rate ratio).
//! 2. **Packet-level simulation vs the Figure-8 analysis**: fail the
//!    SRUs of `X_faulty` linecards in the DRA simulator and compare
//!    the measured delivery fraction of those cards' ingress traffic
//!    against the closed-form `B_faulty` prediction; run the same
//!    scenario on the BDR baseline for contrast.
//!
//! Run with `--release` (the packet simulations move millions of
//! events); add `--quick` for a reduced sweep.

use dra_bench::{print_table, quick_mode};
use dra_campaign::engine::{run, RunOptions};
use dra_campaign::json::Json;
use dra_campaign::registry;
use dra_core::analysis::degradation::{b_faulty_fraction, DegradationParams};
use dra_core::analysis::reliability::{dra_model, reliability_curve, DraParams, TprimeSemantics};
use dra_core::montecarlo::{inflated_rates, run_bdr_mc, run_dra_mc, McConfig, McMode};
use dra_core::sim::{DraConfig, DraRouter};
use dra_router::bdr::BdrConfig;
use dra_router::components::ComponentKind;

fn validate_markov_vs_mc(quick: bool) {
    println!("\n#### Part 1: Monte Carlo vs Markov (rates inflated x1000) ####");
    let reps = if quick { 5_000 } else { 40_000 };
    let factor = 1000.0;
    let rates = inflated_rates(factor);

    let mut rows = Vec::new();
    for &(n, m) in &[(3usize, 2usize), (5, 3), (9, 4)] {
        for &horizon in &[20.0, 40.0, 60.0] {
            let cfg = McConfig {
                n,
                m,
                rates,
                replications: reps,
                seed: 0xF16 + n as u64 * 100 + m as u64,
            };
            let mc = run_dra_mc(&cfg, McMode::Reliability { horizon_h: horizon });
            let params = DraParams {
                rates,
                tprime: TprimeSemantics::Strict,
                ..DraParams::new(n, m)
            };
            let model = dra_model(&params);
            let markov = reliability_curve(&model.chain, model.start, model.failed, &[horizon])[0];
            let agree = (mc.mean - markov).abs() <= 3.0 * mc.ci_half.max(0.004);
            rows.push(vec![
                format!("N={n} M={m}"),
                format!("{horizon:.0}"),
                format!("{markov:.4}"),
                format!("{:.4} ± {:.4}", mc.mean, mc.ci_half),
                if agree {
                    "OK".into()
                } else {
                    "MISMATCH".into()
                },
            ]);
        }
    }
    print_table(
        "DRA reliability: Markov (Strict T') vs Monte Carlo",
        &[
            "config",
            "t (x1000h eq.)",
            "Markov",
            "MC (95% CI)",
            "verdict",
        ],
        &rows,
    );

    // BDR closed form as a sanity row.
    let cfg = McConfig {
        n: 3,
        m: 2,
        rates,
        replications: reps,
        seed: 0xBD12,
    };
    let mc = run_bdr_mc(&cfg, McMode::Reliability { horizon_h: 40.0 });
    let closed = (-rates.lc * 40.0_f64).exp();
    println!(
        "\nBDR closed form e^(-lambda t) = {closed:.4}; MC = {:.4} ± {:.4}",
        mc.mean, mc.ci_half
    );
}

/// Ingress delivery fraction of the first `x` (faulty) linecards over
/// the post-failure window, read from a campaign cell's per-LC window
/// counters.
fn faulty_fraction(cell: &Json, x: usize) -> f64 {
    let window = cell.get("window").expect("cell window");
    let sum_first = |key: &str| -> f64 {
        window
            .get(key)
            .and_then(Json::as_arr)
            .expect("window array")[..x]
            .iter()
            .map(|v| v.as_f64().expect("byte count"))
            .sum()
    };
    let offered = sum_first("offered_bytes");
    let delivered = sum_first("delivered_bytes");
    if offered == 0.0 {
        1.0
    } else {
        delivered / offered
    }
}

fn validate_fig8(quick: bool) {
    println!("\n#### Part 2: packet simulation vs the Figure-8 analysis ####");
    let (loads, xs) = registry::fig8_grid(quick);
    let spec = registry::build("fig8", quick).expect("built-in fig8 spec");
    let outcome = run(&spec, &RunOptions::default()).expect("fig8 campaign runs");
    let artifact = outcome.artifact.expect("campaign completed");
    let cells = artifact
        .get("cells")
        .and_then(Json::as_arr)
        .expect("artifact cells");

    let mut rows = Vec::new();
    for (li, &load) in loads.iter().enumerate() {
        for (xi, &x) in xs.iter().enumerate() {
            // Cells come in (DRA, BDR) pairs in grid order.
            let base = (li * xs.len() + xi) * 2;
            let analytic = 100.0 * b_faulty_fraction(&DegradationParams::paper(load), x);
            let sim_dra = 100.0 * faulty_fraction(&cells[base], x);
            let sim_bdr = 100.0 * faulty_fraction(&cells[base + 1], x);
            rows.push(vec![
                format!("{:.0}%", load * 100.0),
                x.to_string(),
                format!("{analytic:.1}%"),
                format!("{sim_dra:.1}%"),
                format!("{sim_bdr:.1}%"),
            ]);
        }
    }
    print_table(
        "Figure 8 validation: faulty-LC delivery fraction (N=6)",
        &[
            "load",
            "X_faulty",
            "analytic B_faulty",
            "DRA sim",
            "BDR sim",
        ],
        &rows,
    );
    println!(
        "\nReading: the DRA simulation should track the analytic column \
         (within stochastic noise and the cross-traffic the analysis \
         ignores); BDR delivers ~0% on faulty cards."
    );
}

/// Part 3: the same-protocol constraint in the packet simulator — the
/// sim analogue of the Markov model's M parameter.
fn validate_protocol_mix() {
    use dra_net::protocol::ProtocolKind;
    println!("\n#### Part 3: PDLU coverage needs a same-protocol peer (M in the flesh) ####");
    let mut rows = Vec::new();
    for m in [1usize, 2, 3] {
        // N = 6; the first `m` cards are Ethernet, the rest ATM. LC0's
        // PDLU fails: coverage exists iff another Ethernet card exists.
        let protocols: Vec<ProtocolKind> = (0..6)
            .map(|i| {
                if i < m {
                    ProtocolKind::Ethernet
                } else {
                    ProtocolKind::Atm
                }
            })
            .collect();
        let mut sim = DraRouter::simulation(
            DraConfig {
                router: BdrConfig {
                    n_lcs: 6,
                    load: 0.2,
                    protocols,
                    ..BdrConfig::default()
                },
                ..Default::default()
            },
            0xE6,
        );
        sim.run_until(2e-3);
        let now = sim.now();
        sim.model_mut()
            .fail_component_now(0, ComponentKind::Pdlu, now);
        sim.run_until(6e-3);
        let m_out = &sim.model().metrics;
        let lc0 = &m_out.lcs[0];
        rows.push(vec![
            m.to_string(),
            format!("{:.1}%", 100.0 * lc0.delivery_ratio()),
            lc0.covered_packets.to_string(),
            lc0.drops(dra_router::metrics::DropCause::NoCoverage)
                .to_string(),
            format!("{}", sim.model().lc_serviceable(0)),
        ]);
    }
    print_table(
        "PDLU failure at LC0 vs same-protocol population M (N=6)",
        &[
            "M",
            "LC0 delivery",
            "covered",
            "no-coverage drops",
            "serviceable",
        ],
        &rows,
    );
    println!(
        "\nReading: with M = 1 (no Ethernet peer) the failed card drops its\n\
         traffic exactly as the model's pd-exhaustion predicts; any peer\n\
         (M >= 2) restores full delivery."
    );
}

fn main() {
    let quick = quick_mode();
    validate_markov_vs_mc(quick);
    validate_fig8(quick);
    validate_protocol_mix();
}
