//! Shared harness code for the `repro-*` binaries and criterion
//! benches: table/CSV printing and parallel parameter sweeps.

use parking_lot::Mutex;

/// Print an aligned text table to stdout.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let parts: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect();
        println!("  {}", parts.join("  "));
    };
    line(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    line(
        &widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<String>>(),
    );
    for row in rows {
        line(row);
    }
}

/// Print the same data as CSV lines (prefixed `csv:` for easy grep).
pub fn print_csv(headers: &[&str], rows: &[Vec<String>]) {
    println!("csv:{}", headers.join(","));
    for row in rows {
        println!("csv:{}", row.join(","));
    }
}

/// Map `inputs` through `f` on scoped worker threads, preserving order.
///
/// Used by the sweep harnesses: each (N, M, μ) cell solves an
/// independent Markov model, so the sweep is embarrassingly parallel.
pub fn parallel_map<I, O, F>(inputs: Vec<I>, f: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    let n = inputs.len();
    let results: Mutex<Vec<Option<O>>> = Mutex::new((0..n).map(|_| None).collect());
    let work: Mutex<std::vec::IntoIter<(usize, I)>> = Mutex::new(
        inputs
            .into_iter()
            .enumerate()
            .collect::<Vec<_>>()
            .into_iter(),
    );
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(n.max(1));

    crossbeam::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|_| loop {
                let item = work.lock().next();
                match item {
                    Some((idx, input)) => {
                        let out = f(&input);
                        results.lock()[idx] = Some(out);
                    }
                    None => break,
                }
            });
        }
    })
    .expect("worker thread panicked");

    results
        .into_inner()
        .into_iter()
        .map(|o| o.expect("all work items completed"))
        .collect()
}

/// `--quick` flag support for the repro binaries: smaller sweeps for
/// smoke-testing.
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let inputs: Vec<u64> = (0..100).collect();
        let out = parallel_map(inputs.clone(), |&x| x * 2);
        let expect: Vec<u64> = inputs.iter().map(|x| x * 2).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn parallel_map_empty() {
        let out: Vec<u8> = parallel_map(Vec::<u8>::new(), |_| 0u8);
        assert!(out.is_empty());
    }

    #[test]
    fn parallel_map_heavy_closure() {
        let offset = 7u64;
        let out = parallel_map((0..50u64).collect(), |&x| x + offset);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as u64 + offset);
        }
    }
}
