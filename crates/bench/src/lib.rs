//! Shared harness code for the `repro-*` binaries and criterion
//! benches.
//!
//! The table/CSV printers and the parallel sweep helper moved to
//! `dra-campaign` (the campaign engine needs them too); they are
//! re-exported here so the repro binaries keep their imports.

pub use dra_campaign::pool::parallel_map;
pub use dra_campaign::report::{print_csv, print_table};

/// `--quick` flag support for the repro binaries: smaller sweeps for
/// smoke-testing.
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_reexport_preserves_order() {
        let inputs: Vec<u64> = (0..100).collect();
        let out = parallel_map(inputs.clone(), |&x| x * 2);
        let expect: Vec<u64> = inputs.iter().map(|x| x * 2).collect();
        assert_eq!(out, expect);
    }
}
