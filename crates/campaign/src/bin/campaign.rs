//! `campaign` — run experiment campaigns from the command line.
//!
//! ```text
//! campaign [--spec NAME] [--quick] [--workers N] [--seed S]
//!          [--replications R] [--out PATH] [--cell-budget N]
//!          [--fresh] [--csv] [--list] [--progress]
//!          [--telemetry] [--telemetry-out PATH] [--trace PATH]
//! campaign --check PATH
//! ```
//!
//! Artifacts land under `results/<spec>.json` by default, next to a
//! `.partial.jsonl` checkpoint while a campaign is underway. Re-running
//! the same spec resumes from the checkpoint; `--fresh` discards it.

use dra_campaign::engine::{self, RunOptions};
use dra_campaign::rareevent;
use dra_campaign::registry;
use dra_campaign::report::{artifact_table, print_csv, print_table};
use std::path::PathBuf;
use std::process::ExitCode;

struct Cli {
    spec: String,
    quick: bool,
    workers: usize,
    seed: Option<u64>,
    replications: Option<usize>,
    out: Option<PathBuf>,
    no_out: bool,
    cell_budget: Option<usize>,
    fresh: bool,
    csv: bool,
    list: bool,
    check: Option<PathBuf>,
    dry_run: bool,
    progress: bool,
    telemetry: bool,
    telemetry_out: Option<PathBuf>,
    trace: Option<PathBuf>,
}

fn usage() -> ! {
    eprintln!(
        "usage: campaign [--spec NAME] [--quick] [--workers N] [--seed S]\n\
         \x20               [--replications R] [--out PATH | --no-out]\n\
         \x20               [--cell-budget N] [--fresh] [--csv] [--progress]\n\
         \x20               [--dry-run]\n\
         \x20               [--telemetry] [--telemetry-out PATH] [--trace PATH]\n\
         \x20      campaign --list\n\
         \x20      campaign --check PATH\n\
         \n\
         Runs a named campaign spec (default: faceoff) and writes a\n\
         versioned JSON artifact to results/<spec>.json. Interrupted\n\
         runs resume from the .partial.jsonl checkpoint automatically.\n\
         \n\
         --dry-run        print the expanded grid (cell count, axes)\n\
         \x20               and exit without simulating\n\
         --progress       heartbeat on stderr (cells done, elapsed, ETA)\n\
         --telemetry      embed a dra-telemetry/v1 section in the artifact\n\
         --telemetry-out  write the merged snapshot to a separate file\n\
         \x20               (artifact stays byte-identical)\n\
         --trace          write a Perfetto-loadable Chrome trace JSON\n\
         (the last three need a build with --features telemetry)"
    );
    std::process::exit(2);
}

fn parse_cli() -> Cli {
    let mut cli = Cli {
        spec: "faceoff".into(),
        quick: false,
        workers: dra_campaign::pool::default_workers(),
        seed: None,
        replications: None,
        out: None,
        no_out: false,
        cell_budget: None,
        fresh: false,
        csv: false,
        list: false,
        check: None,
        dry_run: false,
        progress: false,
        telemetry: false,
        telemetry_out: None,
        trace: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--spec" => cli.spec = value("--spec"),
            "--quick" => cli.quick = true,
            "--workers" => cli.workers = value("--workers").parse().unwrap_or_else(|_| usage()),
            "--seed" => cli.seed = Some(value("--seed").parse().unwrap_or_else(|_| usage())),
            "--replications" => {
                cli.replications = Some(value("--replications").parse().unwrap_or_else(|_| usage()))
            }
            "--out" => cli.out = Some(PathBuf::from(value("--out"))),
            "--no-out" => cli.no_out = true,
            "--cell-budget" => {
                cli.cell_budget = Some(value("--cell-budget").parse().unwrap_or_else(|_| usage()))
            }
            "--fresh" => cli.fresh = true,
            "--csv" => cli.csv = true,
            "--list" => cli.list = true,
            "--check" => cli.check = Some(PathBuf::from(value("--check"))),
            "--dry-run" => cli.dry_run = true,
            "--progress" => cli.progress = true,
            "--telemetry" => cli.telemetry = true,
            "--telemetry-out" => cli.telemetry_out = Some(PathBuf::from(value("--telemetry-out"))),
            "--trace" => cli.trace = Some(PathBuf::from(value("--trace"))),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument {other:?}");
                usage();
            }
        }
    }
    cli
}

/// Drive a rare-event campaign with the subset of CLI knobs that apply
/// to it (`--seed`, `--workers`, `--out`/`--no-out`, `--dry-run`).
fn run_rare_campaign(mut spec: rareevent::RareCampaignSpec, cli: &Cli) -> ExitCode {
    if let Some(seed) = cli.seed {
        spec.master_seed = seed;
    }
    if cli.dry_run {
        let rows: Vec<Vec<String>> = spec
            .cells
            .iter()
            .map(|cell| {
                vec![
                    cell.id.clone(),
                    cell.method.name().into(),
                    format!("{}", cell.n),
                    format!("{}", cell.m),
                    format!("{:.3}", cell.mu),
                    format!("{}", cell.cycles),
                ]
            })
            .collect();
        print_table(
            &format!("campaign {} [{}] — dry run", spec.name, spec.digest()),
            &["id", "method", "n", "m", "mu/h", "cycles"],
            &rows,
        );
        println!(
            "{} cells, master seed {}; nothing simulated",
            spec.cells.len(),
            spec.master_seed
        );
        return ExitCode::SUCCESS;
    }
    let out = if cli.no_out {
        None
    } else {
        Some(
            cli.out
                .clone()
                .unwrap_or_else(|| PathBuf::from(format!("results/{}.json", spec.name))),
        )
    };
    eprintln!(
        "campaign {:?}: {} cells, master seed {}, digest {}, {} workers",
        spec.name,
        spec.cells.len(),
        spec.master_seed,
        spec.digest(),
        cli.workers
    );
    let outcome = match rareevent::run(
        &spec,
        &rareevent::RareRunOptions {
            workers: cli.workers,
            out,
            quiet: false,
        },
    ) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("campaign failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    rareevent::print_rare_table(&outcome.artifact);
    if let Some(path) = &outcome.artifact_path {
        eprintln!("artifact: {}", path.display());
    }
    if outcome.failed > 0 {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let cli = parse_cli();

    if cli.list {
        let rows: Vec<Vec<String>> = registry::ENTRIES
            .iter()
            .chain(rareevent::RARE_ENTRIES.iter())
            .map(|e| {
                vec![
                    e.name.to_string(),
                    e.summary.split_whitespace().collect::<Vec<_>>().join(" "),
                ]
            })
            .collect();
        print_table("available campaign specs", &["name", "summary"], &rows);
        return ExitCode::SUCCESS;
    }

    if let Some(path) = &cli.check {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        // Dispatch on the artifact's own format field, so one --check
        // flag covers both campaign kinds.
        let format = dra_campaign::json::parse(&text).ok().and_then(|doc| {
            doc.get("format")
                .and_then(dra_campaign::json::Json::as_str)
                .map(String::from)
        });
        if format.as_deref() == Some(rareevent::RARE_ARTIFACT_FORMAT) {
            return match rareevent::validate_rare_artifact(&text) {
                Ok((cells, misses)) => {
                    println!(
                        "{}: valid {} artifact, {cells} cells, {misses} CI misses",
                        path.display(),
                        rareevent::RARE_ARTIFACT_FORMAT
                    );
                    if misses > 0 {
                        ExitCode::FAILURE
                    } else {
                        ExitCode::SUCCESS
                    }
                }
                Err(e) => {
                    eprintln!("{}: INVALID artifact: {e}", path.display());
                    ExitCode::FAILURE
                }
            };
        }
        return match engine::validate_artifact(&text) {
            Ok((cells, errors)) => {
                println!(
                    "{}: valid {} artifact, {cells} cells, {errors} error cells",
                    path.display(),
                    engine::ARTIFACT_FORMAT
                );
                if errors > 0 {
                    ExitCode::FAILURE
                } else {
                    ExitCode::SUCCESS
                }
            }
            Err(e) => {
                eprintln!("{}: INVALID artifact: {e}", path.display());
                ExitCode::FAILURE
            }
        };
    }

    let mut spec = match registry::build(&cli.spec, cli.quick) {
        Some(s) => s,
        None => {
            // Not a packet campaign — fall back to the rare-event
            // registry before giving up.
            if let Some(rspec) = rareevent::build(&cli.spec, cli.quick) {
                return run_rare_campaign(rspec, &cli);
            }
            eprintln!("unknown spec {:?}; try --list", cli.spec);
            return ExitCode::FAILURE;
        }
    };
    if let Some(seed) = cli.seed {
        spec.master_seed = seed;
    }
    if let Some(reps) = cli.replications {
        for cell in &mut spec.cells {
            cell.replications = reps.max(1);
        }
    }

    if cli.dry_run {
        let rows: Vec<Vec<String>> = spec
            .cells
            .iter()
            .map(|cell| {
                let scenario = match &cell.scenario {
                    dra_campaign::spec::ScenarioTemplate::Explicit(s) => {
                        format!("explicit ({} actions, {}s)", s.len(), s.horizon())
                    }
                    dra_campaign::spec::ScenarioTemplate::Sampled { horizon_s, .. } => {
                        format!("sampled ({horizon_s}s)")
                    }
                };
                vec![
                    cell.id.clone(),
                    cell.arch.name().into(),
                    format!("{}", cell.config.n_lcs),
                    format!("{:.2}", cell.config.load),
                    scenario,
                    format!("{}", cell.replications),
                    format!("{}", cell.seed_group),
                ]
            })
            .collect();
        print_table(
            &format!("campaign {} [{}] — dry run", spec.name, spec.digest()),
            &["id", "arch", "lcs", "load", "scenario", "reps", "group"],
            &rows,
        );
        let total_reps: usize = spec.cells.iter().map(|c| c.replications).sum();
        println!(
            "{} cells, {} total replications, master seed {}; nothing simulated",
            spec.cells.len(),
            total_reps,
            spec.master_seed
        );
        return ExitCode::SUCCESS;
    }

    let out = if cli.no_out {
        None
    } else {
        Some(
            cli.out
                .clone()
                .unwrap_or_else(|| PathBuf::from(format!("results/{}.json", spec.name))),
        )
    };
    let opts = RunOptions {
        workers: cli.workers,
        out,
        cell_budget: cli.cell_budget,
        fresh: cli.fresh,
        quiet: false,
        progress: cli.progress,
        telemetry: cli.telemetry,
        telemetry_out: cli.telemetry_out.clone(),
        trace_out: cli.trace.clone(),
    };

    eprintln!(
        "campaign {:?}: {} cells, master seed {}, digest {}, {} workers",
        spec.name,
        spec.cells.len(),
        spec.master_seed,
        spec.digest(),
        opts.workers
    );
    let outcome = match engine::run(&spec, &opts) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("campaign failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    eprintln!(
        "completed {} cells ({} resumed from checkpoint, {} failed), {} remaining",
        outcome.completed, outcome.resumed, outcome.failed, outcome.remaining
    );
    if outcome.remaining > 0 {
        eprintln!("cell budget exhausted; re-run to resume");
        return ExitCode::SUCCESS;
    }

    let artifact = outcome.artifact.expect("complete run has an artifact");
    let (headers, rows) = artifact_table(&artifact);
    if cli.csv {
        print_csv(&headers, &rows);
    } else {
        print_table(&format!("campaign {}", spec.name), &headers, &rows);
    }
    if let Some(path) = &outcome.artifact_path {
        eprintln!("artifact: {}", path.display());
    }
    if outcome.failed > 0 {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
