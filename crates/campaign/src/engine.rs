//! Campaign execution: cells → worker pool → aggregates → artifact.
//!
//! Determinism contract: the artifact produced for a given spec is a
//! pure function of the spec (master seed included). Worker count,
//! scheduling order, resume boundaries, and cell budgets change only
//! *when* cells run, never what they compute:
//!
//! * every replication draws its RNG streams from
//!   [`crate::seed::derive_seed`], not from any shared RNG;
//! * cell results render to JSON as they finish, and the final
//!   artifact sorts them by cell index;
//! * resumed cells are spliced in from the checkpoint verbatim (the
//!   JSON round-trips `f64` exactly), so a resumed artifact is
//!   byte-identical to a fresh one.
//!
//! Crash safety: finished cells append to a `<artifact>.partial.jsonl`
//! checkpoint (stamped with the spec digest); the artifact itself is
//! written to a temp file and atomically renamed, so readers never see
//! a torn artifact and an interrupted campaign resumes by skipping the
//! checkpointed cells.

use crate::json::{parse, Json};
use crate::pool::WorkerPool;
use crate::seed::{derive_seed, Stream};
use crate::spec::{Arch, CampaignSpec, ScenarioTemplate};
use dra_core::scenario::{Scenario, WindowedMetrics};
use dra_core::sim::DraConfig;
use dra_des::stats::Welford;
use dra_router::metrics::{DropCause, RouterMetrics};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// The artifact format identifier; bump when the JSON layout changes.
pub const ARTIFACT_FORMAT: &str = "dra-campaign/v1";
/// The checkpoint format identifier.
pub const CHECKPOINT_FORMAT: &str = "dra-campaign-checkpoint/v1";

/// Knobs for one engine invocation (not part of the spec: none of
/// these may affect results).
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Worker threads (1 ⇒ fully serial in the calling thread).
    pub workers: usize,
    /// Artifact path. `None` runs in memory: no checkpoint, no file.
    pub out: Option<PathBuf>,
    /// Stop after completing this many *new* cells (checkpointing
    /// them); `None` runs the whole grid. Used to bound invocation
    /// time and to test resume.
    pub cell_budget: Option<usize>,
    /// Ignore (and overwrite) any existing checkpoint.
    pub fresh: bool,
    /// Suppress progress lines on stderr.
    pub quiet: bool,
    /// Opt-in heartbeat on stderr as cells complete (done count,
    /// elapsed wall time, ETA). Writes only to stderr, so it cannot
    /// change the artifact.
    pub progress: bool,
    /// Embed the merged `dra-telemetry/v1` snapshot as a `telemetry`
    /// section in the artifact. Requires the `telemetry` feature.
    pub telemetry: bool,
    /// Write the merged `dra-telemetry/v1` snapshot to this path as a
    /// standalone file, leaving the artifact byte-identical to a run
    /// without telemetry. Requires the `telemetry` feature.
    pub telemetry_out: Option<PathBuf>,
    /// Write a Chrome `trace_event` JSON (Perfetto-loadable) of the
    /// sampled packet lifecycles to this path. Requires the
    /// `telemetry` feature.
    pub trace_out: Option<PathBuf>,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            workers: crate::pool::default_workers(),
            out: None,
            cell_budget: None,
            fresh: false,
            quiet: true,
            progress: false,
            telemetry: false,
            telemetry_out: None,
            trace_out: None,
        }
    }
}

/// What one engine invocation accomplished.
#[derive(Debug)]
pub struct CampaignOutcome {
    /// The complete artifact, present only when every cell finished.
    pub artifact: Option<Json>,
    /// Where the artifact was written (when complete and `out` set).
    pub artifact_path: Option<PathBuf>,
    /// Cells computed by *this* invocation.
    pub completed: usize,
    /// Cells skipped because the checkpoint already had them.
    pub resumed: usize,
    /// Cells still missing (> 0 ⇔ budget exhausted, artifact absent).
    pub remaining: usize,
    /// Cells that failed with a panic (included in the artifact as
    /// error records).
    pub failed: usize,
}

/// Execute a campaign.
pub fn run(spec: &CampaignSpec, opts: &RunOptions) -> std::io::Result<CampaignOutcome> {
    spec.validate();
    let digest = spec.digest();

    let collect = opts.telemetry || opts.telemetry_out.is_some() || opts.trace_out.is_some();
    #[cfg(not(feature = "telemetry"))]
    if collect {
        return Err(std::io::Error::new(
            std::io::ErrorKind::Unsupported,
            "telemetry output requested, but dra-campaign was built without \
             the `telemetry` cargo feature (rebuild with --features telemetry)",
        ));
    }

    // Load checkpointed cells, if any.
    let ckpt_path = opts.out.as_ref().map(|p| checkpoint_path(p));
    let mut done: BTreeMap<u64, Json> = BTreeMap::new();
    if let Some(path) = &ckpt_path {
        if opts.fresh {
            let _ = fs::remove_file(path);
        } else {
            done = load_checkpoint(path, &digest, opts.quiet)?;
        }
    }
    let resumed = done.len();

    let mut pending: Vec<usize> = (0..spec.cells.len())
        .filter(|i| !done.contains_key(&(*i as u64)))
        .collect();
    let total_pending = pending.len();
    if let Some(budget) = opts.cell_budget {
        pending.truncate(budget);
    }

    // Open the checkpoint for appending before any work starts, so a
    // kill mid-run loses at most the in-flight cells.
    let ckpt: Option<Mutex<fs::File>> = match &ckpt_path {
        Some(path) if !pending.is_empty() => {
            if let Some(dir) = path.parent() {
                fs::create_dir_all(dir)?;
            }
            let fresh_file = !path.exists();
            let mut f = fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)?;
            if fresh_file || done.is_empty() {
                // (Re)stamp the header when starting a new checkpoint.
                if done.is_empty() {
                    f = fs::File::create(path)?;
                }
                let header = Json::obj(vec![
                    ("format", Json::Str(CHECKPOINT_FORMAT.into())),
                    ("campaign", Json::Str(spec.name.clone())),
                    ("digest", Json::Str(digest.clone())),
                ]);
                writeln!(f, "{}", header.to_string_compact())?;
                f.flush()?;
            }
            Some(Mutex::new(f))
        }
        _ => None,
    };

    let pool = WorkerPool::new(opts.workers);
    let quiet = opts.quiet;
    let progress = opts.progress;
    let heartbeat_total = pending.len();
    let heartbeat_done = std::sync::atomic::AtomicUsize::new(0);
    let heartbeat_start = std::time::Instant::now();
    #[cfg(feature = "telemetry")]
    let collected: Mutex<
        Vec<(
            usize,
            dra_telemetry::Snapshot,
            Vec<dra_telemetry::TraceEvent>,
        )>,
    > = Mutex::new(Vec::new());
    #[cfg(feature = "telemetry")]
    let want_trace = opts.trace_out.is_some();
    let outcomes = pool.try_map(pending.clone(), |&i| {
        // A fresh hub per cell: per-cell snapshots merge in cell-index
        // order afterwards, so worker count and scheduling cannot
        // change the merged section. enable() also discards any state
        // a panicked previous cell left on this worker thread.
        #[cfg(feature = "telemetry")]
        if collect {
            dra_telemetry::enable(dra_telemetry::Config {
                collect_trace: want_trace,
                ..Default::default()
            });
        }
        let cell_json = run_cell(spec, i);
        #[cfg(feature = "telemetry")]
        if collect {
            if let Some(snap) = dra_telemetry::snapshot() {
                let trace = dra_telemetry::take_trace_events();
                collected
                    .lock()
                    .expect("telemetry lock")
                    .push((i, snap, trace));
            }
            dra_telemetry::disable();
        }
        if let Some(f) = &ckpt {
            let mut f = f.lock().expect("checkpoint lock");
            writeln!(f, "{}", cell_json.to_string_compact()).expect("checkpoint write");
            f.flush().expect("checkpoint flush");
        }
        if !quiet {
            eprintln!("  cell {i} ({}) done", spec.cells[i].id);
        }
        if progress {
            let done = heartbeat_done.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1;
            let elapsed = heartbeat_start.elapsed().as_secs_f64();
            let eta = elapsed / done as f64 * (heartbeat_total - done) as f64;
            eprintln!(
                "[campaign] {done}/{heartbeat_total} cells, \
                 {elapsed:.1}s elapsed, eta {eta:.1}s"
            );
        }
        cell_json
    });

    let mut failed = 0;
    for (idx, outcome) in pending.iter().zip(outcomes) {
        let cell_json = match outcome {
            Ok(j) => j,
            Err(p) => {
                // The whole cell panicked before it could checkpoint;
                // record the failure so the artifact stays complete.
                // Key by the cell index the panic itself carries —
                // `pending[p.index]` — not the zip position, so the
                // attribution holds even if result order ever changes.
                failed += 1;
                debug_assert_eq!(pending[p.index], *idx);
                let j = error_cell(spec, pending[p.index], &p.message);
                if let Some(f) = &ckpt {
                    let mut f = f.lock().expect("checkpoint lock");
                    writeln!(f, "{}", j.to_string_compact())?;
                    f.flush()?;
                }
                j
            }
        };
        done.insert(*idx as u64, cell_json);
    }

    let remaining = spec.cells.len() - done.len();
    if remaining > 0 {
        return Ok(CampaignOutcome {
            artifact: None,
            artifact_path: None,
            completed: total_pending - remaining,
            resumed,
            remaining,
            failed,
        });
    }

    // Merged telemetry: fold per-cell snapshots in cell-index order
    // (Snapshot::merge is commutative and associative, so any order
    // gives the same bytes; sorting makes that self-evident) and
    // route the result to the requested exporters.
    #[cfg(feature = "telemetry")]
    let telemetry_section: Option<Json> = if collect {
        let mut cells_collected = collected.into_inner().expect("telemetry lock");
        cells_collected.sort_by_key(|&(i, _, _)| i);
        let n_merged = cells_collected.len();
        let mut merged: Option<dra_telemetry::Snapshot> = None;
        let mut trace_events = Vec::new();
        for (_, snap, trace) in cells_collected {
            match &mut merged {
                Some(m) => m.merge(&snap),
                None => merged = Some(snap),
            }
            trace_events.extend(trace);
        }
        if let Some(path) = &opts.trace_out {
            write_atomic(path, &dra_telemetry::chrome_trace_json(&trace_events))?;
        }
        let mut section = match merged {
            Some(s) => parse(&s.to_json_string()).expect("telemetry snapshot emits valid JSON"),
            // Nothing ran this invocation (everything resumed): an
            // empty but schema-valid section.
            None => Json::obj(vec![
                ("format", Json::Str(dra_telemetry::SNAPSHOT_FORMAT.into())),
                ("counters", Json::Obj(Vec::new())),
            ]),
        };
        if let Json::Obj(pairs) = &mut section {
            pairs.push(("cells_merged".to_string(), Json::Num(n_merged as f64)));
        }
        if let Some(path) = &opts.telemetry_out {
            write_atomic(path, &section.to_string_pretty())?;
        }
        Some(section)
    } else {
        None
    };

    // All cells present: assemble, write atomically, drop checkpoint.
    #[cfg_attr(not(feature = "telemetry"), allow(unused_mut))]
    let mut fields = vec![
        ("format", Json::Str(ARTIFACT_FORMAT.into())),
        ("digest", Json::Str(digest)),
        ("spec", spec.manifest()),
        ("cells", Json::Arr(done.into_values().collect())),
    ];
    #[cfg(feature = "telemetry")]
    if opts.telemetry {
        if let Some(section) = telemetry_section {
            fields.push(("telemetry", section));
        }
    }
    let artifact = Json::obj(fields);
    let mut artifact_path = None;
    if let Some(out) = &opts.out {
        write_atomic(out, &artifact.to_string_pretty())?;
        if let Some(path) = &ckpt_path {
            let _ = fs::remove_file(path);
        }
        artifact_path = Some(out.clone());
    }
    Ok(CampaignOutcome {
        artifact: Some(artifact),
        artifact_path,
        completed: total_pending,
        resumed,
        remaining: 0,
        failed,
    })
}

/// The checkpoint path for an artifact path.
pub fn checkpoint_path(artifact: &Path) -> PathBuf {
    let mut name = artifact.file_name().unwrap_or_default().to_os_string();
    name.push(".partial.jsonl");
    artifact.with_file_name(name)
}

fn load_checkpoint(path: &Path, digest: &str, quiet: bool) -> std::io::Result<BTreeMap<u64, Json>> {
    let mut done = BTreeMap::new();
    let text = match fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(done),
        Err(e) => return Err(e),
    };
    let mut lines = text.lines();
    let header = match lines.next().and_then(|l| parse(l).ok()) {
        Some(h) => h,
        None => return Ok(done), // unreadable checkpoint: start over
    };
    let matches = header.get("format").and_then(Json::as_str) == Some(CHECKPOINT_FORMAT)
        && header.get("digest").and_then(Json::as_str) == Some(digest);
    if !matches {
        if !quiet {
            eprintln!(
                "  checkpoint at {} is for a different spec; ignoring",
                path.display()
            );
        }
        return Ok(done);
    }
    for line in lines {
        // A truncated last line (crash mid-write) parses as an error
        // and is simply re-run.
        if let Ok(cell) = parse(line) {
            if let Some(idx) = cell.get("cell").and_then(Json::as_u64) {
                done.insert(idx, cell);
            }
        }
    }
    Ok(done)
}

fn write_atomic(path: &Path, text: &str) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            fs::create_dir_all(dir)?;
        }
    }
    let mut tmp_name = path.file_name().unwrap_or_default().to_os_string();
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(text.as_bytes())?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)
}

fn error_cell(spec: &CampaignSpec, index: usize, message: &str) -> Json {
    Json::obj(vec![
        ("cell", Json::Num(index as f64)),
        ("id", Json::Str(spec.cells[index].id.clone())),
        ("error", Json::Str(message.to_string())),
    ])
}

/// Run every replication of one cell and reduce to its JSON record.
fn run_cell(spec: &CampaignSpec, index: usize) -> Json {
    let cell = &spec.cells[index];
    let horizon = cell.scenario.horizon_s();
    let n = cell.config.n_lcs;

    let mut delivery = Welford::new();
    let mut latency = Welford::new();
    let mut availability = Welford::new();
    let mut drops = [0u64; 8];
    let mut win_offered = vec![0u64; n];
    let mut win_delivered = vec![0u64; n];
    let (mut eib_packets, mut eib_bytes, mut eib_control, mut eib_collisions) = (0u64, 0, 0, 0);

    for rep in 0..cell.replications {
        let sim_seed = derive_seed(
            spec.master_seed,
            cell.seed_group,
            rep as u64,
            Stream::Simulation,
        );
        let scenario: Scenario = match &cell.scenario {
            ScenarioTemplate::Explicit(s) => s.clone(),
            ScenarioTemplate::Sampled { process, horizon_s } => {
                let fault_seed = derive_seed(
                    spec.master_seed,
                    cell.seed_group,
                    rep as u64,
                    Stream::Faults,
                );
                process.sample(n, *horizon_s, &mut SmallRng::seed_from_u64(fault_seed))
            }
        };
        let (metrics, window): (RouterMetrics, WindowedMetrics) = match cell.arch {
            Arch::Dra => {
                let (model, w) = scenario.run_dra_windowed(
                    DraConfig {
                        router: cell.config.clone(),
                        ..Default::default()
                    },
                    sim_seed,
                    cell.measure_from_s,
                );
                (model.metrics, w)
            }
            Arch::Bdr => {
                let (model, w) =
                    scenario.run_bdr_windowed(cell.config.clone(), sim_seed, cell.measure_from_s);
                (model.metrics, w)
            }
        };

        delivery.push(window.window_byte_delivery_ratio());
        for lc in 0..n {
            win_offered[lc] += window.window_offered_bytes(lc);
            win_delivered[lc] += window.window_delivered_bytes(lc);
        }
        for (slot, cause) in DropCause::ALL.iter().enumerate() {
            drops[slot] += metrics.total_drops(*cause);
        }
        // Packet-weighted mean latency across the router.
        let (mut lat_sum, mut lat_n) = (0.0, 0u64);
        let mut avail_sum = 0.0;
        for lc in &metrics.lcs {
            lat_sum += lc.latency.mean() * lc.latency.count() as f64;
            lat_n += lc.latency.count();
            avail_sum += lc.availability.average(horizon);
        }
        if lat_n > 0 {
            latency.push(lat_sum / lat_n as f64);
        }
        availability.push(avail_sum / n as f64);
        eib_packets += metrics.eib_packets;
        eib_bytes += metrics.eib_bytes;
        eib_control += metrics.eib_control_packets;
        eib_collisions += metrics.eib_collisions;
    }

    let drop_pairs: Vec<(String, Json)> = DropCause::ALL
        .iter()
        .enumerate()
        .map(|(slot, cause)| (cause.to_string(), Json::Num(drops[slot] as f64)))
        .collect();

    Json::obj(vec![
        ("cell", Json::Num(index as f64)),
        ("id", Json::Str(cell.id.clone())),
        ("arch", Json::Str(cell.arch.name().to_string())),
        ("replications", Json::Num(cell.replications as f64)),
        ("delivery", welford_json(&delivery)),
        ("latency_s", welford_json(&latency)),
        ("availability", welford_json(&availability)),
        ("drops", Json::Obj(drop_pairs)),
        (
            "eib",
            Json::obj(vec![
                ("packets", Json::Num(eib_packets as f64)),
                ("bytes", Json::Num(eib_bytes as f64)),
                ("control_packets", Json::Num(eib_control as f64)),
                ("collisions", Json::Num(eib_collisions as f64)),
            ]),
        ),
        (
            "window",
            Json::obj(vec![
                (
                    "offered_bytes",
                    Json::Arr(win_offered.iter().map(|&b| Json::Num(b as f64)).collect()),
                ),
                (
                    "delivered_bytes",
                    Json::Arr(win_delivered.iter().map(|&b| Json::Num(b as f64)).collect()),
                ),
            ]),
        ),
    ])
}

fn welford_json(w: &Welford) -> Json {
    if w.count() == 0 {
        return Json::obj(vec![("n", Json::Num(0.0))]);
    }
    let ci = if w.count() >= 2 {
        w.ci_half_width(1.96)
    } else {
        0.0
    };
    Json::obj(vec![
        ("n", Json::Num(w.count() as f64)),
        ("mean", Json::Num(w.mean())),
        ("ci95", Json::Num(ci)),
        ("min", Json::Num(w.min())),
        ("max", Json::Num(w.max())),
    ])
}

/// Structural validation of an artifact document (used by `--check`
/// and the CI smoke job). Returns `(cells, error_cells)`.
pub fn validate_artifact(text: &str) -> Result<(usize, usize), String> {
    let doc = parse(text).map_err(|e| e.to_string())?;
    if doc.get("format").and_then(Json::as_str) != Some(ARTIFACT_FORMAT) {
        return Err(format!(
            "format is {:?}, expected {ARTIFACT_FORMAT:?}",
            doc.get("format")
        ));
    }
    doc.get("digest")
        .and_then(Json::as_str)
        .filter(|d| d.len() == 16)
        .ok_or("missing/malformed digest")?;
    let spec = doc.get("spec").ok_or("missing spec manifest")?;
    let spec_cells = spec
        .get("cells")
        .and_then(Json::as_arr)
        .ok_or("spec manifest has no cells")?;
    let cells = doc
        .get("cells")
        .and_then(Json::as_arr)
        .ok_or("missing cells array")?;
    if cells.len() != spec_cells.len() {
        return Err(format!(
            "artifact has {} cells but the spec declares {}",
            cells.len(),
            spec_cells.len()
        ));
    }
    let mut errors = 0;
    for (i, cell) in cells.iter().enumerate() {
        let idx = cell
            .get("cell")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("cell {i}: missing index"))?;
        if idx != i as u64 {
            return Err(format!("cell {i}: out of order (index {idx})"));
        }
        cell.get("id")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("cell {i}: missing id"))?;
        if cell.get("error").is_some() {
            errors += 1;
            continue;
        }
        let mean = cell
            .get("delivery")
            .and_then(|d| d.get("mean"))
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("cell {i}: missing delivery.mean"))?;
        if !(0.0..=1.0).contains(&mean) {
            return Err(format!("cell {i}: delivery.mean {mean} outside [0,1]"));
        }
    }
    // The telemetry section is optional, but must be well-formed
    // whenever present.
    if let Some(t) = doc.get("telemetry") {
        let fmt = t.get("format").and_then(Json::as_str);
        if fmt != Some("dra-telemetry/v1") {
            return Err(format!(
                "telemetry section format is {fmt:?}, expected \"dra-telemetry/v1\""
            ));
        }
        if !matches!(t.get("counters"), Some(Json::Obj(_))) {
            return Err("telemetry section missing counters object".into());
        }
        t.get("cells_merged")
            .and_then(Json::as_u64)
            .ok_or("telemetry section missing cells_merged")?;
    }
    Ok((cells.len(), errors))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{CellSpec, ScenarioTemplate};
    use dra_core::scenario::Action;
    use dra_router::bdr::BdrConfig;
    use dra_router::components::ComponentKind;

    fn spec(cells: usize, reps: usize) -> CampaignSpec {
        CampaignSpec {
            name: "unit".into(),
            description: "engine unit-test grid".into(),
            master_seed: 7,
            cells: (0..cells)
                .map(|i| CellSpec {
                    id: format!("dra/cell{i}"),
                    arch: Arch::Dra,
                    config: BdrConfig {
                        n_lcs: 3,
                        load: 0.15,
                        ..BdrConfig::default()
                    },
                    scenario: ScenarioTemplate::Explicit(
                        Scenario::new(1e-3)
                            .at(0.4e-3, Action::FailComponent(0, ComponentKind::Sru)),
                    ),
                    replications: reps,
                    measure_from_s: 0.0,
                    seed_group: i as u64,
                })
                .collect(),
        }
    }

    #[test]
    fn in_memory_run_produces_valid_artifact() {
        let out = run(&spec(2, 2), &RunOptions::default()).unwrap();
        assert_eq!(out.completed, 2);
        assert_eq!(out.remaining, 0);
        let text = out.artifact.unwrap().to_string_pretty();
        let (cells, errors) = validate_artifact(&text).unwrap();
        assert_eq!((cells, errors), (2, 0));
    }

    #[test]
    fn artifact_independent_of_worker_count() {
        let spec = spec(3, 2);
        let one = run(
            &spec,
            &RunOptions {
                workers: 1,
                ..RunOptions::default()
            },
        )
        .unwrap();
        let many = run(
            &spec,
            &RunOptions {
                workers: 4,
                ..RunOptions::default()
            },
        )
        .unwrap();
        assert_eq!(
            one.artifact.unwrap().to_string_pretty(),
            many.artifact.unwrap().to_string_pretty()
        );
    }

    #[test]
    fn progress_heartbeat_does_not_change_artifact() {
        let spec = spec(3, 2);
        let plain = run(&spec, &RunOptions::default()).unwrap();
        let noisy = run(
            &spec,
            &RunOptions {
                progress: true,
                workers: 3,
                ..RunOptions::default()
            },
        )
        .unwrap();
        assert_eq!(
            plain.artifact.unwrap().to_string_pretty(),
            noisy.artifact.unwrap().to_string_pretty()
        );
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn telemetry_section_embeds_and_validates() {
        let spec = spec(2, 1);
        let out = run(
            &spec,
            &RunOptions {
                telemetry: true,
                ..RunOptions::default()
            },
        )
        .unwrap();
        let text = out.artifact.unwrap().to_string_pretty();
        validate_artifact(&text).unwrap();
        let doc = parse(&text).unwrap();
        let t = doc.get("telemetry").expect("telemetry section present");
        assert_eq!(
            t.get("format").and_then(Json::as_str),
            Some("dra-telemetry/v1")
        );
        assert_eq!(t.get("cells_merged").and_then(Json::as_u64), Some(2));
        let arrivals = t
            .get("counters")
            .and_then(|c| c.get("router.arrivals"))
            .and_then(Json::as_f64)
            .expect("arrivals counter");
        assert!(arrivals > 0.0, "no arrivals counted");
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn telemetry_section_independent_of_worker_count() {
        let spec = spec(3, 1);
        let run_with = |workers| {
            run(
                &spec,
                &RunOptions {
                    workers,
                    telemetry: true,
                    ..RunOptions::default()
                },
            )
            .unwrap()
            .artifact
            .unwrap()
            .to_string_pretty()
        };
        assert_eq!(run_with(1), run_with(4));
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn external_telemetry_leaves_artifact_identical() {
        let spec = spec(2, 1);
        let plain = run(&spec, &RunOptions::default()).unwrap();
        let snap_path =
            std::env::temp_dir().join(format!("dra-telemetry-ext-{}.json", std::process::id()));
        let traced = run(
            &spec,
            &RunOptions {
                telemetry_out: Some(snap_path.clone()),
                ..RunOptions::default()
            },
        )
        .unwrap();
        assert_eq!(
            plain.artifact.unwrap().to_string_pretty(),
            traced.artifact.unwrap().to_string_pretty(),
            "--telemetry-out must not touch the artifact"
        );
        let snap = fs::read_to_string(&snap_path).expect("snapshot file written");
        let _ = fs::remove_file(&snap_path);
        let doc = parse(&snap).unwrap();
        assert_eq!(
            doc.get("format").and_then(Json::as_str),
            Some("dra-telemetry/v1")
        );
    }

    #[test]
    fn checkpoint_path_is_sibling() {
        let p = checkpoint_path(Path::new("results/faceoff.json"));
        assert_eq!(p, Path::new("results/faceoff.json.partial.jsonl"));
    }

    #[test]
    fn validate_artifact_rejects_garbage() {
        assert!(validate_artifact("not json").is_err());
        assert!(validate_artifact("{\"format\":\"something-else\"}").is_err());
    }
}
