//! Minimal JSON: a value tree, a deterministic writer, and a strict
//! parser.
//!
//! Written in-tree because the build environment has no crates.io
//! access (no `serde`). Two properties matter more here than
//! generality:
//!
//! * **Deterministic output** — object members serialize in insertion
//!   order and `f64` uses Rust's shortest-roundtrip formatting, so the
//!   same campaign produces byte-identical artifacts on every run,
//!   worker count, and platform.
//! * **Round-trip fidelity** — `parse(write(v)) == v` for every value
//!   the campaign emits (finite numbers; no NaN/∞, which the writer
//!   rejects).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (campaign artifacts only emit finite values).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object; insertion-ordered pairs (duplicates rejected by parse).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from pairs (convenience for literals).
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Number accessor.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// Integer accessor (numbers that round-trip through u64).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= 2f64.powi(53) => Some(*x as u64),
            _ => None,
        }
    }

    /// String accessor.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array accessor.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Serialize compactly (no whitespace).
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serialize with 2-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => write_num(out, *x),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_str(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..(width * depth) {
            out.push(' ');
        }
    }
}

fn write_num(out: &mut String, x: f64) {
    assert!(x.is_finite(), "JSON cannot represent {x}");
    if x.fract() == 0.0 && x.abs() < 2f64.powi(53) {
        // Integral values print without the trailing ".0" Rust adds.
        write!(out, "{}", x as i64).expect("write to String");
    } else {
        // Shortest roundtrip formatting: deterministic and lossless.
        write!(out, "{x}").expect("write to String");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                write!(out, "\\u{:04x}", c as u32).expect("write to String");
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error in the input.
    pub at: usize,
    /// What went wrong.
    pub reason: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.reason)
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete JSON document (trailing whitespace allowed,
/// trailing garbage rejected).
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, reason: &str) -> ParseError {
        ParseError {
            at: self.pos,
            reason: reason.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut pairs: Vec<(String, Json)> = Vec::new();
        let mut keys: BTreeMap<String, ()> = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if keys.insert(key.clone(), ()).is_some() {
                return Err(self.err(&format!("duplicate key {key:?}")));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not emitted by our
                            // writer; reject rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("unsupported \\u codepoint"))?;
                            s.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact_and_pretty() {
        let v = Json::obj(vec![
            ("name", Json::Str("faceoff \"quick\"\n".into())),
            ("seed", Json::Num(42.0)),
            ("ratio", Json::Num(0.12345678901234567)),
            ("flags", Json::Arr(vec![Json::Bool(true), Json::Null])),
            ("nested", Json::obj(vec![("k", Json::Num(-1.5e-9))])),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
        ]);
        for text in [v.to_string_compact(), v.to_string_pretty()] {
            assert_eq!(parse(&text).unwrap(), v, "failed on {text}");
        }
    }

    #[test]
    fn integral_floats_print_without_fraction() {
        assert_eq!(Json::Num(3.0).to_string_compact(), "3");
        assert_eq!(Json::Num(-7.0).to_string_compact(), "-7");
        assert_eq!(Json::Num(0.5).to_string_compact(), "0.5");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":1,}",
            "{\"a\":1} x",
            "\"unterminated",
            "{\"a\":1,\"a\":2}",
            "nul",
            "+1",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parses_scientific_notation_and_nesting() {
        let v = parse("[1e3, -2.5E-2, {\"a\": [[]]}]").unwrap();
        assert_eq!(v.as_arr().unwrap()[0].as_f64(), Some(1000.0));
        assert_eq!(v.as_arr().unwrap()[1].as_f64(), Some(-0.025));
    }

    #[test]
    fn accessor_helpers() {
        let v = parse("{\"n\": 5, \"s\": \"x\", \"f\": 1.5}").unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(5));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("f").unwrap().as_u64(), None);
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn escape_sequences_roundtrip() {
        let s = Json::Str("tab\t nl\n quote\" back\\ ctrl\u{1}".into());
        assert_eq!(parse(&s.to_string_compact()).unwrap(), s);
    }
}
