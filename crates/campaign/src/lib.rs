//! # dra-campaign
//!
//! A declarative, parallel, **deterministic** experiment-campaign
//! engine for the DRA reproduction.
//!
//! The repo's experiments (the repro binaries, the examples, ad-hoc
//! sweeps) kept re-growing the same scaffolding: nested parameter
//! loops, hand-rolled seeding, bespoke aggregation, print-only output.
//! This crate replaces that with one pipeline:
//!
//! * [`spec`] — a [`spec::CampaignSpec`] declares a grid of cells:
//!   architecture × router config × fault scenario × replications.
//!   Scenarios are either explicit [`dra_core::scenario::Scenario`]
//!   timelines or sampled from a [`dra_core::scenario::FaultProcess`].
//! * [`seed`] — every replication's RNG streams derive structurally
//!   from `(master_seed, seed_group, replication, stream)`; results
//!   never depend on thread count or scheduling order.
//! * [`pool`] — the workspace's worker pool (scoped threads, shared
//!   work queue, per-item panic isolation). `dra-bench::parallel_map`
//!   is now a re-export of [`pool::parallel_map`].
//! * [`engine`] — runs cells on the pool, aggregates per-cell stats
//!   ([`dra_des::stats::Welford`] delivery CI, drop-cause breakdown,
//!   EIB counters, windowed per-LC bytes), checkpoints finished cells
//!   to a `.partial.jsonl`, and atomically writes a versioned JSON
//!   artifact. Interrupted campaigns resume by skipping checkpointed
//!   cells — and still produce byte-identical artifacts.
//! * [`registry`] — built-in specs (`faceoff`, `fig8`) with `--quick`
//!   CI reductions.
//! * [`rareevent`] — a second campaign kind: grids of
//!   [`dra_core::rareevent`] estimator runs (importance splitting,
//!   likelihood-ratio failure biasing, brute force) with a per-cell
//!   exact-Markov cross-check, emitted as `dra-rareevent/v1`
//!   artifacts under the same determinism contract.
//! * [`json`] / [`report`] — the hand-rolled JSON layer (the build
//!   environment has no serde) and shared table/CSV printers.
//!
//! The `campaign` binary exposes all of this on the command line; see
//! `campaign --help`.

#![warn(missing_docs)]

pub mod engine;
pub mod json;
pub mod pool;
pub mod rareevent;
pub mod registry;
pub mod report;
pub mod seed;
pub mod spec;

pub use engine::{run, CampaignOutcome, RunOptions};
pub use pool::{parallel_map, WorkerPool};
pub use spec::{Arch, CampaignSpec, CellSpec, ScenarioTemplate};
