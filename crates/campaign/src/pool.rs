//! The workspace's single threading implementation: a scoped worker
//! pool over a shared work queue.
//!
//! Promoted and generalized from the private `parallel_map` that used
//! to live in `dra-bench`: the pool adds a configurable worker count
//! (campaign determinism is *verified* by running the same campaign on
//! 1 and N workers) and per-item panic isolation (one poisoned cell
//! must fail that cell, not the whole campaign).
//!
//! Work distribution is a shared queue: idle workers claim the next
//! item as they finish, so long items never serialize behind short
//! ones regardless of input order.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

/// A fixed-size scoped worker pool.
#[derive(Debug, Clone, Copy)]
pub struct WorkerPool {
    workers: usize,
}

impl WorkerPool {
    /// Pool with exactly `workers` threads (clamped to ≥ 1).
    pub fn new(workers: usize) -> Self {
        WorkerPool {
            workers: workers.max(1),
        }
    }

    /// Pool sized to the machine (`available_parallelism`, min 1).
    pub fn auto() -> Self {
        Self::new(default_workers())
    }

    /// Number of worker threads this pool spawns.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Map `inputs` through `f`, preserving input order in the output.
    ///
    /// # Panics
    /// Propagates the first panic raised by `f` (see [`Self::try_map`]
    /// for the isolating variant).
    pub fn map<I, O, F>(&self, inputs: Vec<I>, f: F) -> Vec<O>
    where
        I: Send,
        O: Send,
        F: Fn(&I) -> O + Sync,
    {
        self.try_map(inputs, f)
            .into_iter()
            .map(|r| match r {
                Ok(o) => o,
                Err(p) => panic!("worker item panicked: {}", p.message),
            })
            .collect()
    }

    /// Map with per-item panic isolation: a panic in `f` becomes an
    /// `Err(ItemPanic)` for that item only; the remaining items still
    /// run to completion.
    pub fn try_map<I, O, F>(&self, inputs: Vec<I>, f: F) -> Vec<Result<O, ItemPanic>>
    where
        I: Send,
        O: Send,
        F: Fn(&I) -> O + Sync,
    {
        let n = inputs.len();
        if n == 0 {
            return Vec::new();
        }
        let threads = self.workers.min(n);
        if threads == 1 {
            // Run inline: no thread spawn cost, same semantics.
            return inputs
                .iter()
                .enumerate()
                .map(|(idx, input)| run_item(&f, input, idx))
                .collect();
        }

        let results: Mutex<Vec<Option<Result<O, ItemPanic>>>> =
            Mutex::new((0..n).map(|_| None).collect());
        // Items move out through the shared queue so `I` only needs
        // `Send`; each worker owns the item while running `f` on it.
        let work: Mutex<std::vec::IntoIter<(usize, I)>> = Mutex::new(
            inputs
                .into_iter()
                .enumerate()
                .collect::<Vec<_>>()
                .into_iter(),
        );
        let f = &f;

        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| loop {
                    let item = work.lock().expect("work queue lock").next();
                    match item {
                        Some((idx, input)) => {
                            let out = run_item(f, &input, idx);
                            results.lock().expect("results lock")[idx] = Some(out);
                        }
                        None => break,
                    }
                });
            }
        });

        results
            .into_inner()
            .expect("results lock")
            .into_iter()
            .map(|o| o.expect("all work items completed"))
            .collect()
    }
}

fn run_item<I, O, F: Fn(&I) -> O>(f: &F, input: &I, index: usize) -> Result<O, ItemPanic> {
    catch_unwind(AssertUnwindSafe(|| f(input))).map_err(|payload| ItemPanic {
        index,
        message: panic_message(payload.as_ref()),
    })
}

/// A captured panic from one work item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ItemPanic {
    /// Position of the panicked item in the *input* vector. `try_map`
    /// already returns results in input order, but a caller that keys
    /// records by item identity must use this — not the result slot it
    /// happened to read the error from — so a future reordering of the
    /// result vector cannot silently mis-attribute failures.
    pub index: usize,
    /// The panic payload rendered as text (`&str`/`String` payloads;
    /// anything else becomes a placeholder).
    pub message: String,
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Machine-sized worker count.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
}

/// Map `inputs` through `f` on a machine-sized pool, preserving order.
///
/// Drop-in for the old `dra_bench::parallel_map` (which now re-exports
/// this function).
pub fn parallel_map<I, O, F>(inputs: Vec<I>, f: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    WorkerPool::auto().map(inputs, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order() {
        let inputs: Vec<u64> = (0..100).collect();
        let out = WorkerPool::new(7).map(inputs.clone(), |&x| x * 2);
        let expect: Vec<u64> = inputs.iter().map(|x| x * 2).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn map_empty() {
        let out: Vec<u8> = WorkerPool::new(4).map(Vec::<u8>::new(), |_| 0u8);
        assert!(out.is_empty());
    }

    #[test]
    fn single_worker_runs_inline() {
        let out = WorkerPool::new(1).map(vec![1, 2, 3], |&x: &i32| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn try_map_isolates_panics() {
        let out = WorkerPool::new(4).try_map((0..20u32).collect(), |&x| {
            if x % 7 == 3 {
                panic!("poisoned item {x}");
            }
            x * 10
        });
        for (i, r) in out.iter().enumerate() {
            if i % 7 == 3 {
                let p = r.as_ref().unwrap_err();
                assert!(p.message.contains("poisoned item"), "{:?}", p);
                assert_eq!(p.index, i, "panic must carry its input index");
            } else {
                assert_eq!(*r.as_ref().unwrap(), i as u32 * 10);
            }
        }
    }

    #[test]
    fn item_panic_index_names_the_input_position() {
        for workers in [1, 4] {
            let out = WorkerPool::new(workers).try_map(vec![10u32, 11, 12, 13], |&x| {
                if x % 2 == 1 {
                    panic!("odd input {x}");
                }
                x
            });
            let bad: Vec<usize> = out
                .iter()
                .filter_map(|r| r.as_ref().err().map(|p| p.index))
                .collect();
            assert_eq!(bad, vec![1, 3], "workers = {workers}");
        }
    }

    #[test]
    fn try_map_isolates_panics_inline_too() {
        let out = WorkerPool::new(1).try_map(vec![0u8, 1], |&x| {
            if x == 0 {
                panic!("zero");
            }
            x
        });
        assert!(out[0].is_err());
        assert_eq!(*out[1].as_ref().unwrap(), 1);
    }

    #[test]
    fn parallel_map_matches_serial() {
        let offset = 7u64;
        let out = parallel_map((0..50u64).collect(), |&x| x + offset);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as u64 + offset);
        }
    }

    #[test]
    fn results_independent_of_worker_count() {
        let inputs: Vec<u64> = (0..64).collect();
        let one = WorkerPool::new(1).map(inputs.clone(), |&x| x * x);
        let many = WorkerPool::new(8).map(inputs, |&x| x * x);
        assert_eq!(one, many);
    }
}
