//! Rare-event availability campaigns: grids of
//! [`dra_core::rareevent`] estimator runs with a built-in exact-Markov
//! cross-check per cell.
//!
//! A [`RareCampaignSpec`] is deliberately parallel to
//! [`crate::spec::CampaignSpec`]: a named grid of cells plus one master
//! seed, a canonical JSON manifest, and an FNV-1a digest stamped into
//! the artifact. Cells run on the same [`crate::pool::WorkerPool`] and
//! draw their RNG seed from [`crate::seed::derive_seed`] keyed by cell
//! index, so the `dra-rareevent/v1` artifact is byte-identical for any
//! worker count — including the splitting estimator, whose clone
//! trajectories derive *their* seeds structurally inside the core
//! estimator.
//!
//! What makes this campaign kind different from the packet campaigns:
//! every cell also solves the **exact** component-level Markov model
//! ([`dra_core::rareevent::markov_oracle`]) and records whether the
//! estimate's confidence interval covers the exact answer. The artifact
//! is therefore self-validating: `campaign --check` fails if any cell's
//! CI misses truth, no external baseline needed.

use crate::json::{parse, Json};
use crate::pool::WorkerPool;
use crate::report::print_table;
use crate::seed::{derive_seed, Stream};
use dra_core::analysis::nines::{format_nines_interval, nines_interval};
use dra_core::rareevent::{estimate, markov_oracle, RareConfig, RareMethod};
use dra_router::components::FailureRates;
use std::collections::BTreeMap;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// The rare-event artifact format identifier.
pub const RARE_ARTIFACT_FORMAT: &str = "dra-rareevent/v1";

/// One grid point: a configuration and the estimator to run on it.
#[derive(Debug, Clone)]
pub struct RareCellSpec {
    /// Unique cell id, e.g. `"failure-biasing/n9m4"`.
    pub id: String,
    /// Total linecards.
    pub n: usize,
    /// Same-protocol linecards.
    pub m: usize,
    /// Component failure rates (per hour) — typically the paper's real
    /// ones, which is the whole point of this campaign kind.
    pub rates: FailureRates,
    /// Repair rate (per hour).
    pub mu: f64,
    /// Regenerative cycles to simulate.
    pub cycles: usize,
    /// Which estimator runs this cell.
    pub method: RareMethod,
}

impl RareCellSpec {
    fn validate(&self, index: usize) {
        assert!(self.n >= 3, "cell {index}: n < 3");
        assert!(
            (2..=self.n).contains(&self.m),
            "cell {index}: m outside 2..=n"
        );
        assert!(self.mu > 0.0, "cell {index}: non-positive repair rate");
        assert!(self.cycles >= 1, "cell {index}: no cycles");
        if let RareMethod::FailureBiasing { bias } = self.method {
            assert!(
                (0.0..1.0).contains(&bias) && bias > 0.0,
                "cell {index}: bias outside (0,1)"
            );
        }
        if let RareMethod::Splitting { clones } = self.method {
            assert!(clones >= 1, "cell {index}: zero clones");
        }
    }

    /// Canonical JSON description (everything that affects results).
    pub fn manifest(&self) -> Json {
        let r = &self.rates;
        let method = match self.method {
            RareMethod::BruteForce => Json::obj(vec![("kind", Json::Str("brute-force".into()))]),
            RareMethod::Splitting { clones } => Json::obj(vec![
                ("kind", Json::Str("splitting".into())),
                ("clones", Json::Num(clones as f64)),
            ]),
            RareMethod::FailureBiasing { bias } => Json::obj(vec![
                ("kind", Json::Str("failure-biasing".into())),
                ("bias", Json::Num(bias)),
            ]),
        };
        Json::obj(vec![
            ("id", Json::Str(self.id.clone())),
            ("n", Json::Num(self.n as f64)),
            ("m", Json::Num(self.m as f64)),
            ("mu_per_h", Json::Num(self.mu)),
            ("cycles", Json::Num(self.cycles as f64)),
            (
                "rates_per_h",
                Json::obj(vec![
                    ("lc", Json::Num(r.lc)),
                    ("pdlu", Json::Num(r.pdlu)),
                    ("pi_units", Json::Num(r.pi_units)),
                    ("bus_controller", Json::Num(r.bus_controller)),
                    ("eib", Json::Num(r.eib)),
                ]),
            ),
            ("method", method),
        ])
    }
}

/// A full rare-event campaign.
#[derive(Debug, Clone)]
pub struct RareCampaignSpec {
    /// Campaign name (also the default artifact file stem).
    pub name: String,
    /// One-line description for the artifact manifest.
    pub description: String,
    /// Master seed; every cell's RNG stream derives from it.
    pub master_seed: u64,
    /// The grid.
    pub cells: Vec<RareCellSpec>,
}

impl RareCampaignSpec {
    /// Panic on malformed specs (empty grid, duplicate ids, bad cells).
    pub fn validate(&self) {
        assert!(!self.cells.is_empty(), "campaign {:?} empty", self.name);
        let mut ids = std::collections::HashSet::new();
        for (i, cell) in self.cells.iter().enumerate() {
            cell.validate(i);
            assert!(
                ids.insert(cell.id.as_str()),
                "duplicate cell id {:?}",
                cell.id
            );
        }
    }

    /// Canonical JSON manifest: name, seed, and every cell.
    pub fn manifest(&self) -> Json {
        Json::obj(vec![
            ("name", Json::Str(self.name.clone())),
            ("description", Json::Str(self.description.clone())),
            ("master_seed", Json::Num(self.master_seed as f64)),
            (
                "cells",
                Json::Arr(self.cells.iter().map(|c| c.manifest()).collect()),
            ),
        ])
    }

    /// FNV-1a digest of the compact manifest (same scheme as
    /// [`crate::spec::CampaignSpec::digest`]).
    pub fn digest(&self) -> String {
        let text = self.manifest().to_string_compact();
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in text.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        format!("{h:016x}")
    }
}

/// Knobs for one rare-engine invocation (none may affect results).
#[derive(Debug, Clone, Default)]
pub struct RareRunOptions {
    /// Worker threads (0 ⇒ pool default, 1 ⇒ serial).
    pub workers: usize,
    /// Artifact path; `None` runs in memory.
    pub out: Option<PathBuf>,
    /// Suppress progress lines on stderr.
    pub quiet: bool,
}

/// What one rare-engine invocation produced.
#[derive(Debug)]
pub struct RareOutcome {
    /// The complete artifact.
    pub artifact: Json,
    /// Where it was written (when `out` was set).
    pub artifact_path: Option<PathBuf>,
    /// Cells whose estimator panicked (recorded as error cells).
    pub failed: usize,
}

/// Execute a rare-event campaign. Cells are embarrassingly parallel
/// and fast (minutes at worst), so there is no checkpoint/resume — the
/// artifact is assembled in memory and written atomically.
pub fn run(spec: &RareCampaignSpec, opts: &RareRunOptions) -> std::io::Result<RareOutcome> {
    spec.validate();
    let workers = if opts.workers == 0 {
        crate::pool::default_workers()
    } else {
        opts.workers
    };
    let pool = WorkerPool::new(workers);
    let indices: Vec<usize> = (0..spec.cells.len()).collect();
    let quiet = opts.quiet;
    let outcomes = pool.try_map(indices.clone(), |&i| {
        let cell_json = run_cell(spec, i);
        if !quiet {
            eprintln!("  cell {i} ({}) done", spec.cells[i].id);
        }
        cell_json
    });

    let mut failed = 0;
    let mut done: BTreeMap<usize, Json> = BTreeMap::new();
    for (idx, outcome) in indices.iter().zip(outcomes) {
        let cell_json = match outcome {
            Ok(j) => j,
            Err(p) => {
                failed += 1;
                Json::obj(vec![
                    ("cell", Json::Num(indices[p.index] as f64)),
                    ("id", Json::Str(spec.cells[indices[p.index]].id.clone())),
                    ("error", Json::Str(p.message.clone())),
                ])
            }
        };
        done.insert(*idx, cell_json);
    }

    let artifact = Json::obj(vec![
        ("format", Json::Str(RARE_ARTIFACT_FORMAT.into())),
        ("digest", Json::Str(spec.digest())),
        ("spec", spec.manifest()),
        ("cells", Json::Arr(done.into_values().collect())),
    ]);
    let mut artifact_path = None;
    if let Some(out) = &opts.out {
        write_atomic(out, &artifact.to_string_pretty())?;
        artifact_path = Some(out.clone());
    }
    Ok(RareOutcome {
        artifact,
        artifact_path,
        failed,
    })
}

fn write_atomic(path: &Path, text: &str) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            fs::create_dir_all(dir)?;
        }
    }
    let mut tmp_name = path.file_name().unwrap_or_default().to_os_string();
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(text.as_bytes())?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)
}

/// `Num` for finite values, `Null` otherwise (a brute-force cell at
/// paper rates legitimately reports an infinite MTTF).
fn fin(v: f64) -> Json {
    if v.is_finite() {
        Json::Num(v)
    } else {
        Json::Null
    }
}

/// Run one cell: estimator + exact oracle + coverage verdicts.
fn run_cell(spec: &RareCampaignSpec, index: usize) -> Json {
    let cell = &spec.cells[index];
    let seed = derive_seed(spec.master_seed, index as u64, 0, Stream::Simulation);
    let cfg = RareConfig {
        n: cell.n,
        m: cell.m,
        rates: cell.rates,
        mu: cell.mu,
        cycles: cell.cycles,
        seed,
    };
    let est = estimate(&cfg, cell.method);
    let oracle = markov_oracle(cell.n, cell.m, &cell.rates, cell.mu);

    // Coverage verdict: the CI (or the zero-event upper bound) must
    // bracket the exact answer from above, and the lower CI edge must
    // not exceed it. Both are deterministic given the spec, so a
    // `false` here is a reproducible estimator bug, not flake.
    let within_ci = oracle.unavailability <= est.upper_bound()
        && oracle.unavailability >= est.unavailability - est.ci_half;
    // The MTTF verdict only applies when the estimator saw a down
    // event at all; an infinite estimate is "no verdict", not a miss.
    let mttf_within_ci = est
        .mttf_h
        .is_finite()
        .then(|| (oracle.mttf_h - est.mttf_h).abs() <= est.mttf_ci_half);

    let iv = nines_interval(
        est.unavailability,
        est.zero_event_upper.unwrap_or(est.ci_half),
    );
    let mut est_fields = vec![
        ("unavailability", Json::Num(est.unavailability)),
        ("ci95", Json::Num(est.ci_half)),
        ("rel_ci", fin(est.rel_ci())),
        ("nines", Json::Str(format_nines_interval(&iv))),
        ("gamma", Json::Num(est.gamma)),
        ("mean_cycle_h", Json::Num(est.mean_cycle_h)),
        ("mttf_h", fin(est.mttf_h)),
        ("mttf_ci95", fin(est.mttf_ci_half)),
        ("cycles", Json::Num(est.cycles as f64)),
        ("jumps", Json::Num(est.jumps as f64)),
    ];
    if let Some(u) = est.zero_event_upper {
        est_fields.push(("zero_event_upper", Json::Num(u)));
    }

    Json::obj(vec![
        ("cell", Json::Num(index as f64)),
        ("id", Json::Str(cell.id.clone())),
        ("method", Json::Str(cell.method.name().into())),
        ("estimate", Json::obj(est_fields)),
        (
            "markov",
            Json::obj(vec![
                ("states", Json::Num(oracle.states as f64)),
                ("unavailability", Json::Num(oracle.unavailability)),
                ("mttf_h", Json::Num(oracle.mttf_h)),
                ("within_ci", Json::Bool(within_ci)),
                (
                    "mttf_within_ci",
                    mttf_within_ci.map(Json::Bool).unwrap_or(Json::Null),
                ),
            ]),
        ),
    ])
}

/// Structural + statistical validation of a `dra-rareevent/v1`
/// artifact. Returns `(cells, misses)` where `misses` counts cells
/// whose CI failed to cover the exact Markov answer (plus error
/// cells). Used by `campaign --check` and the CI smoke job.
pub fn validate_rare_artifact(text: &str) -> Result<(usize, usize), String> {
    let doc = parse(text).map_err(|e| e.to_string())?;
    if doc.get("format").and_then(Json::as_str) != Some(RARE_ARTIFACT_FORMAT) {
        return Err(format!(
            "format is {:?}, expected {RARE_ARTIFACT_FORMAT:?}",
            doc.get("format")
        ));
    }
    doc.get("digest")
        .and_then(Json::as_str)
        .filter(|d| d.len() == 16)
        .ok_or("missing/malformed digest")?;
    let spec_cells = doc
        .get("spec")
        .and_then(|s| s.get("cells"))
        .and_then(Json::as_arr)
        .ok_or("spec manifest has no cells")?;
    let cells = doc
        .get("cells")
        .and_then(Json::as_arr)
        .ok_or("missing cells array")?;
    if cells.len() != spec_cells.len() {
        return Err(format!(
            "artifact has {} cells but the spec declares {}",
            cells.len(),
            spec_cells.len()
        ));
    }
    let mut misses = 0;
    for (i, cell) in cells.iter().enumerate() {
        let idx = cell
            .get("cell")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("cell {i}: missing index"))?;
        if idx != i as u64 {
            return Err(format!("cell {i}: out of order (index {idx})"));
        }
        cell.get("id")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("cell {i}: missing id"))?;
        if cell.get("error").is_some() {
            misses += 1;
            continue;
        }
        let u = cell
            .get("estimate")
            .and_then(|e| e.get("unavailability"))
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("cell {i}: missing estimate.unavailability"))?;
        if !(0.0..=1.0).contains(&u) {
            return Err(format!("cell {i}: unavailability {u} outside [0,1]"));
        }
        let exact = cell
            .get("markov")
            .and_then(|m| m.get("unavailability"))
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("cell {i}: missing markov.unavailability"))?;
        if !(0.0..=1.0).contains(&exact) {
            return Err(format!("cell {i}: exact unavailability out of range"));
        }
        match cell.get("markov").and_then(|m| m.get("within_ci")) {
            Some(Json::Bool(true)) => {}
            Some(Json::Bool(false)) => misses += 1,
            _ => return Err(format!("cell {i}: missing markov.within_ci")),
        }
    }
    Ok((cells.len(), misses))
}

/// Registry of built-in rare-event specs (the `--spec` names the
/// `campaign` binary falls back to after [`crate::registry`]).
pub const RARE_ENTRIES: [crate::registry::Entry; 2] = [
    crate::registry::Entry {
        name: "rareevent",
        summary: "splitting vs likelihood-ratio vs brute-force \
                  unavailability estimates at the paper's real rates, \
                  each cell cross-checked against the exact Markov model",
    },
    crate::registry::Entry {
        name: "rareevent-quick",
        summary: "CI reduction of the rareevent grid (2 configs, \
                  smaller cycle budgets)",
    },
];

/// Build a built-in rare-event spec by name. `quick` shrinks the grid
/// (and `"rareevent-quick"` is an alias for `("rareevent", quick)`).
pub fn build(name: &str, quick: bool) -> Option<RareCampaignSpec> {
    match name {
        "rareevent" => Some(rareevent(quick)),
        "rareevent-quick" => Some(rareevent(true)),
        _ => None,
    }
}

/// The rareevent grid: paper configurations × the three estimators at
/// the paper's real (uninflated) failure rates and 3-hour repair.
fn rareevent(quick: bool) -> RareCampaignSpec {
    let configs: &[(usize, usize)] = if quick {
        &[(3, 2), (5, 3)]
    } else {
        &[(3, 2), (5, 3), (9, 4), (16, 8)]
    };
    // Cycle budgets per method, sized so every estimator's CI (or
    // zero-event bound) covers the exact answer with headroom: the
    // biased estimators get live CIs, brute force at these rates sees
    // nothing and must fall back to its rule-of-three bound.
    let (brute, bfb, split) = if quick {
        (20_000, 30_000, 60_000)
    } else {
        (200_000, 200_000, 150_000)
    };
    let methods = [
        (RareMethod::FailureBiasing { bias: 0.5 }, bfb),
        (RareMethod::Splitting { clones: 100 }, split),
        (RareMethod::BruteForce, brute),
    ];
    let mut cells = Vec::new();
    for &(n, m) in configs {
        for (method, cycles) in methods {
            cells.push(RareCellSpec {
                id: format!("{}/n{n}m{m}", method.name()),
                n,
                m,
                rates: FailureRates::PAPER,
                mu: 1.0 / 3.0,
                cycles,
                method,
            });
        }
    }
    RareCampaignSpec {
        name: if quick {
            "rareevent-quick"
        } else {
            "rareevent"
        }
        .into(),
        description: "rare-event unavailability estimators vs the exact \
                      Markov model at the paper's real rates (mu = 1/3)"
            .into(),
        master_seed: 0xDA7A_5EED,
        cells,
    }
}

/// Print the artifact as the shared ASCII table (the rare-event
/// counterpart of [`crate::report::artifact_table`]).
pub fn print_rare_table(artifact: &Json) {
    let cells = artifact.get("cells").and_then(Json::as_arr).unwrap_or(&[]);
    let fmt = |v: Option<&Json>| match v.and_then(Json::as_f64) {
        Some(x) => format!("{x:.3e}"),
        None => "-".into(),
    };
    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            if let Some(err) = c.get("error").and_then(Json::as_str) {
                let id = c.get("id").and_then(Json::as_str).unwrap_or("?");
                let mut row = vec![id.to_string(), format!("ERROR: {err}")];
                row.resize(6, String::new());
                return row;
            }
            let est = c.get("estimate");
            let mk = c.get("markov");
            vec![
                c.get("id").and_then(Json::as_str).unwrap_or("?").into(),
                fmt(est.and_then(|e| e.get("unavailability"))),
                fmt(est.and_then(|e| e.get("ci95"))),
                est.and_then(|e| e.get("nines"))
                    .and_then(Json::as_str)
                    .unwrap_or("-")
                    .into(),
                fmt(mk.and_then(|m| m.get("unavailability"))),
                match mk.and_then(|m| m.get("within_ci")) {
                    Some(Json::Bool(true)) => "yes".into(),
                    Some(Json::Bool(false)) => "MISS".into(),
                    _ => "-".into(),
                },
            ]
        })
        .collect();
    print_table(
        "rare-event estimates vs exact Markov",
        &["cell", "U", "ci95", "nines", "exact U", "in CI"],
        &rows,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> RareCampaignSpec {
        // Inflated rates keep the unit tests fast while still
        // exercising every estimator path (including cloning).
        let rates = dra_core::montecarlo::inflated_rates(1000.0);
        let mk = |id: &str, method| RareCellSpec {
            id: id.into(),
            n: 3,
            m: 2,
            rates,
            mu: 1.0 / 3.0,
            cycles: 4_000,
            method,
        };
        RareCampaignSpec {
            name: "t".into(),
            description: "unit".into(),
            master_seed: 11,
            cells: vec![
                mk("bfb", RareMethod::FailureBiasing { bias: 0.5 }),
                mk("split", RareMethod::Splitting { clones: 20 }),
                mk("brute", RareMethod::BruteForce),
            ],
        }
    }

    #[test]
    fn digest_is_stable_and_sensitive() {
        let spec = tiny_spec();
        let d = spec.digest();
        assert_eq!(d.len(), 16);
        let mut other = spec.clone();
        other.master_seed ^= 1;
        assert_ne!(d, other.digest());
        let mut other = spec;
        other.cells[0].method = RareMethod::FailureBiasing { bias: 0.7 };
        assert_ne!(d, other.digest(), "method knobs must change the digest");
    }

    #[test]
    fn run_produces_valid_artifact_and_cis_cover() {
        let out = run(&tiny_spec(), &RareRunOptions::default()).unwrap();
        assert_eq!(out.failed, 0);
        let text = out.artifact.to_string_pretty();
        let (cells, misses) = validate_rare_artifact(&text).unwrap();
        assert_eq!(cells, 3);
        assert_eq!(misses, 0, "a CI missed the exact answer:\n{text}");
    }

    #[test]
    fn artifact_independent_of_worker_count() {
        let spec = tiny_spec();
        let at = |workers| {
            run(
                &spec,
                &RareRunOptions {
                    workers,
                    ..Default::default()
                },
            )
            .unwrap()
            .artifact
            .to_string_pretty()
        };
        assert_eq!(at(1), at(4));
    }

    #[test]
    fn registry_builds_and_validates() {
        for entry in RARE_ENTRIES {
            let spec = build(entry.name, false).expect(entry.name);
            spec.validate();
            assert!(!spec.cells.is_empty());
        }
        assert!(
            build("rareevent", true).unwrap().cells.len()
                < build("rareevent", false).unwrap().cells.len()
        );
        assert!(build("nope", false).is_none());
    }

    #[test]
    fn validate_rejects_wrong_format() {
        assert!(validate_rare_artifact("{\"format\":\"dra-campaign/v1\"}").is_err());
        assert!(validate_rare_artifact("nope").is_err());
    }
}
