//! Built-in campaign specs.
//!
//! Each entry is a constructor, not data: specs embed full router
//! configs and scenario timelines, so they are built on demand (with
//! the `--quick` CI reduction applied at construction time).

use crate::spec::{Arch, CampaignSpec, CellSpec, ScenarioTemplate};
use dra_core::montecarlo::inflated_rates;
use dra_core::scenario::{Action, FaultProcess, Scenario};
use dra_router::bdr::BdrConfig;
use dra_router::components::ComponentKind;
use dra_router::faults::{FaultGranularity, FaultInjector};

/// A registry entry.
#[derive(Debug, Clone, Copy)]
pub struct Entry {
    /// Spec name (the `--spec` argument).
    pub name: &'static str,
    /// One-line summary for `--list`.
    pub summary: &'static str,
}

/// Every built-in spec.
pub const ENTRIES: [Entry; 2] = [
    Entry {
        name: "faceoff",
        summary: "BDR vs DRA under randomized fault/repair schedules \
                  across a load sweep (the headline comparison)",
    },
    Entry {
        name: "fig8",
        summary: "deterministic SRU-failure grid behind the Figure-8 \
                  validation (loads x X_faulty, both architectures)",
    },
];

/// Build a built-in spec by name. `quick` shrinks the grid for CI.
pub fn build(name: &str, quick: bool) -> Option<CampaignSpec> {
    match name {
        "faceoff" => Some(faceoff(quick)),
        "fig8" => Some(fig8(quick)),
        _ => None,
    }
}

/// The faceoff grid axes, exposed so refactored callers (the
/// fault-injection example) can label cells without re-deriving them.
pub fn faceoff_loads(quick: bool) -> &'static [f64] {
    if quick {
        &[0.25]
    } else {
        &[0.15, 0.3, 0.5]
    }
}

/// BDR vs DRA under sampled fault schedules.
///
/// Both architectures replay the *identical* sampled timelines (same
/// `seed_group` per load), the apples-to-apples contrast the live
/// `FaultInjector` hook could only approximate statistically. Rates
/// are inflated x1000 and time compressed so failures actually land
/// inside a packet-simulation horizon.
fn faceoff(quick: bool) -> CampaignSpec {
    let loads = faceoff_loads(quick);
    let replications = if quick { 2 } else { 4 };
    let horizon_s = if quick { 10e-3 } else { 40e-3 };
    let process = FaultProcess {
        injector: {
            let mut inj = FaultInjector::new(3.0, FaultGranularity::PerComponent);
            inj.rates = inflated_rates(1000.0);
            inj
        },
        // 50 inflated-rate hours of fault process per 4 ms simulated.
        delay_scale: 4e-3 / 50.0,
        repair: true,
    };
    let mut cells = Vec::new();
    for (group, &load) in loads.iter().enumerate() {
        for arch in [Arch::Bdr, Arch::Dra] {
            cells.push(CellSpec {
                id: format!("{}/load{:02}", arch.name(), (load * 100.0).round() as u32),
                arch,
                config: BdrConfig {
                    n_lcs: 6,
                    load,
                    ..BdrConfig::default()
                },
                scenario: ScenarioTemplate::Sampled {
                    process: process.clone(),
                    horizon_s,
                },
                replications,
                measure_from_s: 0.0,
                seed_group: group as u64,
            });
        }
    }
    CampaignSpec {
        name: "faceoff".into(),
        description: "BDR vs DRA delivery under identical randomized \
                      fault/repair schedules (rates x1000, time-compressed)"
            .into(),
        master_seed: 2026,
        cells,
    }
}

/// The fig8 grid axes `(loads, x_faulty values)`.
pub fn fig8_grid(quick: bool) -> (&'static [f64], &'static [usize]) {
    if quick {
        (&[0.15, 0.7], &[1, 5])
    } else {
        (&[0.15, 0.3, 0.5, 0.7], &[1, 2, 3, 4, 5])
    }
}

/// Warmup before the SRU failures (and the measurement-window start).
pub const FIG8_WARMUP_S: f64 = 2e-3;
/// Simulated horizon of each fig8 cell.
pub const FIG8_HORIZON_S: f64 = 8e-3;
/// Linecard count of the fig8 grid.
pub const FIG8_N_LCS: usize = 6;

/// The deterministic grid behind `repro-validate` part 2: fail the
/// SRUs of the first `x` of 6 cards at warmup, measure the
/// post-failure window. Cells come in (DRA, BDR) pairs per grid point
/// sharing a `seed_group`, so both architectures see identical
/// offered traffic.
fn fig8(quick: bool) -> CampaignSpec {
    let (loads, xs) = fig8_grid(quick);
    let mut cells = Vec::new();
    for (li, &load) in loads.iter().enumerate() {
        for (xi, &x) in xs.iter().enumerate() {
            let mut scenario = Scenario::new(FIG8_HORIZON_S);
            for lc in 0..x as u16 {
                scenario =
                    scenario.at(FIG8_WARMUP_S, Action::FailComponent(lc, ComponentKind::Sru));
            }
            for arch in [Arch::Dra, Arch::Bdr] {
                cells.push(CellSpec {
                    id: format!(
                        "{}/load{:02}/x{x}",
                        arch.name(),
                        (load * 100.0).round() as u32
                    ),
                    arch,
                    config: BdrConfig {
                        n_lcs: FIG8_N_LCS,
                        load,
                        ..BdrConfig::default()
                    },
                    scenario: ScenarioTemplate::Explicit(scenario.clone()),
                    replications: 1,
                    measure_from_s: FIG8_WARMUP_S,
                    seed_group: (li * xs.len() + xi) as u64,
                });
            }
        }
    }
    CampaignSpec {
        name: "fig8".into(),
        description: "faulty-LC delivery fraction vs the Figure-8 \
                      closed form: SRU failures at warmup, windowed \
                      measurement (N=6)"
            .into(),
        master_seed: 0xF18,
        cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_entry_builds_and_validates() {
        for entry in ENTRIES {
            for quick in [false, true] {
                let spec = build(entry.name, quick).expect(entry.name);
                spec.validate();
                assert_eq!(spec.name, entry.name);
                assert!(!spec.cells.is_empty());
            }
        }
        assert!(build("nope", false).is_none());
    }

    #[test]
    fn quick_grids_are_smaller() {
        for entry in ENTRIES {
            let full = build(entry.name, false).unwrap();
            let quick = build(entry.name, true).unwrap();
            assert!(quick.cells.len() < full.cells.len(), "{}", entry.name);
        }
    }

    #[test]
    fn faceoff_pairs_share_seed_groups_across_archs() {
        let spec = build("faceoff", true).unwrap();
        for pair in spec.cells.chunks(2) {
            assert_eq!(pair[0].seed_group, pair[1].seed_group);
            assert_ne!(pair[0].arch, pair[1].arch);
        }
    }

    #[test]
    fn fig8_matches_validate_grid_shape() {
        let (loads, xs) = fig8_grid(false);
        let spec = build("fig8", false).unwrap();
        assert_eq!(spec.cells.len(), loads.len() * xs.len() * 2);
        // Pairs are (DRA, BDR) in grid order.
        assert!(spec.cells[0].id.starts_with("dra/"));
        assert!(spec.cells[1].id.starts_with("bdr/"));
    }
}
