//! Text reporting: aligned tables and grep-friendly CSV.
//!
//! Promoted from `dra-bench` (which now re-exports these) so the
//! `campaign` CLI and the repro binaries share one formatter.

use crate::json::Json;

/// Print an aligned text table to stdout.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let parts: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect();
        println!("  {}", parts.join("  "));
    };
    line(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    line(
        &widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<String>>(),
    );
    for row in rows {
        line(row);
    }
}

/// Print the same data as CSV lines (prefixed `csv:` for easy grep).
pub fn print_csv(headers: &[&str], rows: &[Vec<String>]) {
    println!("csv:{}", headers.join(","));
    for row in rows {
        println!("csv:{}", row.join(","));
    }
}

/// Render a finished artifact's cells as a summary table.
pub fn artifact_table(artifact: &Json) -> (Vec<&'static str>, Vec<Vec<String>>) {
    let headers = vec![
        "cell", "id", "arch", "reps", "delivery", "ci95", "drops", "eib pkts",
    ];
    let mut rows = Vec::new();
    if let Some(cells) = artifact.get("cells").and_then(Json::as_arr) {
        for cell in cells {
            let idx = cell
                .get("cell")
                .and_then(Json::as_u64)
                .map(|v| v.to_string())
                .unwrap_or_default();
            let id = cell
                .get("id")
                .and_then(Json::as_str)
                .unwrap_or("?")
                .to_string();
            if let Some(err) = cell.get("error").and_then(Json::as_str) {
                rows.push(vec![
                    idx,
                    id,
                    "-".into(),
                    "-".into(),
                    format!("ERROR: {err}"),
                    String::new(),
                    String::new(),
                    String::new(),
                ]);
                continue;
            }
            let arch = cell
                .get("arch")
                .and_then(Json::as_str)
                .unwrap_or("?")
                .to_string();
            let reps = cell
                .get("replications")
                .and_then(Json::as_u64)
                .map(|v| v.to_string())
                .unwrap_or_default();
            let delivery = cell.get("delivery");
            let mean = delivery
                .and_then(|d| d.get("mean"))
                .and_then(Json::as_f64)
                .map(|v| format!("{:.2}%", v * 100.0))
                .unwrap_or_default();
            let ci = delivery
                .and_then(|d| d.get("ci95"))
                .and_then(Json::as_f64)
                .map(|v| format!("±{:.2}%", v * 100.0))
                .unwrap_or_default();
            let total_drops: f64 = cell
                .get("drops")
                .map(|d| match d {
                    Json::Obj(pairs) => pairs.iter().filter_map(|(_, v)| v.as_f64()).sum(),
                    _ => 0.0,
                })
                .unwrap_or(0.0);
            let eib = cell
                .get("eib")
                .and_then(|e| e.get("packets"))
                .and_then(Json::as_u64)
                .map(|v| v.to_string())
                .unwrap_or_default();
            rows.push(vec![
                idx,
                id,
                arch,
                reps,
                mean,
                ci,
                format!("{total_drops:.0}"),
                eib,
            ]);
        }
    }
    (headers, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifact_table_handles_error_cells() {
        let artifact = crate::json::parse(
            r#"{"cells":[
                {"cell":0,"id":"dra/a","arch":"dra","replications":2,
                 "delivery":{"n":2,"mean":0.97,"ci95":0.01},
                 "drops":{"x":3,"y":4},"eib":{"packets":12}},
                {"cell":1,"id":"dra/b","error":"boom"}
            ]}"#,
        )
        .unwrap();
        let (headers, rows) = artifact_table(&artifact);
        assert_eq!(headers.len(), 8);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][4], "97.00%");
        assert_eq!(rows[0][6], "7");
        assert!(rows[1][4].contains("boom"));
    }
}
