//! SplitMix64-style seed derivation.
//!
//! Every replication of every cell gets its own RNG stream derived
//! *structurally* from `(master_seed, cell_index, replication,
//! stream)` — never from thread ids, scheduling order, or wall-clock —
//! so campaign results are bit-identical for 1 worker and N workers.
//!
//! The derivation hashes each coordinate into the state with a
//! SplitMix64 step per word. SplitMix64 is a bijective avalanche mix,
//! so distinct coordinate tuples map to distinct, decorrelated seeds;
//! neighbouring cells or replications share no low-bit structure the
//! way `master + index` would.

/// Sub-stream labels within one replication.
///
/// Keeping traffic and fault sampling on separate derived streams
/// means "same seed ⇒ byte-identical offered traffic" holds even when
/// two cells differ only in their fault schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stream {
    /// Drives the packet simulator (traffic, service, backoff).
    Simulation,
    /// Drives fault-schedule sampling.
    Faults,
}

impl Stream {
    fn tag(self) -> u64 {
        match self {
            Stream::Simulation => 0x51D0,
            Stream::Faults => 0xFA17,
        }
    }
}

/// One SplitMix64 output step.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Fold `word` into `state` with full avalanche.
#[inline]
fn absorb(state: u64, word: u64) -> u64 {
    let mut s = state ^ word.wrapping_mul(0x2545_F491_4F6C_DD1D);
    splitmix64(&mut s)
}

/// Derive the RNG seed for `(cell_index, replication)` under `master`.
pub fn derive_seed(master: u64, cell_index: u64, replication: u64, stream: Stream) -> u64 {
    let mut s = master;
    s = absorb(s, 0xD8A_CA3B); // domain separator for this scheme, v1
    s = absorb(s, cell_index);
    s = absorb(s, replication);
    s = absorb(s, stream.tag());
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivation_is_stable() {
        // Pinned values: the artifact format documents this scheme, so
        // a silent change must fail a test.
        let a = derive_seed(0, 0, 0, Stream::Simulation);
        let b = derive_seed(0, 0, 0, Stream::Simulation);
        assert_eq!(a, b);
        assert_eq!(a, 0xaaffb9517c35ab62, "seed-derivation scheme changed");
    }

    #[test]
    fn coordinates_are_independent() {
        let base = derive_seed(1, 2, 3, Stream::Simulation);
        assert_ne!(base, derive_seed(2, 2, 3, Stream::Simulation));
        assert_ne!(base, derive_seed(1, 3, 3, Stream::Simulation));
        assert_ne!(base, derive_seed(1, 2, 4, Stream::Simulation));
        assert_ne!(base, derive_seed(1, 2, 3, Stream::Faults));
    }

    #[test]
    fn no_collisions_on_a_campaign_sized_grid() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for cell in 0..64 {
            for rep in 0..64 {
                for stream in [Stream::Simulation, Stream::Faults] {
                    assert!(
                        seen.insert(derive_seed(42, cell, rep, stream)),
                        "collision at cell {cell} rep {rep}"
                    );
                }
            }
        }
    }

    #[test]
    fn swapped_coordinates_do_not_collide() {
        // (cell=5, rep=9) vs (cell=9, rep=5) — a plain xor of
        // coordinates would collide here.
        assert_ne!(
            derive_seed(7, 5, 9, Stream::Simulation),
            derive_seed(7, 9, 5, Stream::Simulation)
        );
    }
}
