//! Campaign specifications: the declarative description of an
//! experiment grid.
//!
//! A [`CampaignSpec`] is a list of [`CellSpec`]s — one cell per
//! (architecture, router config, scenario, replication count) point —
//! plus a single master seed. Everything stochastic about a campaign
//! derives from the spec: per-replication RNG streams come from
//! `(master_seed, seed_group, replication)` via [`crate::seed`], so a
//! spec pins its results bit-for-bit regardless of worker count.
//!
//! The spec also renders a canonical JSON *manifest* of itself; its
//! FNV-1a digest stamps checkpoints and artifacts so a resume against
//! an edited spec is rejected instead of producing a franken-artifact.

use crate::json::Json;
use dra_core::scenario::{Action, FaultProcess, Scenario};
use dra_router::bdr::BdrConfig;

/// Which router architecture a cell runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arch {
    /// The baseline bus/crossbar router.
    Bdr,
    /// The paper's dependable router (EIB + coverage).
    Dra,
}

impl Arch {
    /// Stable lowercase name used in ids and artifacts.
    pub fn name(self) -> &'static str {
        match self {
            Arch::Bdr => "bdr",
            Arch::Dra => "dra",
        }
    }
}

/// How a cell obtains its fault timeline.
#[derive(Debug, Clone)]
pub enum ScenarioTemplate {
    /// A fixed, fully scripted timeline (every replication replays
    /// it; replications then only vary the traffic stream).
    Explicit(Scenario),
    /// Sample a fresh random timeline per replication from a fault
    /// process, on the replication's dedicated `Faults` RNG stream.
    Sampled {
        /// The fault/repair process to sample from.
        process: FaultProcess,
        /// Simulated horizon of each sampled timeline (seconds).
        horizon_s: f64,
    },
}

impl ScenarioTemplate {
    /// The simulated horizon of timelines this template produces.
    pub fn horizon_s(&self) -> f64 {
        match self {
            ScenarioTemplate::Explicit(s) => s.horizon(),
            ScenarioTemplate::Sampled { horizon_s, .. } => *horizon_s,
        }
    }
}

/// One grid point of a campaign.
#[derive(Debug, Clone)]
pub struct CellSpec {
    /// Human-readable cell id, unique within the campaign
    /// (e.g. `"dra/load30/x2"`).
    pub id: String,
    /// Architecture under test.
    pub arch: Arch,
    /// Router configuration. `faults` must be `None`: campaigns drive
    /// all fault injection through the scenario timeline so both
    /// architectures replay identical failure histories.
    pub config: BdrConfig,
    /// Fault timeline source.
    pub scenario: ScenarioTemplate,
    /// Independent replications (≥ 1).
    pub replications: usize,
    /// Metrics window start (seconds); 0.0 measures the whole run.
    /// Aggregated delivery ratios and per-LC byte counts cover
    /// `[measure_from_s, horizon]` only — full-run counters (drops,
    /// EIB totals) are reported alongside.
    pub measure_from_s: f64,
    /// Seed-derivation group. Cells sharing a group (and replication
    /// index) draw *identical* RNG streams — give a BDR cell and its
    /// DRA twin the same group and they see byte-identical offered
    /// traffic and fault timelines, the paper's apples-to-apples
    /// comparison made exact.
    pub seed_group: u64,
}

impl CellSpec {
    fn validate(&self, index: usize) {
        assert!(self.replications >= 1, "cell {index}: replications < 1");
        assert!(
            self.config.faults.is_none(),
            "cell {index} ({}): set faults via the scenario template, \
             not BdrConfig::faults",
            self.id
        );
        let horizon = self.scenario.horizon_s();
        assert!(
            (0.0..=horizon).contains(&self.measure_from_s),
            "cell {index} ({}): measure_from {} outside [0, {horizon}]",
            self.id,
            self.measure_from_s
        );
    }

    /// Canonical JSON description (everything that affects results).
    pub fn manifest(&self) -> Json {
        let cfg = &self.config;
        let protocols: Vec<Json> = (0..cfg.n_lcs)
            .map(|lc| Json::Str(format!("{:?}", cfg.protocol_of(lc)).to_lowercase()))
            .collect();
        Json::obj(vec![
            ("id", Json::Str(self.id.clone())),
            ("arch", Json::Str(self.arch.name().to_string())),
            ("seed_group", Json::Num(self.seed_group as f64)),
            ("replications", Json::Num(self.replications as f64)),
            ("measure_from_s", Json::Num(self.measure_from_s)),
            (
                "config",
                Json::obj(vec![
                    ("n_lcs", Json::Num(cfg.n_lcs as f64)),
                    ("load", Json::Num(cfg.load)),
                    ("port_rate_bps", Json::Num(cfg.port_rate_bps)),
                    ("voq_capacity", Json::Num(cfg.voq_capacity as f64)),
                    ("islip_iterations", Json::Num(cfg.islip_iterations as f64)),
                    (
                        "fabric_planes_total",
                        Json::Num(cfg.fabric_planes_total as f64),
                    ),
                    (
                        "fabric_planes_required",
                        Json::Num(cfg.fabric_planes_required as f64),
                    ),
                    ("fabric_speedup", Json::Num(cfg.fabric_speedup)),
                    ("ports_per_lc", Json::Num(cfg.ports_per_lc as f64)),
                    ("reassembly_timeout_s", Json::Num(cfg.reassembly_timeout_s)),
                    ("protocols", Json::Arr(protocols)),
                ]),
            ),
            ("scenario", scenario_manifest(&self.scenario)),
        ])
    }
}

fn scenario_manifest(t: &ScenarioTemplate) -> Json {
    match t {
        ScenarioTemplate::Explicit(s) => {
            let events: Vec<Json> = s
                .events()
                .iter()
                .map(|(at, action)| {
                    Json::Arr(vec![Json::Num(*at), Json::Str(describe_action(action))])
                })
                .collect();
            Json::obj(vec![
                ("type", Json::Str("explicit".into())),
                ("horizon_s", Json::Num(s.horizon())),
                ("events", Json::Arr(events)),
            ])
        }
        ScenarioTemplate::Sampled { process, horizon_s } => {
            let r = &process.injector.rates;
            Json::obj(vec![
                ("type", Json::Str("sampled".into())),
                ("horizon_s", Json::Num(*horizon_s)),
                (
                    "granularity",
                    Json::Str(format!("{:?}", process.injector.granularity).to_lowercase()),
                ),
                (
                    "rates_per_h",
                    Json::obj(vec![
                        ("lc", Json::Num(r.lc)),
                        ("pdlu", Json::Num(r.pdlu)),
                        ("pi_units", Json::Num(r.pi_units)),
                        ("bus_controller", Json::Num(r.bus_controller)),
                        ("eib", Json::Num(r.eib)),
                    ]),
                ),
                ("repair", Json::Bool(process.repair)),
                ("repair_time_h", Json::Num(process.injector.repair_time_h)),
                ("delay_scale", Json::Num(process.delay_scale)),
            ])
        }
    }
}

fn describe_action(a: &Action) -> String {
    match a {
        Action::FailComponent(lc, kind) => {
            format!("fail-lc{lc}-{}", format!("{kind:?}").to_lowercase())
        }
        Action::RepairLc(lc) => format!("repair-lc{lc}"),
        Action::FailEib => "fail-eib".into(),
        Action::RepairEib => "repair-eib".into(),
        Action::FailFabricPlane => "fail-fabric-plane".into(),
        Action::RepairFabricPlane => "repair-fabric-plane".into(),
        Action::AnnounceRoute(p, nh) => format!("announce-{p:?}-via-lc{nh}"),
        Action::WithdrawRoute(p) => format!("withdraw-{p:?}"),
    }
}

/// A full experiment campaign.
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    /// Campaign name (also the default artifact file stem).
    pub name: String,
    /// One-line description for the artifact manifest.
    pub description: String,
    /// Master seed; every RNG stream in the campaign derives from it.
    pub master_seed: u64,
    /// The grid.
    pub cells: Vec<CellSpec>,
}

impl CampaignSpec {
    /// Panic on malformed specs (empty grid, duplicate ids, faulty
    /// cells). Called by the engine before execution.
    pub fn validate(&self) {
        assert!(
            !self.cells.is_empty(),
            "campaign {:?} has no cells",
            self.name
        );
        let mut ids = std::collections::HashSet::new();
        for (i, cell) in self.cells.iter().enumerate() {
            cell.validate(i);
            assert!(
                ids.insert(cell.id.as_str()),
                "duplicate cell id {:?}",
                cell.id
            );
        }
    }

    /// Canonical JSON manifest: name, seed, and every cell.
    pub fn manifest(&self) -> Json {
        Json::obj(vec![
            ("name", Json::Str(self.name.clone())),
            ("description", Json::Str(self.description.clone())),
            ("master_seed", Json::Num(self.master_seed as f64)),
            (
                "cells",
                Json::Arr(self.cells.iter().map(|c| c.manifest()).collect()),
            ),
        ])
    }

    /// FNV-1a digest of the compact manifest, rendered as fixed-width
    /// hex. Stamped into checkpoints and artifacts; a resume whose
    /// digest differs from the checkpoint's is running a different
    /// experiment and is refused.
    pub fn digest(&self) -> String {
        let text = self.manifest().to_string_compact();
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in text.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        format!("{h:016x}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dra_router::components::ComponentKind;

    fn tiny_spec() -> CampaignSpec {
        CampaignSpec {
            name: "t".into(),
            description: "test".into(),
            master_seed: 1,
            cells: vec![CellSpec {
                id: "dra/x".into(),
                arch: Arch::Dra,
                config: BdrConfig {
                    n_lcs: 3,
                    ..BdrConfig::default()
                },
                scenario: ScenarioTemplate::Explicit(
                    Scenario::new(1e-3).at(0.5e-3, Action::FailComponent(0, ComponentKind::Sru)),
                ),
                replications: 1,
                measure_from_s: 0.0,
                seed_group: 0,
            }],
        }
    }

    #[test]
    fn digest_is_stable_and_sensitive() {
        let spec = tiny_spec();
        let d1 = spec.digest();
        assert_eq!(d1, spec.clone().digest());
        assert_eq!(d1.len(), 16);

        let mut other = spec.clone();
        other.master_seed = 2;
        assert_ne!(d1, other.digest(), "seed must change the digest");

        let mut other = spec;
        other.cells[0].replications = 2;
        assert_ne!(d1, other.digest(), "grid shape must change the digest");
    }

    #[test]
    fn manifest_captures_scenario_events() {
        let spec = tiny_spec();
        let m = spec.manifest();
        let cells = m.get("cells").unwrap().as_arr().unwrap();
        let sc = cells[0].get("scenario").unwrap();
        assert_eq!(sc.get("type").unwrap().as_str(), Some("explicit"));
        let ev = sc.get("events").unwrap().as_arr().unwrap();
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].as_arr().unwrap()[1].as_str(), Some("fail-lc0-sru"));
    }

    #[test]
    #[should_panic(expected = "duplicate cell id")]
    fn duplicate_ids_rejected() {
        let mut spec = tiny_spec();
        let dup = spec.cells[0].clone();
        spec.cells.push(dup);
        spec.validate();
    }

    #[test]
    #[should_panic(expected = "not BdrConfig::faults")]
    fn live_fault_injector_rejected() {
        use dra_router::faults::{FaultGranularity, FaultInjector};
        let mut spec = tiny_spec();
        spec.cells[0].config.faults = Some(FaultInjector::new(3.0, FaultGranularity::WholeLc));
        spec.validate();
    }
}
