//! The rare-event artifact determinism contract, end to end: the
//! `dra-rareevent/v1` file written for a spec is **byte-identical** for
//! any worker count. This must hold through the splitting estimator's
//! trajectory-cloning path (whose child RNG streams derive structurally
//! from the cycle seed, never from scheduling), which is why the
//! registry's quick grid — containing a splitting cell per config — is
//! the fixture.

use dra_campaign::rareevent::{build, run, validate_rare_artifact, RareRunOptions};
use std::fs;

#[test]
fn artifact_files_are_byte_identical_across_worker_counts() {
    let spec = build("rareevent", true).expect("quick rareevent spec");
    assert!(
        spec.cells.iter().any(|c| c.id.starts_with("splitting/")),
        "fixture must exercise the cloning path"
    );
    let dir = std::env::temp_dir().join(format!("dra-rare-det-{}", std::process::id()));
    let mut artifacts = Vec::new();
    for workers in [1usize, 2, 4] {
        let path = dir.join(format!("rare-w{workers}.json"));
        let out = run(
            &spec,
            &RareRunOptions {
                workers,
                out: Some(path.clone()),
                quiet: true,
            },
        )
        .expect("campaign runs");
        assert_eq!(out.failed, 0);
        let bytes = fs::read(&path).expect("artifact written");
        artifacts.push((workers, bytes));
    }
    let _ = fs::remove_dir_all(&dir);
    let (_, reference) = &artifacts[0];
    for (workers, bytes) in &artifacts[1..] {
        assert_eq!(
            bytes, reference,
            "artifact at {workers} workers differs from serial run"
        );
    }
    // And the file that came out is a valid, fully CI-covered artifact.
    let text = String::from_utf8(reference.clone()).unwrap();
    let (cells, misses) = validate_rare_artifact(&text).expect("valid artifact");
    assert_eq!(cells, spec.cells.len());
    assert_eq!(misses, 0, "an estimator CI missed the exact answer");
}
