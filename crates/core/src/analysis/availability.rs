//! Figure 7: steady-state availability under a repair process.
//!
//! The repair process returns the system to `(0,0)` from any degraded
//! state at rate μ ("it is assumed to take a fixed amount of time,
//! irrespective of the type and the number of such units" — modelled
//! as a single exponential repair transition per the Markov framework
//! the paper uses).

use super::reliability::{bdr_reliability_model, dra_model, DraParams};
use dra_markov::steady::{steady_state, SteadyMethod};
use dra_router::components::FailureRates;

/// Steady-state availability of a BDR linecard: `μ / (μ + λ_LC)`.
pub fn bdr_availability(rates: &FailureRates, mu: f64) -> f64 {
    assert!(mu > 0.0);
    let model = bdr_reliability_model(rates, Some(mu));
    let pi = steady_state(&model.chain, SteadyMethod::DirectLu).expect("irreducible");
    1.0 - pi[model.failed.index()]
}

/// Steady-state availability of a DRA linecard for the given `(N, M)`
/// and repair rate μ (per hour).
pub fn dra_availability(params: &DraParams, mu: f64) -> f64 {
    assert!(mu > 0.0);
    let p = DraParams {
        repair: Some(mu),
        ..*params
    };
    let model = dra_model(&p);
    let pi = steady_state(&model.chain, SteadyMethod::DirectLu).expect("irreducible");
    1.0 - pi[model.failed.index()]
}

/// DRA availability with an **Erlang-k** repair time (mean `1/μ`).
///
/// The paper assumes a *fixed* repair time but models it exponentially
/// (the Markov framework's constraint). Sweeping `k` interpolates from
/// the exponential (k = 1, identical to [`dra_availability`]) toward
/// the fixed time (k → ∞); ablation A5 shows the figures barely move —
/// the availability table is robust to the distribution assumption.
pub fn dra_availability_erlang(params: &DraParams, mu: f64, k: usize) -> f64 {
    assert!(mu > 0.0 && k >= 1);
    let p = DraParams {
        repair: None,
        ..*params
    };
    let model = dra_model(&p);
    let (expanded, _, images) =
        dra_markov::phase::with_erlang_repair(&model.chain, model.start, mu, k)
            .expect("valid phase expansion");
    let pi = steady_state(&expanded, SteadyMethod::DirectLu).expect("irreducible");
    1.0 - dra_markov::phase::mass_on(&images, model.failed, &pi)
}

/// Mean time between failures and mean down time for the DRA
/// availability model: `MTBF = P(operational) / (flow into F)` and
/// `MDT = P(F) / (flow into F)` at stationarity (both in hours).
///
/// These are the operator-facing decomposition of the availability
/// number: `A = MTBF / (MTBF + MDT)` by construction.
pub fn dra_mtbf_mdt(params: &DraParams, mu: f64) -> (f64, f64) {
    assert!(mu > 0.0);
    let p = DraParams {
        repair: Some(mu),
        ..*params
    };
    let model = dra_model(&p);
    let pi = steady_state(&model.chain, SteadyMethod::DirectLu).expect("irreducible");
    let f = model.failed.index();
    // Stationary probability flow into F.
    let mut flow_in = 0.0;
    for s in model.chain.states() {
        if s.index() == f {
            continue;
        }
        let rate = model.chain.generator().get(s.index(), f);
        flow_in += pi[s.index()] * rate;
    }
    assert!(flow_in > 0.0, "no failure flow; model degenerate");
    let p_f = pi[f];
    ((1.0 - p_f) / flow_in, p_f / flow_in)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::nines::nines;
    use crate::analysis::reliability::ZoneInterBound;

    const MU_3H: f64 = 1.0 / 3.0;
    const MU_12H: f64 = 1.0 / 12.0;

    #[test]
    fn bdr_matches_closed_form_and_paper_nines() {
        let rates = FailureRates::PAPER;
        let a3 = bdr_availability(&rates, MU_3H);
        let closed = MU_3H / (MU_3H + rates.lc);
        assert!((a3 - closed).abs() < 1e-12);
        // Paper: 9^4 for mu = 1/3.
        assert_eq!(nines(a3).0, 4);
        // Paper: 9^3 for mu = 1/12.
        let a12 = bdr_availability(&rates, MU_12H);
        assert_eq!(nines(a12).0, 3);
    }

    #[test]
    fn paper_anchor_dra_m2_n3() {
        // Paper: 9^8 for mu=1/3 and 9^7 for mu=1/12 at (M=2, N=3).
        let p = DraParams::new(3, 2);
        let a3 = dra_availability(&p, MU_3H);
        assert_eq!(nines(a3).0, 8, "got {a3:.12}");
        let a12 = dra_availability(&p, MU_12H);
        assert_eq!(nines(a12).0, 7, "got {a12:.12}");
    }

    #[test]
    fn paper_anchor_saturation_at_m_ge_4() {
        // Paper: availability saturates at 9^9 (mu=1/3) / 9^8 (mu=1/12)
        // for all M >= 4.
        for m in [4, 6, 8] {
            let p = DraParams::new(9, m);
            let a3 = dra_availability(&p, MU_3H);
            assert_eq!(nines(a3).0, 9, "M={m}: got {a3:.14}");
            let a12 = dra_availability(&p, MU_12H);
            assert_eq!(nines(a12).0, 8, "M={m}: got {a12:.14}");
        }
    }

    #[test]
    fn availability_increases_with_m_and_n() {
        let a_small = dra_availability(&DraParams::new(3, 2), MU_3H);
        let a_mid = dra_availability(&DraParams::new(6, 3), MU_3H);
        let a_big = dra_availability(&DraParams::new(9, 5), MU_3H);
        assert!(
            a_small < a_mid && a_mid <= a_big,
            "{a_small} {a_mid} {a_big}"
        );
    }

    #[test]
    fn faster_repair_helps() {
        let p = DraParams::new(6, 3);
        let slow = dra_availability(&p, MU_12H);
        let fast = dra_availability(&p, MU_3H);
        assert!(fast > slow);
    }

    #[test]
    fn dra_always_beats_bdr() {
        for mu in [MU_3H, MU_12H] {
            let bdr = bdr_availability(&FailureRates::PAPER, mu);
            for (n, m) in [(3, 2), (5, 2), (9, 4)] {
                let dra = dra_availability(&DraParams::new(n, m), mu);
                assert!(dra > bdr, "N={n} M={m} mu={mu}: {dra} vs {bdr}");
            }
        }
    }

    #[test]
    fn bound_semantics_barely_move_availability() {
        // The zone-boundary ambiguity is a second-order effect with
        // repair present (multiple pre-failure faults are rare).
        let mk = |bound| {
            dra_availability(
                &DraParams {
                    bound,
                    ..DraParams::new(4, 2)
                },
                MU_3H,
            )
        };
        let ext = mk(ZoneInterBound::Extended);
        let sat = mk(ZoneInterBound::Saturate);
        let tof = mk(ZoneInterBound::ToF);
        assert!((ext - sat).abs() < 1e-6);
        // ToF lets healthy-LC_UA states die, visibly worse but same
        // order of magnitude.
        assert!(tof <= ext);
    }

    #[test]
    fn mtbf_mdt_decomposition_is_consistent() {
        let p = DraParams::new(5, 3);
        let (mtbf, mdt) = dra_mtbf_mdt(&p, MU_3H);
        let a = dra_availability(&p, MU_3H);
        // A = MTBF/(MTBF+MDT) by construction.
        assert!(
            (a - mtbf / (mtbf + mdt)).abs() < 1e-12,
            "decomposition broken: A={a}, MTBF={mtbf}, MDT={mdt}"
        );
        // DRA needs several failures (or the bus) to go down: MTBF far
        // exceeds BDR's 1/lambda = 50 000 h.
        assert!(mtbf > 1e6, "MTBF {mtbf}");
        // Mean down time is on the order of the repair time.
        assert!(mdt > 0.1 && mdt < 10.0, "MDT {mdt}");
    }

    #[test]
    fn mtbf_grows_with_redundancy() {
        let (small, _) = dra_mtbf_mdt(&DraParams::new(3, 2), MU_3H);
        let (big, _) = dra_mtbf_mdt(&DraParams::new(9, 4), MU_3H);
        assert!(big > small, "{big} vs {small}");
    }

    #[test]
    fn erlang_k1_equals_exponential_repair() {
        let p = DraParams::new(5, 3);
        let a_exp = dra_availability(&p, MU_3H);
        let a_k1 = dra_availability_erlang(&p, MU_3H, 1);
        assert!((a_exp - a_k1).abs() < 1e-12, "{a_exp} vs {a_k1}");
    }

    #[test]
    fn repair_distribution_is_second_order() {
        // The headline of ablation A5: moving from exponential toward
        // deterministic repair changes the unavailability by well under
        // an order of magnitude — the paper's nines survive.
        let p = DraParams::new(4, 2);
        let u1 = 1.0 - dra_availability_erlang(&p, MU_3H, 1);
        let u8 = 1.0 - dra_availability_erlang(&p, MU_3H, 8);
        assert!(u8 > 0.0 && u1 > 0.0);
        let ratio = u8 / u1;
        assert!(
            (0.3..=1.05).contains(&ratio),
            "unavailability ratio k=8/k=1 = {ratio}"
        );
        // Less repair-time variance can only help (fewer long outages
        // overlapping second failures), so k=8 must not be worse.
        assert!(u8 <= u1 * 1.001);
    }

    #[test]
    fn transient_availability_approaches_steady_state() {
        let p = DraParams::with_repair(5, 3, MU_3H);
        let model = dra_model(&p);
        let pi0 = model.chain.point_mass(model.start).unwrap();
        let pi_t = dra_markov::transient::transient(
            &model.chain,
            &pi0,
            200_000.0,
            dra_markov::TransientOptions::default(),
        )
        .unwrap();
        let a_t = 1.0 - pi_t[model.failed.index()];
        let a_ss = dra_availability(&DraParams::new(5, 3), MU_3H);
        assert!((a_t - a_ss).abs() < 1e-9, "{a_t} vs {a_ss}");
    }
}
