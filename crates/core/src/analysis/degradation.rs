//! Figure 8: performance degradation under multiple linecard failures
//! (§5.3).
//!
//! Under `X_faulty` failed linecards, each healthy LC offers its spare
//! capacity `ψ = c_LC − L·c_LC` over the EIB; the bandwidth available
//! to a faulty LC is the spare pool divided among the faulty LCs,
//! capped by the EIB data-line capacity `B_BUS` (the `ΣB_faulty ≤
//! B_BUS` constraint), and never more than the faulty LC actually
//! needs (`L·c_LC`).

/// Parameters of the degradation analysis.
#[derive(Debug, Clone, Copy)]
pub struct DegradationParams {
    /// Total linecards `N` (the paper plots `N = 6`).
    pub n: usize,
    /// Per-linecard capacity (the paper: 10 Gbps).
    pub c_lc_bps: f64,
    /// Uniform offered load `L` as a fraction of `c_lc_bps`
    /// (the paper sweeps 0.15–0.7).
    pub load: f64,
    /// EIB data-line capacity `B_BUS`. The paper never binds it in the
    /// plotted range; DESIGN.md fixes the default at 40 Gbps and an
    /// ablation sweeps it.
    pub bus_capacity_bps: f64,
}

impl DegradationParams {
    /// The paper's Figure-8 setup for a given load.
    pub fn paper(load: f64) -> Self {
        DegradationParams {
            n: 6,
            c_lc_bps: 10e9,
            load,
            bus_capacity_bps: 40e9,
        }
    }

    /// Spare bandwidth ψ offered by one healthy LC.
    pub fn psi(&self) -> f64 {
        self.c_lc_bps * (1.0 - self.load)
    }

    /// Bandwidth one faulty LC needs to run at full offered load.
    pub fn required_per_faulty(&self) -> f64 {
        self.c_lc_bps * self.load
    }
}

/// `B_faulty` as a fraction of the required bandwidth, for `x_faulty`
/// simultaneous LC failures — the y-axis of Figure 8 (×100 for %).
///
/// Returns 1.0 (full service) when the spare pool covers the need.
///
/// ```
/// use dra_core::analysis::degradation::{b_faulty_fraction, DegradationParams};
///
/// // The paper's worst case: N=6, 70% load, five faulty cards —
/// // one healthy card's 3 Gbps of spare split five ways against a
/// // 7 Gbps need each.
/// let p = DegradationParams::paper(0.7);
/// assert!((b_faulty_fraction(&p, 5) - 3.0 / 35.0).abs() < 1e-12);
///
/// // At 15% load even five failures are fully covered.
/// let p = DegradationParams::paper(0.15);
/// assert_eq!(b_faulty_fraction(&p, 5), 1.0);
/// ```
///
/// # Panics
/// Panics when `x_faulty` is 0 or ≥ `n` (LC_out is assumed fault-free,
/// so at most `n − 1` cards can be faulty), or when the load is not in
/// (0, 1].
pub fn b_faulty_fraction(p: &DegradationParams, x_faulty: usize) -> f64 {
    assert!(x_faulty >= 1 && x_faulty < p.n, "x_faulty out of range");
    assert!(p.load > 0.0 && p.load <= 1.0, "load out of range");
    let x_nonfaulty = p.n - x_faulty;
    let spare_pool = (x_nonfaulty as f64 * p.psi()).min(p.bus_capacity_bps);
    let per_faulty = spare_pool / x_faulty as f64;
    (per_faulty / p.required_per_faulty()).min(1.0)
}

/// One Figure-8 series: `B_faulty` percentage for `x_faulty = 1..n-1`.
pub fn figure8_series(p: &DegradationParams) -> Vec<(usize, f64)> {
    (1..p.n)
        .map(|x| (x, 100.0 * b_faulty_fraction(p, x)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_anchor_low_load_full_coverage() {
        // L = 15%: "DRA does not suffer from any performance
        // degradation and is able to completely support up to N−1
        // faulty LC's".
        let p = DegradationParams::paper(0.15);
        for x in 1..6 {
            assert_eq!(b_faulty_fraction(&p, x), 1.0, "x={x}");
        }
    }

    #[test]
    fn paper_anchor_worst_case() {
        // L = 70%, X_faulty = 5: "less than 10% of the required
        // capacity".
        let p = DegradationParams::paper(0.7);
        let f = b_faulty_fraction(&p, 5);
        assert!(f < 0.10, "got {f}");
        // Exact: spare = 1 * 3 Gbps; need = 5 * 7 Gbps -> 3/35.
        assert!((f - 3.0 / 35.0).abs() < 1e-12);
    }

    #[test]
    fn degradation_monotone_in_failures_and_load() {
        for &load in &[0.15, 0.3, 0.5, 0.7] {
            let p = DegradationParams::paper(load);
            let series = figure8_series(&p);
            assert_eq!(series.len(), 5);
            for w in series.windows(2) {
                assert!(
                    w[1].1 <= w[0].1 + 1e-9,
                    "load {load}: more failures cannot increase B_faulty"
                );
            }
        }
        // Higher load -> lower fraction at the same x.
        let lo = b_faulty_fraction(&DegradationParams::paper(0.3), 4);
        let hi = b_faulty_fraction(&DegradationParams::paper(0.7), 4);
        assert!(hi <= lo);
    }

    #[test]
    fn larger_n_helps_when_failures_are_few() {
        // Paper: "A larger N results in higher values for B_faulty as
        // long as X_faulty is small".
        let mut p6 = DegradationParams::paper(0.5);
        let mut p12 = DegradationParams::paper(0.5);
        p6.n = 6;
        p12.n = 12;
        // Avoid the bus cap influencing the comparison.
        p6.bus_capacity_bps = f64::INFINITY;
        p12.bus_capacity_bps = f64::INFINITY;
        assert!(b_faulty_fraction(&p12, 2) >= b_faulty_fraction(&p6, 2));
    }

    #[test]
    fn bus_capacity_caps_the_pool() {
        let mut p = DegradationParams::paper(0.15);
        // Tiny bus: even at low load the spare pool can't be delivered.
        p.bus_capacity_bps = 1e9;
        let f = b_faulty_fraction(&p, 1);
        assert!((f - 1e9 / 1.5e9).abs() < 1e-12);
    }

    #[test]
    fn crossover_where_degradation_starts() {
        // At L = 0.5, N = 6: spare pool (n-x)*5 vs need x*5 — full
        // service while x <= 3, degraded beyond.
        let p = DegradationParams::paper(0.5);
        assert_eq!(b_faulty_fraction(&p, 3), 1.0);
        assert!(b_faulty_fraction(&p, 4) < 1.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_failures_rejected() {
        b_faulty_fraction(&DegradationParams::paper(0.5), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn all_failed_rejected() {
        b_faulty_fraction(&DegradationParams::paper(0.5), 6);
    }

    proptest! {
        #[test]
        fn fraction_is_always_in_unit_interval(
            load in 0.01..1.0_f64,
            n in 3usize..16,
            x in 1usize..15,
            bus_gbps in 1.0..100.0_f64,
        ) {
            prop_assume!(x < n);
            let p = DegradationParams {
                n,
                c_lc_bps: 10e9,
                load,
                bus_capacity_bps: bus_gbps * 1e9,
            };
            let f = b_faulty_fraction(&p, x);
            prop_assert!((0.0..=1.0).contains(&f));
        }

        #[test]
        fn delivered_bandwidth_never_exceeds_bus(
            load in 0.01..1.0_f64,
            x in 1usize..6,
            bus_gbps in 1.0..100.0_f64,
        ) {
            let p = DegradationParams {
                n: 6,
                c_lc_bps: 10e9,
                load,
                bus_capacity_bps: bus_gbps * 1e9,
            };
            let f = b_faulty_fraction(&p, x);
            let total = f * p.required_per_faulty() * x as f64;
            prop_assert!(total <= p.bus_capacity_bps + 1e-6);
        }
    }
}
