//! The paper's evaluation (§5), reproduced:
//!
//! * [`reliability`] — the Figure-5 Markov models for BDR and DRA and
//!   the R(t) curves of Figure 6.
//! * [`availability`] — the same models with a repair process and the
//!   steady-state availability table of Figure 7.
//! * [`mod@nines`] — the paper's `9^k x` notation for availability
//!   values.
//! * [`degradation`] — the bandwidth-degradation analysis of Figure 8
//!   (§5.3), including the `B_prom` bus-capacity cap.

pub mod availability;
pub mod degradation;
pub mod nines;
pub mod planner;
pub mod reliability;
pub mod sensitivity;

pub use availability::{bdr_availability, dra_availability};
pub use degradation::{b_faulty_fraction, DegradationParams};
pub use nines::{format_nines, nines};
pub use reliability::{
    bdr_reliability_model, dra_model, reliability_curve, DraModel, DraParams, ZoneInterBound,
};
