//! The paper's availability notation: `9^k x` means `k` consecutive 9s
//! after the decimal point followed by the digit `x` (e.g. `9^4 4` is
//! 0.99994).

/// Decompose an availability in `[0, 1)` into (number of leading 9s,
/// next digit). Values ≥ 1 return `(usize::MAX, 0)` as a sentinel for
/// "perfect"; the formatter renders it as `1.0`.
///
/// Implemented on `1 − a` to stay accurate deep into the nines (the
/// paper reports up to 9⁹): the 9-count is `⌊−log₁₀(1−a)⌋` whenever
/// `1 − a` has no leading-digit-9 wobble, with an explicit digit check
/// to handle boundaries like 0.9995 exactly.
pub fn nines(a: f64) -> (usize, u8) {
    assert!(a.is_finite() && a >= 0.0, "availability out of range: {a}");
    if a >= 1.0 {
        return (usize::MAX, 0);
    }
    let u = 1.0 - a;
    // Candidate count from the magnitude of the unavailability.
    let mut k = (-u.log10()).floor() as i64;
    if k < 0 {
        k = 0;
    }
    let mut k = k as usize;
    // The floor can be off by one at digit boundaries; verify against
    // the actual digit and adjust.
    while k > 0 && digit_after(a, k - 1) != 9 {
        k -= 1;
    }
    while digit_after(a, k) == 9 && k < 15 {
        k += 1;
    }
    (k, digit_after(a, k))
}

/// The `idx`-th digit after the decimal point of `a` (0-based).
fn digit_after(a: f64, idx: usize) -> u8 {
    let shifted = a * 10f64.powi(idx as i32 + 1);
    (shifted.floor() as u64 % 10) as u8
}

/// Render in the paper's notation: `9^4 4` for 0.99994, `0.9x...` for
/// values below 0.9, `1.0` for unity.
pub fn format_nines(a: f64) -> String {
    let (k, d) = nines(a);
    if k == usize::MAX {
        return "1.0".to_string();
    }
    if k == 0 {
        return format!("{a:.4}");
    }
    format!("9^{k} {d}")
}

/// Nines notation for an *estimated* availability: the point value
/// bracketed by the confidence interval, propagated from an
/// unavailability estimate `u ± ci` (the form the rare-event estimators
/// produce).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NinesInterval {
    /// Nines of the conservative edge (availability `1 − (u + ci)`).
    pub lo: (usize, u8),
    /// Nines of the point estimate (availability `1 − u`).
    pub point: (usize, u8),
    /// Nines of the optimistic edge (availability `1 − (u − ci)`);
    /// `None` when the CI reaches unavailability 0, i.e. the data
    /// cannot bound the nines from above.
    pub hi: Option<(usize, u8)>,
}

/// Decompose an unavailability estimate with 95% half-width into a
/// nines interval. Accepts the zero-event case (`u = 0` with `ci`
/// carrying an upper *bound*): the bound becomes the conservative
/// edge and the optimistic edge is unbounded.
pub fn nines_interval(unavailability: f64, ci_half: f64) -> NinesInterval {
    assert!(
        unavailability.is_finite() && unavailability >= 0.0 && ci_half >= 0.0,
        "bad estimate ({unavailability} ± {ci_half})"
    );
    let lo_avail = (1.0 - (unavailability + ci_half)).max(0.0);
    let hi_u = unavailability - ci_half;
    NinesInterval {
        lo: nines(lo_avail),
        point: nines((1.0 - unavailability).max(0.0)),
        hi: (hi_u > 0.0).then(|| nines(1.0 - hi_u)),
    }
}

/// Render a [`NinesInterval`] in the paper's notation, e.g.
/// `9^8 7 [9^8 2, 9^9 1]`; an unbounded optimistic edge renders as `∞`.
pub fn format_nines_interval(iv: &NinesInterval) -> String {
    let one = |(k, d): (usize, u8)| {
        if k == usize::MAX {
            "1.0".to_string()
        } else if k == 0 {
            format!("0.{d}…")
        } else {
            format!("9^{k} {d}")
        }
    };
    let hi = iv.hi.map(one).unwrap_or_else(|| "∞".to_string());
    format!("{} [{}, {hi}]", one(iv.point), one(iv.lo))
}

/// Annual downtime (minutes/year) for an unavailability estimate with
/// CI: `(conservative, point, optimistic)` — the optimistic edge clamps
/// at zero.
pub fn annual_downtime_minutes_interval(unavailability: f64, ci_half: f64) -> (f64, f64, f64) {
    assert!(
        unavailability >= 0.0 && ci_half >= 0.0,
        "bad estimate ({unavailability} ± {ci_half})"
    );
    let minutes = |u: f64| u * 365.25 * 24.0 * 60.0;
    (
        minutes(unavailability + ci_half),
        minutes(unavailability),
        minutes((unavailability - ci_half).max(0.0)),
    )
}

/// Expected downtime per year (minutes) at a given availability — the
/// unit operators actually budget in ("five nines = 5.26 min/yr").
pub fn annual_downtime_minutes(availability: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&availability),
        "availability out of range"
    );
    (1.0 - availability) * 365.25 * 24.0 * 60.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn annual_downtime_anchors() {
        // Five nines is the canonical ~5.26 minutes/year.
        let five_nines = annual_downtime_minutes(0.99999);
        assert!((five_nines - 5.2596).abs() < 1e-3, "{five_nines}");
        // Three nines ~ 8.77 hours/year.
        let three = annual_downtime_minutes(0.999) / 60.0;
        assert!((three - 8.766).abs() < 1e-2, "{three}");
        assert_eq!(annual_downtime_minutes(1.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn downtime_rejects_bad_availability() {
        annual_downtime_minutes(1.5);
    }

    #[test]
    fn paper_examples() {
        // 9^4 4 = 0.99994 (four nines then a four).
        assert_eq!(nines(0.99994), (4, 4));
        assert_eq!(format_nines(0.99994), "9^4 4");
    }

    #[test]
    fn shallow_values() {
        assert_eq!(nines(0.5), (0, 5));
        assert_eq!(nines(0.89), (0, 8));
        assert_eq!(format_nines(0.5), "0.5000");
    }

    #[test]
    fn boundary_single_nine() {
        assert_eq!(nines(0.9), (1, 0));
        assert_eq!(nines(0.95), (1, 5));
        assert_eq!(nines(0.99), (2, 0));
    }

    #[test]
    fn deep_nines() {
        assert_eq!(nines(0.999999997), (8, 7));
        assert_eq!(format_nines(0.999999997), "9^8 7");
        assert_eq!(nines(0.9999999996), (9, 6));
        assert_eq!(nines(1.0 - 6e-5), (4, 4)); // 0.99994
    }

    #[test]
    fn bdr_closed_forms() {
        // mu/(mu+lambda) for the paper's BDR numbers.
        let a3 = (1.0 / 3.0) / (1.0 / 3.0 + 2e-5); // ~0.99994 -> 9^4
        assert_eq!(nines(a3).0, 4);
        let a12 = (1.0 / 12.0) / (1.0 / 12.0 + 2e-5); // ~0.99976 -> 9^3
        assert_eq!(nines(a12).0, 3);
    }

    #[test]
    fn unity_and_zero() {
        assert_eq!(format_nines(1.0), "1.0");
        assert_eq!(nines(0.0), (0, 0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn negative_rejected() {
        nines(-0.1);
    }

    #[test]
    fn interval_brackets_the_point() {
        // 1.5e-9 ± 0.5e-9: eight nines conservatively and at the
        // point, nine nines at the optimistic edge.
        let iv = nines_interval(1.5e-9, 0.5e-9);
        assert_eq!(iv.lo.0, 8);
        assert_eq!(iv.point, (8, 8)); // 1 − 1.5e-9
        let hi = iv.hi.expect("bounded above");
        assert_eq!(hi.0, 9);
        assert!(iv.lo.0 <= iv.point.0 && iv.point.0 <= hi.0);
        let s = format_nines_interval(&iv);
        assert!(s.contains("9^8 8"), "{s}");
    }

    #[test]
    fn interval_zero_event_case_is_one_sided() {
        // u = 0 with a rule-of-three style bound as the half-width.
        let iv = nines_interval(0.0, 3e-7);
        assert_eq!(iv.point, (usize::MAX, 0));
        assert_eq!(iv.lo.0, 6, "conservative edge from the bound");
        assert!(iv.hi.is_none(), "no optimistic edge without events");
        assert!(format_nines_interval(&iv).ends_with("∞]"));
    }

    #[test]
    fn downtime_interval_orders_and_clamps() {
        let (worst, point, best) = annual_downtime_minutes_interval(1e-5, 2e-5);
        assert!(worst > point);
        assert_eq!(best, 0.0, "CI through zero clamps to no downtime");
        assert!((point - annual_downtime_minutes(1.0 - 1e-5)).abs() < 1e-9);
    }

    #[test]
    fn count_is_monotone_in_availability() {
        let mut prev = 0usize;
        for k in 1..=9 {
            let a = 1.0 - 10f64.powi(-k) * 0.5; // e.g. 0.995, 0.9995...
            let (count, _) = nines(a);
            assert!(count >= prev, "k={k}: count {count} < prev {prev}");
            prev = count;
        }
    }
}
