//! Inverse queries over the dependability models — the questions an
//! operator actually asks ("what do I need to hit nine nines?"),
//! answered by searching the forward models of this module's siblings.

use super::availability::dra_availability;
use super::nines::{nines, nines_interval, NinesInterval};
use super::reliability::DraParams;
use crate::rareevent::{estimate, RareConfig, RareEstimate, RareMethod};
use dra_router::components::FailureRates;

/// Smallest same-protocol population `M` (2 ≤ M ≤ N) achieving at
/// least `target_nines` of availability at the given repair rate, or
/// `None` if even `M = N` falls short.
pub fn min_m_for_availability(n: usize, mu: f64, target_nines: usize) -> Option<usize> {
    assert!(n >= 3 && mu > 0.0 && target_nines >= 1);
    (2..=n).find(|&m| nines(dra_availability(&DraParams::new(n, m), mu)).0 >= target_nines)
}

/// Smallest router size `N` (with everything same-protocol, `M = N`)
/// achieving `target_nines`, searched up to `n_max`.
pub fn min_n_for_availability(mu: f64, target_nines: usize, n_max: usize) -> Option<usize> {
    assert!(mu > 0.0 && target_nines >= 1 && n_max >= 3);
    (3..=n_max).find(|&n| nines(dra_availability(&DraParams::new(n, n), mu)).0 >= target_nines)
}

/// Slowest admissible repair (largest mean repair time, hours) that
/// still achieves `target_nines` for a given `(N, M)`, bisected over
/// `[0.5, 168]` hours. Returns `None` when even 30-minute repair is
/// not enough.
pub fn max_repair_hours_for_availability(n: usize, m: usize, target_nines: usize) -> Option<f64> {
    assert!(n >= 3 && (2..=n).contains(&m) && target_nines >= 1);
    let ok =
        |hours: f64| nines(dra_availability(&DraParams::new(n, m), 1.0 / hours)).0 >= target_nines;
    if !ok(0.5) {
        return None;
    }
    let (mut lo, mut hi) = (0.5_f64, 168.0_f64);
    if ok(hi) {
        return Some(hi);
    }
    // Bisection on the monotone predicate (slower repair only hurts).
    for _ in 0..40 {
        let mid = 0.5 * (lo + hi);
        if ok(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(lo)
}

/// A planner answer backed by a rare-event *estimate* rather than the
/// exact model: the chosen parameter plus the estimate and its nines
/// interval, so the caller can see how much confidence the simulation
/// budget actually bought.
#[derive(Debug, Clone, Copy)]
pub struct PlannedEstimate {
    /// The parameter value the planner settled on (e.g. `M`).
    pub value: usize,
    /// The rare-event estimate that justified it.
    pub estimate: RareEstimate,
    /// Nines of the estimate with CI propagated.
    pub interval: NinesInterval,
}

/// Smallest same-protocol population `M` (2 ≤ M ≤ N) whose estimated
/// availability reaches `target_nines` at the given failure rates and
/// repair rate — judged **conservatively** on the lower CI edge
/// (`1 − (U + ci)`, or the zero-event bound when nothing was observed),
/// so the answer is robust to the estimator's remaining noise.
///
/// This is the realistic-rates twin of [`min_m_for_availability`]: the
/// exact query needs the Markov model to stay tractable, while this one
/// runs the balanced-failure-biasing estimator ([`crate::rareevent`])
/// and therefore accepts *any* rates — in particular the paper's real
/// ones, where brute-force Monte Carlo sees nothing.
pub fn min_m_for_availability_estimated(
    n: usize,
    rates: &FailureRates,
    mu: f64,
    target_nines: usize,
    cycles: usize,
    seed: u64,
) -> Option<PlannedEstimate> {
    assert!(n >= 3 && mu > 0.0 && target_nines >= 1);
    for m in 2..=n {
        let cfg = RareConfig {
            n,
            m,
            rates: *rates,
            mu,
            cycles,
            seed,
        };
        let est = estimate(&cfg, RareMethod::FailureBiasing { bias: 0.5 });
        let conservative_avail = (1.0 - est.upper_bound()).max(0.0);
        if nines(conservative_avail).0 >= target_nines {
            return Some(PlannedEstimate {
                value: m,
                estimate: est,
                interval: nines_interval(est.unavailability, est.ci_half),
            });
        }
    }
    None
}

/// Largest uniform load `L` at which `N` cards can absorb `x_tolerated`
/// simultaneous failures at full service (the closed form behind the
/// `capacity_planning` example): spare `(N−x)(1−L)c` must cover the
/// need `x·L·c`, so `L ≤ (N−x)/N`.
pub fn max_load_for_full_coverage(n: usize, x_tolerated: usize) -> f64 {
    assert!(n >= 2 && x_tolerated >= 1 && x_tolerated < n);
    (n - x_tolerated) as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::degradation::{b_faulty_fraction, DegradationParams};

    #[test]
    fn min_m_matches_the_figure7_saturation() {
        // At N=9, mu=1/3 the paper's table shows 9^8 at M=2 and 9^9
        // from M=4 on; the unlisted M=3 point already crosses nine
        // nines, which the planner finds.
        assert_eq!(min_m_for_availability(9, 1.0 / 3.0, 8), Some(2));
        assert_eq!(min_m_for_availability(9, 1.0 / 3.0, 9), Some(3));
        // Ten nines are out of reach at this repair speed.
        assert_eq!(min_m_for_availability(9, 1.0 / 3.0, 10), None);
    }

    #[test]
    fn min_n_is_monotone_in_target() {
        let mu = 1.0 / 3.0;
        let n8 = min_n_for_availability(mu, 8, 12).expect("eight nines reachable");
        let n9 = min_n_for_availability(mu, 9, 12).expect("nine nines reachable");
        assert!(n8 <= n9);
        assert!(n8 >= 3);
    }

    #[test]
    fn max_repair_hours_brackets_the_paper_points() {
        // (N=3, M=2): 3-hour repair gives 9^8, 12-hour gives 9^7 — so
        // the slowest repair for eight nines lies between them.
        let h = max_repair_hours_for_availability(3, 2, 8).expect("reachable");
        assert!(
            (3.0..12.0).contains(&h),
            "expected threshold between the paper's repair points, got {h}"
        );
        // The found threshold actually satisfies the target…
        assert!(nines(dra_availability(&DraParams::new(3, 2), 1.0 / h)).0 >= 8);
        // …and slightly slower repair does not.
        assert!(nines(dra_availability(&DraParams::new(3, 2), 1.0 / (h * 1.1))).0 < 8);
    }

    #[test]
    fn unreachable_targets_return_none() {
        assert_eq!(max_repair_hours_for_availability(3, 2, 12), None);
    }

    #[test]
    fn load_headroom_closed_form_agrees_with_degradation_model() {
        for n in [4usize, 6, 8] {
            for x in 1..n.min(5) {
                let l_max = max_load_for_full_coverage(n, x);
                let p = |load: f64| DegradationParams {
                    n,
                    c_lc_bps: 10e9,
                    load,
                    bus_capacity_bps: f64::INFINITY,
                };
                // Just under the boundary: full service.
                assert_eq!(b_faulty_fraction(&p(l_max - 1e-9), x), 1.0, "N={n} X={x}");
                // Just over: degraded.
                if l_max + 1e-6 < 1.0 {
                    assert!(b_faulty_fraction(&p(l_max + 1e-6), x) < 1.0);
                }
            }
        }
    }

    #[test]
    fn estimated_min_m_matches_the_exact_oracle_answer() {
        // At the paper's real rates the estimated planner must land on
        // the same M as an exact search over the component-level
        // oracle, and its conservative interval must actually clear
        // the target.
        use crate::rareevent::markov_oracle;
        let (n, mu, target) = (9usize, 1.0 / 3.0, 8usize);
        let rates = FailureRates::PAPER;
        let exact_m = (2..=n)
            .find(|&m| nines(1.0 - markov_oracle(n, m, &rates, mu).unavailability).0 >= target)
            .expect("target reachable exactly");
        let planned = min_m_for_availability_estimated(n, &rates, mu, target, 40_000, 0x9A11)
            .expect("target reachable by estimate");
        assert_eq!(planned.value, exact_m);
        assert!(planned.interval.lo.0 >= target);
        assert!(planned.estimate.unavailability > 0.0);
    }

    #[test]
    fn estimated_min_m_unreachable_target_returns_none() {
        // Twelve nines at 12-hour repair is out of reach for N=3 — the
        // estimated planner must say so rather than hallucinate.
        let rates = FailureRates::PAPER;
        assert!(min_m_for_availability_estimated(3, &rates, 1.0 / 12.0, 12, 5_000, 7).is_none());
    }

    #[test]
    fn paper_fig8_boundary_via_planner() {
        // N=6, L=50%: headroom is exactly 3 cards — the crossover seen
        // in Figure 8.
        assert!((max_load_for_full_coverage(6, 3) - 0.5).abs() < 1e-12);
    }
}
