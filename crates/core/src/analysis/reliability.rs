//! The Figure-5 Markov models and the Figure-6 reliability curves.
//!
//! States follow the paper's §5.1 notation:
//!
//! * Zone-LC_inter `(i, j)` — `i` of the `M−1` same-protocol LC_inter
//!   PDLUs and `j` of the `N−2` LC_inter PI-unit groups have failed;
//!   LC_UA itself is healthy. `(0, 0)` is the initial state.
//! * Zone-LC_UA `i_PD` / `j_PI` — LC_UA's PDLU (resp. PI units) has
//!   failed and is being covered; `i`/`j` counts how many covering
//!   units have additionally failed.
//! * `T'` — the EIB or LC_UA's bus controller has failed; packets
//!   still flow through the fabric but no coverage is possible.
//! * `F` — service to LC_UA's ports has stopped.
//!
//! The paper leaves the Zone-LC_inter boundary ambiguous (see
//! DESIGN.md §4); [`ZoneInterBound`] selects a reading, with
//! [`ZoneInterBound::Extended`] — track intermediate failures all the
//! way to exhaustion while LC_UA is healthy — as the physically
//! consistent default.

use dra_markov::{Ctmc, CtmcBuilder, StateId, TransientOptions};
use dra_router::components::FailureRates;

/// Where Zone-LC_UA states go when the EIB or LC_UA's bus controller
/// fails (DESIGN.md §4, ablation A1).
///
/// The paper states "All states (except F) move to State T′ if the EIB
/// or LCUA's bus controller fails" — and only that reading reproduces
/// its Figure-6/7 numbers (e.g. 9⁸ availability at M=2, N=3 with
/// μ=1/3), so [`TprimeSemantics::Literal`] is the default. It is,
/// however, physically generous: an LC_UA that already lost a unit and
/// then loses the bus cannot really keep forwarding. `Strict` routes
/// those states to `F` instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TprimeSemantics {
    /// The paper's sentence, verbatim: every non-F state moves to T′.
    Literal,
    /// Zone-LC_inter states move to T′; Zone-LC_UA states (LC_UA
    /// already faulty, coverage in use) move to F.
    Strict,
}

/// How the Zone-LC_inter boundary is handled (DESIGN.md §4, ablation A1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ZoneInterBound {
    /// Zone-LC_inter tracks intermediate failures up to full
    /// exhaustion (`i ≤ M−1`, `j ≤ N−2`); if LC_UA then fails with no
    /// cover left, the chain moves to `F`. Physically consistent;
    /// the default.
    Extended,
    /// The paper's literal state bounds (`i ≤ M−2`, `j ≤ N−3`);
    /// further intermediate failures are ignored while LC_UA is
    /// healthy (optimistic).
    Saturate,
    /// The paper's literal `F` description: exhausting all
    /// intermediate PDLUs or PI units sends the chain to `F` even
    /// with LC_UA healthy (pessimistic).
    ToF,
}

/// Parameters of the DRA dependability model.
#[derive(Debug, Clone, Copy)]
pub struct DraParams {
    /// Total linecards `N ≥ 3`.
    pub n: usize,
    /// Same-protocol linecards (including LC_UA) `2 ≤ M ≤ N`.
    pub m: usize,
    /// Component failure rates.
    pub rates: FailureRates,
    /// Boundary semantics.
    pub bound: ZoneInterBound,
    /// T′ semantics for Zone-LC_UA states.
    pub tprime: TprimeSemantics,
    /// Repair rate μ (per hour) from every non-initial state back to
    /// `(0,0)`; `None` builds the reliability (no-repair) model.
    pub repair: Option<f64>,
}

impl DraParams {
    /// Paper defaults: rates from §5, `Extended` bounds, no repair.
    pub fn new(n: usize, m: usize) -> Self {
        DraParams {
            n,
            m,
            rates: FailureRates::PAPER,
            bound: ZoneInterBound::Extended,
            tprime: TprimeSemantics::Literal,
            repair: None,
        }
    }

    /// Same, with a repair rate (availability model).
    pub fn with_repair(n: usize, m: usize, mu: f64) -> Self {
        DraParams {
            repair: Some(mu),
            ..Self::new(n, m)
        }
    }
}

/// A built DRA dependability model.
#[derive(Debug)]
pub struct DraModel {
    /// The underlying chain.
    pub chain: Ctmc,
    /// The initial `(0,0)` state.
    pub start: StateId,
    /// The service-loss state `F`.
    pub failed: StateId,
    /// The no-coverage-but-operational state `T'`.
    pub t_prime: StateId,
}

/// Build the DRA Markov model of Figure 5(b) (+ repair for Figure 7).
///
/// # Panics
/// Panics unless `n ≥ 3`, `2 ≤ m ≤ n`, and the rates are consistent.
// The transition loops index the pd/pi state vectors in parallel with
// arithmetic on the index itself (remaining-unit counts).
#[allow(clippy::needless_range_loop)]
pub fn dra_model(p: &DraParams) -> DraModel {
    assert!(p.n >= 3, "need N >= 3 (LC_UA, LC_out, one LC_inter)");
    assert!(p.m >= 2 && p.m <= p.n, "need 2 <= M <= N");
    assert!(p.rates.is_consistent(), "inconsistent failure rates");

    let (n, m) = (p.n, p.m);
    let l_pd = p.rates.inter_pdlu(); // intermediate PDLU (+BC)
    let l_pi = p.rates.inter_pi(); // intermediate PI units (+BC)
    let l_lpd = p.rates.pdlu; // LC_UA PDLU
    let l_lpi = p.rates.pi_units; // LC_UA PI units
    let l_e = p.rates.eib + p.rates.bus_controller; // EIB or LC_UA BC
    let l_lc = p.rates.lc; // whole LC_UA (used from T')

    // Zone-inter index bounds (inclusive).
    let (i_max, j_max) = match p.bound {
        ZoneInterBound::Extended => (m - 1, n - 2),
        ZoneInterBound::Saturate | ZoneInterBound::ToF => (m - 2, n - 3),
    };

    let mut b = CtmcBuilder::new();
    // Zone-inter grid.
    let mut inter = vec![vec![None; j_max + 1]; i_max + 1];
    for (i, row) in inter.iter_mut().enumerate() {
        for (j, slot) in row.iter_mut().enumerate() {
            *slot = Some(b.state(format!("({i},{j})")).expect("unique label"));
        }
    }
    let inter = |i: usize, j: usize| inter[i][j].expect("in range");
    // Zone-LC_UA chains.
    let pd: Vec<StateId> = (0..=m.saturating_sub(2))
        .map(|i| b.state(format!("{i}_PD")).expect("unique"))
        .collect();
    let pi: Vec<StateId> = (0..=n.saturating_sub(3))
        .map(|j| b.state(format!("{j}_PI")).expect("unique"))
        .collect();
    let t_prime = b.state("T'").expect("unique");
    let failed = b.state("F").expect("unique");

    // --- Zone-inter transitions -------------------------------------
    for i in 0..=i_max {
        for j in 0..=j_max {
            let s = inter(i, j);
            // Intermediate PDLU failures.
            let remaining_pd = (m - 1).saturating_sub(i) as f64;
            if remaining_pd > 0.0 {
                if i < i_max {
                    b.rate(s, inter(i + 1, j), remaining_pd * l_pd).unwrap();
                } else if p.bound == ZoneInterBound::ToF {
                    b.rate(s, failed, remaining_pd * l_pd).unwrap();
                }
                // Saturate: the transition is dropped at the bound.
            }
            // Intermediate PI failures.
            let remaining_pi = (n - 2).saturating_sub(j) as f64;
            if remaining_pi > 0.0 {
                if j < j_max {
                    b.rate(s, inter(i, j + 1), remaining_pi * l_pi).unwrap();
                } else if p.bound == ZoneInterBound::ToF {
                    b.rate(s, failed, remaining_pi * l_pi).unwrap();
                }
            }
            // LC_UA's PDLU fails: covered iff a same-protocol PDLU
            // remains (i ≤ m-2), else F.
            if i <= m - 2 {
                b.rate(s, pd[i], l_lpd).unwrap();
            } else {
                b.rate(s, failed, l_lpd).unwrap();
            }
            // LC_UA's PI units fail: covered iff some PI group remains.
            if j <= n - 3 {
                b.rate(s, pi[j], l_lpi).unwrap();
            } else {
                b.rate(s, failed, l_lpi).unwrap();
            }
            // EIB or LC_UA bus controller fails: coverage lost, fabric
            // still works.
            b.rate(s, t_prime, l_e).unwrap();
        }
    }

    // --- Zone-LC_UA transitions --------------------------------------
    // Where a covered LC_UA lands when the EIB/BC dies under it.
    let eib_loss_target = match p.tprime {
        TprimeSemantics::Literal => t_prime,
        TprimeSemantics::Strict => failed,
    };
    for i in 0..pd.len() {
        let remaining = (m - 1 - i) as f64;
        let next = if i + 1 < pd.len() { pd[i + 1] } else { failed };
        b.rate(pd[i], next, remaining * l_pd).unwrap();
        b.rate(pd[i], eib_loss_target, l_e).unwrap();
    }
    for j in 0..pi.len() {
        let remaining = (n - 2 - j) as f64;
        let next = if j + 1 < pi.len() { pi[j + 1] } else { failed };
        b.rate(pi[j], next, remaining * l_pi).unwrap();
        b.rate(pi[j], eib_loss_target, l_e).unwrap();
    }

    // --- T' ----------------------------------------------------------
    // No coverage possible: any LC_UA failure is terminal.
    b.rate(t_prime, failed, l_lc).unwrap();

    // --- Repair (availability variant) -------------------------------
    let start = inter(0, 0);
    if let Some(mu) = p.repair {
        assert!(mu > 0.0, "repair rate must be positive");
        for i in 0..=i_max {
            for j in 0..=j_max {
                if (i, j) != (0, 0) {
                    b.rate(inter(i, j), start, mu).unwrap();
                }
            }
        }
        for &s in pd.iter().chain(pi.iter()) {
            b.rate(s, start, mu).unwrap();
        }
        b.rate(t_prime, start, mu).unwrap();
        b.rate(failed, start, mu).unwrap();
    }

    let chain = b.build().expect("nonempty chain");
    DraModel {
        chain,
        start,
        failed,
        t_prime,
    }
}

/// A built BDR dependability model (Figure 5(a)): up → failed at
/// λ_LC, with optional repair.
#[derive(Debug)]
pub struct BdrModel {
    /// The underlying chain.
    pub chain: Ctmc,
    /// The operational state.
    pub start: StateId,
    /// The failed state.
    pub failed: StateId,
}

/// Build the BDR model (optionally with repair).
pub fn bdr_reliability_model(rates: &FailureRates, repair: Option<f64>) -> BdrModel {
    let mut b = CtmcBuilder::new();
    let up = b.state("up").expect("unique");
    let down = b.state("down").expect("unique");
    b.rate(up, down, rates.lc).unwrap();
    if let Some(mu) = repair {
        assert!(mu > 0.0);
        b.rate(down, up, mu).unwrap();
    }
    BdrModel {
        chain: b.build().expect("nonempty"),
        start: up,
        failed: down,
    }
}

/// Evaluate `R(t) = P(not in F)` at each time (hours), starting from
/// the model's initial state.
pub fn reliability_curve(chain: &Ctmc, start: StateId, failed: StateId, times: &[f64]) -> Vec<f64> {
    let pi0 = chain.point_mass(start).expect("valid start");
    let sols =
        dra_markov::transient::transient_many(chain, &pi0, times, TransientOptions::default())
            .expect("valid model and times");
    sols.iter().map(|pi| 1.0 - pi[failed.index()]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve(model: &DraModel, times: &[f64]) -> Vec<f64> {
        reliability_curve(&model.chain, model.start, model.failed, times)
    }

    #[test]
    fn state_counts_match_structure() {
        // Extended: M*(N-1) inter + (M-1) pd + (N-2) pi + T' + F.
        let p = DraParams::new(9, 4);
        let model = dra_model(&p);
        let expect = 4 * 8 + 3 + 7 + 2;
        assert_eq!(model.chain.n_states(), expect);

        let p = DraParams {
            bound: ZoneInterBound::Saturate,
            ..DraParams::new(9, 4)
        };
        let expect = 3 * 7 + 3 + 7 + 2;
        assert_eq!(dra_model(&p).chain.n_states(), expect);
    }

    #[test]
    fn minimal_configuration_builds() {
        // M=2, N=3: a single covering LC of each kind.
        for bound in [
            ZoneInterBound::Extended,
            ZoneInterBound::Saturate,
            ZoneInterBound::ToF,
        ] {
            let p = DraParams {
                bound,
                ..DraParams::new(3, 2)
            };
            let model = dra_model(&p);
            assert!(model.chain.n_states() >= 5);
            let r = curve(&model, &[10_000.0]);
            assert!(r[0] > 0.0 && r[0] <= 1.0);
        }
    }

    #[test]
    fn bdr_reliability_is_exponential() {
        let model = bdr_reliability_model(&FailureRates::PAPER, None);
        let r = reliability_curve(&model.chain, model.start, model.failed, &[40_000.0]);
        let expect = (-2e-5_f64 * 40_000.0).exp();
        assert!((r[0] - expect).abs() < 1e-10);
        // The paper's headline: below 0.5 by 40 000 h.
        assert!(r[0] < 0.5);
    }

    #[test]
    fn paper_anchor_dra_n9_m4_stays_near_one() {
        let model = dra_model(&DraParams::new(9, 4));
        let r = curve(&model, &[40_000.0]);
        assert!(
            r[0] > 0.97,
            "DRA N=9 M=4 should stay close to 1.0 at 40kh, got {}",
            r[0]
        );
    }

    #[test]
    fn dra_beats_bdr_everywhere() {
        let bdr = bdr_reliability_model(&FailureRates::PAPER, None);
        let times: Vec<f64> = (1..=6).map(|k| k as f64 * 10_000.0).collect();
        let r_bdr = reliability_curve(&bdr.chain, bdr.start, bdr.failed, &times);
        for (n, m) in [(3, 2), (5, 3), (9, 4), (9, 8)] {
            let model = dra_model(&DraParams::new(n, m));
            let r_dra = curve(&model, &times);
            for (i, &t) in times.iter().enumerate() {
                assert!(
                    r_dra[i] > r_bdr[i],
                    "DRA(N={n},M={m}) must beat BDR at t={t}: {} vs {}",
                    r_dra[i],
                    r_bdr[i]
                );
            }
        }
    }

    #[test]
    fn reliability_improves_with_n_and_m() {
        let times = [40_000.0];
        let r_n3 = curve(&dra_model(&DraParams::new(3, 2)), &times)[0];
        let r_n6 = curve(&dra_model(&DraParams::new(6, 2)), &times)[0];
        let r_n9 = curve(&dra_model(&DraParams::new(9, 2)), &times)[0];
        assert!(r_n3 < r_n6 && r_n6 < r_n9, "{r_n3} {r_n6} {r_n9}");

        let r_m4 = curve(&dra_model(&DraParams::new(9, 4)), &times)[0];
        let r_m8 = curve(&dra_model(&DraParams::new(9, 8)), &times)[0];
        assert!(r_m4 <= r_m8 + 1e-12);
        // Paper: gains shrink — M>4 values are very close to each other.
        assert!((r_m8 - r_m4) < 0.01, "diminishing returns in M");
    }

    #[test]
    fn pi_units_matter_more_than_pdlus() {
        // Paper: "the number of PI units has a greater impact on R(t)".
        let times = [40_000.0];
        // Adding one more N (PI cover) vs one more M (PDLU cover).
        let base = curve(&dra_model(&DraParams::new(5, 3)), &times)[0];
        let more_n = curve(&dra_model(&DraParams::new(6, 3)), &times)[0];
        let more_m = curve(&dra_model(&DraParams::new(5, 4)), &times)[0];
        assert!(
            more_n - base > more_m - base,
            "extra PI cover ({more_n}) should help more than extra PDLU cover ({more_m})"
        );
    }

    #[test]
    fn bound_semantics_order_pessimism() {
        // ToF <= Extended <= Saturate in reliability.
        let times = [50_000.0];
        let mk = |bound| {
            let p = DraParams {
                bound,
                ..DraParams::new(4, 2)
            };
            curve(&dra_model(&p), &times)[0]
        };
        let tof = mk(ZoneInterBound::ToF);
        let ext = mk(ZoneInterBound::Extended);
        let sat = mk(ZoneInterBound::Saturate);
        assert!(tof <= ext + 1e-12, "ToF {tof} vs Extended {ext}");
        assert!(ext <= sat + 1e-12, "Extended {ext} vs Saturate {sat}");
    }

    #[test]
    fn reliability_is_monotone_decreasing() {
        let model = dra_model(&DraParams::new(6, 3));
        let times: Vec<f64> = (0..=20).map(|k| k as f64 * 5_000.0).collect();
        let r = curve(&model, &times);
        assert_eq!(r[0], 1.0);
        for w in r.windows(2) {
            assert!(w[1] <= w[0] + 1e-12, "R(t) must not increase: {w:?}");
        }
    }

    #[test]
    fn generator_is_conservative() {
        let model = dra_model(&DraParams::new(7, 4));
        for s in model.chain.generator().row_sums() {
            assert!(s.abs() < 1e-15, "row sum {s}");
        }
        // F is the only absorbing state in the reliability model.
        assert_eq!(model.chain.absorbing_states(), vec![model.failed]);
    }

    #[test]
    fn mttf_exceeds_bdr() {
        let dra = dra_model(&DraParams::new(6, 3));
        let a = dra_markov::absorbing::analyze(&dra.chain).unwrap();
        let mttf_dra = a.mtta_from(dra.start).unwrap();
        let mttf_bdr = 1.0 / FailureRates::PAPER.lc;
        assert!(
            mttf_dra > 2.0 * mttf_bdr,
            "DRA MTTF {mttf_dra:.0} vs BDR {mttf_bdr:.0}"
        );
    }

    #[test]
    #[should_panic(expected = "N >= 3")]
    fn too_few_linecards_rejected() {
        dra_model(&DraParams::new(2, 2));
    }

    #[test]
    #[should_panic(expected = "2 <= M <= N")]
    fn m_larger_than_n_rejected() {
        dra_model(&DraParams::new(4, 5));
    }
}
