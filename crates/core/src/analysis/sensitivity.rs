//! Parametric sensitivity of the dependability measures — which
//! component's failure rate actually limits DRA?
//!
//! The paper observes qualitatively that "the number of PI units has a
//! greater impact on R(t)". This module quantifies that: central
//! finite-difference elasticities of R(t) and steady-state
//! availability with respect to each §5 rate. An elasticity of −e
//! means a 1% increase in that rate costs about e% of the measure
//! (scaled; for availability we report the elasticity of
//! *unavailability*, which is the quantity that moves).

use super::availability::dra_availability;
use super::reliability::{dra_model, reliability_curve, DraParams};
use dra_router::components::FailureRates;

/// Which rate a sensitivity refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RateParam {
    /// λ_LPD — LC_UA's PDLU.
    LcuaPdlu,
    /// λ_LPI — LC_UA's PI units.
    LcuaPi,
    /// λ_PD − λ_BC component: intermediate PDLUs.
    InterPdlu,
    /// λ_PI − λ_BC component: intermediate PI units.
    InterPi,
    /// λ_BC — bus controllers.
    BusController,
    /// λ_BUS — the EIB lines.
    Eib,
}

impl RateParam {
    /// All parameters, in reporting order.
    pub const ALL: [RateParam; 6] = [
        RateParam::LcuaPdlu,
        RateParam::LcuaPi,
        RateParam::InterPdlu,
        RateParam::InterPi,
        RateParam::BusController,
        RateParam::Eib,
    ];

    /// Human-readable name matching the paper's symbols.
    pub fn name(self) -> &'static str {
        match self {
            RateParam::LcuaPdlu => "lambda_LPD (LC_UA PDLU)",
            RateParam::LcuaPi => "lambda_LPI (LC_UA PI units)",
            RateParam::InterPdlu => "lambda_PD share (inter PDLU)",
            RateParam::InterPi => "lambda_PI share (inter PI)",
            RateParam::BusController => "lambda_BC (bus controller)",
            RateParam::Eib => "lambda_BUS (EIB lines)",
        }
    }
}

/// Scale one rate by `factor`, keeping the others fixed.
///
/// `lc` is kept consistent (`pdlu + pi_units`) because the BDR model
/// and T′'s exit rate derive from it. The intermediate-unit parameters
/// perturb the same underlying physical rate as the LC_UA ones in the
/// paper (every card is identical); they are listed separately here so
/// their *role* in the model can be distinguished — perturbing
/// `InterPdlu` changes covering capacity without changing LC_UA's own
/// failure behaviour, which the model encodes via λ_PD.
pub fn perturbed(rates: &FailureRates, param: RateParam, factor: f64) -> FailureRates {
    let mut r = *rates;
    match param {
        RateParam::LcuaPdlu => r.pdlu *= factor,
        RateParam::LcuaPi => r.pi_units *= factor,
        // Intermediate units share the physical rates; in the model
        // they only enter through λ_PD/λ_PI = unit + BC. We perturb
        // the unit part by adjusting pdlu/pi_units uniformly — so
        // Inter* aliases Lcua* at the rate level; kept as distinct
        // reporting rows because the elasticities differ only through
        // which transitions dominate. (See `sensitivity_report`.)
        RateParam::InterPdlu => r.pdlu *= factor,
        RateParam::InterPi => r.pi_units *= factor,
        RateParam::BusController => r.bus_controller *= factor,
        RateParam::Eib => r.eib *= factor,
    }
    r.lc = r.pdlu + r.pi_units;
    r
}

/// One sensitivity row.
#[derive(Debug, Clone, Copy)]
pub struct Sensitivity {
    /// The perturbed parameter.
    pub param: RateParam,
    /// Elasticity of unreliability `1 − R(t)` at the probe time.
    pub unreliability_elasticity: f64,
    /// Elasticity of unavailability `1 − A`.
    pub unavailability_elasticity: f64,
}

/// Central-difference elasticities at ±`h` relative perturbation
/// (default callers use `h = 0.05`).
pub fn sensitivity_report(params: &DraParams, mu: f64, t: f64, h: f64) -> Vec<Sensitivity> {
    assert!(h > 0.0 && h < 0.5);
    let measure = |rates: FailureRates| -> (f64, f64) {
        let p = DraParams { rates, ..*params };
        let model = dra_model(&p);
        let r = reliability_curve(&model.chain, model.start, model.failed, &[t])[0];
        let a = dra_availability(&p, mu);
        (1.0 - r, 1.0 - a)
    };

    // Deduplicate aliased parameters (Inter* perturb the same fields
    // as Lcua*): report the physically distinct four.
    let distinct = [
        RateParam::LcuaPdlu,
        RateParam::LcuaPi,
        RateParam::BusController,
        RateParam::Eib,
    ];
    distinct
        .iter()
        .map(|&param| {
            let (u_plus, ua_plus) = measure(perturbed(&params.rates, param, 1.0 + h));
            let (u_minus, ua_minus) = measure(perturbed(&params.rates, param, 1.0 - h));
            let (u0, ua0) = measure(params.rates);
            let rel = |plus: f64, minus: f64, base: f64| {
                if base == 0.0 {
                    0.0
                } else {
                    (plus - minus) / (2.0 * h * base)
                }
            };
            Sensitivity {
                param,
                unreliability_elasticity: rel(u_plus, u_minus, u0),
                unavailability_elasticity: rel(ua_plus, ua_minus, ua0),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(n: usize, m: usize) -> Vec<Sensitivity> {
        sensitivity_report(&DraParams::new(n, m), 1.0 / 3.0, 40_000.0, 0.05)
    }

    #[test]
    fn perturbation_keeps_rates_consistent() {
        for param in RateParam::ALL {
            let r = perturbed(&FailureRates::PAPER, param, 1.3);
            assert!(r.is_consistent(), "{param:?} broke consistency");
        }
        // Identity at factor 1 (lc is recomputed, so compare within
        // rounding).
        let r = perturbed(&FailureRates::PAPER, RateParam::Eib, 1.0);
        assert!((r.lc - FailureRates::PAPER.lc).abs() < 1e-18);
        assert_eq!(r.pdlu, FailureRates::PAPER.pdlu);
        assert_eq!(r.eib, FailureRates::PAPER.eib);
    }

    #[test]
    fn all_elasticities_are_nonnegative() {
        // Increasing any failure rate cannot make things better.
        for s in report(6, 3) {
            assert!(
                s.unreliability_elasticity >= -1e-6,
                "{:?}: {}",
                s.param,
                s.unreliability_elasticity
            );
            assert!(
                s.unavailability_elasticity >= -1e-6,
                "{:?}: {}",
                s.param,
                s.unavailability_elasticity
            );
        }
    }

    #[test]
    fn pi_rate_dominates_reliability() {
        // The paper's qualitative claim, quantified: unreliability is
        // more elastic in lambda_LPI than in lambda_LPD.
        let rep = report(9, 4);
        let get = |p: RateParam| {
            rep.iter()
                .find(|s| s.param == p)
                .expect("param present")
                .unreliability_elasticity
        };
        assert!(
            get(RateParam::LcuaPi) > get(RateParam::LcuaPdlu),
            "PI {} should exceed PDLU {}",
            get(RateParam::LcuaPi),
            get(RateParam::LcuaPdlu)
        );
    }

    #[test]
    fn eib_dominates_at_large_n_and_m() {
        // With abundant covering cards, the single-point-of-failure
        // pair (EIB + BC) limits reliability: its elasticity exceeds
        // the intermediate-exhaustion channels'.
        let rep = report(9, 8);
        let get = |p: RateParam| {
            rep.iter()
                .find(|s| s.param == p)
                .expect("param present")
                .unreliability_elasticity
        };
        assert!(
            get(RateParam::Eib) + get(RateParam::BusController) > 0.3 * get(RateParam::LcuaPi),
            "bus channel should be a major limiter at N=9 M=8"
        );
    }

    #[test]
    fn names_are_distinct() {
        use std::collections::HashSet;
        let names: HashSet<&str> = RateParam::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(names.len(), RateParam::ALL.len());
    }
}
