//! The fault-coverage planner: given the health of every linecard and
//! the EIB, decide how a packet flow survives failures (§3.2's Cases
//! 1–3).
//!
//! Case 1 (fabric failures) is absorbed by plane redundancy in
//! `dra-router`'s crossbar and never reaches this planner. Cases 2 and
//! 3 are decided here, as pure functions over an [`LcView`] snapshot —
//! which is exactly the "global view of the faulty component locations"
//! every LC maintains via the control-line processing tier.

use dra_net::protocol::ProtocolKind;
use dra_router::components::{Health, LcComponents};
use dra_router::metrics::DropCause;

/// What the planner knows about one linecard (replicated at every LC
/// through processing-tier control packets).
#[derive(Debug, Clone, Copy)]
pub struct LcView {
    /// Protocol this linecard implements.
    pub protocol: ProtocolKind,
    /// Unit health.
    pub components: LcComponents,
    /// Spare capacity this LC can lend (ψ = c_LC − L·c_LC in §5.3).
    pub spare_bps: f64,
}

impl LcView {
    /// A healthy view with the given protocol and spare capacity.
    pub fn healthy(protocol: ProtocolKind, spare_bps: f64) -> Self {
        LcView {
            protocol,
            components: LcComponents::healthy(),
            spare_bps,
        }
    }

    fn bc_ok(&self) -> bool {
        self.components.bus_controller == Health::Healthy
    }
}

/// How ingress traffic of a (possibly faulty) LC_in is handled — the
/// paper's Case 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngressRoute {
    /// LC_in healthy: the regular PIU → PDLU → SRU/LFE → fabric path.
    Normal,
    /// Service impossible; drop with this cause.
    Blocked(DropCause),
    /// PDLU failed: PIU forwards the raw stream over the EIB data
    /// lines to `helper`'s PDLU (same protocol required); the helper
    /// runs PDLU + SRU + LFE and injects cells into the fabric.
    PdluCover {
        /// The covering LC_inter.
        helper: u16,
    },
    /// SRU failed: the PDLU output crosses the EIB to `helper`'s SRU;
    /// the helper segments, looks up, and injects cells.
    SruCover {
        /// The covering LC_inter.
        helper: u16,
    },
    /// LFE failed: lookups ride the control lines (REQ_L → `helper`'s
    /// LFE → REP_L); data then uses LC_in's own fabric path.
    RemoteLookup {
        /// The LC answering lookups.
        helper: u16,
    },
}

/// How traffic destined for a (possibly faulty) LC_out is delivered —
/// the paper's Case 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EgressRoute {
    /// LC_out healthy: fabric → SRU reassembly → PDLU → PIU.
    Normal,
    /// Delivery impossible; drop with this cause.
    Blocked(DropCause),
    /// LC_out's PDLU failed and LC_in shares its protocol: LC_in's
    /// PDLU frames the packet and sends it over the EIB directly to
    /// LC_out's PIU.
    PdluDirect,
    /// LC_out's PDLU failed, protocols differ: cells cross the fabric
    /// to `inter` (same protocol as LC_out), whose PDLU frames the
    /// reassembled packet and forwards it over the EIB to LC_out's PIU.
    PdluViaInter {
        /// The intermediate LC.
        inter: u16,
    },
    /// LC_out's SRU failed: LC_in sends the whole packet over the EIB
    /// to LC_out's PDLU (bypassing the failed SRU).
    SruCover,
}

/// The planner. Holds router-global state that isn't per-LC.
///
/// ```
/// use dra_core::coverage::{CoveragePlanner, IngressRoute, LcView};
/// use dra_net::protocol::ProtocolKind;
/// use dra_router::components::{ComponentKind, Health};
///
/// // Three Ethernet cards; LC0's forwarding engine dies.
/// let mut lcs: Vec<LcView> = (0..3)
///     .map(|_| LcView::healthy(ProtocolKind::Ethernet, 8.5e9))
///     .collect();
/// lcs[0].components.set(ComponentKind::Lfe, Health::Failed);
///
/// let planner = CoveragePlanner::new(true);
/// // Lookups are outsourced; the data path stays local.
/// assert!(matches!(
///     planner.plan_ingress(&lcs, 0, 2),
///     IngressRoute::RemoteLookup { .. }
/// ));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct CoveragePlanner {
    /// Are the EIB passive lines up? Without them no coverage works
    /// (the T′ regime of the Markov model).
    pub eib_healthy: bool,
}

/// A complete per-packet decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoverageRoute {
    /// Case-2 decision for the ingress side.
    pub ingress: IngressRoute,
    /// Case-3 decision for the egress side.
    pub egress: EgressRoute,
}

impl CoverageRoute {
    /// Does this plan use the EIB data lines at all?
    pub fn uses_eib_data(&self) -> bool {
        matches!(
            self.ingress,
            IngressRoute::PdluCover { .. } | IngressRoute::SruCover { .. }
        ) || matches!(
            self.egress,
            EgressRoute::PdluDirect | EgressRoute::PdluViaInter { .. } | EgressRoute::SruCover
        )
    }

    /// The first blocking cause, if the plan cannot deliver.
    pub fn blocked_by(&self) -> Option<DropCause> {
        if let IngressRoute::Blocked(c) = self.ingress {
            return Some(c);
        }
        if let EgressRoute::Blocked(c) = self.egress {
            return Some(c);
        }
        None
    }
}

impl CoveragePlanner {
    /// Planner over a healthy EIB.
    pub fn new(eib_healthy: bool) -> Self {
        CoveragePlanner { eib_healthy }
    }

    /// Select the best eligible helper: maximum spare bandwidth, ties
    /// to the lowest index (the paper leaves this to "first REP_D to
    /// win the control lines"; a deterministic rule keeps runs
    /// reproducible — an ablation bench compares policies).
    fn pick_helper(
        &self,
        lcs: &[LcView],
        exclude: &[u16],
        eligible: impl Fn(&LcView) -> bool,
    ) -> Option<u16> {
        let mut best: Option<(u16, f64)> = None;
        for (i, lc) in lcs.iter().enumerate() {
            let i = i as u16;
            if exclude.contains(&i) || !lc.bc_ok() || !eligible(lc) || lc.spare_bps <= 0.0 {
                continue;
            }
            match best {
                Some((_, spare)) if spare >= lc.spare_bps => {}
                _ => best = Some((i, lc.spare_bps)),
            }
        }
        best.map(|(i, _)| i)
    }

    /// Case-2 decision for traffic entering at `ingress` bound for
    /// `egress`.
    ///
    /// The paper's Case 2 allows "any healthy LC" to help — including
    /// LC_out itself (the N−2 helper pool of §5 is an analysis
    /// simplification, honoured by [`lc_serviceable`]'s `exclude_out`
    /// but not imposed on the packet path).
    pub fn plan_ingress(&self, lcs: &[LcView], ingress: u16, _egress: u16) -> IngressRoute {
        let me = &lcs[ingress as usize];
        let c = me.components;
        if c.piu == Health::Failed {
            // Paper: "For a failure at the PIU, packet transfer is
            // stalled" — the external link itself is gone.
            return IngressRoute::Blocked(DropCause::IngressDown);
        }
        if c.pdlu == Health::Healthy && c.sru == Health::Healthy && c.lfe == Health::Healthy {
            return IngressRoute::Normal;
        }
        // Any coverage needs the EIB and this LC's bus controller.
        if !self.eib_healthy || !me.bc_ok() {
            return IngressRoute::Blocked(DropCause::IngressDown);
        }
        let exclude = [ingress];
        if c.pdlu == Health::Failed {
            // The helper takes over from the PDLU on: it needs a PDLU
            // of the same protocol plus working SRU/LFE. Its own PIU
            // is *not* on this path (the stream arrives over the EIB
            // and leaves through the fabric).
            let proto = me.protocol;
            return match self.pick_helper(lcs, &exclude, |lc| {
                lc.components.pdlu == Health::Healthy
                    && lc.components.pi_units_healthy()
                    && lc.protocol == proto
            }) {
                Some(helper) => IngressRoute::PdluCover { helper },
                None => IngressRoute::Blocked(DropCause::NoCoverage),
            };
        }
        if c.sru == Health::Failed {
            // The helper runs SRU + LFE: its PI units must be healthy
            // (protocol-independent, so any protocol qualifies).
            return match self.pick_helper(lcs, &exclude, |lc| lc.components.pi_units_healthy()) {
                Some(helper) => IngressRoute::SruCover { helper },
                None => IngressRoute::Blocked(DropCause::NoCoverage),
            };
        }
        // Only the LFE is down: lookups are outsourced, data stays local.
        match self.pick_helper(lcs, &exclude, |lc| lc.components.lfe == Health::Healthy) {
            Some(helper) => IngressRoute::RemoteLookup { helper },
            None => IngressRoute::Blocked(DropCause::NoCoverage),
        }
    }

    /// Case-3 decision for traffic leaving at `egress`, entering at
    /// `ingress`.
    pub fn plan_egress(&self, lcs: &[LcView], ingress: u16, egress: u16) -> EgressRoute {
        let out = &lcs[egress as usize];
        let c = out.components;
        if c.piu == Health::Failed {
            return EgressRoute::Blocked(DropCause::EgressDown);
        }
        if c.pdlu == Health::Healthy && c.sru == Health::Healthy {
            // LFE is not on the egress path.
            return EgressRoute::Normal;
        }
        if !self.eib_healthy || !out.bc_ok() {
            return EgressRoute::Blocked(DropCause::EgressDown);
        }
        if c.pdlu == Health::Failed {
            let inn = &lcs[ingress as usize];
            if inn.protocol == out.protocol && inn.components.pdlu == Health::Healthy && inn.bc_ok()
            {
                return EgressRoute::PdluDirect;
            }
            // Find an LC_inter implementing LC_out's protocol whose
            // reassembly (SRU) and framing (PDLU) work; its LFE and
            // PIU are not on this path.
            let exclude = [ingress, egress];
            return match self.pick_helper(lcs, &exclude, |lc| {
                lc.components.pdlu == Health::Healthy
                    && lc.components.sru == Health::Healthy
                    && lc.protocol == out.protocol
            }) {
                Some(inter) => EgressRoute::PdluViaInter { inter },
                None => EgressRoute::Blocked(DropCause::NoCoverage),
            };
        }
        // SRU failed (PDLU healthy): LC_in ships the whole packet over
        // the EIB to LC_out's PDLU — LC_in needs a working BC.
        if lcs[ingress as usize].bc_ok() {
            EgressRoute::SruCover
        } else {
            EgressRoute::Blocked(DropCause::EgressDown)
        }
    }

    /// Full decision for a flow `ingress → egress`.
    pub fn plan(&self, lcs: &[LcView], ingress: u16, egress: u16) -> CoverageRoute {
        CoverageRoute {
            ingress: self.plan_ingress(lcs, ingress, egress),
            egress: self.plan_egress(lcs, ingress, egress),
        }
    }
}

/// Structural serviceability of `lc_ua`'s traffic under DRA — the
/// predicate the Markov models and the Monte Carlo validator share.
///
/// `lc_ua` is serviceable when, for every failed unit on it, the §3.2
/// coverage rules find help; with a dead EIB or bus controller it must
/// stand alone (the T′ regime). `exclude_out` removes LC_out from the
/// helper pool, matching the model's "(N−2) LC_inter's" assumption.
///
/// Deliberate divergence from [`CoveragePlanner`]: this predicate
/// mirrors the *paper's model accounting* — a PDLU cover needs only a
/// same-protocol PDLU plus bus controller (the model's λ_PD), and a
/// PI cover needs the PI-unit pair plus bus controller (λ_PI) — while
/// the planner enforces the *physical packet path* (a PDLU helper also
/// runs its SRU/LFE; an LFE helper needs only its LFE). Keeping both
/// lets the reproduction quantify how optimistic the paper's counting
/// is (it is second-order at the paper's rates).
pub fn lc_serviceable(
    lcs: &[LcView],
    lc_ua: u16,
    exclude_out: Option<u16>,
    eib_healthy: bool,
) -> bool {
    lc_serviceable_with(|i| lcs[i], lcs.len(), lc_ua, exclude_out, eib_healthy)
}

/// [`lc_serviceable`] over an indexed view accessor instead of a
/// materialized slice. This is the per-hop form: the network engine
/// health-checks every transit, so the predicate must read views in
/// place rather than `collect()` a `Vec<LcView>` per call.
pub fn lc_serviceable_with(
    lc_at: impl Fn(usize) -> LcView,
    n_lcs: usize,
    lc_ua: u16,
    exclude_out: Option<u16>,
    eib_healthy: bool,
) -> bool {
    let me = lc_at(lc_ua as usize);
    let c = me.components;
    if c.piu == Health::Failed {
        return false;
    }
    if c.pdlu == Health::Healthy && c.sru == Health::Healthy && c.lfe == Health::Healthy {
        return true;
    }
    // Faulty and needing the bus: EIB + own bus controller must be up.
    if !eib_healthy || !me.bc_ok() {
        return false;
    }
    let candidate = |i: usize, lc: &LcView| -> bool {
        i as u16 != lc_ua && Some(i as u16) != exclude_out && lc.bc_ok()
    };
    if c.pdlu == Health::Failed {
        let covered = (0..n_lcs).any(|i| {
            let lc = lc_at(i);
            candidate(i, &lc) && lc.protocol == me.protocol && lc.components.pdlu == Health::Healthy
        });
        if !covered {
            return false;
        }
    }
    if c.sru == Health::Failed || c.lfe == Health::Failed {
        let covered = (0..n_lcs).any(|i| {
            let lc = lc_at(i);
            candidate(i, &lc) && lc.components.pi_units_healthy()
        });
        if !covered {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use dra_router::components::ComponentKind;

    const GBPS: f64 = 1e9;

    fn views(protocols: &[ProtocolKind]) -> Vec<LcView> {
        protocols
            .iter()
            .map(|&p| LcView::healthy(p, 8.5 * GBPS))
            .collect()
    }

    fn eth6() -> Vec<LcView> {
        views(&[ProtocolKind::Ethernet; 6])
    }

    fn fail(views: &mut [LcView], lc: usize, kind: ComponentKind) {
        views[lc].components.set(kind, Health::Failed);
    }

    fn planner() -> CoveragePlanner {
        CoveragePlanner::new(true)
    }

    #[test]
    fn healthy_flow_uses_normal_paths() {
        let lcs = eth6();
        let route = planner().plan(&lcs, 0, 3);
        assert_eq!(route.ingress, IngressRoute::Normal);
        assert_eq!(route.egress, EgressRoute::Normal);
        assert!(!route.uses_eib_data());
        assert_eq!(route.blocked_by(), None);
    }

    #[test]
    fn ingress_piu_failure_stalls_traffic() {
        let mut lcs = eth6();
        fail(&mut lcs, 0, ComponentKind::Piu);
        assert_eq!(
            planner().plan_ingress(&lcs, 0, 3),
            IngressRoute::Blocked(DropCause::IngressDown)
        );
    }

    #[test]
    fn ingress_lfe_failure_uses_remote_lookup() {
        let mut lcs = eth6();
        fail(&mut lcs, 0, ComponentKind::Lfe);
        match planner().plan_ingress(&lcs, 0, 3) {
            IngressRoute::RemoteLookup { helper } => {
                assert_ne!(helper, 0, "a card cannot help itself");
            }
            other => panic!("expected RemoteLookup, got {other:?}"),
        }
    }

    #[test]
    fn ingress_sru_failure_covered_by_any_protocol() {
        let mut lcs = views(&[ProtocolKind::Ethernet, ProtocolKind::Atm, ProtocolKind::Pos]);
        fail(&mut lcs, 0, ComponentKind::Sru);
        match planner().plan_ingress(&lcs, 0, 2) {
            IngressRoute::SruCover { helper } => assert_eq!(helper, 1),
            other => panic!("expected SruCover, got {other:?}"),
        }
    }

    #[test]
    fn ingress_pdlu_failure_requires_same_protocol() {
        let mut lcs = views(&[
            ProtocolKind::Ethernet,
            ProtocolKind::Atm,
            ProtocolKind::Ethernet,
            ProtocolKind::Pos,
        ]);
        fail(&mut lcs, 0, ComponentKind::Pdlu);
        match planner().plan_ingress(&lcs, 0, 3) {
            IngressRoute::PdluCover { helper } => {
                assert_eq!(helper, 2, "only LC2 shares Ethernet");
            }
            other => panic!("expected PdluCover, got {other:?}"),
        }
        // Remove the only same-protocol helper: no coverage.
        fail(&mut lcs, 2, ComponentKind::Sru);
        assert_eq!(
            planner().plan_ingress(&lcs, 0, 3),
            IngressRoute::Blocked(DropCause::NoCoverage)
        );
    }

    #[test]
    fn combined_pdlu_and_lfe_failure_handled_by_pdlu_cover() {
        let mut lcs = eth6();
        fail(&mut lcs, 0, ComponentKind::Pdlu);
        fail(&mut lcs, 0, ComponentKind::Lfe);
        assert!(matches!(
            planner().plan_ingress(&lcs, 0, 3),
            IngressRoute::PdluCover { .. }
        ));
    }

    #[test]
    fn dead_eib_blocks_all_ingress_coverage() {
        let mut lcs = eth6();
        fail(&mut lcs, 0, ComponentKind::Lfe);
        let p = CoveragePlanner::new(false);
        assert_eq!(
            p.plan_ingress(&lcs, 0, 3),
            IngressRoute::Blocked(DropCause::IngressDown)
        );
    }

    #[test]
    fn dead_bus_controller_blocks_own_coverage() {
        let mut lcs = eth6();
        fail(&mut lcs, 0, ComponentKind::Sru);
        fail(&mut lcs, 0, ComponentKind::BusController);
        assert_eq!(
            planner().plan_ingress(&lcs, 0, 3),
            IngressRoute::Blocked(DropCause::IngressDown)
        );
    }

    #[test]
    fn helpers_with_dead_bus_controllers_are_ineligible() {
        let mut lcs = views(&[ProtocolKind::Ethernet; 3]);
        fail(&mut lcs, 0, ComponentKind::Lfe);
        fail(&mut lcs, 1, ComponentKind::BusController);
        // LC1's BC is down; LC2 (also the egress) still helps.
        assert_eq!(
            planner().plan_ingress(&lcs, 0, 2),
            IngressRoute::RemoteLookup { helper: 2 }
        );
        // Kill LC2's BC too: nobody can help.
        fail(&mut lcs, 2, ComponentKind::BusController);
        assert_eq!(
            planner().plan_ingress(&lcs, 0, 2),
            IngressRoute::Blocked(DropCause::NoCoverage)
        );
    }

    #[test]
    fn helper_selection_prefers_most_spare() {
        let mut lcs = eth6();
        fail(&mut lcs, 0, ComponentKind::Lfe);
        lcs[2].spare_bps = 1.0 * GBPS;
        lcs[4].spare_bps = 9.0 * GBPS;
        match planner().plan_ingress(&lcs, 0, 3) {
            IngressRoute::RemoteLookup { helper } => assert_eq!(helper, 4),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn helpers_without_spare_are_skipped() {
        let mut lcs = views(&[ProtocolKind::Ethernet; 3]);
        fail(&mut lcs, 0, ComponentKind::Lfe);
        lcs[1].spare_bps = 0.0;
        lcs[2].spare_bps = 0.0;
        // Neither remaining card has spare capacity: blocked.
        assert_eq!(
            planner().plan_ingress(&lcs, 0, 2),
            IngressRoute::Blocked(DropCause::NoCoverage)
        );
    }

    #[test]
    fn egress_piu_failure_blocks() {
        let mut lcs = eth6();
        fail(&mut lcs, 3, ComponentKind::Piu);
        assert_eq!(
            planner().plan_egress(&lcs, 0, 3),
            EgressRoute::Blocked(DropCause::EgressDown)
        );
    }

    #[test]
    fn egress_pdlu_same_protocol_goes_direct() {
        let mut lcs = eth6();
        fail(&mut lcs, 3, ComponentKind::Pdlu);
        assert_eq!(planner().plan_egress(&lcs, 0, 3), EgressRoute::PdluDirect);
    }

    #[test]
    fn egress_pdlu_cross_protocol_uses_inter() {
        let mut lcs = views(&[
            ProtocolKind::Pos,      // ingress
            ProtocolKind::Ethernet, // helper candidate (matches egress)
            ProtocolKind::Atm,
            ProtocolKind::Ethernet, // egress
        ]);
        fail(&mut lcs, 3, ComponentKind::Pdlu);
        match planner().plan_egress(&lcs, 0, 3) {
            EgressRoute::PdluViaInter { inter } => assert_eq!(inter, 1),
            other => panic!("expected PdluViaInter, got {other:?}"),
        }
    }

    #[test]
    fn egress_pdlu_no_matching_protocol_blocks() {
        let mut lcs = views(&[ProtocolKind::Pos, ProtocolKind::Atm, ProtocolKind::Ethernet]);
        fail(&mut lcs, 2, ComponentKind::Pdlu);
        assert_eq!(
            planner().plan_egress(&lcs, 0, 2),
            EgressRoute::Blocked(DropCause::NoCoverage)
        );
    }

    #[test]
    fn egress_sru_failure_ships_packets_to_pdlu() {
        let mut lcs = eth6();
        fail(&mut lcs, 3, ComponentKind::Sru);
        assert_eq!(planner().plan_egress(&lcs, 0, 3), EgressRoute::SruCover);
    }

    #[test]
    fn egress_pdlu_and_sru_both_failed_still_direct() {
        // PdluDirect bypasses both the SRU and the PDLU of LC_out.
        let mut lcs = eth6();
        fail(&mut lcs, 3, ComponentKind::Pdlu);
        fail(&mut lcs, 3, ComponentKind::Sru);
        assert_eq!(planner().plan_egress(&lcs, 0, 3), EgressRoute::PdluDirect);
    }

    #[test]
    fn egress_lfe_failure_is_irrelevant() {
        let mut lcs = eth6();
        fail(&mut lcs, 3, ComponentKind::Lfe);
        assert_eq!(planner().plan_egress(&lcs, 0, 3), EgressRoute::Normal);
    }

    #[test]
    fn uses_eib_data_reflects_route() {
        let mut lcs = eth6();
        fail(&mut lcs, 0, ComponentKind::Lfe);
        let r = planner().plan(&lcs, 0, 3);
        assert!(!r.uses_eib_data(), "remote lookup rides control lines only");
        fail(&mut lcs, 0, ComponentKind::Sru);
        let r = planner().plan(&lcs, 0, 3);
        assert!(r.uses_eib_data());
    }

    #[test]
    fn serviceable_matches_planner_for_ingress_failures() {
        let mut lcs = eth6();
        assert!(lc_serviceable(&lcs, 0, Some(3), true));
        fail(&mut lcs, 0, ComponentKind::Sru);
        assert!(lc_serviceable(&lcs, 0, Some(3), true));
        assert!(!lc_serviceable(&lcs, 0, Some(3), false), "dead EIB");
        // Kill every helper's PI units.
        for i in 1..6 {
            fail(&mut lcs, i, ComponentKind::Lfe);
        }
        assert!(!lc_serviceable(&lcs, 0, Some(3), true));
    }

    #[test]
    fn serviceable_respects_same_protocol_for_pdlu() {
        let mut lcs = views(&[ProtocolKind::Ethernet, ProtocolKind::Atm, ProtocolKind::Atm]);
        fail(&mut lcs, 0, ComponentKind::Pdlu);
        assert!(
            !lc_serviceable(&lcs, 0, None, true),
            "no Ethernet helper exists"
        );
        lcs[1].protocol = ProtocolKind::Ethernet;
        assert!(lc_serviceable(&lcs, 0, None, true));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn health_strategy() -> impl Strategy<Value = LcComponents> {
            (
                any::<bool>(),
                any::<bool>(),
                any::<bool>(),
                any::<bool>(),
                any::<bool>(),
            )
                .prop_map(|(piu, pdlu, sru, lfe, bc)| {
                    let h = |b: bool| if b { Health::Failed } else { Health::Healthy };
                    let mut c = LcComponents::healthy();
                    c.piu = h(piu);
                    c.pdlu = h(pdlu);
                    c.sru = h(sru);
                    c.lfe = h(lfe);
                    c.bus_controller = h(bc);
                    c
                })
        }

        fn views_strategy(n: usize) -> impl Strategy<Value = Vec<LcView>> {
            proptest::collection::vec(
                (health_strategy(), 0usize..3).prop_map(|(components, p)| LcView {
                    protocol: ProtocolKind::ALL[p],
                    components,
                    spare_bps: 1e9, // positive so eligibility = health rules
                }),
                n..=n,
            )
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]

            /// Any helper the planner returns satisfies the §3.2
            /// eligibility rules, and "Normal" means exactly "no unit
            /// on the ingress path failed".
            #[test]
            fn ingress_plans_are_always_legal(views in views_strategy(6),
                                              egress in 1u16..6) {
                let planner = CoveragePlanner::new(true);
                let me = &views[0];
                match planner.plan_ingress(&views, 0, egress) {
                    IngressRoute::Normal => {
                        prop_assert!(me.components.piu == Health::Healthy);
                        prop_assert!(me.components.pdlu == Health::Healthy);
                        prop_assert!(me.components.sru == Health::Healthy);
                        prop_assert!(me.components.lfe == Health::Healthy);
                    }
                    IngressRoute::PdluCover { helper } => {
                        prop_assert_ne!(helper, 0);
                        let h = &views[helper as usize];
                        prop_assert!(h.components.pdlu == Health::Healthy);
                        prop_assert!(h.components.pi_units_healthy());
                        prop_assert!(h.components.bus_controller == Health::Healthy);
                        prop_assert_eq!(h.protocol, me.protocol);
                        prop_assert!(me.components.bus_controller == Health::Healthy);
                    }
                    IngressRoute::SruCover { helper } => {
                        prop_assert_ne!(helper, 0);
                        let h = &views[helper as usize];
                        prop_assert!(h.components.pi_units_healthy());
                        prop_assert!(h.components.bus_controller == Health::Healthy);
                        // SRU cover is only planned when the PDLU works.
                        prop_assert!(me.components.pdlu == Health::Healthy);
                    }
                    IngressRoute::RemoteLookup { helper } => {
                        prop_assert_ne!(helper, 0);
                        let h = &views[helper as usize];
                        prop_assert!(h.components.lfe == Health::Healthy);
                        prop_assert!(h.components.bus_controller == Health::Healthy);
                        // Only the LFE is down.
                        prop_assert!(me.components.pdlu == Health::Healthy);
                        prop_assert!(me.components.sru == Health::Healthy);
                    }
                    IngressRoute::Blocked(_) => {}
                }
            }

            /// Relationships between the physical planner and the
            /// model-accounting predicate (see `lc_serviceable` docs):
            /// they agree exactly on healthy cards, on PIU failures,
            /// and on dead-bus cases; elsewhere each can be stricter
            /// only in its documented direction.
            #[test]
            fn serviceable_and_planner_are_consistent(views in views_strategy(5),
                                                      eib in any::<bool>()) {
                let planner = CoveragePlanner::new(eib);
                for lc in 0..5u16 {
                    let route = planner.plan_ingress(&views, lc, (lc + 1) % 5);
                    let plan_ok = !matches!(route, IngressRoute::Blocked(_));
                    let serviceable = lc_serviceable(&views, lc, None, eib);
                    let me = &views[lc as usize].components;

                    if me.piu == Health::Failed {
                        prop_assert!(!plan_ok && !serviceable);
                        continue;
                    }
                    if me.operational_standalone() {
                        prop_assert!(plan_ok && serviceable);
                        continue;
                    }
                    // Faulty and needing the bus: both demand EIB + BC.
                    if !eib || me.bus_controller == Health::Failed {
                        prop_assert!(!plan_ok && !serviceable);
                        continue;
                    }
                    // PDLU-failure cases: the planner additionally
                    // requires the helper's PI units — it may block
                    // where the model says serviceable, never the
                    // reverse.
                    if me.pdlu == Health::Failed && plan_ok {
                        prop_assert!(serviceable, "planner ok must imply model ok for PDLU");
                    }
                    // Pure LFE failure: the model requires a helper
                    // with *both* PI units, the planner only an LFE —
                    // serviceable implies plan_ok there.
                    if me.pdlu == Health::Healthy
                        && me.sru == Health::Healthy
                        && me.lfe == Health::Failed
                        && serviceable
                    {
                        prop_assert!(plan_ok, "model ok must imply planner ok for LFE");
                    }
                    // SRU failure (PDLU healthy): identical rules.
                    if me.pdlu == Health::Healthy && me.sru == Health::Failed {
                        prop_assert_eq!(plan_ok, serviceable, "SRU case must coincide");
                    }
                }
            }

            /// Egress plans never name an ineligible intermediate.
            #[test]
            fn egress_plans_are_always_legal(views in views_strategy(6)) {
                let planner = CoveragePlanner::new(true);
                let out = &views[3];
                match planner.plan_egress(&views, 0, 3) {
                    EgressRoute::Normal => {
                        prop_assert!(out.components.piu == Health::Healthy);
                        prop_assert!(out.components.pdlu == Health::Healthy);
                        prop_assert!(out.components.sru == Health::Healthy);
                    }
                    EgressRoute::PdluDirect => {
                        prop_assert_eq!(views[0].protocol, out.protocol);
                        prop_assert!(views[0].components.pdlu == Health::Healthy);
                        prop_assert!(views[0].components.bus_controller == Health::Healthy);
                        prop_assert!(out.components.bus_controller == Health::Healthy);
                    }
                    EgressRoute::PdluViaInter { inter } => {
                        prop_assert!(inter != 0 && inter != 3);
                        let h = &views[inter as usize];
                        prop_assert!(h.components.pdlu == Health::Healthy);
                        prop_assert!(h.components.sru == Health::Healthy);
                        prop_assert!(h.components.bus_controller == Health::Healthy);
                        prop_assert_eq!(h.protocol, out.protocol);
                    }
                    EgressRoute::SruCover => {
                        prop_assert!(out.components.pdlu == Health::Healthy);
                        prop_assert!(out.components.bus_controller == Health::Healthy);
                        prop_assert!(views[0].components.bus_controller == Health::Healthy);
                    }
                    EgressRoute::Blocked(_) => {}
                }
            }
        }
    }

    #[test]
    fn serviceable_excludes_lc_out() {
        let mut lcs = views(&[ProtocolKind::Ethernet; 3]);
        fail(&mut lcs, 0, ComponentKind::Sru);
        fail(&mut lcs, 1, ComponentKind::Sru);
        // Only LC2 could help, but it is the excluded LC_out.
        assert!(!lc_serviceable(&lcs, 0, Some(2), true));
        assert!(lc_serviceable(&lcs, 0, None, true));
    }
}
