//! The distributed round-robin TDM arbiter for the EIB data lines
//! (§4, Figure 4).
//!
//! Mechanism as described by the paper:
//!
//! * `Ctr_β` (here `beta`) counts the logical paths (LPs) currently
//!   sharing the data lines; every LC tracks it, incremented on each
//!   LP establishment and decremented on release.
//! * Each LC_init is assigned a unique ID in LP-establishment order
//!   (`Ctr_id`): the first LP gets ID 1, the next ID 2, …
//! * `Ctr_r` is a countdown replicated at every LC; an LC transmits
//!   when `Ctr_r` equals its ID. Finishing a turn lowers the shared
//!   line `L_t`, decrementing every copy of `Ctr_r` simultaneously;
//!   when `Ctr_r` reaches zero the line `L_p` is raised and every LC
//!   reloads `Ctr_r` with `β` — so "the most recently added requesting
//!   LC has its first turn" and turns proceed in descending-ID order.
//! * Releasing an LP (REL_D carrying `id_o`) decrements `β` and every
//!   ID larger than `id_o`, keeping IDs contiguous in `1..=β`.
//!
//! Because every copy of `Ctr_r` moves in lockstep, the arbiter is
//! modelled with one shared countdown plus per-LC IDs; the lockstep
//! property itself is the invariant the hardware lines guarantee.

/// Distributed TDM arbiter state for the EIB data lines.
#[derive(Debug, Clone)]
pub struct TdmArbiter {
    /// `ids[lc]` is `Some(Ctr_id)` while that LC holds a logical path.
    ids: Vec<Option<u32>>,
    /// Number of active logical paths (`Ctr_β`).
    beta: u32,
    /// The replicated countdown (`Ctr_r`); zero means "no active LP".
    ctr_r: u32,
}

impl TdmArbiter {
    /// An arbiter for a router with `n_lcs` linecards, no LPs active.
    pub fn new(n_lcs: usize) -> Self {
        TdmArbiter {
            ids: vec![None; n_lcs],
            beta: 0,
            ctr_r: 0,
        }
    }

    /// Number of active logical paths (`Ctr_β`).
    pub fn beta(&self) -> u32 {
        self.beta
    }

    /// The assigned ID (`Ctr_id`) of a linecard's LP, if it has one.
    pub fn id_of(&self, lc: usize) -> Option<u32> {
        self.ids[lc]
    }

    /// Establish a logical path for `lc`. Returns the assigned ID.
    ///
    /// # Panics
    /// Panics if `lc` already holds an LP — the protocol requires a
    /// release first (an LC has a single REQ_D outstanding at a time).
    pub fn establish(&mut self, lc: usize) -> u32 {
        assert!(self.ids[lc].is_none(), "LC {lc} already holds an LP");
        self.beta += 1;
        let id = self.beta;
        self.ids[lc] = Some(id);
        if self.beta == 1 {
            // First LP: start the countdown at β so it gets the turn.
            self.ctr_r = 1;
        }
        // A newcomer joins mid-cycle without disturbing the countdown;
        // its first turn comes when the cycle reloads to the new β.
        id
    }

    /// Release `lc`'s logical path (REL_D with `id_o`): IDs above it
    /// compact down and `β` shrinks.
    ///
    /// # Panics
    /// Panics if `lc` holds no LP.
    pub fn release(&mut self, lc: usize) {
        let id_o = self.ids[lc].take().expect("release without an LP");
        self.beta -= 1;
        for id in self.ids.iter_mut().flatten() {
            if *id > id_o {
                *id -= 1;
            }
        }
        // The countdown may now point past the compacted range.
        if self.ctr_r > self.beta {
            self.ctr_r = self.beta;
        }
    }

    /// Whose turn is it to use the data lines?
    ///
    /// Returns `None` when no LP is active.
    pub fn whose_turn(&self) -> Option<usize> {
        if self.beta == 0 {
            return None;
        }
        self.ids.iter().position(|&id| id == Some(self.ctr_r))
    }

    /// The current holder finished transmitting (lowers `L_t`):
    /// advance the countdown; on reaching zero, `L_p` reloads it to β.
    pub fn finish_turn(&mut self) {
        if self.beta == 0 {
            return;
        }
        self.ctr_r -= 1;
        if self.ctr_r == 0 {
            self.ctr_r = self.beta;
        }
    }

    /// Check the arbiter's structural invariants (used by tests and
    /// debug assertions in the simulator): IDs are exactly `1..=β`
    /// with no duplicates, and the countdown is within range.
    pub fn invariants_hold(&self) -> bool {
        let mut ids: Vec<u32> = self.ids.iter().flatten().copied().collect();
        ids.sort_unstable();
        let expect: Vec<u32> = (1..=self.beta).collect();
        ids == expect && (self.beta == 0) == (self.ctr_r == 0) && self.ctr_r <= self.beta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_arbiter_has_no_turn() {
        let a = TdmArbiter::new(4);
        assert_eq!(a.whose_turn(), None);
        assert_eq!(a.beta(), 0);
        assert!(a.invariants_hold());
    }

    #[test]
    fn single_lp_always_gets_the_turn() {
        let mut a = TdmArbiter::new(4);
        let id = a.establish(2);
        assert_eq!(id, 1);
        assert_eq!(a.whose_turn(), Some(2));
        a.finish_turn();
        assert_eq!(a.whose_turn(), Some(2), "sole LP repeats");
        assert!(a.invariants_hold());
    }

    #[test]
    fn ids_assigned_in_establishment_order() {
        let mut a = TdmArbiter::new(4);
        assert_eq!(a.establish(3), 1);
        assert_eq!(a.establish(0), 2);
        assert_eq!(a.establish(1), 3);
        assert_eq!(a.id_of(3), Some(1));
        assert_eq!(a.id_of(0), Some(2));
        assert_eq!(a.id_of(1), Some(3));
        assert_eq!(a.id_of(2), None);
        assert!(a.invariants_hold());
    }

    #[test]
    fn round_robin_descending_id_order() {
        // Paper: after a reload "the most recently added requesting LC
        // has its first turn" — turns go β, β−1, …, 1, then reload.
        let mut a = TdmArbiter::new(4);
        a.establish(0); // id 1
        a.establish(1); // id 2
        a.establish(2); // id 3
                        // Countdown started at 1 when LP-1 was alone; finish that turn
                        // so the cycle reloads to the full β.
        assert_eq!(a.whose_turn(), Some(0));
        a.finish_turn();
        let mut turns = Vec::new();
        for _ in 0..6 {
            turns.push(a.whose_turn().unwrap());
            a.finish_turn();
        }
        assert_eq!(turns, vec![2, 1, 0, 2, 1, 0], "descending ids, cyclic");
        assert!(a.invariants_hold());
    }

    #[test]
    fn every_lp_gets_equal_turns() {
        let mut a = TdmArbiter::new(5);
        for lc in 0..5 {
            a.establish(lc);
        }
        let mut counts = [0u32; 5];
        for _ in 0..100 {
            counts[a.whose_turn().unwrap()] += 1;
            a.finish_turn();
        }
        // 100 turns over 5 LPs = 20 each.
        assert!(counts.iter().all(|&c| c == 20), "unfair: {counts:?}");
    }

    #[test]
    fn release_compacts_ids() {
        let mut a = TdmArbiter::new(4);
        a.establish(0); // id 1
        a.establish(1); // id 2
        a.establish(2); // id 3
        a.release(1); // id 2 leaves
        assert_eq!(a.beta(), 2);
        assert_eq!(a.id_of(0), Some(1));
        assert_eq!(a.id_of(2), Some(2), "id 3 compacts to 2");
        assert!(a.invariants_hold());
        // Rotation continues over the survivors only.
        let mut seen = std::collections::HashSet::new();
        for _ in 0..4 {
            seen.insert(a.whose_turn().unwrap());
            a.finish_turn();
        }
        assert_eq!(seen, [0usize, 2].into_iter().collect());
    }

    #[test]
    fn release_during_high_countdown_clamps() {
        let mut a = TdmArbiter::new(3);
        a.establish(0);
        a.establish(1);
        a.establish(2);
        a.finish_turn(); // cycle into the full range
                         // Countdown is now 3 (reloaded); release the holder of id 3.
        let holder = a.whose_turn().unwrap();
        a.release(holder);
        assert!(a.invariants_hold());
        assert!(a.whose_turn().is_some(), "turn must remain valid");
    }

    #[test]
    fn release_last_lp_goes_idle() {
        let mut a = TdmArbiter::new(2);
        a.establish(1);
        a.release(1);
        assert_eq!(a.beta(), 0);
        assert_eq!(a.whose_turn(), None);
        a.finish_turn(); // no-op when idle
        assert!(a.invariants_hold());
    }

    #[test]
    #[should_panic(expected = "already holds")]
    fn double_establish_panics() {
        let mut a = TdmArbiter::new(2);
        a.establish(0);
        a.establish(0);
    }

    #[test]
    #[should_panic(expected = "without an LP")]
    fn release_without_lp_panics() {
        let mut a = TdmArbiter::new(2);
        a.release(0);
    }

    #[test]
    fn rejoin_after_release_gets_fresh_id() {
        let mut a = TdmArbiter::new(3);
        a.establish(0); // id 1
        a.establish(1); // id 2
        a.release(0);
        let id = a.establish(0);
        assert_eq!(id, 2, "ids stay contiguous");
        assert!(a.invariants_hold());
    }

    #[test]
    fn long_random_schedule_preserves_invariants() {
        // Deterministic pseudo-random establish/release/turn churn.
        let mut a = TdmArbiter::new(8);
        let mut s = 0x5EEDu64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for _ in 0..10_000 {
            let lc = (next() % 8) as usize;
            match next() % 3 {
                0 => {
                    if a.id_of(lc).is_none() {
                        a.establish(lc);
                    }
                }
                1 => {
                    if a.id_of(lc).is_some() {
                        a.release(lc);
                    }
                }
                _ => a.finish_turn(),
            }
            assert!(a.invariants_hold(), "invariants broken: {a:?}");
            if a.beta() > 0 {
                assert!(a.whose_turn().is_some(), "active arbiter lost its turn");
            }
        }
    }
}
