//! The paper's `B_prom` bandwidth-allocation rule (§4, "EIB Scheduling
//! and Arbitration"):
//!
//! > If `B_LCT ≤ B_BUS`, then `B_prom = B_LC`. If `B_LCT > B_BUS`,
//! > however, all the requesting LC's scale back their transmission
//! > rates accordingly by dropping packets, to arrive at
//! > `B_prom = (B_LC / B_LCT) × B_BUS`.

/// Compute each requester's promised bandwidth given the data-line
/// capacity `bus_capacity` (same units as the requests).
///
/// Zero-length input yields an empty vector; negative or non-finite
/// requests are a caller bug and panic in debug builds.
///
/// ```
/// use dra_core::eib::bandwidth::promised_bandwidth;
///
/// // Two faulty cards ask for 30 Gbps total on a 20 Gbps bus:
/// let prom = promised_bandwidth(&[10e9, 20e9], 20e9);
/// assert!((prom[0] - 20e9 / 3.0).abs() < 1.0); // scaled 2:1
/// assert!((prom[1] - 40e9 / 3.0).abs() < 1.0);
///
/// // Under-subscription grants everything.
/// assert_eq!(promised_bandwidth(&[1e9], 20e9), vec![1e9]);
/// ```
pub fn promised_bandwidth(requests: &[f64], bus_capacity: f64) -> Vec<f64> {
    debug_assert!(bus_capacity >= 0.0 && bus_capacity.is_finite());
    debug_assert!(requests.iter().all(|&b| b >= 0.0 && b.is_finite()));
    let total: f64 = requests.iter().sum();
    if total <= bus_capacity || total == 0.0 {
        requests.to_vec()
    } else {
        let scale = bus_capacity / total;
        requests.iter().map(|&b| b * scale).collect()
    }
}

/// Fraction of its request each LC receives (1.0 when the bus is not
/// oversubscribed). This is the quantity Figure 8 plots (normalized to
/// the load).
pub fn promised_fraction(requests: &[f64], bus_capacity: f64) -> f64 {
    let total: f64 = requests.iter().sum();
    if total <= bus_capacity || total == 0.0 {
        1.0
    } else {
        bus_capacity / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn under_subscription_grants_everything() {
        let req = [1.0, 2.0, 3.0];
        assert_eq!(promised_bandwidth(&req, 10.0), req.to_vec());
        assert_eq!(promised_fraction(&req, 10.0), 1.0);
    }

    #[test]
    fn exact_capacity_grants_everything() {
        let req = [4.0, 6.0];
        assert_eq!(promised_bandwidth(&req, 10.0), req.to_vec());
    }

    #[test]
    fn over_subscription_scales_proportionally() {
        let req = [10.0, 30.0];
        let prom = promised_bandwidth(&req, 20.0);
        assert!((prom[0] - 5.0).abs() < 1e-12);
        assert!((prom[1] - 15.0).abs() < 1e-12);
        assert!((promised_fraction(&req, 20.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_and_zero_requests() {
        assert!(promised_bandwidth(&[], 10.0).is_empty());
        assert_eq!(promised_bandwidth(&[0.0, 0.0], 10.0), vec![0.0, 0.0]);
        assert_eq!(promised_fraction(&[], 10.0), 1.0);
    }

    proptest! {
        #[test]
        fn total_never_exceeds_capacity(
            req in proptest::collection::vec(0.0..100.0_f64, 1..16),
            cap in 0.1..500.0_f64,
        ) {
            let prom = promised_bandwidth(&req, cap);
            let total: f64 = prom.iter().sum();
            prop_assert!(total <= cap.max(req.iter().sum::<f64>().min(cap)) + 1e-9);
            // Each promise never exceeds its request.
            for (p, r) in prom.iter().zip(&req) {
                prop_assert!(*p <= r + 1e-12);
            }
        }

        #[test]
        fn allocation_preserves_ratios(
            req in proptest::collection::vec(0.01..100.0_f64, 2..8),
            cap in 0.1..50.0_f64,
        ) {
            let prom = promised_bandwidth(&req, cap);
            // b_i / b_j must be preserved for all pairs.
            for i in 0..req.len() {
                for j in (i + 1)..req.len() {
                    let lhs = prom[i] * req[j];
                    let rhs = prom[j] * req[i];
                    prop_assert!((lhs - rhs).abs() < 1e-6 * lhs.abs().max(rhs.abs()).max(1.0));
                }
            }
        }
    }
}
