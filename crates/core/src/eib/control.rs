//! The EIB control lines: the three-tier control packets and a
//! CSMA/CD channel model.
//!
//! The paper (§4) assigns the control lines three jobs: arbitrating
//! access to the data lines (REQ_D / REP_D / REL_D), carrying lookup
//! traffic for failed LFEs (REQ_L / REP_L — replies ride in control
//! packets because they are smaller than the data-line setup would
//! cost), and disseminating fault/protocol information (the processing
//! tier's parameters).

use dra_net::addr::Ipv4Addr;
use dra_net::protocol::ProtocolKind;
use dra_router::components::ComponentKind;
use rand::Rng;
use std::collections::HashSet;

/// Communication-tier packet type (§4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CommType {
    /// Request to transfer data over the EIB.
    ReqD,
    /// Acceptance of an REQ_D by a willing, able LC.
    RepD,
    /// Request for a remote IP lookup (failed LFE).
    ReqL,
    /// Lookup reply, result embedded in the control packet.
    RepL,
    /// Release of a logical path (end of stream / resource shortage).
    RelD,
}

/// Processing-tier parameters (§4). All optional; which are present
/// depends on the communication type.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ProcParams {
    /// Requested transmission rate (bits/second) — REQ_D.
    pub data_rate_bps: Option<f64>,
    /// Protocol implemented by the initiating LC — used to find a
    /// same-protocol LC_inter for PDLU coverage.
    pub protocol: Option<ProtocolKind>,
    /// Which unit failed — tells helpers whether to expect packets
    /// (PDLU coverage, possibly via LC_inter) or cells (SRU coverage).
    pub faulty_component: Option<ComponentKind>,
    /// Address to look up — REQ_L.
    pub lookup_addr: Option<Ipv4Addr>,
    /// Lookup result (egress LC) — REP_L.
    pub lookup_result: Option<u16>,
    /// ID being released — REL_D (drives the arbiter's compaction).
    pub released_id: Option<u32>,
}

/// A three-tier EIB control packet.
#[derive(Debug, Clone, PartialEq)]
pub struct ControlPacket {
    /// Addressing tier: the initiating LC.
    pub init: u16,
    /// Addressing tier: the receiving LC (`None` = broadcast, as for
    /// REQ_D solicitations and REL_D announcements).
    pub rec: Option<u16>,
    /// Communication tier.
    pub comm: CommType,
    /// Processing tier.
    pub proc: ProcParams,
}

impl ControlPacket {
    /// Broadcast REQ_D soliciting a covering LC.
    pub fn req_d(init: u16, rate_bps: f64, protocol: ProtocolKind, faulty: ComponentKind) -> Self {
        ControlPacket {
            init,
            rec: None,
            comm: CommType::ReqD,
            proc: ProcParams {
                data_rate_bps: Some(rate_bps),
                protocol: Some(protocol),
                faulty_component: Some(faulty),
                ..Default::default()
            },
        }
    }

    /// REP_D acceptance from `helper` back to `init`.
    pub fn rep_d(helper: u16, init: u16) -> Self {
        ControlPacket {
            init: helper,
            rec: Some(init),
            comm: CommType::RepD,
            proc: Default::default(),
        }
    }

    /// REQ_L remote-lookup request.
    pub fn req_l(init: u16, addr: Ipv4Addr) -> Self {
        ControlPacket {
            init,
            rec: None,
            comm: CommType::ReqL,
            proc: ProcParams {
                lookup_addr: Some(addr),
                ..Default::default()
            },
        }
    }

    /// REP_L lookup reply carrying the egress LC.
    pub fn rep_l(helper: u16, init: u16, egress: u16) -> Self {
        ControlPacket {
            init: helper,
            rec: Some(init),
            comm: CommType::RepL,
            proc: ProcParams {
                lookup_result: Some(egress),
                ..Default::default()
            },
        }
    }

    /// Broadcast REL_D announcing the release of logical path `id`.
    pub fn rel_d(init: u16, id: u32) -> Self {
        ControlPacket {
            init,
            rec: None,
            comm: CommType::RelD,
            proc: ProcParams {
                released_id: Some(id),
                ..Default::default()
            },
        }
    }

    /// Wire size of a control packet in bytes (fixed format: the three
    /// tiers fit comfortably in one small frame).
    pub const WIRE_BYTES: u32 = 32;
}

/// Result of attempting to transmit on the CSMA/CD control lines.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TxResult {
    /// Transmission started; call [`CsmaChannel::complete`] with this
    /// token at `done_at` to learn whether it survived.
    Started {
        /// Token identifying this transmission.
        tx: u64,
        /// Absolute time the transmission finishes.
        done_at: f64,
    },
    /// Carrier sensed busy: retry when the channel frees.
    Deferred {
        /// Earliest time the channel may be free.
        until: f64,
    },
    /// Collision: both this attempt and the in-progress transmission
    /// are garbled; back off (see [`CsmaChannel::backoff_delay`]).
    Collided {
        /// End of the jam signal.
        jam_until: f64,
    },
}

/// A CSMA/CD bus at packet granularity.
///
/// Semantics: a station that senses the channel idle transmits; if a
/// second station starts within the propagation window `prop_delay_s`
/// (before the first station's signal reaches it), both transmissions
/// collide and are garbled. Completion is checked with
/// [`CsmaChannel::complete`], mirroring how a real controller aborts on
/// collision detect.
#[derive(Debug)]
pub struct CsmaChannel {
    /// Time to clock one control packet onto the lines.
    packet_time_s: f64,
    /// Collision vulnerability window.
    prop_delay_s: f64,
    /// Backoff slot (classically ≈ 2 × propagation delay).
    slot_s: f64,
    busy_until: f64,
    current_start: f64,
    current_tx: Option<u64>,
    next_tx: u64,
    garbled: HashSet<u64>,
    collisions: u64,
}

impl CsmaChannel {
    /// A channel clocking `ControlPacket::WIRE_BYTES` at `rate_bps`
    /// with the given propagation delay.
    pub fn new(rate_bps: f64, prop_delay_s: f64) -> Self {
        assert!(rate_bps > 0.0 && prop_delay_s >= 0.0);
        CsmaChannel {
            packet_time_s: ControlPacket::WIRE_BYTES as f64 * 8.0 / rate_bps,
            prop_delay_s,
            slot_s: (2.0 * prop_delay_s).max(1e-9),
            busy_until: 0.0,
            current_start: f64::NEG_INFINITY,
            current_tx: None,
            next_tx: 0,
            garbled: HashSet::new(),
            collisions: 0,
        }
    }

    /// Serialization time of one control packet.
    pub fn packet_time(&self) -> f64 {
        self.packet_time_s
    }

    /// Collisions observed so far.
    pub fn collisions(&self) -> u64 {
        self.collisions
    }

    /// Attempt to start transmitting at `now`.
    pub fn attempt(&mut self, now: f64) -> TxResult {
        if now < self.busy_until {
            if now < self.current_start + self.prop_delay_s {
                // The earlier transmission hasn't propagated to us yet:
                // we transmit into it — collision garbles both.
                if let Some(tx) = self.current_tx.take() {
                    self.garbled.insert(tx);
                }
                self.collisions += 1;
                // Both stations abort on collision detect; the channel
                // frees when the jam signal ends, not at the original
                // packet's end.
                let jam_until = now + self.slot_s;
                self.busy_until = jam_until;
                return TxResult::Collided { jam_until };
            }
            // Carrier sensed: defer (1-persistent CSMA retries at idle).
            return TxResult::Deferred {
                until: self.busy_until,
            };
        }
        let tx = self.next_tx;
        self.next_tx += 1;
        self.current_tx = Some(tx);
        self.current_start = now;
        self.busy_until = now + self.packet_time_s;
        TxResult::Started {
            tx,
            done_at: self.busy_until,
        }
    }

    /// Did transmission `tx` survive (no collision)? Consumes the token.
    pub fn complete(&mut self, tx: u64) -> bool {
        if self.garbled.remove(&tx) {
            return false;
        }
        if self.current_tx == Some(tx) {
            self.current_tx = None;
        }
        true
    }

    /// Binary-exponential backoff delay after the `attempt_no`-th
    /// collision (1-based), capped at 2¹⁰ slots per classic CSMA/CD.
    pub fn backoff_delay<R: Rng + ?Sized>(&self, rng: &mut R, attempt_no: u32) -> f64 {
        let exp = attempt_no.min(10);
        let max_slots = 1u64 << exp;
        let k = rng.gen_range(0..max_slots);
        k as f64 * self.slot_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn channel() -> CsmaChannel {
        // 1 Gbps control lines, 50 ns propagation.
        CsmaChannel::new(1e9, 50e-9)
    }

    #[test]
    fn packet_constructors_set_tiers() {
        let req = ControlPacket::req_d(3, 1.5e9, ProtocolKind::Atm, ComponentKind::Sru);
        assert_eq!(req.init, 3);
        assert_eq!(req.rec, None, "REQ_D broadcasts");
        assert_eq!(req.comm, CommType::ReqD);
        assert_eq!(req.proc.data_rate_bps, Some(1.5e9));
        assert_eq!(req.proc.protocol, Some(ProtocolKind::Atm));
        assert_eq!(req.proc.faulty_component, Some(ComponentKind::Sru));

        let rep = ControlPacket::rep_d(1, 3);
        assert_eq!((rep.init, rep.rec), (1, Some(3)));

        let ql = ControlPacket::req_l(2, Ipv4Addr(7));
        assert_eq!(ql.proc.lookup_addr, Some(Ipv4Addr(7)));

        let rl = ControlPacket::rep_l(4, 2, 5);
        assert_eq!(rl.proc.lookup_result, Some(5));

        let rel = ControlPacket::rel_d(0, 2);
        assert_eq!(rel.proc.released_id, Some(2));
        assert_eq!(rel.rec, None, "REL_D broadcasts");
    }

    #[test]
    fn idle_channel_transmits_successfully() {
        let mut ch = channel();
        match ch.attempt(1.0) {
            TxResult::Started { tx, done_at } => {
                assert!((done_at - (1.0 + ch.packet_time())).abs() < 1e-15);
                assert!(ch.complete(tx), "uncontended tx must succeed");
            }
            other => panic!("expected Started, got {other:?}"),
        }
        assert_eq!(ch.collisions(), 0);
    }

    #[test]
    fn carrier_sense_defers() {
        let mut ch = channel();
        let TxResult::Started { done_at, .. } = ch.attempt(0.0) else {
            panic!("first attempt must start");
        };
        // Second attempt after the propagation window but before the end.
        match ch.attempt(100e-9) {
            TxResult::Deferred { until } => assert_eq!(until, done_at),
            other => panic!("expected Deferred, got {other:?}"),
        }
        assert_eq!(ch.collisions(), 0);
    }

    #[test]
    fn near_simultaneous_attempts_collide() {
        let mut ch = channel();
        let TxResult::Started { tx, .. } = ch.attempt(0.0) else {
            panic!("first attempt must start");
        };
        // Within the 50 ns vulnerability window.
        match ch.attempt(20e-9) {
            TxResult::Collided { jam_until } => assert!(jam_until > 20e-9),
            other => panic!("expected Collided, got {other:?}"),
        }
        assert_eq!(ch.collisions(), 1);
        assert!(!ch.complete(tx), "the garbled transmission must fail");
    }

    #[test]
    fn channel_recovers_after_collision() {
        let mut ch = channel();
        ch.attempt(0.0);
        let TxResult::Collided { jam_until } = ch.attempt(10e-9) else {
            panic!("expected collision");
        };
        // After the jam clears, a retry succeeds.
        match ch.attempt(jam_until + 1e-9) {
            TxResult::Started { tx, .. } => assert!(ch.complete(tx)),
            other => panic!("expected Started, got {other:?}"),
        }
    }

    #[test]
    fn backoff_grows_with_attempts_and_stays_bounded() {
        let ch = channel();
        let mut rng = SmallRng::seed_from_u64(1);
        let max1: f64 = (0..200)
            .map(|_| ch.backoff_delay(&mut rng, 1))
            .fold(0.0, f64::max);
        let max6: f64 = (0..200)
            .map(|_| ch.backoff_delay(&mut rng, 6))
            .fold(0.0, f64::max);
        assert!(max6 > max1, "backoff range must widen");
        // Cap at 2^10 slots.
        let hard_cap = 1024.0 * 2.0 * 50e-9;
        for _ in 0..500 {
            assert!(ch.backoff_delay(&mut rng, 30) <= hard_cap);
        }
    }

    #[test]
    fn sequential_transmissions_share_the_channel() {
        let mut ch = channel();
        let TxResult::Started { tx: t1, done_at } = ch.attempt(0.0) else {
            panic!()
        };
        assert!(ch.complete(t1));
        let TxResult::Started { tx: t2, .. } = ch.attempt(done_at) else {
            panic!("channel must be free exactly at done_at")
        };
        assert!(ch.complete(t2));
    }
}
