//! Slot-level simulator of the EIB data lines, driven by the
//! distributed TDM arbiter of §4.
//!
//! The packet-level router model ([`crate::sim`]) approximates the
//! data lines as a fluid server per logical path at its promised rate.
//! This module is the *exact* mechanism — turn-by-turn round-robin
//! among established LPs, one bounded burst per turn — so the fluid
//! approximation can be checked: over any interval long compared to a
//! turn, the per-LP goodput of the slot-level machine converges to the
//! weighted share the fluid model assumes (see the `fluid_equivalence`
//! tests and the `eib_arbitration` bench).

use crate::eib::arbiter::TdmArbiter;
use std::collections::VecDeque;

/// A queued transfer unit (one packet's worth of bytes on the bus).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transfer {
    /// Opaque tag returned on completion (e.g. a packet id).
    pub tag: u64,
    /// Bytes to move.
    pub bytes: u32,
}

/// A completed transfer with its finish time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Completion {
    /// The LP (linecard index) whose queue it left.
    pub lp: usize,
    /// The transfer's tag.
    pub tag: u64,
    /// Absolute completion time (seconds).
    pub at: f64,
}

/// The slot-level data-line machine.
///
/// * A turn lets the holding LP transmit up to `max_turn_bytes`
///   (trailing packets are *not* split — the bus carries variable
///   length packets whole, one of the paper's stated advantages — so a
///   turn ends early rather than fragment).
/// * An LP with an empty queue passes its turn instantly.
/// * Establish/release drive the shared [`TdmArbiter`], so ID
///   compaction and the newest-first reload order are exactly §4's.
#[derive(Debug)]
pub struct DataLines {
    arbiter: TdmArbiter,
    queues: Vec<VecDeque<Transfer>>,
    rate_bps: f64,
    max_turn_bytes: u32,
    /// Per-LP turn quantum override: "the bandwidth taken by an LC is
    /// proportional to its requirement posted … during its LP setup",
    /// realized as a proportional byte quantum per turn.
    weights: Vec<Option<u32>>,
    now: f64,
    /// Total bytes moved per LP (for share measurements).
    moved_bytes: Vec<u64>,
}

impl DataLines {
    /// A bus for `n_lcs` cards at `rate_bps`, with the given turn quantum.
    pub fn new(n_lcs: usize, rate_bps: f64, max_turn_bytes: u32) -> Self {
        assert!(rate_bps > 0.0 && max_turn_bytes > 0);
        DataLines {
            arbiter: TdmArbiter::new(n_lcs),
            queues: (0..n_lcs).map(|_| VecDeque::new()).collect(),
            rate_bps,
            max_turn_bytes,
            weights: vec![None; n_lcs],
            now: 0.0,
            moved_bytes: vec![0; n_lcs],
        }
    }

    /// Set (or clear) an LP's turn quantum, making its long-run share
    /// proportional to its posted requirement relative to the others'.
    pub fn set_turn_quantum(&mut self, lp: usize, bytes: Option<u32>) {
        assert!(bytes.is_none_or(|b| b > 0), "quantum must be positive");
        self.weights[lp] = bytes;
    }

    /// Current simulation time of the bus.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Bytes moved so far for one LP.
    pub fn moved_bytes(&self, lp: usize) -> u64 {
        self.moved_bytes[lp]
    }

    /// Establish a logical path for `lp` (REQ_D/REP_D done elsewhere).
    pub fn establish(&mut self, lp: usize) -> u32 {
        self.arbiter.establish(lp)
    }

    /// Release `lp`'s logical path (REL_D). Its queued transfers are
    /// returned (the paper lets either side release mid-stream).
    pub fn release(&mut self, lp: usize) -> Vec<Transfer> {
        self.arbiter.release(lp);
        self.queues[lp].drain(..).collect()
    }

    /// Does `lp` currently hold a logical path?
    pub fn has_lp(&self, lp: usize) -> bool {
        self.arbiter.id_of(lp).is_some()
    }

    /// Queue a transfer on `lp`'s logical path.
    ///
    /// # Panics
    /// Panics if `lp` holds no logical path — enqueueing without an
    /// REQ_D/REP_D handshake is a protocol violation.
    pub fn enqueue(&mut self, lp: usize, transfer: Transfer) {
        assert!(self.has_lp(lp), "enqueue on LP {lp} without a logical path");
        self.queues[lp].push_back(transfer);
    }

    /// Pending transfers on one LP.
    pub fn queue_len(&self, lp: usize) -> usize {
        self.queues[lp].len()
    }

    /// Any work pending anywhere?
    pub fn is_idle(&self) -> bool {
        self.queues.iter().all(|q| q.is_empty())
    }

    /// Run turns until `until` (absolute time), returning completions
    /// in order. Time only advances while bytes move; passing turns is
    /// free (the hardware signal `L_t` is instantaneous at this
    /// timescale).
    pub fn run_until(&mut self, until: f64) -> Vec<Completion> {
        assert!(until >= self.now);
        let mut done = Vec::new();
        // Guard: a full arbiter cycle with no transmissions means the
        // bus is idle; stop instead of spinning.
        while self.now < until {
            let Some(holder) = self.arbiter.whose_turn() else {
                break; // no LPs at all
            };
            let mut turn_budget = self.weights[holder].unwrap_or(self.max_turn_bytes);
            let mut transmitted = false;
            while let Some(&head) = self.queues[holder].front() {
                if head.bytes > turn_budget && transmitted {
                    break; // would fragment; yield the rest of the turn
                }
                let finish = self.now + head.bytes as f64 * 8.0 / self.rate_bps;
                if finish > until {
                    // The interval ends mid-packet: stop the clock at
                    // `until` without consuming the packet (slot-level
                    // callers advance in bus-scale steps, so this
                    // conservative cut keeps accounting simple).
                    self.now = until;
                    return done;
                }
                self.queues[holder].pop_front();
                self.now = finish;
                self.moved_bytes[holder] += head.bytes as u64;
                done.push(Completion {
                    lp: holder,
                    tag: head.tag,
                    at: finish,
                });
                transmitted = true;
                turn_budget = turn_budget.saturating_sub(head.bytes);
                if turn_budget == 0 {
                    break;
                }
            }
            self.arbiter.finish_turn();
            if !transmitted && self.is_idle() {
                break; // nothing anywhere; avoid spinning turns forever
            }
        }
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bus(n: usize) -> DataLines {
        // 40 Gbps, 9 KB turn quantum (~6 MTU packets).
        DataLines::new(n, 40e9, 9000)
    }

    #[test]
    fn single_lp_transfers_in_fifo_order() {
        let mut b = bus(4);
        b.establish(1);
        for tag in 0..5 {
            b.enqueue(1, Transfer { tag, bytes: 1500 });
        }
        let done = b.run_until(1.0);
        let tags: Vec<u64> = done.iter().map(|c| c.tag).collect();
        assert_eq!(tags, vec![0, 1, 2, 3, 4]);
        assert!(b.is_idle());
        // 5 x 1500B at 40 Gbps = 1.5 us.
        assert!((b.now() - 5.0 * 1500.0 * 8.0 / 40e9).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "without a logical path")]
    fn enqueue_without_lp_panics() {
        let mut b = bus(2);
        b.enqueue(0, Transfer { tag: 1, bytes: 100 });
    }

    #[test]
    fn equal_backlogs_get_equal_shares() {
        let mut b = bus(4);
        for lp in 0..4 {
            b.establish(lp);
            for tag in 0..200 {
                b.enqueue(lp, Transfer { tag, bytes: 1000 });
            }
        }
        // Run long enough for ~100 packets total.
        b.run_until(100.0 * 1000.0 * 8.0 / 40e9);
        let moved: Vec<u64> = (0..4).map(|lp| b.moved_bytes(lp)).collect();
        let min = *moved.iter().min().unwrap();
        let max = *moved.iter().max().unwrap();
        // Round robin equalizes to within one turn quantum (the horizon
        // can cut a cycle mid-way).
        assert!(
            max - min <= 9000,
            "unfair shares: {moved:?} (spread exceeds one turn quantum)"
        );
    }

    #[test]
    fn idle_lp_passes_its_turn_without_consuming_time() {
        let mut b = bus(3);
        b.establish(0);
        b.establish(1); // never enqueues
        for tag in 0..10 {
            b.enqueue(0, Transfer { tag, bytes: 1000 });
        }
        let done = b.run_until(1.0);
        assert_eq!(done.len(), 10);
        // Total time is exactly LP0's serialization time; LP1's empty
        // turns were free.
        assert!((b.now() - 10.0 * 1000.0 * 8.0 / 40e9).abs() < 1e-12);
    }

    #[test]
    fn release_returns_unsent_transfers_and_compacts() {
        let mut b = bus(3);
        b.establish(0);
        b.establish(1);
        b.enqueue(1, Transfer { tag: 9, bytes: 500 });
        let returned = b.release(1);
        assert_eq!(returned, vec![Transfer { tag: 9, bytes: 500 }]);
        assert!(!b.has_lp(1));
        assert!(b.has_lp(0));
        // Bus still serves LP0.
        b.enqueue(0, Transfer { tag: 1, bytes: 500 });
        assert_eq!(b.run_until(1.0).len(), 1);
    }

    #[test]
    fn run_until_respects_the_horizon() {
        let mut b = bus(2);
        b.establish(0);
        // One packet takes 0.3 us; horizon at 0.1 us completes nothing.
        b.enqueue(
            0,
            Transfer {
                tag: 1,
                bytes: 1500,
            },
        );
        let done = b.run_until(0.1e-6);
        assert!(done.is_empty());
        assert_eq!(b.now(), 0.1e-6);
        assert_eq!(b.queue_len(0), 1);
        // Extending the horizon finishes it.
        let done = b.run_until(1.0e-6);
        assert_eq!(done.len(), 1);
    }

    #[test]
    fn turn_quantum_bounds_per_turn_burst() {
        // LP0 has a huge backlog of small packets, LP1 one packet:
        // LP1 must not wait for LP0's whole backlog, only one quantum.
        let mut b = DataLines::new(2, 40e9, 3000);
        b.establish(0); // id 1
        b.establish(1); // id 2 — newest goes first after reload
        for tag in 0..100 {
            b.enqueue(0, Transfer { tag, bytes: 1500 });
        }
        b.enqueue(
            1,
            Transfer {
                tag: 999,
                bytes: 1500,
            },
        );
        let done = b.run_until(1.0);
        let pos_lp1 = done.iter().position(|c| c.lp == 1).unwrap();
        assert!(
            pos_lp1 <= 2,
            "LP1 served at position {pos_lp1}; quantum (2 pkts) not enforced"
        );
    }

    /// The documented fluid-model equivalence: long-run goodput of the
    /// slot-level machine matches the equal-share fluid rate.
    #[test]
    fn fluid_equivalence_on_saturated_lps() {
        let rate = 40e9;
        let mut b = DataLines::new(5, rate, 9000);
        let k = 4; // four saturated LPs
        for lp in 0..k {
            b.establish(lp);
            for tag in 0..2_000 {
                b.enqueue(lp, Transfer { tag, bytes: 1200 });
            }
        }
        let horizon = 1e-3; // 1 ms — hundreds of turns per LP
        b.run_until(horizon);
        let fluid_share_bytes = rate / 8.0 * horizon / k as f64;
        for lp in 0..k {
            let got = b.moved_bytes(lp) as f64;
            assert!(
                (got / fluid_share_bytes - 1.0).abs() < 0.02,
                "LP{lp}: slot-level {got} vs fluid {fluid_share_bytes}"
            );
        }
    }

    #[test]
    fn weighted_quanta_give_proportional_shares() {
        // LP0 posted twice LP1's requirement: 2:1 byte quanta yield a
        // 2:1 long-run share.
        let mut b = DataLines::new(2, 40e9, 3000);
        b.establish(0);
        b.establish(1);
        b.set_turn_quantum(0, Some(6000));
        b.set_turn_quantum(1, Some(3000));
        for tag in 0..5_000 {
            b.enqueue(0, Transfer { tag, bytes: 1000 });
            b.enqueue(1, Transfer { tag, bytes: 1000 });
        }
        b.run_until(5e-4);
        let r = b.moved_bytes(0) as f64 / b.moved_bytes(1) as f64;
        assert!((r - 2.0).abs() < 0.15, "share ratio {r}, expected ~2");
    }

    #[test]
    fn clearing_a_quantum_restores_the_default() {
        let mut b = DataLines::new(2, 40e9, 3000);
        b.establish(0);
        b.set_turn_quantum(0, Some(1000));
        b.set_turn_quantum(0, None);
        b.enqueue(
            0,
            Transfer {
                tag: 1,
                bytes: 2500,
            },
        );
        // Default quantum (3000) admits the 2500B packet in one turn.
        assert_eq!(b.run_until(1.0).len(), 1);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        #[derive(Debug, Clone)]
        enum Op {
            Establish(usize),
            Release(usize),
            Enqueue(usize, u32),
            Run(f64),
        }

        fn op_strategy(n: usize) -> impl Strategy<Value = Op> {
            prop_oneof![
                (0..n).prop_map(Op::Establish),
                (0..n).prop_map(Op::Release),
                ((0..n), 40u32..1500).prop_map(|(lp, b)| Op::Enqueue(lp, b)),
                (1e-7..1e-5_f64).prop_map(Op::Run),
            ]
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// Under arbitrary op sequences: bytes are conserved
            /// (enqueued = completed + still queued + returned), per-LP
            /// completions stay FIFO, and time never runs backwards.
            #[test]
            fn random_schedules_preserve_invariants(
                ops in proptest::collection::vec(op_strategy(4), 1..120),
            ) {
                let mut bus = DataLines::new(4, 40e9, 6000);
                let mut enqueued = [0u64; 4];
                let mut returned = [0u64; 4];
                let mut completed = [0u64; 4];
                let mut next_tag = [0u64; 4];
                let mut expect_tag = [0u64; 4];
                let mut last_now = 0.0_f64;

                for op in ops {
                    match op {
                        Op::Establish(lp) => {
                            if !bus.has_lp(lp) {
                                bus.establish(lp);
                            }
                        }
                        Op::Release(lp) => {
                            if bus.has_lp(lp) {
                                for t in bus.release(lp) {
                                    returned[lp] += t.bytes as u64;
                                }
                                // FIFO restarts if it rejoins later.
                                expect_tag[lp] = next_tag[lp];
                            }
                        }
                        Op::Enqueue(lp, bytes) => {
                            if bus.has_lp(lp) {
                                bus.enqueue(lp, Transfer { tag: next_tag[lp], bytes });
                                next_tag[lp] += 1;
                                enqueued[lp] += bytes as u64;
                            }
                        }
                        Op::Run(dt) => {
                            for c in bus.run_until(bus.now() + dt) {
                                prop_assert_eq!(
                                    c.tag, expect_tag[c.lp],
                                    "LP {} completions out of FIFO order", c.lp
                                );
                                expect_tag[c.lp] += 1;
                                prop_assert!(c.at >= last_now);
                                completed[c.lp] += 0; // counted below via moved_bytes
                            }
                            prop_assert!(bus.now() >= last_now);
                            last_now = bus.now();
                        }
                    }
                }
                // Byte conservation per LP.
                for lp in 0..4 {
                    let queued: u64 = if bus.has_lp(lp) {
                        // Drain to measure.
                        bus.release(lp).iter().map(|t| t.bytes as u64).sum()
                    } else {
                        0
                    };
                    prop_assert_eq!(
                        enqueued[lp],
                        bus.moved_bytes(lp) + returned[lp] + queued,
                        "byte conservation broken at LP {}", lp
                    );
                    let _ = completed[lp];
                }
            }
        }
    }

    #[test]
    fn mixed_packet_sizes_still_share_by_bytes() {
        // One LP sends 1500B packets, another 300B packets; round
        // robin with a byte quantum equalizes *bytes*, not packets.
        let mut b = DataLines::new(2, 40e9, 3000);
        b.establish(0);
        b.establish(1);
        for tag in 0..1_000 {
            b.enqueue(0, Transfer { tag, bytes: 1500 });
            b.enqueue(1, Transfer { tag, bytes: 300 });
        }
        b.run_until(5e-5);
        let b0 = b.moved_bytes(0) as f64;
        let b1 = b.moved_bytes(1) as f64;
        assert!(
            (b0 / b1 - 1.0).abs() < 0.25,
            "byte shares diverged: {b0} vs {b1}"
        );
    }
}
