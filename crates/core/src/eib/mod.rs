//! The Enhanced Internal Bus (EIB).
//!
//! The paper derives the EIB by upgrading the maintenance bus every
//! commercial router already has (§3.1): separate **control lines**
//! (CSMA/CD, carrying the three-tier protocol packets and lookup
//! replies) and **data lines** (round-robin time-division multiplexed
//! among established logical paths). Each linecard adds a simple bus
//! controller.

pub mod arbiter;
pub mod bandwidth;
pub mod control;
pub mod datalines;

pub use arbiter::TdmArbiter;
pub use bandwidth::promised_bandwidth;
pub use control::{CommType, ControlPacket, CsmaChannel, ProcParams, TxResult};
pub use datalines::DataLines;
