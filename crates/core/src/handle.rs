//! A steppable per-router simulation handle for network-of-routers
//! co-simulation.
//!
//! The single-router simulators ([`BdrRouter`], [`DraRouter`]) own a
//! whole [`Simulation`] and are normally driven to completion by one
//! caller. The network layer (`dra-topo`) instead needs N routers that
//! advance *together* on a shared clock: each hop of an end-to-end
//! packet consults the transit router's current health, which in turn
//! depends on that router's private fault timeline.
//!
//! [`RouterHandle`] wraps either architecture behind one interface:
//!
//! * **Lazy time advance** — [`RouterHandle::advance_to`] runs the
//!   embedded simulation exactly to the requested time, interleaving
//!   any due actions from the attached fault schedule (the same
//!   interleaving contract as [`Scenario::run_dra`]). Callers advance a
//!   router only when they touch it, so a quiescent router costs
//!   nothing between touches.
//! * **Fault schedule injection** — [`RouterHandle::set_fault_schedule`]
//!   attaches a [`Scenario`] timeline (scripted or sampled from a
//!   [`FaultProcess`](crate::scenario::FaultProcess)); actions fire at
//!   their scheduled times as the handle advances.
//! * **Serviceability queries** — [`RouterHandle::lc_serviceable`]
//!   answers "can this linecard pass traffic *right now*" under each
//!   architecture's own rule: BDR requires the card standalone-healthy,
//!   DRA additionally accepts EIB-covered cards (§3.2 fault model), and
//!   [`RouterHandle::lc_covered`] distinguishes the covered case so the
//!   network layer can charge the EIB detour.
//!
//! Embedded routers are usually configured with
//! `arrival_stop_s = Some(0.0)` so they generate no internal traffic of
//! their own: the handle then models *health dynamics only* and the
//! network layer supplies all packets.

use crate::scenario::{Action, Scenario};
use crate::sim::{DraConfig, DraRouter};
use dra_des::sim::Simulation;
use dra_router::bdr::{BdrConfig, BdrRouter};
use dra_router::metrics::RouterMetrics;

/// Which architecture a handle wraps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArchKind {
    /// Basic distributed router (baseline).
    Bdr,
    /// Dependable router architecture (EIB coverage).
    Dra,
}

impl ArchKind {
    /// Stable lowercase label (used in artifacts).
    pub fn label(self) -> &'static str {
        match self {
            ArchKind::Bdr => "bdr",
            ArchKind::Dra => "dra",
        }
    }
}

// The variants differ in size (DRA carries the EIB state on top of
// the BDR core), but handles live in per-node `Vec`s where a uniform
// footprint beats a box-per-node indirection.
#[allow(clippy::large_enum_variant)]
enum Inner {
    Bdr(Simulation<BdrRouter>),
    Dra(Simulation<DraRouter>),
}

/// A steppable, fault-schedulable wrapper around one router simulation.
pub struct RouterHandle {
    inner: Inner,
    /// Time-ordered fault actions still to be applied.
    schedule: Vec<(f64, Action)>,
    cursor: usize,
}

impl RouterHandle {
    /// Wrap a BDR simulation (start event queued at t = 0).
    pub fn bdr(config: BdrConfig, seed: u64) -> Self {
        RouterHandle {
            inner: Inner::Bdr(BdrRouter::simulation(config, seed)),
            schedule: Vec::new(),
            cursor: 0,
        }
    }

    /// Wrap a DRA simulation (start event queued at t = 0).
    pub fn dra(config: DraConfig, seed: u64) -> Self {
        RouterHandle {
            inner: Inner::Dra(DraRouter::simulation(config, seed)),
            schedule: Vec::new(),
            cursor: 0,
        }
    }

    /// Build a handle for `arch` from one shared base config, disabling
    /// the router's internal traffic and live fault injector so the
    /// handle models health dynamics only (the network-of-routers use).
    pub fn quiescent(arch: ArchKind, mut base: BdrConfig, seed: u64) -> Self {
        base.arrival_stop_s = Some(0.0);
        base.faults = None;
        match arch {
            ArchKind::Bdr => RouterHandle::bdr(base, seed),
            ArchKind::Dra => RouterHandle::dra(
                DraConfig {
                    router: base,
                    ..DraConfig::default()
                },
                seed,
            ),
        }
    }

    /// The wrapped architecture.
    pub fn arch(&self) -> ArchKind {
        match self.inner {
            Inner::Bdr(_) => ArchKind::Bdr,
            Inner::Dra(_) => ArchKind::Dra,
        }
    }

    /// Current simulation time of the embedded router.
    pub fn now(&self) -> f64 {
        match &self.inner {
            Inner::Bdr(sim) => sim.now(),
            Inner::Dra(sim) => sim.now(),
        }
    }

    /// Number of linecards.
    pub fn n_lcs(&self) -> usize {
        match &self.inner {
            Inner::Bdr(sim) => sim.model().config.n_lcs,
            Inner::Dra(sim) => sim.model().config.router.n_lcs,
        }
    }

    /// Events processed by the embedded simulation so far.
    pub fn events_processed(&self) -> u64 {
        match &self.inner {
            Inner::Bdr(sim) => sim.events_processed(),
            Inner::Dra(sim) => sim.events_processed(),
        }
    }

    /// The embedded router's own metrics (internal traffic, if any).
    pub fn metrics(&self) -> &RouterMetrics {
        match &self.inner {
            Inner::Bdr(sim) => &sim.model().metrics,
            Inner::Dra(sim) => &sim.model().metrics,
        }
    }

    /// Attach a fault timeline. Events are applied at their scheduled
    /// times as the handle advances; times already in the past are
    /// applied on the next advance. Replaces any previous schedule.
    pub fn set_fault_schedule(&mut self, scenario: &Scenario) {
        let mut ev: Vec<(f64, Action)> = scenario.events().to_vec();
        ev.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite times"));
        self.schedule = ev;
        self.cursor = 0;
    }

    /// Remaining (not yet applied) scheduled actions.
    pub fn pending_actions(&self) -> usize {
        self.schedule.len() - self.cursor
    }

    /// Advance the embedded simulation to time `t`, applying every
    /// scheduled action whose time is ≤ `t` at its exact time (the
    /// [`Scenario`] interleaving contract). `t` earlier than the
    /// current time is a no-op for the clock, but overdue actions
    /// still apply.
    pub fn advance_to(&mut self, t: f64) {
        while self.cursor < self.schedule.len() && self.schedule[self.cursor].0 <= t {
            let (at, action) = self.schedule[self.cursor].clone();
            self.run_until(at);
            self.apply(&action);
            self.cursor += 1;
        }
        self.run_until(t);
    }

    /// Apply one action at the router's current time (the injection
    /// hook for unscheduled, externally-decided faults). EIB actions
    /// are no-ops on BDR, as in [`Scenario::run_bdr`].
    pub fn apply(&mut self, action: &Action) {
        match &mut self.inner {
            Inner::Bdr(sim) => {
                let now = sim.now();
                let model = sim.model_mut();
                match action {
                    Action::FailComponent(lc, kind) => model.fail_component_now(*lc, *kind, now),
                    Action::RepairLc(lc) => model.repair_lc_now(*lc, now),
                    Action::FailEib | Action::RepairEib => {}
                    Action::FailFabricPlane => model.fabric.fail_plane(),
                    Action::RepairFabricPlane => model.fabric.repair_plane(),
                    Action::AnnounceRoute(p, nh) => model.announce_route(*p, *nh),
                    Action::WithdrawRoute(p) => {
                        model.withdraw_route(*p);
                    }
                }
            }
            Inner::Dra(sim) => {
                let now = sim.now();
                let model = sim.model_mut();
                match action {
                    Action::FailComponent(lc, kind) => model.fail_component_now(*lc, *kind, now),
                    Action::RepairLc(lc) => model.repair_lc_now(*lc, now),
                    Action::FailEib => model.fail_eib_now(now),
                    Action::RepairEib => model.repair_eib_now(now),
                    Action::FailFabricPlane => model.fabric.fail_plane(),
                    Action::RepairFabricPlane => model.fabric.repair_plane(),
                    Action::AnnounceRoute(p, nh) => model.announce_route(*p, *nh),
                    Action::WithdrawRoute(p) => {
                        model.withdraw_route(*p);
                    }
                }
            }
        }
    }

    /// Can linecard `lc` pass traffic right now, under the wrapped
    /// architecture's rule (BDR: standalone-healthy; DRA: standalone
    /// or EIB-covered)?
    pub fn lc_serviceable(&self, lc: u16) -> bool {
        match &self.inner {
            Inner::Bdr(sim) => sim.model().lc_operational(lc),
            Inner::Dra(sim) => sim.model().lc_serviceable(lc),
        }
    }

    /// Is linecard `lc` currently operating *through EIB coverage*
    /// (serviceable but not standalone-healthy)? Always false on BDR.
    pub fn lc_covered(&self, lc: u16) -> bool {
        match &self.inner {
            Inner::Bdr(_) => false,
            Inner::Dra(sim) => {
                let model = sim.model();
                model.lc_serviceable(lc)
                    && !model.linecards[lc as usize]
                        .components
                        .operational_standalone()
            }
        }
    }

    /// Is the switching fabric operational (enough healthy planes)?
    pub fn fabric_operational(&self) -> bool {
        match &self.inner {
            Inner::Bdr(sim) => sim.model().fabric.operational(),
            Inner::Dra(sim) => sim.model().fabric.operational(),
        }
    }

    fn run_until(&mut self, t: f64) {
        match &mut self.inner {
            Inner::Bdr(sim) => {
                if t > sim.now() {
                    sim.run_until(t);
                }
            }
            Inner::Dra(sim) => {
                if t > sim.now() {
                    sim.run_until(t);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dra_router::components::ComponentKind;

    fn base(n: usize) -> BdrConfig {
        BdrConfig {
            n_lcs: n,
            ..BdrConfig::default()
        }
    }

    #[test]
    fn quiescent_router_is_cheap_to_advance() {
        let mut h = RouterHandle::quiescent(ArchKind::Bdr, base(4), 7);
        h.advance_to(1.0);
        // Start + one kick-off arrival per LC + periodic purges; far
        // below what live traffic would generate.
        assert!(h.events_processed() < 1_000, "{}", h.events_processed());
        assert_eq!(h.now(), 1.0);
    }

    #[test]
    fn schedule_applies_at_exact_times() {
        let sc = Scenario::new(1.0)
            .at(0.25, Action::FailComponent(1, ComponentKind::Sru))
            .at(0.75, Action::RepairLc(1));
        for arch in [ArchKind::Bdr, ArchKind::Dra] {
            let mut h = RouterHandle::quiescent(arch, base(4), 11);
            h.set_fault_schedule(&sc);
            h.advance_to(0.2);
            assert!(h.lc_serviceable(1), "{arch:?}: healthy before failure");
            h.advance_to(0.5);
            // BDR loses the card; DRA covers the SRU failure via EIB.
            assert_eq!(h.lc_serviceable(1), arch == ArchKind::Dra, "{arch:?}");
            assert_eq!(h.lc_covered(1), arch == ArchKind::Dra, "{arch:?}");
            h.advance_to(1.0);
            assert!(h.lc_serviceable(1), "{arch:?}: repaired");
            assert!(!h.lc_covered(1), "{arch:?}: standalone after repair");
            assert_eq!(h.pending_actions(), 0);
        }
    }

    #[test]
    fn apply_injects_at_current_time() {
        let mut h = RouterHandle::quiescent(ArchKind::Dra, base(4), 3);
        h.advance_to(0.1);
        h.apply(&Action::FailComponent(0, ComponentKind::Lfe));
        assert!(h.lc_covered(0));
        h.apply(&Action::FailEib);
        assert!(!h.lc_serviceable(0), "no EIB, no coverage");
        assert!(h.fabric_operational());
    }
}
