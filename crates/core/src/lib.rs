//! # dra-core
//!
//! The paper's primary contribution — the **Dependable Router
//! Architecture** (Mandviwalla & Tzeng, ICPP 2004) — plus its
//! dependability and performance analyses:
//!
//! * [`eib`] — the Enhanced Internal Bus: three-tier control packets,
//!   a CSMA/CD control channel, the distributed round-robin TDM data
//!   arbiter of §4 (Ctr_id / Ctr_r / Ctr_β), and the `B_prom`
//!   bandwidth-allocation rule.
//! * [`coverage`] — the fault-coverage planner implementing the §3.2
//!   fault model: Case 1 (fabric, absorbed by plane redundancy),
//!   Case 2 (ingress PIU/PDLU/SRU/LFE failures) and Case 3 (egress
//!   failures), including the same-protocol constraint for PDLU
//!   coverage and LC_inter selection.
//! * [`sim`] — the DRA packet-level router model: a BDR pipeline
//!   augmented with EIB coverage paths, remote lookups (REQ_L/REP_L),
//!   and promised-bandwidth enforcement.
//! * [`analysis`] — the paper's evaluation: the Figure-5 Markov models
//!   (reliability and availability variants), the nines notation of
//!   Figure 7, and the Figure-8 bandwidth-degradation model.
//! * [`montecarlo`] — fault-level Monte Carlo estimation of the same
//!   dependability measures, used to validate the Markov solutions
//!   (the paper had no such cross-check).
//! * [`scenario`] — declarative fault timelines that run identically
//!   against both architectures, for apples-to-apples comparisons.
//! * [`handle`] — a steppable per-router simulation handle (lazy time
//!   advance, fault-schedule injection, serviceability queries) so the
//!   network-of-routers layer (`dra-topo`) can co-simulate N routers
//!   on one shared clock.

#![warn(missing_docs)]

pub mod analysis;
pub mod coverage;
pub mod eib;
pub mod handle;
pub mod montecarlo;
pub mod rareevent;
pub mod scenario;
pub mod sim;

pub use coverage::{CoveragePlanner, CoverageRoute, LcView};
pub use eib::bandwidth::promised_bandwidth;
pub use handle::{ArchKind, RouterHandle};
pub use sim::{DraConfig, DraRouter};
