//! Fault-level Monte Carlo estimation of LC dependability — the
//! cross-check the paper's analysis-only evaluation lacked.
//!
//! Each replication simulates the exponential failure (and optional
//! repair) processes of exactly the entities the Figure-5 Markov
//! models track: LC_UA's PDLU and PI units, the `M−1` intermediate
//! PDLUs, the `N−2` intermediate PI-unit groups, and the EIB /
//! LC_UA-bus-controller pair. Serviceability uses the same rules as
//! [`crate::coverage::lc_serviceable`], specialized to the model's
//! assumptions (LC_UA fails at PDLU or PI units, not both; LC_out is
//! fault-free and excluded from the helper pool).
//!
//! At the paper's real failure rates the interesting probabilities are
//! 1e−9-ish and MC cannot resolve them in reasonable time; the
//! validation harness therefore compares MC and Markov *on inflated
//! rates*, where agreement exercises every code path of both.

use dra_des::random;
use dra_router::components::FailureRates;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Repair-time distribution for availability estimation. The paper
/// assumes a fixed repair time; its Markov model forces an
/// exponential. The MC can do either, quantifying the gap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RepairDist {
    /// Exponential with the given rate (matches the Markov model).
    #[default]
    Exponential,
    /// Fixed duration `1/μ` (the paper's stated assumption).
    Deterministic,
}

/// What to estimate.
#[derive(Debug, Clone, Copy)]
pub enum McMode {
    /// Probability the LC is still serviceable at `horizon_h` with no
    /// repair (one Bernoulli sample per replication).
    Reliability {
        /// Mission time in hours.
        horizon_h: f64,
    },
    /// Long-run fraction of time serviceable with mean repair time
    /// `1/mu` (time-weighted estimate per replication).
    Availability {
        /// Observation window in hours.
        horizon_h: f64,
        /// Repair rate (per hour); the mean repair time is `1/mu`.
        mu: f64,
        /// Repair-time distribution.
        repair: RepairDist,
    },
}

/// Monte Carlo configuration.
#[derive(Debug, Clone, Copy)]
pub struct McConfig {
    /// Total linecards `N ≥ 3`.
    pub n: usize,
    /// Same-protocol linecards `2 ≤ M ≤ N`.
    pub m: usize,
    /// Failure rates (inflate them to make MC converge).
    pub rates: FailureRates,
    /// Independent replications.
    pub replications: usize,
    /// RNG seed.
    pub seed: u64,
}

/// An estimate with a normal-approximation 95% confidence half-width.
#[derive(Debug, Clone, Copy)]
pub struct McEstimate {
    /// Point estimate.
    pub mean: f64,
    /// 95% CI half-width.
    pub ci_half: f64,
    /// Replications used.
    pub replications: usize,
    /// When **zero** adverse events were observed (every replication
    /// survived / saw no downtime), the normal-approximation CI
    /// degenerates to `1.0 ± 0.0`, which overstates certainty
    /// enormously. This carries the rule-of-three 95% upper bound on
    /// the adverse probability instead (`≈ 3/n`, the small-p limit of
    /// the exact Clopper–Pearson bound `1 − 0.05^{1/n}`). `None` when
    /// at least one adverse event was seen.
    pub zero_event_upper: Option<f64>,
}

impl McEstimate {
    /// Conservative 95% upper bound on the adverse probability
    /// (unreliability / unavailability): the half-width-implied bound
    /// when events were observed, the rule-of-three bound when none
    /// were.
    pub fn adverse_upper_bound(&self) -> f64 {
        match self.zero_event_upper {
            Some(u) => u,
            None => (1.0 - self.mean + self.ci_half).max(0.0),
        }
    }
}

/// Exact Clopper–Pearson 95% upper bound on an event probability after
/// observing **zero** events in `n` trials: `1 − 0.05^{1/n}` (≈ `3/n`
/// for large `n` — the "rule of three").
pub fn zero_event_upper_bound(n: usize) -> f64 {
    assert!(n > 0, "zero_event_upper_bound: no trials");
    1.0 - 0.05_f64.powf(1.0 / n as f64)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Entity {
    LcuaPdlu,
    LcuaPi,
    InterPdlu,
    InterPi,
    Eib,
    Repair,
}

/// State of one replication.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct RepState {
    pub(crate) lcua_pdlu_failed: bool,
    pub(crate) lcua_pi_failed: bool,
    pub(crate) inter_pdlu_alive: usize,
    pub(crate) inter_pi_alive: usize,
    pub(crate) eib_ok: bool,
}

impl RepState {
    pub(crate) fn fresh(m: usize, n: usize) -> Self {
        RepState {
            lcua_pdlu_failed: false,
            lcua_pi_failed: false,
            inter_pdlu_alive: m - 1,
            inter_pi_alive: n - 2,
            eib_ok: true,
        }
    }

    /// The Markov model's serviceability predicate (Extended bounds).
    pub(crate) fn serviceable(&self) -> bool {
        if self.lcua_pdlu_failed {
            return self.eib_ok && self.inter_pdlu_alive > 0;
        }
        if self.lcua_pi_failed {
            return self.eib_ok && self.inter_pi_alive > 0;
        }
        true
    }
}

/// Allocation-free core of [`active_rates`]: fill `buf` with the
/// active transitions and return how many were written. Shared with
/// the rare-event estimators, which call this billions of times.
pub(crate) fn active_rates_into(
    s: &RepState,
    n: usize,
    m: usize,
    r: &FailureRates,
    mu: Option<f64>,
    buf: &mut [(Entity, f64); 6],
) -> usize {
    let mut k = 0;
    let lcua_intact = !s.lcua_pdlu_failed && !s.lcua_pi_failed;
    if lcua_intact {
        buf[k] = (Entity::LcuaPdlu, r.pdlu);
        buf[k + 1] = (Entity::LcuaPi, r.pi_units);
        k += 2;
    }
    if s.inter_pdlu_alive > 0 {
        buf[k] = (
            Entity::InterPdlu,
            s.inter_pdlu_alive as f64 * r.inter_pdlu(),
        );
        k += 1;
    }
    if s.inter_pi_alive > 0 {
        buf[k] = (Entity::InterPi, s.inter_pi_alive as f64 * r.inter_pi());
        k += 1;
    }
    if s.eib_ok {
        buf[k] = (Entity::Eib, r.eib + r.bus_controller);
        k += 1;
    }
    if let Some(mu) = mu {
        let degraded = !s.eib_ok
            || s.lcua_pdlu_failed
            || s.lcua_pi_failed
            || s.inter_pdlu_alive < m - 1
            || s.inter_pi_alive < n - 2;
        if degraded {
            buf[k] = (Entity::Repair, mu);
            k += 1;
        }
    }
    k
}

/// Active transition rates for the current state.
fn active_rates(s: &RepState, cfg: &McConfig, mu: Option<f64>) -> Vec<(Entity, f64)> {
    let mut buf = [(Entity::Repair, 0.0); 6];
    let k = active_rates_into(s, cfg.n, cfg.m, &cfg.rates, mu, &mut buf);
    buf[..k].to_vec()
}

pub(crate) fn apply(s: &mut RepState, e: Entity, n: usize, m: usize) {
    match e {
        Entity::LcuaPdlu => s.lcua_pdlu_failed = true,
        Entity::LcuaPi => s.lcua_pi_failed = true,
        Entity::InterPdlu => s.inter_pdlu_alive -= 1,
        Entity::InterPi => s.inter_pi_alive -= 1,
        Entity::Eib => s.eib_ok = false,
        Entity::Repair => *s = RepState::fresh(m, n),
    }
}

fn pick<R: Rng + ?Sized>(rng: &mut R, rates: &[(Entity, f64)], total: f64) -> Entity {
    let mut x = rng.gen::<f64>() * total;
    for &(e, r) in rates {
        if x < r {
            return e;
        }
        x -= r;
    }
    rates.last().expect("nonempty").0
}

/// Run the DRA Monte Carlo estimator.
pub fn run_dra_mc(cfg: &McConfig, mode: McMode) -> McEstimate {
    assert!(cfg.n >= 3 && cfg.m >= 2 && cfg.m <= cfg.n);
    assert!(cfg.replications >= 2);
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut acc = dra_des::stats::Welford::new();
    let mut adverse = 0usize;

    for _ in 0..cfg.replications {
        match mode {
            McMode::Reliability { horizon_h } => {
                let mut s = RepState::fresh(cfg.m, cfg.n);
                let mut t = 0.0;
                let survived = loop {
                    let rates = active_rates(&s, cfg, None);
                    let total: f64 = rates.iter().map(|&(_, r)| r).sum();
                    if total == 0.0 {
                        break true;
                    }
                    t += random::exponential(&mut rng, total);
                    if t >= horizon_h {
                        break true;
                    }
                    let e = pick(&mut rng, &rates, total);
                    apply(&mut s, e, cfg.n, cfg.m);
                    if !s.serviceable() {
                        break false;
                    }
                };
                if !survived {
                    adverse += 1;
                }
                acc.push(if survived { 1.0 } else { 0.0 });
            }
            McMode::Availability {
                horizon_h,
                mu,
                repair,
            } => {
                let frac = match repair {
                    RepairDist::Exponential => {
                        availability_rep_exponential(&mut rng, cfg, horizon_h, mu)
                    }
                    RepairDist::Deterministic => {
                        availability_rep_deterministic(&mut rng, cfg, horizon_h, mu)
                    }
                };
                if frac < 1.0 {
                    adverse += 1;
                }
                acc.push(frac);
            }
        }
    }
    McEstimate {
        mean: acc.mean(),
        ci_half: acc.ci_half_width(1.96),
        replications: cfg.replications,
        zero_event_upper: (adverse == 0).then(|| zero_event_upper_bound(cfg.replications)),
    }
}

/// One availability replication with exponential repair (the repair
/// transition joins the Markov race).
fn availability_rep_exponential(
    rng: &mut SmallRng,
    cfg: &McConfig,
    horizon_h: f64,
    mu: f64,
) -> f64 {
    let mut s = RepState::fresh(cfg.m, cfg.n);
    let mut t = 0.0;
    let mut up_time = 0.0;
    while t < horizon_h {
        let rates = active_rates(&s, cfg, Some(mu));
        let total: f64 = rates.iter().map(|&(_, r)| r).sum();
        let dt = if total == 0.0 {
            horizon_h - t
        } else {
            random::exponential(rng, total).min(horizon_h - t)
        };
        if s.serviceable() {
            up_time += dt;
        }
        t += dt;
        if t < horizon_h && total > 0.0 {
            let e = pick(rng, &rates, total);
            apply(&mut s, e, cfg.n, cfg.m);
        }
    }
    up_time / horizon_h
}

/// One availability replication with a fixed repair duration `1/mu`:
/// the repair clock is armed at the first failure and fires exactly
/// `1/mu` later, regardless of further failures (the hot swap replaces
/// everything that broke meanwhile).
fn availability_rep_deterministic(
    rng: &mut SmallRng,
    cfg: &McConfig,
    horizon_h: f64,
    mu: f64,
) -> f64 {
    let repair_time = 1.0 / mu;
    let mut s = RepState::fresh(cfg.m, cfg.n);
    let mut t = 0.0;
    let mut up_time = 0.0;
    let mut repair_at: Option<f64> = None;
    while t < horizon_h {
        let rates = active_rates(&s, cfg, None); // failures only
        let total: f64 = rates.iter().map(|&(_, r)| r).sum();
        let dt_fail = if total == 0.0 {
            f64::INFINITY
        } else {
            random::exponential(rng, total)
        };
        let next_fail = t + dt_fail;
        let next_event = repair_at.unwrap_or(f64::INFINITY).min(next_fail);
        let step_end = next_event.min(horizon_h);
        if s.serviceable() {
            up_time += step_end - t;
        }
        t = step_end;
        if t >= horizon_h {
            break;
        }
        if repair_at == Some(t) {
            s = RepState::fresh(cfg.m, cfg.n);
            repair_at = None;
        } else {
            let e = pick(rng, &rates, total);
            apply(&mut s, e, cfg.n, cfg.m);
            if repair_at.is_none() {
                repair_at = Some(t + repair_time);
            }
        }
    }
    up_time / horizon_h
}

/// Run the BDR Monte Carlo estimator (whole-LC failures at λ_LC).
pub fn run_bdr_mc(cfg: &McConfig, mode: McMode) -> McEstimate {
    assert!(cfg.replications >= 2);
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut acc = dra_des::stats::Welford::new();
    let mut adverse = 0usize;
    let lambda = cfg.rates.lc;

    for _ in 0..cfg.replications {
        match mode {
            McMode::Reliability { horizon_h } => {
                let ttf = random::exponential(&mut rng, lambda);
                if ttf < horizon_h {
                    adverse += 1;
                }
                acc.push(if ttf >= horizon_h { 1.0 } else { 0.0 });
            }
            McMode::Availability {
                horizon_h,
                mu,
                repair,
            } => {
                let mut t = 0.0;
                let mut up_time = 0.0;
                let mut up = true;
                while t < horizon_h {
                    let raw_dt = if up {
                        random::exponential(&mut rng, lambda)
                    } else {
                        match repair {
                            RepairDist::Exponential => random::exponential(&mut rng, mu),
                            RepairDist::Deterministic => 1.0 / mu,
                        }
                    };
                    let dt = raw_dt.min(horizon_h - t);
                    if up {
                        up_time += dt;
                    }
                    t += dt;
                    if t < horizon_h {
                        up = !up;
                    }
                }
                if up_time < horizon_h {
                    adverse += 1;
                }
                acc.push(up_time / horizon_h);
            }
        }
    }
    McEstimate {
        mean: acc.mean(),
        ci_half: acc.ci_half_width(1.96),
        replications: cfg.replications,
        zero_event_upper: (adverse == 0).then(|| zero_event_upper_bound(cfg.replications)),
    }
}

/// Inflate the paper's rates by `factor` (used to make MC converge
/// while preserving all rate *ratios*, so the Markov/MC comparison
/// still exercises the same structure).
pub fn inflated_rates(factor: f64) -> FailureRates {
    let r = FailureRates::PAPER;
    FailureRates {
        lc: r.lc * factor,
        pdlu: r.pdlu * factor,
        pi_units: r.pi_units * factor,
        bus_controller: r.bus_controller * factor,
        eib: r.eib * factor,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::availability::dra_availability;
    use crate::analysis::reliability::{dra_model, reliability_curve, DraParams, TprimeSemantics};

    fn cfg(n: usize, m: usize, factor: f64, reps: usize) -> McConfig {
        McConfig {
            n,
            m,
            rates: inflated_rates(factor),
            replications: reps,
            seed: 0xDA117,
        }
    }

    #[test]
    fn bdr_reliability_matches_closed_form() {
        let c = cfg(3, 2, 1000.0, 20_000);
        let horizon = 40.0; // hours at x1000 rates ~ paper's 40kh
        let est = run_bdr_mc(&c, McMode::Reliability { horizon_h: horizon });
        let expect = (-c.rates.lc * horizon).exp();
        assert!(
            (est.mean - expect).abs() < 3.0 * est.ci_half.max(0.01),
            "MC {} ± {} vs closed form {expect}",
            est.mean,
            est.ci_half
        );
    }

    #[test]
    fn bdr_availability_matches_closed_form() {
        let c = cfg(3, 2, 1000.0, 200);
        let mu = 1.0 / 3.0;
        let est = run_bdr_mc(
            &c,
            McMode::Availability {
                horizon_h: 5_000.0,
                mu,
                repair: RepairDist::Exponential,
            },
        );
        let expect = mu / (mu + c.rates.lc);
        assert!(
            (est.mean - expect).abs() < 0.01,
            "MC {} vs closed form {expect}",
            est.mean
        );
    }

    #[test]
    fn dra_reliability_agrees_with_markov_at_inflated_rates() {
        let factor = 1000.0;
        let c = cfg(5, 3, factor, 30_000);
        let horizon = 40.0;
        let est = run_dra_mc(&c, McMode::Reliability { horizon_h: horizon });

        // The MC implements the physically-strict T' semantics.
        let params = DraParams {
            rates: c.rates,
            tprime: TprimeSemantics::Strict,
            ..DraParams::new(5, 3)
        };
        let model = dra_model(&params);
        let markov = reliability_curve(&model.chain, model.start, model.failed, &[horizon])[0];
        assert!(
            (est.mean - markov).abs() < 3.0 * est.ci_half.max(0.005),
            "MC {} ± {} vs Markov {markov}",
            est.mean,
            est.ci_half
        );
    }

    #[test]
    fn dra_availability_agrees_with_markov_at_inflated_rates() {
        let factor = 2000.0;
        let c = cfg(4, 2, factor, 60);
        let mu = 0.5;
        let est = run_dra_mc(
            &c,
            McMode::Availability {
                horizon_h: 20_000.0,
                mu,
                repair: RepairDist::Exponential,
            },
        );
        let params = DraParams {
            rates: c.rates,
            tprime: TprimeSemantics::Strict,
            ..DraParams::new(4, 2)
        };
        let markov = dra_availability(&params, mu);
        assert!(
            (est.mean - markov).abs() < 0.005,
            "MC {} ± {} vs Markov {markov}",
            est.mean,
            est.ci_half
        );
    }

    #[test]
    fn deterministic_repair_bdr_matches_renewal_theory() {
        // Alternating renewal: A = MTTF / (MTTF + MTTR) for any repair
        // distribution — fixed repair must land on the same value.
        let c = cfg(3, 2, 1000.0, 200);
        let mu = 1.0 / 3.0;
        let est = run_bdr_mc(
            &c,
            McMode::Availability {
                horizon_h: 5_000.0,
                mu,
                repair: RepairDist::Deterministic,
            },
        );
        let expect = (1.0 / c.rates.lc) / (1.0 / c.rates.lc + 1.0 / mu);
        assert!(
            (est.mean - expect).abs() < 0.01,
            "MC {} vs renewal theory {expect}",
            est.mean
        );
    }

    #[test]
    fn deterministic_repair_dra_matches_erlang_limit() {
        // Fixed-repair MC should sit near the Erlang-k availability as
        // k grows (both approximate the deterministic repair).
        use crate::analysis::availability::dra_availability_erlang;
        let factor = 2000.0;
        let c = cfg(4, 2, factor, 80);
        let mu = 0.5;
        let est = run_dra_mc(
            &c,
            McMode::Availability {
                horizon_h: 20_000.0,
                mu,
                repair: RepairDist::Deterministic,
            },
        );
        let params = DraParams {
            rates: c.rates,
            tprime: TprimeSemantics::Strict,
            ..DraParams::new(4, 2)
        };
        let erlang16 = dra_availability_erlang(&params, mu, 16);
        assert!(
            (est.mean - erlang16).abs() < 0.01,
            "MC(det) {} vs Erlang-16 {erlang16}",
            est.mean
        );
    }

    #[test]
    fn dra_mc_beats_bdr_mc() {
        let c = cfg(6, 3, 1000.0, 10_000);
        let horizon = 40.0;
        let dra = run_dra_mc(&c, McMode::Reliability { horizon_h: horizon });
        let bdr = run_bdr_mc(&c, McMode::Reliability { horizon_h: horizon });
        assert!(dra.mean > bdr.mean, "DRA {} vs BDR {}", dra.mean, bdr.mean);
    }

    #[test]
    fn determinism_by_seed() {
        let c = cfg(4, 2, 500.0, 500);
        let a = run_dra_mc(&c, McMode::Reliability { horizon_h: 50.0 });
        let b = run_dra_mc(&c, McMode::Reliability { horizon_h: 50.0 });
        assert_eq!(a.mean, b.mean);
        let mut c2 = c;
        c2.seed += 1;
        let d = run_dra_mc(&c2, McMode::Reliability { horizon_h: 50.0 });
        assert_ne!(a.mean, d.mean);
    }

    #[test]
    fn zero_event_runs_report_rule_of_three_bound() {
        // Paper rates over one hour: no replication can plausibly fail,
        // so the estimate must carry the Clopper–Pearson zero-event
        // upper bound rather than a degenerate 1.0 ± 0.0.
        let c = McConfig {
            n: 5,
            m: 3,
            rates: FailureRates::PAPER,
            replications: 1000,
            seed: 1,
        };
        let est = run_dra_mc(&c, McMode::Reliability { horizon_h: 1.0 });
        assert_eq!(est.mean, 1.0);
        assert_eq!(est.ci_half, 0.0);
        let ub = est
            .zero_event_upper
            .expect("zero events must set the bound");
        assert!((ub - zero_event_upper_bound(1000)).abs() < 1e-15);
        // Rule-of-three limit: ≈ 3/n.
        assert!((ub - 3.0 / 1000.0).abs() < 3e-4, "bound {ub}");
        assert_eq!(est.adverse_upper_bound(), ub);

        // Availability mode at paper rates over a short window: same.
        let est_a = run_dra_mc(
            &c,
            McMode::Availability {
                horizon_h: 10.0,
                mu: 1.0 / 3.0,
                repair: RepairDist::Exponential,
            },
        );
        assert!(est_a.zero_event_upper.is_some());

        // With events observed the bound is absent and the CI is live.
        let c2 = cfg(3, 2, 1000.0, 5_000);
        let est2 = run_dra_mc(&c2, McMode::Reliability { horizon_h: 40.0 });
        assert!(est2.zero_event_upper.is_none());
        assert!(est2.ci_half > 0.0);
        assert!(est2.adverse_upper_bound() >= 1.0 - est2.mean);
    }

    #[test]
    fn inflated_rates_preserve_consistency() {
        let r = inflated_rates(1234.0);
        assert!(r.is_consistent());
        assert!((r.lc / FailureRates::PAPER.lc - 1234.0).abs() < 1e-9);
    }
}
