//! Rare-event acceleration for availability estimation at *paper*
//! failure rates.
//!
//! The paper's headline numbers are five-to-nine-nines availabilities:
//! unavailabilities of 1e−5 … 1e−9. Brute-force Monte Carlo needs on
//! the order of `1/U` observations to see a single down period, which
//! at those rates means ~1e9 simulated hours per data point — the
//! reason [`crate::montecarlo`] only validates against the Markov
//! models at inflated rates. This module makes the *real* rates
//! tractable with three estimators sharing one regenerative skeleton:
//!
//! * [`RareMethod::BruteForce`] — the honest baseline: regenerative
//!   cycles over the embedded jump chain with **conditional holding
//!   times** (each visit contributes its exact expected sojourn
//!   `1/Λ(s)` instead of a sampled one — free variance reduction, and
//!   it makes the estimator purely discrete).
//! * [`RareMethod::FailureBiasing`] — importance sampling by *balanced
//!   failure biasing*: the embedded jump probabilities are biased so
//!   failure transitions jointly receive probability `bias` (split
//!   equally) whenever a repair competes, and the estimate is corrected
//!   with the exact per-trajectory likelihood ratio. Biasing stops once
//!   the cycle has hit the down set, so cycle termination stays
//!   geometric.
//! * [`RareMethod::Splitting`] — RESTART-style multilevel importance
//!   splitting: trajectories that cross an importance level upward are
//!   cloned `clones` ways, each clone carrying `1/clones` of the parent
//!   weight and an independently derived SplitMix64 RNG seed, so the
//!   sum over the trajectory tree is an unbiased cycle sample and the
//!   whole tree is reproducible from the cycle seed alone.
//!
//! All three estimate steady-state unavailability as the regenerative
//! ratio `U = E[D]/E[T]` (cycle downtime over cycle length, cycles
//! delimited by repairs returning the system to the fresh state) with a
//! covariance-aware delta-method CI ([`dra_des::stats::Welford2`]), and
//! MTTF as `E[min(T_down, T_cycle)]/P(down before cycle end)`.
//!
//! The **level function** for splitting is not the raw failed-component
//! count but the number of failures *toward system down*: `2 − (minimum
//! additional failures needed to lose serviceability)`. Failures of
//! intermediate units that leave the LC_UA two failures from down do
//! not raise the level; an LC_UA-unit or EIB failure does. The level is
//! monotone along failure-only paths (repair ends the cycle), so
//! first-crossing cloning is exact — no re-crossing bookkeeping.
//!
//! Verification is built in: [`markov_oracle`] erects the exact CTMC
//! over the identical state space (same `active_rates`/`apply` code the
//! simulators step) and solves it with `dra-markov`, giving the ground
//! truth the estimators must match within their reported CIs on small
//! configurations.

use crate::montecarlo::{active_rates_into, apply, zero_event_upper_bound, Entity, RepState};
use dra_des::random::weighted_index;
use dra_markov::{oracle, CtmcBuilder};
use dra_router::components::FailureRates;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Configuration shared by every rare-event estimator.
#[derive(Debug, Clone, Copy)]
pub struct RareConfig {
    /// Total linecards `N ≥ 3`.
    pub n: usize,
    /// Same-protocol linecards `2 ≤ M ≤ N`.
    pub m: usize,
    /// Failure rates — the point of this module is that these can be
    /// the *paper's* rates, uninflated.
    pub rates: FailureRates,
    /// Repair rate (per hour); repairs are exponential and return the
    /// system to the fresh state, delimiting regenerative cycles.
    pub mu: f64,
    /// Regenerative cycles to simulate (root trajectories, for
    /// splitting).
    pub cycles: usize,
    /// RNG seed.
    pub seed: u64,
}

/// Which estimator to run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RareMethod {
    /// Unbiased regenerative cycles (conditional holding times only).
    BruteForce,
    /// RESTART-style multilevel splitting with this many clones per
    /// upward level crossing.
    Splitting {
        /// Clones per first upward crossing of a splitting level.
        clones: u32,
    },
    /// Balanced failure biasing with total failure probability `bias`
    /// whenever a repair transition competes.
    FailureBiasing {
        /// Embedded probability mass given to failures (0 < bias < 1).
        bias: f64,
    },
}

impl RareMethod {
    /// Stable identifier used in artifacts and bench rows.
    pub fn name(&self) -> &'static str {
        match self {
            RareMethod::BruteForce => "brute-force",
            RareMethod::Splitting { .. } => "splitting",
            RareMethod::FailureBiasing { .. } => "failure-biasing",
        }
    }
}

/// The result of a rare-event estimation run.
#[derive(Debug, Clone, Copy)]
pub struct RareEstimate {
    /// Steady-state unavailability point estimate `E[D]/E[T]`.
    pub unavailability: f64,
    /// 95% delta-method half-width on the unavailability.
    pub ci_half: f64,
    /// Mean time to failure (hours): mean time until the first down
    /// event, `E[min(T_down, T_cycle)]/P(down in cycle)`. Infinite when
    /// no down event was observed.
    pub mttf_h: f64,
    /// 95% delta-method half-width on the MTTF (NaN when infinite).
    pub mttf_ci_half: f64,
    /// Weighted probability that a cycle reaches the down set — the
    /// rarity the estimator had to overcome.
    pub gamma: f64,
    /// Mean cycle length in hours (the ratio denominator).
    pub mean_cycle_h: f64,
    /// Cycles simulated.
    pub cycles: usize,
    /// Total jump-chain transitions executed, across all clones — the
    /// honest work unit for cross-estimator comparisons.
    pub jumps: u64,
    /// When **zero** down events were observed: a conservative 95%
    /// upper bound on the unavailability from the Clopper–Pearson
    /// zero-event bound on `gamma` (`U ≤ bound(γ)·(1/μ)/E[T]`, using
    /// the fact that a down period ends exactly at the exponential
    /// repair, so its mean duration is `1/μ`). `None` when at least one
    /// down event was seen.
    pub zero_event_upper: Option<f64>,
}

impl RareEstimate {
    /// Relative CI half-width (`ci_half / unavailability`); infinite
    /// when nothing was observed.
    pub fn rel_ci(&self) -> f64 {
        if self.unavailability > 0.0 {
            self.ci_half / self.unavailability
        } else {
            f64::INFINITY
        }
    }

    /// Conservative upper bound on the unavailability: CI upper edge,
    /// or the zero-event bound when no down event was seen.
    pub fn upper_bound(&self) -> f64 {
        match self.zero_event_upper {
            Some(u) => u,
            None => self.unavailability + self.ci_half,
        }
    }
}

/// A steady-state unavailability estimator over the DRA component
/// failure model — the trait the splitting and likelihood-ratio
/// estimators share, so campaign cells and benches can treat them
/// uniformly.
pub trait UnavailabilityEstimator {
    /// Stable identifier for artifacts and bench rows.
    fn name(&self) -> &'static str;
    /// Run the estimator over `cfg.cycles` regenerative cycles.
    fn run(&self, cfg: &RareConfig) -> RareEstimate;
}

/// Unbiased regenerative baseline (see [`RareMethod::BruteForce`]).
pub struct BruteForceMc;

/// Balanced-failure-biasing importance sampler.
pub struct FailureBiasingIs {
    /// Embedded probability mass given to failures (0 < bias < 1).
    pub bias: f64,
}

/// RESTART-style multilevel splitting.
pub struct ImportanceSplitting {
    /// Clones per first upward level crossing.
    pub clones: u32,
}

impl UnavailabilityEstimator for BruteForceMc {
    fn name(&self) -> &'static str {
        "brute-force"
    }
    fn run(&self, cfg: &RareConfig) -> RareEstimate {
        estimate(cfg, RareMethod::BruteForce)
    }
}

impl UnavailabilityEstimator for FailureBiasingIs {
    fn name(&self) -> &'static str {
        "failure-biasing"
    }
    fn run(&self, cfg: &RareConfig) -> RareEstimate {
        estimate(cfg, RareMethod::FailureBiasing { bias: self.bias })
    }
}

impl UnavailabilityEstimator for ImportanceSplitting {
    fn name(&self) -> &'static str {
        "splitting"
    }
    fn run(&self, cfg: &RareConfig) -> RareEstimate {
        estimate(
            cfg,
            RareMethod::Splitting {
                clones: self.clones,
            },
        )
    }
}

/// The splitting level: `2 − (minimum additional component failures
/// until the system is down)`, clamped to the down level.
///
/// * level 2 — down (not serviceable);
/// * level 1 — one failure from down: an LC_UA unit is already failed,
///   or the EIB is down, or a helper pool is exhausted;
/// * level 0 — everything else (at least two failures from down).
///
/// Monotone nondecreasing along failure transitions; only the repair
/// (which ends the cycle) resets it.
pub(crate) fn down_level(s: &RepState) -> u32 {
    if !s.serviceable() {
        return 2;
    }
    let one_away = s.lcua_pdlu_failed
        || s.lcua_pi_failed
        || !s.eib_ok
        || s.inter_pdlu_alive == 0
        || s.inter_pi_alive == 0;
    if one_away {
        1
    } else {
        0
    }
}

/// SplitMix64 step — the same mixer the campaign seed derivation uses,
/// re-implemented locally because `dra-core` sits below `dra-campaign`
/// in the crate graph.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive an independent child seed from a parent trajectory seed, the
/// level being crossed, and the clone index — so every clone's RNG
/// stream is reproducible from the cycle seed alone, independent of
/// traversal order.
fn derive_child_seed(parent_seed: u64, level: u32, clone_idx: u32) -> u64 {
    let mut s = parent_seed ^ 0xC10E_5EED_0000_0000u64;
    let _ = splitmix64(&mut s);
    s ^= (level as u64) << 32 | clone_idx as u64;
    splitmix64(&mut s)
}

/// Per-cycle accumulator: everything the ratio estimators need.
#[derive(Debug, Clone, Copy, Default)]
struct CycleTotals {
    /// Weighted downtime.
    d: f64,
    /// Weighted cycle length.
    t: f64,
    /// Weighted time before the first down event (= cycle length when
    /// the cycle never goes down).
    a: f64,
    /// Weighted indicator/mass of reaching the down set.
    g: f64,
    /// Jump-chain transitions executed.
    jumps: u64,
}

struct Accumulators {
    /// (downtime, cycle length) pairs for the unavailability ratio.
    ut: dra_des::stats::Welford2,
    /// (pre-down time, down mass) pairs for the MTTF ratio.
    mttf: dra_des::stats::Welford2,
    jumps: u64,
    down_cycles: usize,
}

impl Accumulators {
    fn new() -> Self {
        Accumulators {
            ut: dra_des::stats::Welford2::new(),
            mttf: dra_des::stats::Welford2::new(),
            jumps: 0,
            down_cycles: 0,
        }
    }

    fn push(&mut self, c: &CycleTotals) {
        self.ut.push(c.d, c.t);
        self.mttf.push(c.a, c.g);
        self.jumps += c.jumps;
        if c.g > 0.0 {
            self.down_cycles += 1;
        }
    }

    fn finish(&self, cfg: &RareConfig) -> RareEstimate {
        let u = self.ut.ratio();
        let gamma = self.mttf.mean_y();
        let (mttf_h, mttf_ci_half) = if gamma > 0.0 {
            // MTTF ratio is E[a]/E[g]: x = pre-down time, y = down mass.
            (self.mttf.ratio(), self.mttf.ratio_ci_half(1.96))
        } else {
            (f64::INFINITY, f64::NAN)
        };
        let zero_event_upper = (self.down_cycles == 0).then(|| {
            // A down period ends exactly at the exponential repair, so
            // its mean duration is 1/μ; bound γ by the zero-event
            // Clopper–Pearson bound and propagate through the ratio.
            zero_event_upper_bound(self.ut.count() as usize) / cfg.mu / self.ut.mean_y()
        });
        RareEstimate {
            unavailability: u,
            ci_half: self.ut.ratio_ci_half(1.96),
            mttf_h,
            mttf_ci_half,
            gamma,
            mean_cycle_h: self.ut.mean_y(),
            cycles: self.ut.count() as usize,
            jumps: self.jumps,
            zero_event_upper,
        }
    }
}

/// Safety valve: no legitimate cycle in this model takes anywhere near
/// this many jumps (repair competes at every degraded state).
const MAX_JUMPS_PER_CYCLE: u64 = 100_000_000;

/// One brute-force or failure-biased cycle over the embedded jump
/// chain. `bias = None` is the unbiased baseline; `Some(b)` applies
/// balanced failure biasing with likelihood-ratio correction until the
/// first down hit.
fn biased_cycle(rng: &mut SmallRng, cfg: &RareConfig, bias: Option<f64>) -> CycleTotals {
    let mut s = RepState::fresh(cfg.m, cfg.n);
    let mut c = CycleTotals::default();
    let mut w = 1.0f64;
    let mut down_seen = false;
    let mut buf = [(Entity::Repair, 0.0); 6];
    let mut q = [0.0f64; 6];
    loop {
        let k = active_rates_into(&s, cfg.n, cfg.m, &cfg.rates, Some(cfg.mu), &mut buf);
        debug_assert!(k > 0, "the repairable model has no absorbing state");
        let total: f64 = buf[..k].iter().map(|&(_, r)| r).sum();
        // Conditional holding time: contribute the exact expectation.
        let sojourn = w / total;
        c.t += sojourn;
        if down_seen {
            c.d += sojourn;
        } else {
            c.a += sojourn;
        }
        // Proposal distribution for the next jump.
        let repair_at = buf[..k].iter().position(|&(e, _)| e == Entity::Repair);
        let biased = match (bias, repair_at, down_seen) {
            (Some(b), Some(rep), false) if k > 1 => {
                let per_failure = b / (k - 1) as f64;
                for (i, slot) in q[..k].iter_mut().enumerate() {
                    *slot = if i == rep { 1.0 - b } else { per_failure };
                }
                true
            }
            _ => false,
        };
        let idx = if biased {
            let idx = weighted_index(rng, &q[..k], 1.0);
            // Exact per-step likelihood ratio: true embedded probability
            // over proposal probability.
            w *= (buf[idx].1 / total) / q[idx];
            idx
        } else {
            for (slot, &(_, r)) in q[..k].iter_mut().zip(&buf[..k]) {
                *slot = r;
            }
            weighted_index(rng, &q[..k], total)
        };
        c.jumps += 1;
        assert!(c.jumps < MAX_JUMPS_PER_CYCLE, "runaway cycle");
        let e = buf[idx].0;
        if e == Entity::Repair {
            return c;
        }
        apply(&mut s, e, cfg.n, cfg.m);
        if !down_seen && !s.serviceable() {
            down_seen = true;
            c.g += w;
        }
    }
}

/// A pending trajectory on the splitting DFS stack.
struct Traj {
    s: RepState,
    w: f64,
    seed: u64,
    max_level: u32,
    down_seen: bool,
}

/// One splitting cycle: a DFS over the clone tree rooted at the fresh
/// state. Every trajectory that first crosses a level upward (below the
/// down level) is replaced by `clones` continuations at `w/clones`
/// each; the parent keeps one slot and clones get SplitMix64-derived
/// seeds, so the whole tree is a deterministic function of
/// `cycle_seed`.
fn splitting_cycle(cfg: &RareConfig, clones: u32, cycle_seed: u64) -> CycleTotals {
    let mut c = CycleTotals::default();
    let mut buf = [(Entity::Repair, 0.0); 6];
    let mut q = [0.0f64; 6];
    let mut stack: Vec<Traj> = vec![Traj {
        s: RepState::fresh(cfg.m, cfg.n),
        w: 1.0,
        seed: cycle_seed,
        max_level: 0,
        down_seen: false,
    }];
    while let Some(mut traj) = stack.pop() {
        let mut rng = SmallRng::seed_from_u64(traj.seed);
        loop {
            let k = active_rates_into(&traj.s, cfg.n, cfg.m, &cfg.rates, Some(cfg.mu), &mut buf);
            let total: f64 = buf[..k].iter().map(|&(_, r)| r).sum();
            let sojourn = traj.w / total;
            c.t += sojourn;
            if traj.down_seen {
                c.d += sojourn;
            } else {
                c.a += sojourn;
            }
            for (slot, &(_, r)) in q[..k].iter_mut().zip(&buf[..k]) {
                *slot = r;
            }
            let idx = weighted_index(&mut rng, &q[..k], total);
            c.jumps += 1;
            assert!(c.jumps < MAX_JUMPS_PER_CYCLE, "runaway splitting cycle");
            let e = buf[idx].0;
            if e == Entity::Repair {
                break; // this trajectory's cycle ends
            }
            apply(&mut traj.s, e, cfg.n, cfg.m);
            let level = down_level(&traj.s);
            if level == 2 {
                if !traj.down_seen {
                    traj.down_seen = true;
                    c.g += traj.w;
                }
            } else if level > traj.max_level {
                // First upward crossing of a splitting level: clone.
                traj.max_level = level;
                traj.w /= clones as f64;
                for clone_idx in 1..clones {
                    stack.push(Traj {
                        s: traj.s,
                        w: traj.w,
                        seed: derive_child_seed(traj.seed, level, clone_idx),
                        max_level: level,
                        down_seen: false,
                    });
                }
            }
        }
    }
    c
}

/// Run a rare-event estimator.
///
/// # Panics
/// Panics on degenerate configurations: `n < 3`, `m` outside `2..=n`,
/// non-positive `mu`, fewer than 2 cycles, `bias` outside `(0, 1)`, or
/// zero clones.
pub fn estimate(cfg: &RareConfig, method: RareMethod) -> RareEstimate {
    assert!(cfg.n >= 3 && cfg.m >= 2 && cfg.m <= cfg.n, "bad (n, m)");
    assert!(cfg.mu > 0.0, "bad mu");
    assert!(cfg.cycles >= 2, "need at least two cycles for a CI");
    let mut acc = Accumulators::new();
    match method {
        RareMethod::BruteForce => {
            let mut rng = SmallRng::seed_from_u64(cfg.seed);
            for _ in 0..cfg.cycles {
                let c = biased_cycle(&mut rng, cfg, None);
                acc.push(&c);
            }
        }
        RareMethod::FailureBiasing { bias } => {
            assert!(bias > 0.0 && bias < 1.0, "bias must be in (0, 1)");
            let mut rng = SmallRng::seed_from_u64(cfg.seed);
            for _ in 0..cfg.cycles {
                let c = biased_cycle(&mut rng, cfg, Some(bias));
                acc.push(&c);
            }
        }
        RareMethod::Splitting { clones } => {
            assert!(clones >= 1, "need at least one clone");
            let mut seed_state = cfg.seed ^ 0x5711_7711_0000_0000;
            for _ in 0..cfg.cycles {
                let cycle_seed = splitmix64(&mut seed_state);
                let c = splitting_cycle(cfg, clones, cycle_seed);
                acc.push(&c);
            }
        }
    }
    acc.finish(cfg)
}

/// Exact ground truth from the CTMC over the *identical* state space
/// the estimators walk.
#[derive(Debug, Clone, Copy)]
pub struct RareOracle {
    /// Exact steady-state unavailability.
    pub unavailability: f64,
    /// Exact mean time to first down event from the fresh state.
    pub mttf_h: f64,
    /// Number of reachable states in the exact model.
    pub states: usize,
}

/// Build the exact CTMC by breadth-first enumeration of the reachable
/// [`RepState`] space — driven by the *same* `active_rates`/`apply`
/// code the estimators step, so the oracle and the simulation cannot
/// drift apart — and solve it with `dra-markov`.
///
/// State counts stay small (≈ `3·m·(n−1)·2`), so dense LU is instant
/// even for the 16-card configurations.
pub fn markov_oracle(n: usize, m: usize, rates: &FailureRates, mu: f64) -> RareOracle {
    assert!(n >= 3 && m >= 2 && m <= n, "bad (n, m)");
    let fresh = RepState::fresh(m, n);
    let mut states = vec![fresh];
    let mut edges: Vec<(usize, usize, f64)> = Vec::new();
    let mut buf = [(Entity::Repair, 0.0); 6];
    let mut i = 0;
    while i < states.len() {
        let s = states[i];
        let k = active_rates_into(&s, n, m, rates, Some(mu), &mut buf);
        for &(e, r) in &buf[..k] {
            let mut target = s;
            apply(&mut target, e, n, m);
            let j = match states.iter().position(|&t| t == target) {
                Some(j) => j,
                None => {
                    states.push(target);
                    states.len() - 1
                }
            };
            edges.push((i, j, r));
        }
        i += 1;
    }
    let mut b = CtmcBuilder::new();
    let ids: Vec<_> = states
        .iter()
        .enumerate()
        .map(|(idx, s)| {
            b.state(format!(
                "s{idx}:pdlu{}pi{}hp{}hi{}eib{}",
                s.lcua_pdlu_failed as u8,
                s.lcua_pi_failed as u8,
                s.inter_pdlu_alive,
                s.inter_pi_alive,
                s.eib_ok as u8
            ))
            .expect("unique labels")
        })
        .collect();
    for (from, to, r) in edges {
        b.rate(ids[from], ids[to], r).expect("valid rate");
    }
    let chain = b.build().expect("valid chain");
    let down: Vec<_> = states
        .iter()
        .zip(&ids)
        .filter(|(s, _)| !s.serviceable())
        .map(|(_, &id)| id)
        .collect();
    let unavailability =
        oracle::steady_probability(&chain, &down).expect("ergodic repairable chain");
    let mttf_h = oracle::mean_hitting_time(&chain, ids[0], &down).expect("down reachable");
    RareOracle {
        unavailability,
        mttf_h,
        states: states.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::availability::dra_availability;
    use crate::analysis::reliability::{DraParams, TprimeSemantics};
    use crate::montecarlo::inflated_rates;

    fn cfg(n: usize, m: usize, rates: FailureRates, cycles: usize, seed: u64) -> RareConfig {
        RareConfig {
            n,
            m,
            rates,
            mu: 1.0 / 3.0,
            cycles,
            seed,
        }
    }

    #[test]
    fn oracle_matches_lumped_availability_model() {
        // The component-level CTMC built here must lump exactly onto
        // the paper's Figure-5 availability model with strict T'
        // semantics — the rate identity λ_LC = λ_PDLU + λ_PI makes the
        // aggregation exact.
        for &(n, m) in &[(3usize, 2usize), (5, 3), (9, 4)] {
            let mu = 1.0 / 3.0;
            let o = markov_oracle(n, m, &FailureRates::PAPER, mu);
            let params = DraParams {
                rates: FailureRates::PAPER,
                tprime: TprimeSemantics::Strict,
                ..DraParams::new(n, m)
            };
            let a = dra_availability(&params, mu);
            let rel = (o.unavailability - (1.0 - a)).abs() / (1.0 - a);
            assert!(
                rel < 1e-6,
                "(n={n}, m={m}): oracle U {} vs lumped {}",
                o.unavailability,
                1.0 - a
            );
        }
    }

    #[test]
    fn brute_force_agrees_with_oracle_at_inflated_rates() {
        let rates = inflated_rates(1000.0);
        let c = cfg(3, 2, rates, 40_000, 0xB0B);
        let est = estimate(&c, RareMethod::BruteForce);
        let o = markov_oracle(3, 2, &rates, c.mu);
        assert!(
            (est.unavailability - o.unavailability).abs() <= est.ci_half,
            "brute {} ± {} vs exact {}",
            est.unavailability,
            est.ci_half,
            o.unavailability
        );
        assert!(est.rel_ci() < 0.5, "CI too loose: {}", est.rel_ci());
    }

    #[test]
    fn failure_biasing_agrees_with_oracle_at_paper_rates() {
        // The acceptance bar: tight agreement at the *paper's* rates,
        // where brute force sees nothing. Two configurations.
        for &(n, m, seed) in &[(3usize, 2usize, 0xFB1u64), (5, 3, 0xFB2)] {
            let c = cfg(n, m, FailureRates::PAPER, 60_000, seed);
            let est = estimate(&c, RareMethod::FailureBiasing { bias: 0.5 });
            let o = markov_oracle(n, m, &FailureRates::PAPER, c.mu);
            assert!(
                (est.unavailability - o.unavailability).abs() <= est.ci_half,
                "(n={n}, m={m}): IS {} ± {} vs exact {}",
                est.unavailability,
                est.ci_half,
                o.unavailability
            );
            assert!(
                est.rel_ci() < 0.10,
                "(n={n}, m={m}): rel CI {} not tight",
                est.rel_ci()
            );
        }
    }

    #[test]
    fn splitting_agrees_with_oracle_at_paper_rates() {
        for &(n, m, seed) in &[(3usize, 2usize, 0x5711u64), (5, 3, 0x5712)] {
            let c = cfg(n, m, FailureRates::PAPER, 150_000, seed);
            let est = estimate(&c, RareMethod::Splitting { clones: 100 });
            let o = markov_oracle(n, m, &FailureRates::PAPER, c.mu);
            assert!(
                (est.unavailability - o.unavailability).abs() <= est.ci_half,
                "(n={n}, m={m}): splitting {} ± {} vs exact {}",
                est.unavailability,
                est.ci_half,
                o.unavailability
            );
            assert!(
                est.rel_ci() < 0.6,
                "(n={n}, m={m}): rel CI {} not informative",
                est.rel_ci()
            );
        }
    }

    #[test]
    fn mttf_agrees_with_oracle() {
        let c = cfg(3, 2, FailureRates::PAPER, 60_000, 0x3771F);
        let est = estimate(&c, RareMethod::FailureBiasing { bias: 0.5 });
        let o = markov_oracle(3, 2, &FailureRates::PAPER, c.mu);
        assert!(
            (est.mttf_h - o.mttf_h).abs() <= 3.0 * est.mttf_ci_half,
            "MTTF {} ± {} vs exact {}",
            est.mttf_h,
            est.mttf_ci_half,
            o.mttf_h
        );
    }

    #[test]
    fn variance_reduction_is_real() {
        // Same cycle budget: failure biasing must deliver a far
        // tighter relative CI than brute force at paper rates (where
        // brute force typically sees nothing at this budget).
        let c = cfg(5, 3, FailureRates::PAPER, 20_000, 0x7E57);
        let brute = estimate(&c, RareMethod::BruteForce);
        let is = estimate(&c, RareMethod::FailureBiasing { bias: 0.5 });
        assert!(
            is.rel_ci() < 0.25,
            "IS should be tight at this budget: {}",
            is.rel_ci()
        );
        assert!(
            brute.rel_ci() > 10.0 * is.rel_ci(),
            "brute rel CI {} vs IS rel CI {}",
            brute.rel_ci(),
            is.rel_ci()
        );
    }

    #[test]
    fn brute_force_zero_events_report_upper_bound() {
        let c = cfg(9, 4, FailureRates::PAPER, 1_000, 0x2E40);
        let est = estimate(&c, RareMethod::BruteForce);
        assert_eq!(est.unavailability, 0.0);
        let ub = est.zero_event_upper.expect("nothing observable here");
        let o = markov_oracle(9, 4, &FailureRates::PAPER, c.mu);
        assert!(
            ub > o.unavailability,
            "zero-event bound {ub} must cover the truth {}",
            o.unavailability
        );
        assert_eq!(est.upper_bound(), ub);
        assert!(est.mttf_h.is_infinite());
    }

    #[test]
    fn estimators_are_deterministic_by_seed() {
        let c = cfg(5, 3, FailureRates::PAPER, 5_000, 0xDE7);
        for method in [
            RareMethod::BruteForce,
            RareMethod::FailureBiasing { bias: 0.5 },
            RareMethod::Splitting { clones: 50 },
        ] {
            let a = estimate(&c, method);
            let b = estimate(&c, method);
            assert_eq!(a.unavailability.to_bits(), b.unavailability.to_bits());
            assert_eq!(a.ci_half.to_bits(), b.ci_half.to_bits());
            assert_eq!(a.jumps, b.jumps);
            let mut c2 = c;
            c2.seed ^= 1;
            let d = estimate(&c2, method);
            assert_ne!(
                a.jumps,
                d.jumps,
                "{}: different seed should change the walk",
                method.name()
            );
        }
    }

    #[test]
    fn trait_objects_dispatch_to_the_same_numbers() {
        let c = cfg(3, 2, FailureRates::PAPER, 3_000, 0xAB);
        let boxed: Vec<(Box<dyn UnavailabilityEstimator>, RareMethod)> = vec![
            (Box::new(BruteForceMc), RareMethod::BruteForce),
            (
                Box::new(FailureBiasingIs { bias: 0.4 }),
                RareMethod::FailureBiasing { bias: 0.4 },
            ),
            (
                Box::new(ImportanceSplitting { clones: 10 }),
                RareMethod::Splitting { clones: 10 },
            ),
        ];
        for (est, method) in boxed {
            assert_eq!(est.name(), method.name());
            let via_trait = est.run(&c);
            let direct = estimate(&c, method);
            assert_eq!(
                via_trait.unavailability.to_bits(),
                direct.unavailability.to_bits()
            );
        }
    }

    #[test]
    fn level_function_is_monotone_toward_down() {
        let mut s = RepState::fresh(3, 5); // (n=5, m=3)
        assert_eq!(down_level(&s), 0);
        // An intermediate failure does not advance the level…
        apply(&mut s, Entity::InterPi, 5, 3);
        assert_eq!(down_level(&s), 0);
        // …but an LC_UA unit failure does…
        apply(&mut s, Entity::LcuaPdlu, 5, 3);
        assert_eq!(down_level(&s), 1);
        // …and the EIB failure finishes it.
        apply(&mut s, Entity::Eib, 5, 3);
        assert_eq!(down_level(&s), 2);
        assert!(!s.serviceable());
        // Repair resets to fresh / level 0.
        apply(&mut s, Entity::Repair, 5, 3);
        assert_eq!(down_level(&s), 0);
    }
}
