//! Declarative fault-scenario scripting.
//!
//! Experiments, examples, and the CLI all need the same shape of code:
//! run a simulator to *t₁*, inject something, run to *t₂*, repair
//! something, … A [`Scenario`] captures that timeline as data, runs it
//! against either architecture, and returns the final metrics —
//! guaranteeing that BDR/DRA comparisons execute *exactly* the same
//! timeline.

use crate::sim::{DraConfig, DraRouter};
use dra_net::addr::Ipv4Prefix;
use dra_router::bdr::{BdrConfig, BdrRouter};
use dra_router::components::ComponentKind;
use dra_router::metrics::RouterMetrics;

/// One scripted action.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Fail one unit of one linecard.
    FailComponent(u16, ComponentKind),
    /// Hot-swap repair a linecard (all units).
    RepairLc(u16),
    /// Fail the EIB passive lines (DRA only; ignored on BDR).
    FailEib,
    /// Repair the EIB lines (DRA only; ignored on BDR).
    RepairEib,
    /// Fail one switching-fabric plane.
    FailFabricPlane,
    /// Repair one switching-fabric plane.
    RepairFabricPlane,
    /// Announce a route on every card.
    AnnounceRoute(Ipv4Prefix, u16),
    /// Withdraw a route everywhere.
    WithdrawRoute(Ipv4Prefix),
}

/// A timeline of actions over a fixed horizon.
#[derive(Debug, Clone, Default)]
pub struct Scenario {
    /// `(time_s, action)` pairs; executed in time order.
    events: Vec<(f64, Action)>,
    horizon_s: f64,
}

impl Scenario {
    /// An empty scenario ending at `horizon_s`.
    pub fn new(horizon_s: f64) -> Self {
        assert!(horizon_s > 0.0 && horizon_s.is_finite());
        Scenario {
            events: Vec::new(),
            horizon_s,
        }
    }

    /// Schedule an action (builder style).
    ///
    /// # Panics
    /// Panics when `at_s` lies outside `[0, horizon]`.
    pub fn at(mut self, at_s: f64, action: Action) -> Self {
        assert!(
            (0.0..=self.horizon_s).contains(&at_s),
            "action at {at_s}s outside horizon {}s",
            self.horizon_s
        );
        self.events.push((at_s, action));
        self
    }

    /// The configured horizon.
    pub fn horizon(&self) -> f64 {
        self.horizon_s
    }

    /// Number of scripted actions.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no actions are scripted.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    fn ordered(&self) -> Vec<(f64, Action)> {
        let mut ev = self.events.clone();
        ev.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite times"));
        ev
    }

    /// Run against the DRA architecture; returns (metrics, final model).
    pub fn run_dra(&self, config: DraConfig, seed: u64) -> DraRouter {
        let mut sim = DraRouter::simulation(config, seed);
        for (at, action) in self.ordered() {
            sim.run_until(at);
            let now = sim.now();
            let model = sim.model_mut();
            match action {
                Action::FailComponent(lc, kind) => model.fail_component_now(lc, kind, now),
                Action::RepairLc(lc) => model.repair_lc_now(lc, now),
                Action::FailEib => model.fail_eib_now(now),
                Action::RepairEib => model.repair_eib_now(now),
                Action::FailFabricPlane => model.fabric.fail_plane(),
                Action::RepairFabricPlane => model.fabric.repair_plane(),
                Action::AnnounceRoute(p, nh) => model.announce_route(p, nh),
                Action::WithdrawRoute(p) => {
                    model.withdraw_route(p);
                }
            }
        }
        sim.run_until(self.horizon_s);
        sim.into_model()
    }

    /// Run against the BDR baseline (EIB actions are no-ops there).
    pub fn run_bdr(&self, config: BdrConfig, seed: u64) -> BdrRouter {
        let mut sim = BdrRouter::simulation(config, seed);
        for (at, action) in self.ordered() {
            sim.run_until(at);
            let now = sim.now();
            let model = sim.model_mut();
            match action {
                Action::FailComponent(lc, kind) => model.fail_component_now(lc, kind, now),
                Action::RepairLc(lc) => model.repair_lc_now(lc, now),
                Action::FailEib | Action::RepairEib => {}
                Action::FailFabricPlane => model.fabric.fail_plane(),
                Action::RepairFabricPlane => model.fabric.repair_plane(),
                Action::AnnounceRoute(p, nh) => model.announce_route(p, nh),
                Action::WithdrawRoute(p) => {
                    model.withdraw_route(p);
                }
            }
        }
        sim.run_until(self.horizon_s);
        sim.into_model()
    }

    /// Run the identical timeline on both architectures and return
    /// `(bdr_metrics, dra_metrics)`.
    pub fn compare(&self, base: BdrConfig, seed: u64) -> (RouterMetrics, RouterMetrics) {
        let bdr = self.run_bdr(base.clone(), seed);
        let dra = self.run_dra(
            DraConfig {
                router: base,
                ..Default::default()
            },
            seed,
        );
        (bdr.metrics, dra.metrics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dra_router::metrics::DropCause;

    fn base(n: usize, load: f64) -> BdrConfig {
        BdrConfig {
            n_lcs: n,
            load,
            ..BdrConfig::default()
        }
    }

    #[test]
    fn builder_validates_times() {
        let s = Scenario::new(1e-3)
            .at(0.2e-3, Action::FailComponent(0, ComponentKind::Lfe))
            .at(0.7e-3, Action::RepairLc(0));
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert_eq!(s.horizon(), 1e-3);
    }

    #[test]
    #[should_panic(expected = "outside horizon")]
    fn actions_past_horizon_rejected() {
        let _ = Scenario::new(1e-3).at(2e-3, Action::FailEib);
    }

    #[test]
    fn out_of_order_actions_execute_in_time_order() {
        // Scripted repair-before-failure in the list; time order wins.
        let s = Scenario::new(3e-3)
            .at(2e-3, Action::RepairLc(0))
            .at(1e-3, Action::FailComponent(0, ComponentKind::Sru));
        let dra = s.run_dra(
            DraConfig {
                router: base(4, 0.2),
                ..Default::default()
            },
            5,
        );
        // Coverage happened (failure preceded repair), then recovered.
        assert!(dra.metrics.lcs[0].covered_packets > 0);
        assert!(dra.metrics.byte_delivery_ratio() > 0.98);
    }

    #[test]
    fn compare_runs_identical_timelines() {
        let s = Scenario::new(3e-3).at(1e-3, Action::FailComponent(0, ComponentKind::Lfe));
        let (bdr, dra) = s.compare(base(4, 0.2), 42);
        // Identical offered traffic, divergent outcomes.
        for lc in 0..4 {
            assert_eq!(bdr.lcs[lc].offered_packets, dra.lcs[lc].offered_packets);
        }
        assert!(bdr.lcs[0].drops(DropCause::IngressDown) > 0);
        assert_eq!(dra.lcs[0].drops(DropCause::IngressDown), 0);
        assert!(dra.byte_delivery_ratio() > bdr.byte_delivery_ratio());
    }

    #[test]
    fn eib_actions_are_noops_on_bdr() {
        let s = Scenario::new(2e-3)
            .at(0.5e-3, Action::FailEib)
            .at(1.5e-3, Action::RepairEib);
        let bdr = s.run_bdr(base(3, 0.15), 7);
        assert!(bdr.metrics.byte_delivery_ratio() > 0.98);
    }

    #[test]
    fn fabric_plane_actions_flow_through() {
        let s = Scenario::new(2e-3)
            .at(0.5e-3, Action::FailFabricPlane)
            .at(0.6e-3, Action::FailFabricPlane)
            .at(1.2e-3, Action::RepairFabricPlane);
        let dra = s.run_dra(
            DraConfig {
                router: base(3, 0.15),
                ..Default::default()
            },
            9,
        );
        assert_eq!(dra.fabric.planes_failed(), 1);
    }

    #[test]
    fn route_actions_update_the_rib() {
        use dra_net::addr::Ipv4Addr;
        let p = Ipv4Prefix::new(Ipv4Addr::from_octets(10, 1, 128, 0), 17);
        let s = Scenario::new(2e-3)
            .at(0.5e-3, Action::AnnounceRoute(p, 2))
            .at(1.5e-3, Action::WithdrawRoute(p));
        let dra = s.run_dra(
            DraConfig {
                router: base(3, 0.15),
                ..Default::default()
            },
            11,
        );
        assert_eq!(dra.rp.route_count(), 3, "announce+withdraw nets out");
    }
}
