//! Declarative fault-scenario scripting.
//!
//! Experiments, examples, and the CLI all need the same shape of code:
//! run a simulator to *t₁*, inject something, run to *t₂*, repair
//! something, … A [`Scenario`] captures that timeline as data, runs it
//! against either architecture, and returns the final metrics —
//! guaranteeing that BDR/DRA comparisons execute *exactly* the same
//! timeline.

use crate::sim::{DraConfig, DraRouter};
use dra_net::addr::Ipv4Prefix;
use dra_router::bdr::{BdrConfig, BdrRouter};
use dra_router::components::ComponentKind;
use dra_router::faults::FaultInjector;
use dra_router::metrics::RouterMetrics;
use rand::Rng;

/// One scripted action.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Fail one unit of one linecard.
    FailComponent(u16, ComponentKind),
    /// Hot-swap repair a linecard (all units).
    RepairLc(u16),
    /// Fail the EIB passive lines (DRA only; ignored on BDR).
    FailEib,
    /// Repair the EIB lines (DRA only; ignored on BDR).
    RepairEib,
    /// Fail one switching-fabric plane.
    FailFabricPlane,
    /// Repair one switching-fabric plane.
    RepairFabricPlane,
    /// Announce a route on every card.
    AnnounceRoute(Ipv4Prefix, u16),
    /// Withdraw a route everywhere.
    WithdrawRoute(Ipv4Prefix),
}

/// A timeline of actions over a fixed horizon.
#[derive(Debug, Clone, Default)]
pub struct Scenario {
    /// `(time_s, action)` pairs; executed in time order.
    events: Vec<(f64, Action)>,
    horizon_s: f64,
}

impl Scenario {
    /// An empty scenario ending at `horizon_s`.
    pub fn new(horizon_s: f64) -> Self {
        assert!(horizon_s > 0.0 && horizon_s.is_finite());
        Scenario {
            events: Vec::new(),
            horizon_s,
        }
    }

    /// Schedule an action (builder style).
    ///
    /// # Panics
    /// Panics when `at_s` lies outside `[0, horizon]`.
    pub fn at(mut self, at_s: f64, action: Action) -> Self {
        assert!(
            (0.0..=self.horizon_s).contains(&at_s),
            "action at {at_s}s outside horizon {}s",
            self.horizon_s
        );
        self.events.push((at_s, action));
        self
    }

    /// The configured horizon.
    pub fn horizon(&self) -> f64 {
        self.horizon_s
    }

    /// The scripted `(time_s, action)` pairs, in insertion order.
    pub fn events(&self) -> &[(f64, Action)] {
        &self.events
    }

    /// Number of scripted actions.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no actions are scripted.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    fn ordered(&self) -> Vec<(f64, Action)> {
        let mut ev = self.events.clone();
        ev.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite times"));
        ev
    }

    /// Run against the DRA architecture; returns (metrics, final model).
    pub fn run_dra(&self, config: DraConfig, seed: u64) -> DraRouter {
        let mut sim = DraRouter::simulation(config, seed);
        for (at, action) in self.ordered() {
            sim.run_until(at);
            let now = sim.now();
            let model = sim.model_mut();
            match action {
                Action::FailComponent(lc, kind) => model.fail_component_now(lc, kind, now),
                Action::RepairLc(lc) => model.repair_lc_now(lc, now),
                Action::FailEib => model.fail_eib_now(now),
                Action::RepairEib => model.repair_eib_now(now),
                Action::FailFabricPlane => model.fabric.fail_plane(),
                Action::RepairFabricPlane => model.fabric.repair_plane(),
                Action::AnnounceRoute(p, nh) => model.announce_route(p, nh),
                Action::WithdrawRoute(p) => {
                    model.withdraw_route(p);
                }
            }
        }
        sim.run_until(self.horizon_s);
        sim.into_model()
    }

    /// Run against the BDR baseline (EIB actions are no-ops there).
    pub fn run_bdr(&self, config: BdrConfig, seed: u64) -> BdrRouter {
        let mut sim = BdrRouter::simulation(config, seed);
        for (at, action) in self.ordered() {
            sim.run_until(at);
            let now = sim.now();
            let model = sim.model_mut();
            match action {
                Action::FailComponent(lc, kind) => model.fail_component_now(lc, kind, now),
                Action::RepairLc(lc) => model.repair_lc_now(lc, now),
                Action::FailEib | Action::RepairEib => {}
                Action::FailFabricPlane => model.fabric.fail_plane(),
                Action::RepairFabricPlane => model.fabric.repair_plane(),
                Action::AnnounceRoute(p, nh) => model.announce_route(p, nh),
                Action::WithdrawRoute(p) => {
                    model.withdraw_route(p);
                }
            }
        }
        sim.run_until(self.horizon_s);
        sim.into_model()
    }

    /// Run the identical timeline on both architectures and return
    /// `(bdr_metrics, dra_metrics)`.
    pub fn compare(&self, base: BdrConfig, seed: u64) -> (RouterMetrics, RouterMetrics) {
        let bdr = self.run_bdr(base.clone(), seed);
        let dra = self.run_dra(
            DraConfig {
                router: base,
                ..Default::default()
            },
            seed,
        );
        (bdr.metrics, dra.metrics)
    }

    /// Like [`Self::run_dra`], but also snapshot the metrics at
    /// `measure_from_s` so callers can compute post-warmup (windowed)
    /// quantities — e.g. the delivery fraction *after* a failure,
    /// excluding the healthy warmup traffic (the Figure-8 validation
    /// measures exactly this).
    ///
    /// Actions scheduled at exactly `measure_from_s` execute before
    /// the snapshot, so "fail at t, measure from t" windows start in
    /// the failed state.
    pub fn run_dra_windowed(
        &self,
        config: DraConfig,
        seed: u64,
        measure_from_s: f64,
    ) -> (DraRouter, WindowedMetrics) {
        assert!((0.0..=self.horizon_s).contains(&measure_from_s));
        let mut sim = DraRouter::simulation(config, seed);
        let mut snapshot: Option<RouterMetrics> = None;
        for (at, action) in self.ordered() {
            if snapshot.is_none() && at > measure_from_s {
                sim.run_until(measure_from_s);
                snapshot = Some(sim.model().metrics.clone());
            }
            sim.run_until(at);
            let now = sim.now();
            let model = sim.model_mut();
            match action {
                Action::FailComponent(lc, kind) => model.fail_component_now(lc, kind, now),
                Action::RepairLc(lc) => model.repair_lc_now(lc, now),
                Action::FailEib => model.fail_eib_now(now),
                Action::RepairEib => model.repair_eib_now(now),
                Action::FailFabricPlane => model.fabric.fail_plane(),
                Action::RepairFabricPlane => model.fabric.repair_plane(),
                Action::AnnounceRoute(p, nh) => model.announce_route(p, nh),
                Action::WithdrawRoute(p) => {
                    model.withdraw_route(p);
                }
            }
        }
        if snapshot.is_none() {
            sim.run_until(measure_from_s);
            snapshot = Some(sim.model().metrics.clone());
        }
        sim.run_until(self.horizon_s);
        let model = sim.into_model();
        let windowed = WindowedMetrics {
            full: model.metrics.clone(),
            at_window_start: snapshot.expect("snapshot taken"),
        };
        (model, windowed)
    }

    /// BDR counterpart of [`Self::run_dra_windowed`].
    pub fn run_bdr_windowed(
        &self,
        config: BdrConfig,
        seed: u64,
        measure_from_s: f64,
    ) -> (BdrRouter, WindowedMetrics) {
        assert!((0.0..=self.horizon_s).contains(&measure_from_s));
        let mut sim = BdrRouter::simulation(config, seed);
        let mut snapshot: Option<RouterMetrics> = None;
        for (at, action) in self.ordered() {
            if snapshot.is_none() && at > measure_from_s {
                sim.run_until(measure_from_s);
                snapshot = Some(sim.model().metrics.clone());
            }
            sim.run_until(at);
            let now = sim.now();
            let model = sim.model_mut();
            match action {
                Action::FailComponent(lc, kind) => model.fail_component_now(lc, kind, now),
                Action::RepairLc(lc) => model.repair_lc_now(lc, now),
                Action::FailEib | Action::RepairEib => {}
                Action::FailFabricPlane => model.fabric.fail_plane(),
                Action::RepairFabricPlane => model.fabric.repair_plane(),
                Action::AnnounceRoute(p, nh) => model.announce_route(p, nh),
                Action::WithdrawRoute(p) => {
                    model.withdraw_route(p);
                }
            }
        }
        if snapshot.is_none() {
            sim.run_until(measure_from_s);
            snapshot = Some(sim.model().metrics.clone());
        }
        sim.run_until(self.horizon_s);
        let model = sim.into_model();
        let windowed = WindowedMetrics {
            full: model.metrics.clone(),
            at_window_start: snapshot.expect("snapshot taken"),
        };
        (model, windowed)
    }
}

/// Final metrics plus a snapshot taken at the measurement-window
/// start, so monotone counters can be differenced into window-only
/// quantities.
#[derive(Debug, Clone)]
pub struct WindowedMetrics {
    /// Metrics at the horizon (the whole run).
    pub full: RouterMetrics,
    /// Metrics snapshot at `measure_from_s`.
    pub at_window_start: RouterMetrics,
}

impl WindowedMetrics {
    /// Bytes offered to linecard `lc` inside the window.
    pub fn window_offered_bytes(&self, lc: usize) -> u64 {
        self.full.lcs[lc].offered_bytes - self.at_window_start.lcs[lc].offered_bytes
    }

    /// Bytes delivered by linecard `lc` inside the window.
    pub fn window_delivered_bytes(&self, lc: usize) -> u64 {
        self.full.lcs[lc].delivered_bytes - self.at_window_start.lcs[lc].delivered_bytes
    }

    /// Router-wide delivered/offered byte ratio inside the window
    /// (1.0 when nothing was offered).
    pub fn window_byte_delivery_ratio(&self) -> f64 {
        let n = self.full.lcs.len();
        let offered: u64 = (0..n).map(|lc| self.window_offered_bytes(lc)).sum();
        let delivered: u64 = (0..n).map(|lc| self.window_delivered_bytes(lc)).sum();
        if offered == 0 {
            1.0
        } else {
            delivered as f64 / offered as f64
        }
    }
}

/// A stochastic fault/repair process that materializes as an explicit
/// [`Scenario`] timeline.
///
/// This generalizes the fault-level sampling of [`crate::montecarlo`]
/// to the packet simulators: component lifetimes are drawn from a
/// [`FaultInjector`] (exponential, at the paper's §5 rates unless
/// overridden) and — unlike the live `BdrConfig::faults` hook, which
/// gives each architecture its own statistically-identical stream —
/// the sampled timeline is *data*, so BDR and DRA can replay the
/// **identical** failure history.
#[derive(Debug, Clone)]
pub struct FaultProcess {
    /// Lifetime/repair sampler (rates, repair time, granularity).
    pub injector: FaultInjector,
    /// Sampled delays are in the injector's rate units (hours for the
    /// paper's rates); they are multiplied by this to become
    /// simulation seconds. 3600 maps paper-hours faithfully;
    /// experiments use small values to compress time.
    pub delay_scale: f64,
    /// Schedule hot-swap repairs (`repair_time_h` after the first
    /// failure of a card, restoring every unit); without repair each
    /// card fails at most once per unit.
    pub repair: bool,
}

impl FaultProcess {
    /// Sample one fault timeline for `n_lcs` linecards over
    /// `horizon_s` simulated seconds.
    ///
    /// Per linecard this is a renewal process: arm every unit, fire
    /// the failures that precede the hot swap, repair, re-arm. Units
    /// armed before a repair but sampled to fail after it never fire —
    /// mirroring the generation-counter invalidation the live
    /// injection path uses. The EIB line gets its own renewal stream
    /// (a no-op when replayed on BDR).
    ///
    /// Sampling order is fixed (cards in index order, then the EIB),
    /// so one seed yields one timeline regardless of caller context.
    pub fn sample<R: Rng + ?Sized>(&self, n_lcs: usize, horizon_s: f64, rng: &mut R) -> Scenario {
        assert!(self.delay_scale > 0.0);
        let horizon_h = horizon_s / self.delay_scale;
        let mut sc = Scenario::new(horizon_s);
        for lc in 0..n_lcs as u16 {
            let mut t_h = 0.0;
            while t_h < horizon_h {
                let armed = self.injector.arm_linecard(rng);
                let first = armed.iter().map(|&(_, d)| d).fold(f64::INFINITY, f64::min);
                if !self.repair {
                    for (kind, d) in armed {
                        if t_h + d < horizon_h {
                            sc = sc.at(
                                (t_h + d) * self.delay_scale,
                                Action::FailComponent(lc, kind),
                            );
                        }
                    }
                    break;
                }
                let swap_h = first + self.injector.repair_delay_h();
                for (kind, d) in armed {
                    // Units that outlive the hot swap are replaced
                    // before they fail.
                    if d < swap_h && t_h + d < horizon_h {
                        sc = sc.at(
                            (t_h + d) * self.delay_scale,
                            Action::FailComponent(lc, kind),
                        );
                    }
                }
                t_h += swap_h;
                if t_h < horizon_h {
                    sc = sc.at(t_h * self.delay_scale, Action::RepairLc(lc));
                }
            }
        }
        let mut t_h = 0.0;
        while let Some(d) = self.injector.arm_eib(rng) {
            if t_h + d >= horizon_h {
                break;
            }
            sc = sc.at((t_h + d) * self.delay_scale, Action::FailEib);
            if !self.repair {
                break;
            }
            t_h += d + self.injector.repair_delay_h();
            if t_h >= horizon_h {
                break;
            }
            sc = sc.at(t_h * self.delay_scale, Action::RepairEib);
        }
        sc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dra_router::metrics::DropCause;

    fn base(n: usize, load: f64) -> BdrConfig {
        BdrConfig {
            n_lcs: n,
            load,
            ..BdrConfig::default()
        }
    }

    #[test]
    fn builder_validates_times() {
        let s = Scenario::new(1e-3)
            .at(0.2e-3, Action::FailComponent(0, ComponentKind::Lfe))
            .at(0.7e-3, Action::RepairLc(0));
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert_eq!(s.horizon(), 1e-3);
    }

    #[test]
    #[should_panic(expected = "outside horizon")]
    fn actions_past_horizon_rejected() {
        let _ = Scenario::new(1e-3).at(2e-3, Action::FailEib);
    }

    #[test]
    fn out_of_order_actions_execute_in_time_order() {
        // Scripted repair-before-failure in the list; time order wins.
        let s = Scenario::new(3e-3)
            .at(2e-3, Action::RepairLc(0))
            .at(1e-3, Action::FailComponent(0, ComponentKind::Sru));
        let dra = s.run_dra(
            DraConfig {
                router: base(4, 0.2),
                ..Default::default()
            },
            5,
        );
        // Coverage happened (failure preceded repair), then recovered.
        assert!(dra.metrics.lcs[0].covered_packets > 0);
        assert!(dra.metrics.byte_delivery_ratio() > 0.98);
    }

    #[test]
    fn compare_runs_identical_timelines() {
        let s = Scenario::new(3e-3).at(1e-3, Action::FailComponent(0, ComponentKind::Lfe));
        let (bdr, dra) = s.compare(base(4, 0.2), 42);
        // Identical offered traffic, divergent outcomes.
        for lc in 0..4 {
            assert_eq!(bdr.lcs[lc].offered_packets, dra.lcs[lc].offered_packets);
        }
        assert!(bdr.lcs[0].drops(DropCause::IngressDown) > 0);
        assert_eq!(dra.lcs[0].drops(DropCause::IngressDown), 0);
        assert!(dra.byte_delivery_ratio() > bdr.byte_delivery_ratio());
    }

    #[test]
    fn eib_actions_are_noops_on_bdr() {
        let s = Scenario::new(2e-3)
            .at(0.5e-3, Action::FailEib)
            .at(1.5e-3, Action::RepairEib);
        let bdr = s.run_bdr(base(3, 0.15), 7);
        assert!(bdr.metrics.byte_delivery_ratio() > 0.98);
    }

    #[test]
    fn fabric_plane_actions_flow_through() {
        let s = Scenario::new(2e-3)
            .at(0.5e-3, Action::FailFabricPlane)
            .at(0.6e-3, Action::FailFabricPlane)
            .at(1.2e-3, Action::RepairFabricPlane);
        let dra = s.run_dra(
            DraConfig {
                router: base(3, 0.15),
                ..Default::default()
            },
            9,
        );
        assert_eq!(dra.fabric.planes_failed(), 1);
    }

    #[test]
    fn windowed_run_diffs_monotone_counters() {
        let s = Scenario::new(4e-3).at(2e-3, Action::FailComponent(0, ComponentKind::Sru));
        let (model, w) = s.run_dra_windowed(
            DraConfig {
                router: base(4, 0.2),
                ..Default::default()
            },
            3,
            2e-3,
        );
        // Window counters are a strict subset of the full run.
        for lc in 0..4 {
            assert!(w.window_offered_bytes(lc) <= model.metrics.lcs[lc].offered_bytes);
            assert!(w.window_offered_bytes(lc) > 0, "traffic flows in window");
        }
        // Packets offered just before the window can be delivered just
        // inside it, so the ratio may slightly exceed 1; it must still
        // be finite and near the unit interval.
        let r = w.window_byte_delivery_ratio();
        assert!(r.is_finite() && r > 0.0 && r < 1.1, "ratio {r}");
    }

    #[test]
    fn windowed_snapshot_follows_same_instant_actions() {
        // "Fail at t, measure from t": the snapshot sees pre-failure
        // counters, so windowed delivery reflects the failed state.
        let s = Scenario::new(6e-3).at(2e-3, Action::FailComponent(0, ComponentKind::Sru));
        let (_, bdr) = s.run_bdr_windowed(base(4, 0.2), 3, 2e-3);
        // A failed BDR card delivers (almost) nothing post-failure.
        let off = bdr.window_offered_bytes(0);
        let del = bdr.window_delivered_bytes(0);
        assert!(off > 0);
        assert!(
            (del as f64) < 0.2 * off as f64,
            "faulty BDR card delivered {del}/{off} in window"
        );
    }

    #[test]
    fn windowed_full_run_matches_plain_run() {
        let s = Scenario::new(3e-3).at(1e-3, Action::FailComponent(0, ComponentKind::Lfe));
        let plain = s.run_dra(
            DraConfig {
                router: base(4, 0.2),
                ..Default::default()
            },
            11,
        );
        let (windowed, _) = s.run_dra_windowed(
            DraConfig {
                router: base(4, 0.2),
                ..Default::default()
            },
            11,
            1.5e-3,
        );
        // The snapshot must not perturb the simulation.
        for lc in 0..4 {
            assert_eq!(
                plain.metrics.lcs[lc].delivered_bytes,
                windowed.metrics.lcs[lc].delivered_bytes
            );
        }
    }

    #[test]
    fn sampled_schedule_is_deterministic_by_seed() {
        use dra_router::faults::FaultGranularity;
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let proc = FaultProcess {
            injector: {
                let mut inj = FaultInjector::new(3.0, FaultGranularity::PerComponent);
                inj.rates = crate::montecarlo::inflated_rates(1000.0);
                inj
            },
            delay_scale: 4e-3 / 50.0,
            repair: true,
        };
        let a = proc.sample(6, 40e-3, &mut SmallRng::seed_from_u64(9));
        let b = proc.sample(6, 40e-3, &mut SmallRng::seed_from_u64(9));
        assert_eq!(a.events(), b.events());
        let c = proc.sample(6, 40e-3, &mut SmallRng::seed_from_u64(10));
        assert_ne!(a.events(), c.events());
        // Inflated rates over a long compressed horizon must produce
        // a non-trivial timeline with both failures and repairs.
        assert!(!a.is_empty(), "no faults sampled");
        assert!(a
            .events()
            .iter()
            .any(|(_, act)| matches!(act, Action::RepairLc(_))));
        // All events respect the horizon.
        assert!(a.events().iter().all(|&(t, _)| t < 40e-3));
    }

    #[test]
    fn sampled_schedule_replays_identically_on_both_archs() {
        use dra_router::faults::FaultGranularity;
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let proc = FaultProcess {
            injector: {
                let mut inj = FaultInjector::new(3.0, FaultGranularity::WholeLc);
                inj.rates = crate::montecarlo::inflated_rates(1000.0);
                inj
            },
            delay_scale: 4e-3 / 50.0,
            repair: false,
        };
        let sc = proc.sample(4, 10e-3, &mut SmallRng::seed_from_u64(21));
        let (bdr, dra) = sc.compare(base(4, 0.2), 5);
        for lc in 0..4 {
            assert_eq!(bdr.lcs[lc].offered_packets, dra.lcs[lc].offered_packets);
        }
    }

    #[test]
    fn route_actions_update_the_rib() {
        use dra_net::addr::Ipv4Addr;
        let p = Ipv4Prefix::new(Ipv4Addr::from_octets(10, 1, 128, 0), 17);
        let s = Scenario::new(2e-3)
            .at(0.5e-3, Action::AnnounceRoute(p, 2))
            .at(1.5e-3, Action::WithdrawRoute(p));
        let dra = s.run_dra(
            DraConfig {
                router: base(3, 0.15),
                ..Default::default()
            },
            11,
        );
        assert_eq!(dra.rp.route_count(), 3, "announce+withdraw nets out");
    }
}
