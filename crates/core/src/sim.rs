//! The DRA packet-level router model.
//!
//! The pipeline mirrors [`dra_router::bdr::BdrRouter`] until a failure
//! appears; then the [`crate::coverage::CoveragePlanner`] turns each
//! packet's journey into a sequence of [`Stage`]s that may detour over
//! the EIB:
//!
//! * data-line hops run at the flow's promised bandwidth
//!   (`B_prom`, recomputed whenever the set of covered flows changes),
//!   with over-subscription realized as drops — exactly the paper's
//!   scale-back rule;
//! * remote lookups (failed LFE) ride the CSMA/CD control lines as
//!   REQ_L/REP_L control packets, with binary-exponential backoff on
//!   collisions;
//! * the first data transfer of a newly covered flow pays the
//!   REQ_D/REP_D logical-path setup handshake on the control lines.
//!
//! The data lines are modelled as a fluid server per logical path at
//! its promised rate. The slot-level TDM arbiter of §4 is implemented
//! and verified in [`crate::eib::arbiter`]; at the timescales the
//! experiments measure (milliseconds, thousands of packets), the
//! round-robin slot interleaving is indistinguishable from the fluid
//! approximation, which keeps the event count tractable.

use crate::coverage::{CoveragePlanner, EgressRoute, IngressRoute, LcView};
use crate::eib::control::{CsmaChannel, TxResult};
use dra_des::{Ctx, Model, Simulation};
use dra_net::addr::Ipv4Addr;
use dra_net::fib::Fib;
use dra_net::packet::{Packet, PacketId, PacketIdGen};
use dra_net::sar::{segment_cells, CELL_BYTES};
use dra_net::traffic::PoissonGen;
use dra_router::bdr::BdrConfig;
use dra_router::components::{ComponentKind, Health};
use dra_router::fabric::Crossbar;
use dra_router::faults::Generations;
use dra_router::ingress::ArrivalTrain;
use dra_router::linecard::Linecard;
use dra_router::metrics::{DropCause, RouterMetrics};
use std::collections::HashMap;

/// EIB parameters.
#[derive(Debug, Clone)]
pub struct EibConfig {
    /// Data-line capacity `B_BUS` (bits/second).
    pub data_rate_bps: f64,
    /// Control-line rate (bits/second).
    pub control_rate_bps: f64,
    /// Control-line propagation delay (seconds).
    pub prop_delay_s: f64,
    /// Longest tolerated data-line backlog before packets are shed
    /// (realizes the `B_prom` scale-back as drops).
    pub max_backlog_s: f64,
    /// Give up a control transaction after this many collisions.
    pub max_control_attempts: u32,
    /// Fault-table dissemination delay: how long until *other* cards
    /// learn of a health change (the paper's processing-tier control
    /// packets are not instantaneous). Zero = oracle gossip. During
    /// the window, peers plan against the stale view and their traffic
    /// to/via the changed card is lost — measurably.
    pub gossip_delay_s: f64,
}

impl Default for EibConfig {
    fn default() -> Self {
        EibConfig {
            data_rate_bps: 40e9,
            control_rate_bps: 1e9,
            prop_delay_s: 50e-9,
            max_backlog_s: 2e-3,
            max_control_attempts: 16,
            gossip_delay_s: 0.0,
        }
    }
}

/// Configuration of a DRA simulation: the BDR base plus the EIB.
#[derive(Debug, Clone, Default)]
pub struct DraConfig {
    /// Linecards, fabric, traffic — shared with the BDR baseline.
    pub router: BdrConfig,
    /// The Enhanced Internal Bus.
    pub eib: EibConfig,
}

/// Flow-account key offset distinguishing egress-coverage traffic
/// (packets *to* a faulty LC) from ingress-coverage traffic (packets
/// *from* it); the two directions hold separate promised-bandwidth
/// accounts, as only the ingress direction consumes helper capacity.
const EGRESS_FLOW_OFFSET: u16 = 0x8000;

/// One step of a packet's (possibly coverage-detoured) journey.
/// Public because it appears inside [`DraEvent`]; constructed only by
/// the planner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Stage {
    /// Full ingress pipeline at a healthy LC.
    IngressProc {
        /// The processing linecard.
        lc: u16,
    },
    /// REQ_L/REP_L remote lookup through `helper` (control lines).
    RemoteLookup {
        /// The LC answering the lookup.
        helper: u16,
    },
    /// EIB data-line hop.
    EibHop {
        /// Destination linecard of the hop.
        to: u16,
        /// The faulty LC whose promised-bandwidth account this rides.
        flow: u16,
    },
    /// PDLU+SRU(+LFE) processing at a covering helper.
    HelperProc {
        /// The covering linecard.
        lc: u16,
    },
    /// Cells across the crossbar.
    Fabric {
        /// Fabric input port.
        src: u16,
        /// Fabric output port.
        dst: u16,
    },
    /// Reassembly + PDLU framing at an LC_inter (Case 3, cross-protocol).
    InterProc {
        /// The intermediate linecard.
        lc: u16,
    },
    /// Final egress (PDLU/PIU/wire as health allows) and delivery.
    EgressProc {
        /// The egress linecard.
        lc: u16,
    },
}

/// Longest possible plan: ingress coverage contributes at most two
/// stages (remote lookup or EIB hop + processing) and egress coverage
/// at most four (fabric + LC_inter + EIB hop + egress).
pub const MAX_STAGES: usize = 6;

/// A packet's full stage plan, inline and `Copy` — events carry it by
/// value instead of heap-allocating a `Vec<Stage>` per packet.
#[derive(Debug, Clone, Copy)]
pub struct StagePlan {
    stages: [Stage; MAX_STAGES],
    len: u8,
}

impl StagePlan {
    /// An empty plan.
    fn new() -> Self {
        StagePlan {
            stages: [Stage::IngressProc { lc: 0 }; MAX_STAGES],
            len: 0,
        }
    }

    /// Append a stage. Panics if the plan exceeds [`MAX_STAGES`] —
    /// impossible by construction in [`DraRouter::plan_stages`].
    fn push(&mut self, stage: Stage) {
        self.stages[self.len as usize] = stage;
        self.len += 1;
    }

    /// The planned stages, in execution order.
    pub fn as_slice(&self) -> &[Stage] {
        &self.stages[..self.len as usize]
    }
}

impl std::ops::Index<usize> for StagePlan {
    type Output = Stage;

    fn index(&self, idx: usize) -> &Stage {
        &self.as_slice()[idx]
    }
}

impl PartialEq for StagePlan {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

/// Which coverage machinery (if any) a packet's journey used — the
/// key for per-path latency accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PathKind {
    /// The regular PIU→PDLU→SRU/LFE→fabric→egress pipeline.
    Normal,
    /// Only the lookup detoured (REQ_L/REP_L on the control lines).
    RemoteLookup,
    /// The ingress side crossed the EIB data lines to a helper.
    IngressEib,
    /// The egress side crossed the EIB data lines.
    EgressEib,
    /// Both sides needed coverage.
    Both,
}

impl PathKind {
    /// All kinds, in reporting order.
    pub const ALL: [PathKind; 5] = [
        PathKind::Normal,
        PathKind::RemoteLookup,
        PathKind::IngressEib,
        PathKind::EgressEib,
        PathKind::Both,
    ];

    /// Dense index for metric arrays.
    pub fn index(self) -> usize {
        match self {
            PathKind::Normal => 0,
            PathKind::RemoteLookup => 1,
            PathKind::IngressEib => 2,
            PathKind::EgressEib => 3,
            PathKind::Both => 4,
        }
    }

    /// Short label for tables.
    pub fn name(self) -> &'static str {
        match self {
            PathKind::Normal => "normal",
            PathKind::RemoteLookup => "remote-lookup",
            PathKind::IngressEib => "ingress-eib",
            PathKind::EgressEib => "egress-eib",
            PathKind::Both => "both-sides",
        }
    }
}

/// Per-packet bookkeeping carried through the stages. Public because
/// it appears inside [`DraEvent`]; fields stay private to the model.
#[derive(Debug, Clone, Copy)]
pub struct FlowMeta {
    id: PacketId,
    ip_bytes: u32,
    arrived_at: f64,
    ingress: u16,
    covered: bool,
    path: PathKind,
}

/// Events of the DRA model.
#[derive(Debug)]
pub enum DraEvent {
    /// Kick-off.
    Start,
    /// Next packet at `lc`.
    Arrival {
        /// Ingress linecard.
        lc: u16,
    },
    /// Run stage `idx` of a packet's plan.
    StageStart {
        /// Packet bookkeeping.
        meta: FlowMeta,
        /// The full stage plan.
        stages: StagePlan,
        /// Index of the stage to execute.
        idx: usize,
    },
    /// Retry a control-line transmission after busy/collision.
    ControlRetry {
        /// Packet bookkeeping.
        meta: FlowMeta,
        /// The full stage plan.
        stages: StagePlan,
        /// Stage being served by this transaction.
        idx: usize,
        /// Control packets still to send in this transaction.
        remaining: u8,
        /// Collision count so far.
        attempt: u32,
    },
    /// A control-line transmission finished; check for collision.
    ControlDone {
        /// Packet bookkeeping.
        meta: FlowMeta,
        /// The full stage plan.
        stages: StagePlan,
        /// Stage being served.
        idx: usize,
        /// Control packets still to send after this one.
        remaining: u8,
        /// Collision count so far.
        attempt: u32,
        /// Channel token.
        tx: u64,
    },
    /// One fabric cell slot.
    FabricSlot,
    /// Component failure (generation-stamped).
    Fail {
        /// Affected linecard.
        lc: u16,
        /// Failing unit.
        kind: ComponentKind,
        /// Repair generation at arming time.
        gen: u32,
    },
    /// The EIB passive lines fail.
    FailEib,
    /// Hot-swap repair of a linecard.
    Repair {
        /// Repaired linecard.
        lc: u16,
    },
    /// EIB lines repaired.
    RepairEib,
    /// Periodic reassembly garbage collection.
    PurgeReassembly,
}

/// The DRA router model.
#[derive(Debug)]
pub struct DraRouter {
    /// Configuration.
    pub config: DraConfig,
    /// Linecards (with PDLU health meaningful, unlike BDR).
    pub linecards: Vec<Linecard>,
    /// The switching fabric.
    pub fabric: Crossbar,
    /// Metrics (EIB counters live here too).
    pub metrics: RouterMetrics,
    /// Are the EIB passive lines healthy?
    pub eib_healthy: bool,
    /// The route processor owning the master RIB.
    pub rp: dra_router::rp::RouteProcessor,
    control: CsmaChannel,
    generators: Vec<PoissonGen>,
    id_gens: Vec<PacketIdGen>,
    /// Packets inside the fabric: resumed on reassembly completion.
    in_fabric: HashMap<PacketId, (FlowMeta, StagePlan, usize)>,
    generations: Generations,
    repair_pending: Vec<bool>,
    slot_time_s: f64,
    slot_scheduled: bool,
    capacity_credit: f64,
    /// Reused copy of the current fabric slot's cells, so delivery can
    /// run `&mut self` handlers without holding the fabric's borrow
    /// (and without allocating per slot).
    slot_handles: Vec<dra_router::CellHandle>,
    /// Per-flow data-line virtual finish time.
    eib_busy_until: HashMap<u16, f64>,
    /// Dedicated per-LC traffic RNG streams (see `DraRouter::new`).
    traffic_rngs: Vec<rand::rngs::SmallRng>,
    /// Per-LC pre-resolved arrival trains (batched FIB lookups).
    trains: Vec<ArrivalTrain>,
    /// Flows whose REQ_D/REP_D logical path is already set up.
    lp_established: std::collections::HashSet<u16>,
    /// Cached promised bandwidth per flow.
    b_prom: HashMap<u16, f64>,
    /// Gossip staleness: per-LC health as peers last saw it, with the
    /// change timestamp (see `EibConfig::gossip_delay_s`).
    gossip: Vec<GossipCell>,
    gossip_eib: GossipEibCell,
    /// Delivered-packet latency per [`PathKind`].
    latency_by_path: [dra_des::stats::Welford; 5],
    /// Latency distributions per [`PathKind`] (log buckets, 100 ns–10 ms).
    latency_hist_by_path: Vec<dra_des::stats::LogHistogram>,
}

/// Stale-view bookkeeping for one linecard.
#[derive(Debug, Clone, Copy)]
struct GossipCell {
    /// Health before the most recent change.
    prev: dra_router::components::LcComponents,
    /// When the most recent change happened.
    changed_at: f64,
}

/// Stale-view bookkeeping for the EIB lines.
#[derive(Debug, Clone, Copy)]
struct GossipEibCell {
    prev: bool,
    changed_at: f64,
}

impl DraRouter {
    /// Build the router. `seed` feeds the per-LC traffic RNG streams —
    /// seeded identically to [`dra_router::bdr::BdrRouter::new`], so
    /// both architectures see byte-identical offered traffic under the
    /// same seed no matter how much randomness their internals consume.
    pub fn new(config: DraConfig, seed: u64) -> Self {
        let r = &config.router;
        assert!(r.n_lcs >= 3, "DRA needs N >= 3");
        assert!(r.load > 0.0 && r.load <= 1.0);
        let mut linecards: Vec<Linecard> = (0..r.n_lcs)
            .map(|i| {
                Linecard::with_ports(i as u16, r.protocol_of(i), r.port_rate_bps, r.ports_per_lc)
            })
            .collect();
        let mut rp = dra_router::rp::RouteProcessor::new();
        for dst in 0..r.n_lcs {
            rp.announce(BdrConfig::prefix_of(dst), dst as u16);
        }
        rp.distribute(&mut linecards);
        let generators = (0..r.n_lcs)
            .map(|i| {
                let bases: Vec<Ipv4Addr> = (0..r.n_lcs)
                    .filter(|&j| j != i)
                    .map(BdrConfig::dst_base_of)
                    .collect();
                PoissonGen::new(r.load * r.port_rate_bps, &bases)
            })
            .collect();
        let traffic_rngs = (0..r.n_lcs)
            .map(|i| {
                use rand::SeedableRng;
                rand::rngs::SmallRng::seed_from_u64(
                    seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (i as u64 + 1),
                )
            })
            .collect();
        let id_gens = (0..r.n_lcs)
            .map(|i| PacketIdGen::starting_at((i as u64) << 48))
            .collect();
        let fabric = Crossbar::new(
            r.n_lcs,
            r.voq_capacity,
            r.islip_iterations,
            r.fabric_planes_total,
            r.fabric_planes_required,
        );
        let slot_time_s = CELL_BYTES as f64 * 8.0 / (r.port_rate_bps * r.fabric_speedup);
        let control = CsmaChannel::new(config.eib.control_rate_bps, config.eib.prop_delay_s);
        let metrics = RouterMetrics::new(r.n_lcs);
        let generations = Generations::new(r.n_lcs);
        let repair_pending = vec![false; r.n_lcs];

        let trains = (0..r.n_lcs).map(|_| ArrivalTrain::new()).collect();
        DraRouter {
            linecards,
            fabric,
            metrics,
            eib_healthy: true,
            rp,
            control,
            generators,
            traffic_rngs,
            trains,
            id_gens,
            in_fabric: HashMap::new(),
            generations,
            repair_pending,
            slot_time_s,
            slot_scheduled: false,
            capacity_credit: 0.0,
            slot_handles: Vec::new(),
            eib_busy_until: HashMap::new(),
            lp_established: std::collections::HashSet::new(),
            b_prom: HashMap::new(),
            gossip: vec![
                GossipCell {
                    prev: dra_router::components::LcComponents::healthy(),
                    changed_at: f64::NEG_INFINITY,
                };
                config.router.n_lcs
            ],
            gossip_eib: GossipEibCell {
                prev: true,
                changed_at: f64::NEG_INFINITY,
            },
            latency_by_path: Default::default(),
            latency_hist_by_path: (0..5)
                .map(|_| dra_router::metrics::latency_histogram())
                .collect(),
            config,
        }
    }

    /// Wrap in a seeded simulation with the start event queued.
    pub fn simulation(config: DraConfig, seed: u64) -> Simulation<DraRouter> {
        let mut sim = Simulation::new(DraRouter::new(config, seed), seed);
        sim.schedule(0.0, DraEvent::Start);
        sim
    }

    /// The planner's snapshot of the router.
    fn views(&self) -> Vec<LcView> {
        let spare = self.config.router.port_rate_bps * (1.0 - self.config.router.load);
        self.linecards
            .iter()
            .map(|lc| LcView {
                protocol: lc.protocol,
                components: lc.components,
                spare_bps: spare,
            })
            .collect()
    }

    /// Is `lc`'s service currently deliverable (directly or covered)?
    /// Uses ground-truth health (the metric, not any card's view).
    pub fn lc_serviceable(&self, lc: u16) -> bool {
        // The per-hop form: reads linecard state in place instead of
        // materializing a `Vec<LcView>` per health check (this is the
        // network hot path — see dra-topo's `net_hotpath_noalloc`).
        let spare = self.config.router.port_rate_bps * (1.0 - self.config.router.load);
        crate::coverage::lc_serviceable_with(
            |i| LcView {
                protocol: self.linecards[i].protocol,
                components: self.linecards[i].components,
                spare_bps: spare,
            },
            self.linecards.len(),
            lc,
            None,
            self.eib_healthy,
        )
    }

    /// The router as `origin` believes it to be at time `now`: its own
    /// health is always current; peers' health (and the EIB's) is the
    /// pre-change state until the gossip delay elapses.
    fn views_for(&self, origin: u16, now: f64) -> (Vec<LcView>, bool) {
        let delay = self.config.eib.gossip_delay_s;
        let mut views = self.views();
        if delay > 0.0 {
            for (i, view) in views.iter_mut().enumerate() {
                if i as u16 != origin && now < self.gossip[i].changed_at + delay {
                    view.components = self.gossip[i].prev;
                }
            }
        }
        let eib_seen = if delay > 0.0 && now < self.gossip_eib.changed_at + delay {
            self.gossip_eib.prev
        } else {
            self.eib_healthy
        };
        (views, eib_seen)
    }

    /// Record a health change for gossip staleness tracking. Must be
    /// called *before* mutating the true state.
    fn note_change(&mut self, lc: u16, now: f64) {
        self.gossip[lc as usize] = GossipCell {
            prev: self.linecards[lc as usize].components,
            changed_at: now,
        };
    }

    fn note_eib_change(&mut self, now: f64) {
        self.gossip_eib = GossipEibCell {
            prev: self.eib_healthy,
            changed_at: now,
        };
    }

    /// Recompute `B_prom` for every covered flow (§4's allocation).
    ///
    /// Two constraints apply, mirroring §5.3's analysis:
    /// * ingress-coverage flows (a helper *processes* the stream) are
    ///   limited by the pooled spare capacity `Σψ` of fully healthy
    ///   linecards;
    /// * all flows together are limited by the data-line capacity
    ///   `B_BUS`, shared proportionally (`B_prom`).
    fn recompute_bandwidth(&mut self) {
        let views = self.views();
        let r = &self.config.router;
        let covered: Vec<u16> = (0..r.n_lcs as u16)
            .filter(|&i| {
                let c = views[i as usize].components;
                c.pdlu == Health::Failed || c.sru == Health::Failed || c.lfe == Health::Failed
            })
            .collect();
        let healthy = views.iter().filter(|v| v.components.all_healthy()).count();
        let spare_pool = healthy as f64 * r.port_rate_bps * (1.0 - r.load);
        let k = covered.len();
        self.b_prom.clear();
        if k == 0 {
            return;
        }

        // The TDM arbiter is work-conserving: an LP's *share* of the
        // data lines is proportional to its posted requirement, but an
        // LP may use idle slots, so the realized rate is the weighted
        // share of the whole bus (never below B_prom). Each account is
        // additionally capped by the line rate of the card it feeds,
        // and ingress accounts by their share of the helpers' pooled
        // spare capacity (a helper must *process* that stream).
        // Equal posted requirements (every covered LC asks L·c) make
        // the weighted share an equal share.
        let bus_share = self.config.eib.data_rate_bps / (2 * k) as f64;
        let spare_share = spare_pool / k as f64;
        let ing_rate = r.port_rate_bps.min(bus_share).min(spare_share);
        let egr_rate = r.port_rate_bps.min(bus_share);
        for &flow in &covered {
            self.b_prom.insert(flow, ing_rate);
            self.b_prom.insert(flow | EGRESS_FLOW_OFFSET, egr_rate);
        }
    }

    fn refresh_availability(&mut self, now: f64) {
        for lc in 0..self.config.router.n_lcs as u16 {
            let up = if self.lc_serviceable(lc) { 1.0 } else { 0.0 };
            self.metrics.lcs[lc as usize].availability.update(now, up);
        }
    }

    fn on_health_change(&mut self, now: f64) {
        self.recompute_bandwidth();
        self.refresh_availability(now);
    }

    /// Deterministic fault scripting. A PIU failure takes down one
    /// port (the paper's per-port PIUs); the aggregate PIU health
    /// reads failed only when every port is gone.
    pub fn fail_component_now(&mut self, lc: u16, kind: ComponentKind, now: f64) {
        self.note_change(lc, now);
        if kind == ComponentKind::Piu {
            self.linecards[lc as usize].fail_piu_port();
        } else {
            self.linecards[lc as usize]
                .components
                .set(kind, Health::Failed);
        }
        self.on_health_change(now);
    }

    /// Deterministic repair scripting.
    pub fn repair_lc_now(&mut self, lc: u16, now: f64) {
        self.note_change(lc, now);
        self.linecards[lc as usize].repair_all();
        self.generations.bump(lc as usize);
        self.repair_pending[lc as usize] = false;
        self.lp_established.remove(&lc);
        self.lp_established.remove(&(lc | EGRESS_FLOW_OFFSET));
        self.on_health_change(now);
    }

    /// Deterministic EIB-line failure.
    pub fn fail_eib_now(&mut self, now: f64) {
        self.note_eib_change(now);
        self.eib_healthy = false;
        self.on_health_change(now);
    }

    /// Deterministic EIB repair.
    pub fn repair_eib_now(&mut self, now: f64) {
        self.note_eib_change(now);
        self.eib_healthy = true;
        self.on_health_change(now);
    }

    /// Announce a route at the RP and push it to every card's FIB.
    pub fn announce_route(&mut self, prefix: dra_net::addr::Ipv4Prefix, next_hop: u16) {
        self.rp.announce(prefix, next_hop);
        for lc in &mut self.linecards {
            lc.fib.insert(prefix, next_hop);
        }
    }

    /// Withdraw a route everywhere.
    pub fn withdraw_route(&mut self, prefix: dra_net::addr::Ipv4Prefix) {
        self.rp.withdraw(prefix);
        for lc in &mut self.linecards {
            lc.fib.remove(prefix);
        }
    }

    fn drop(&mut self, meta: &FlowMeta, cause: DropCause) {
        self.metrics.lcs[meta.ingress as usize].drop_packet(cause, meta.ip_bytes);
        dra_router::metrics::note_drop(meta.id, cause, meta.ingress);
        // The paper's B_prom scale-back realized as drops is the
        // anomaly the flight recorder is armed for: freeze the event
        // window at the first occurrence.
        #[cfg(feature = "telemetry")]
        if cause == DropCause::EibOversubscribed {
            dra_telemetry::anomaly("first eib-oversubscribed drop");
        }
    }

    fn ensure_fabric_slot(&mut self, ctx: &mut Ctx<'_, DraEvent>) {
        if !self.slot_scheduled && !self.fabric.is_empty() {
            self.slot_scheduled = true;
            ctx.schedule(self.slot_time_s, DraEvent::FabricSlot);
        }
    }

    fn arm_faults_for_lc(&mut self, lc: u16, ctx: &mut Ctx<'_, DraEvent>) {
        let Some(injector) = self.config.router.faults.as_ref() else {
            return;
        };
        let scale = self.config.router.fault_delay_scale;
        let gen = self.generations.current(lc as usize);
        for (kind, delay) in injector.arm_linecard(ctx.rng()) {
            ctx.schedule(delay * scale, DraEvent::Fail { lc, kind, gen });
        }
    }

    /// Build the stage plan for a packet entering at `ingress` bound
    /// for `egress` — using what `ingress` *believes* the router looks
    /// like — or decide to drop it.
    fn plan_stages(
        &self,
        ingress: u16,
        egress: u16,
        now: f64,
    ) -> Result<(StagePlan, PathKind), DropCause> {
        let (views, eib_seen) = self.views_for(ingress, now);
        let planner = CoveragePlanner::new(eib_seen);
        let route = planner.plan(&views, ingress, egress);
        if let Some(cause) = route.blocked_by() {
            return Err(cause);
        }
        let mut stages = StagePlan::new();
        let mut ingress_covered = false;
        let mut lookup_only = false;
        let mut egress_covered = false;
        // Where cells (if any) enter the fabric from.
        let mut fabric_src = ingress;
        match route.ingress {
            IngressRoute::Normal => stages.push(Stage::IngressProc { lc: ingress }),
            IngressRoute::RemoteLookup { helper } => {
                lookup_only = true;
                stages.push(Stage::RemoteLookup { helper });
                stages.push(Stage::IngressProc { lc: ingress });
            }
            IngressRoute::PdluCover { helper } | IngressRoute::SruCover { helper } => {
                ingress_covered = true;
                stages.push(Stage::EibHop {
                    to: helper,
                    flow: ingress,
                });
                stages.push(Stage::HelperProc { lc: helper });
                fabric_src = helper;
            }
            IngressRoute::Blocked(_) => unreachable!("blocked handled above"),
        }
        match route.egress {
            EgressRoute::Normal => {
                stages.push(Stage::Fabric {
                    src: fabric_src,
                    dst: egress,
                });
                stages.push(Stage::EgressProc { lc: egress });
            }
            EgressRoute::SruCover | EgressRoute::PdluDirect => {
                egress_covered = true;
                // Whole packets cross the EIB straight to the egress
                // card (to its PDLU or PIU) — no fabric hop.
                stages.push(Stage::EibHop {
                    to: egress,
                    flow: egress | EGRESS_FLOW_OFFSET,
                });
                stages.push(Stage::EgressProc { lc: egress });
            }
            EgressRoute::PdluViaInter { inter } => {
                egress_covered = true;
                stages.push(Stage::Fabric {
                    src: fabric_src,
                    dst: inter,
                });
                stages.push(Stage::InterProc { lc: inter });
                stages.push(Stage::EibHop {
                    to: egress,
                    flow: egress | EGRESS_FLOW_OFFSET,
                });
                stages.push(Stage::EgressProc { lc: egress });
            }
            EgressRoute::Blocked(_) => unreachable!("blocked handled above"),
        }
        let path = match (ingress_covered || lookup_only, egress_covered) {
            (false, false) => PathKind::Normal,
            (true, false) if lookup_only => PathKind::RemoteLookup,
            (true, false) => PathKind::IngressEib,
            (false, true) => PathKind::EgressEib,
            (true, true) => PathKind::Both,
        };
        Ok((stages, path))
    }

    fn handle_arrival(&mut self, lc: u16, ctx: &mut Ctx<'_, DraEvent>) {
        // The train resolves the FIB lookup in batch; `route` is
        // exactly what `fib.lookup(dst)` returns at this instant.
        let (arrival, route) = self.trains[lc as usize].pop(
            &mut self.generators[lc as usize],
            &mut self.traffic_rngs[lc as usize],
            &self.linecards[lc as usize].fib,
        );
        let next_at = ctx.now() + arrival.dt;
        if self
            .config
            .router
            .arrival_stop_s
            .is_none_or(|stop| next_at < stop)
        {
            ctx.schedule(arrival.dt, DraEvent::Arrival { lc });
        }

        let packet = Packet::new(
            self.id_gens[lc as usize].next_id(),
            BdrConfig::dst_base_of(lc as usize),
            arrival.dst,
            arrival.ip_bytes,
            self.linecards[lc as usize].protocol,
            ctx.now(),
        );
        self.metrics.lcs[lc as usize].offer(packet.ip_bytes);
        #[cfg(feature = "telemetry")]
        {
            use dra_telemetry as tm;
            tm::counter_add(tm::ids::ARRIVALS, 1);
            tm::counter_add(tm::ids::FIB_LOOKUPS, 1);
            tm::event(
                tm::EventKind::Arrival,
                packet.id.0,
                lc as u32,
                packet.ip_bytes,
            );
            tm::track_arrival(packet.id.0, lc as u32, packet.ip_bytes);
            if let Some(egress) = route {
                tm::event(
                    tm::EventKind::FibLookup,
                    packet.id.0,
                    lc as u32,
                    egress as u32,
                );
            }
        }
        let meta = FlowMeta {
            id: packet.id,
            ip_bytes: packet.ip_bytes,
            arrived_at: packet.arrived_at,
            ingress: lc,
            covered: false,
            path: PathKind::Normal,
        };

        // Per-port PIU losses: arrivals on a disconnected ingress port
        // never enter; traffic bound for a disconnected egress port has
        // nowhere to leave. Coverage cannot help either (§3.2).
        let ingress_loss = self.linecards[lc as usize].piu_loss_fraction();
        if ingress_loss > 0.0 && dra_des::random::coin(ctx.rng(), ingress_loss) {
            self.drop(&meta, DropCause::IngressDown);
            return;
        }
        // The lookup target is known to the model regardless of which
        // LFE will be charged for it; latency is charged per plan.
        let Some(egress) = route else {
            self.drop(&meta, DropCause::NoRoute);
            return;
        };
        let egress_loss = self.linecards[egress as usize].piu_loss_fraction();
        if egress_loss > 0.0 && dra_des::random::coin(ctx.rng(), egress_loss) {
            self.drop(&meta, DropCause::EgressDown);
            return;
        }
        if !self.fabric.operational() {
            self.drop(&meta, DropCause::FabricDown);
            return;
        }
        match self.plan_stages(lc, egress, ctx.now()) {
            Err(cause) => self.drop(&meta, cause),
            Ok((stages, path)) => {
                let meta = FlowMeta {
                    covered: path != PathKind::Normal,
                    path,
                    ..meta
                };
                ctx.schedule(
                    0.0,
                    DraEvent::StageStart {
                        meta,
                        stages,
                        idx: 0,
                    },
                );
            }
        }
    }

    fn finish(&mut self, meta: &FlowMeta, now: f64) {
        let latency = now - meta.arrived_at;
        let m = &mut self.metrics.lcs[meta.ingress as usize];
        m.deliver(meta.ip_bytes, latency);
        m.ingress_delivered += 1;
        if meta.covered {
            m.covered_packets += 1;
        }
        self.latency_by_path[meta.path.index()].push(latency);
        self.latency_hist_by_path[meta.path.index()].record(latency);
        #[cfg(feature = "telemetry")]
        {
            use dra_telemetry as tm;
            tm::counter_add(tm::ids::DELIVERED, 1);
            tm::event(
                tm::EventKind::Deliver,
                meta.id.0,
                meta.ingress as u32,
                meta.ip_bytes,
            );
            tm::finish_packet(meta.id.0);
        }
    }

    /// Latency statistics of delivered packets, per [`PathKind`].
    pub fn latency_by_path(&self, path: PathKind) -> &dra_des::stats::Welford {
        &self.latency_by_path[path.index()]
    }

    /// Latency distribution (log histogram) per [`PathKind`].
    pub fn latency_hist_by_path(&self, path: PathKind) -> &dra_des::stats::LogHistogram {
        &self.latency_hist_by_path[path.index()]
    }

    fn run_stage(
        &mut self,
        meta: FlowMeta,
        stages: StagePlan,
        idx: usize,
        ctx: &mut Ctx<'_, DraEvent>,
    ) {
        let Some(&stage) = stages.as_slice().get(idx) else {
            // Plan exhausted: the packet has left the router.
            self.finish(&meta, ctx.now());
            return;
        };
        match stage {
            Stage::IngressProc { lc } => {
                let p = self.as_packet(&meta);
                let delay = self.linecards[lc as usize].ingress_delay(&p);
                ctx.schedule(
                    delay,
                    DraEvent::StageStart {
                        meta,
                        stages,
                        idx: idx + 1,
                    },
                );
            }
            Stage::HelperProc { lc } | Stage::InterProc { lc } => {
                // Ground truth check: the plan may rest on a stale view
                // (gossip window) — a helper that just died can't help.
                // An LC_inter (Case 3) additionally frames with its
                // PDLU, which therefore must be alive.
                let c = self.linecards[lc as usize].components;
                let pdlu_needed = matches!(stage, Stage::InterProc { .. });
                if !c.pi_units_healthy()
                    || c.bus_controller == Health::Failed
                    || (pdlu_needed && c.pdlu == Health::Failed)
                {
                    self.drop(&meta, DropCause::NoCoverage);
                    return;
                }
                let p = self.as_packet(&meta);
                let delay = self.linecards[lc as usize].ingress_delay(&p);
                ctx.schedule(
                    delay,
                    DraEvent::StageStart {
                        meta,
                        stages,
                        idx: idx + 1,
                    },
                );
            }
            Stage::RemoteLookup { helper: _ } => {
                // REQ_L + REP_L: two control packets.
                self.control_attempt(meta, stages, idx, 2, 0, ctx);
            }
            Stage::EibHop { to: _, flow } => {
                if !self.eib_healthy {
                    self.drop(&meta, DropCause::NoCoverage);
                    return;
                }
                // First use of a flow pays the LP setup handshake.
                if !self.lp_established.contains(&flow) {
                    self.lp_established.insert(flow);
                    self.control_attempt(meta, stages, idx, 2, 0, ctx);
                    return;
                }
                self.eib_transfer(meta, stages, idx, ctx);
            }
            Stage::Fabric { src, dst } => {
                let p = self.as_packet(&meta);
                let mut overflow = false;
                for cell in segment_cells(&p, src, dst) {
                    if self.fabric.enqueue(cell).is_err() {
                        overflow = true;
                        break;
                    }
                }
                if overflow {
                    self.drop(&meta, DropCause::VoqOverflow);
                } else {
                    #[cfg(feature = "telemetry")]
                    {
                        use dra_telemetry as tm;
                        tm::counter_add(
                            tm::ids::VOQ_ENQUEUED_CELLS,
                            dra_net::sar::cells_for(meta.ip_bytes) as u64,
                        );
                        tm::event(tm::EventKind::VoqEnqueue, meta.id.0, src as u32, dst as u32);
                        tm::mark_lookup_done(meta.id.0);
                        tm::mark_voq_enqueue(meta.id.0);
                    }
                    self.in_fabric.insert(meta.id, (meta, stages, idx + 1));
                }
                self.ensure_fabric_slot(ctx);
            }
            Stage::EgressProc { lc } => {
                // Ground truth checks against stale plans: a fabric →
                // egress step requires the egress SRU+PDLU; an EIB →
                // egress step bypasses them; the PIU is always needed.
                let c = self.linecards[lc as usize].components;
                let via_fabric = idx > 0 && matches!(stages[idx - 1], Stage::Fabric { .. });
                let units_ok = if via_fabric {
                    c.sru == Health::Healthy && c.pdlu == Health::Healthy
                } else {
                    true
                };
                if c.piu == Health::Failed || !units_ok {
                    self.drop(&meta, DropCause::EgressDown);
                    return;
                }
                let delay = self.linecards[lc as usize].egress_delay(meta.ip_bytes);
                ctx.schedule(
                    delay,
                    DraEvent::StageStart {
                        meta,
                        stages,
                        idx: idx + 1,
                    },
                );
            }
        }
    }

    fn as_packet(&self, meta: &FlowMeta) -> Packet {
        Packet::new(
            meta.id,
            BdrConfig::dst_base_of(meta.ingress as usize),
            Ipv4Addr(0),
            meta.ip_bytes,
            self.linecards[meta.ingress as usize].protocol,
            meta.arrived_at,
        )
    }

    /// EIB data-line transfer at the flow's promised rate.
    fn eib_transfer(
        &mut self,
        meta: FlowMeta,
        stages: StagePlan,
        idx: usize,
        ctx: &mut Ctx<'_, DraEvent>,
    ) {
        let Stage::EibHop { flow, .. } = stages[idx] else {
            unreachable!("eib_transfer on a non-EIB stage");
        };
        let rate = match self.b_prom.get(&flow) {
            Some(&r) if r > 0.0 => r,
            // Health changed underneath us (e.g. repaired): fall back
            // to the full data-line rate.
            _ => self.config.eib.data_rate_bps,
        };
        let now = ctx.now();
        let busy = self.eib_busy_until.entry(flow).or_insert(now);
        let start = busy.max(now);
        let done = start + meta.ip_bytes as f64 * 8.0 / rate;
        if done - now > self.config.eib.max_backlog_s {
            // Promised bandwidth exceeded: shed the packet (§4).
            self.drop(&meta, DropCause::EibOversubscribed);
            return;
        }
        *busy = done;
        self.metrics.eib_packets += 1;
        self.metrics.eib_bytes += meta.ip_bytes as u64;
        #[cfg(feature = "telemetry")]
        {
            use dra_telemetry as tm;
            tm::counter_add(tm::ids::EIB_DETOURS, 1);
            tm::event(
                tm::EventKind::EibDetour,
                meta.id.0,
                flow as u32,
                meta.ip_bytes,
            );
            tm::mark_eib_hop(meta.id.0, start, done - start);
        }
        ctx.schedule(
            done - now,
            DraEvent::StageStart {
                meta,
                stages,
                idx: idx + 1,
            },
        );
    }

    /// Try to put a control packet on the CSMA/CD lines.
    fn control_attempt(
        &mut self,
        meta: FlowMeta,
        stages: StagePlan,
        idx: usize,
        remaining: u8,
        attempt: u32,
        ctx: &mut Ctx<'_, DraEvent>,
    ) {
        if !self.eib_healthy {
            self.drop(&meta, DropCause::NoCoverage);
            return;
        }
        if attempt >= self.config.eib.max_control_attempts {
            self.drop(&meta, DropCause::EibOversubscribed);
            return;
        }
        match self.control.attempt(ctx.now()) {
            TxResult::Started { tx, done_at } => {
                self.metrics.eib_control_packets += 1;
                #[cfg(feature = "telemetry")]
                dra_telemetry::counter_add(dra_telemetry::ids::EIB_CONTROL_ATTEMPTS, 1);
                ctx.schedule(
                    done_at - ctx.now(),
                    DraEvent::ControlDone {
                        meta,
                        stages,
                        idx,
                        remaining: remaining - 1,
                        attempt,
                        tx,
                    },
                );
            }
            TxResult::Deferred { until } => {
                let wait = (until - ctx.now()).max(1e-9);
                ctx.schedule(
                    wait,
                    DraEvent::ControlRetry {
                        meta,
                        stages,
                        idx,
                        remaining,
                        attempt,
                    },
                );
            }
            TxResult::Collided { jam_until } => {
                self.metrics.eib_collisions += 1;
                #[cfg(feature = "telemetry")]
                dra_telemetry::counter_add(dra_telemetry::ids::EIB_COLLISIONS, 1);
                let backoff = self.control.backoff_delay(ctx.rng(), attempt + 1);
                let wait = (jam_until - ctx.now()).max(0.0) + backoff + 1e-9;
                ctx.schedule(
                    wait,
                    DraEvent::ControlRetry {
                        meta,
                        stages,
                        idx,
                        remaining,
                        attempt: attempt + 1,
                    },
                );
            }
        }
    }

    // The argument list mirrors the `ControlDone` event's fields.
    #[allow(clippy::too_many_arguments)]
    fn handle_control_done(
        &mut self,
        meta: FlowMeta,
        stages: StagePlan,
        idx: usize,
        remaining: u8,
        attempt: u32,
        tx: u64,
        ctx: &mut Ctx<'_, DraEvent>,
    ) {
        if !self.control.complete(tx) {
            // Our transmission got garbled by a collision: back off.
            let backoff = self.control.backoff_delay(ctx.rng(), attempt + 1);
            ctx.schedule(
                backoff + 1e-9,
                DraEvent::ControlRetry {
                    meta,
                    stages,
                    idx,
                    remaining: remaining + 1,
                    attempt: attempt + 1,
                },
            );
            return;
        }
        if remaining > 0 {
            // Next control packet of the transaction (e.g. the reply),
            // after the responder's turnaround (one lookup delay).
            let turnaround = dra_router::linecard::LFE_LOOKUP_DELAY_S;
            ctx.schedule(
                turnaround,
                DraEvent::ControlRetry {
                    meta,
                    stages,
                    idx,
                    remaining,
                    attempt: 0,
                },
            );
            return;
        }
        // Transaction complete: resume the stage it was serving.
        match stages[idx] {
            Stage::RemoteLookup { .. } => {
                ctx.schedule(
                    0.0,
                    DraEvent::StageStart {
                        meta,
                        stages,
                        idx: idx + 1,
                    },
                );
            }
            Stage::EibHop { .. } => {
                // LP handshake done; now the data transfer itself.
                self.eib_transfer(meta, stages, idx, ctx);
            }
            _ => unreachable!("control transaction on unexpected stage"),
        }
    }

    fn handle_fabric_slot(&mut self, ctx: &mut Ctx<'_, DraEvent>) {
        self.slot_scheduled = false;
        if !self.fabric.operational() {
            // Slot train stops with the fabric; stale credit must not
            // fund an above-capacity burst once planes return.
            self.capacity_credit = 0.0;
            return;
        }
        self.capacity_credit += self.fabric.capacity_fraction();
        if self.capacity_credit >= 1.0 {
            self.capacity_credit -= 1.0;
            let now = ctx.now();
            // Collect the slot's winners as 4-byte handles, then take
            // each cell out of the arena as it is delivered: delivery
            // needs `&mut self` for reassembly and stage dispatch.
            let mut slot = std::mem::take(&mut self.slot_handles);
            self.fabric.schedule_slot_handles(&mut slot);
            for &h in &slot {
                let cell = self.fabric.take_cell(h);
                let dst = cell.dst_lc;
                #[cfg(feature = "telemetry")]
                {
                    use dra_telemetry as tm;
                    tm::counter_add(tm::ids::CELLS_SWITCHED, 1);
                    tm::event(
                        tm::EventKind::FabricTransit,
                        cell.packet.0,
                        cell.src_lc as u32,
                        dst as u32,
                    );
                    tm::mark_cell_switched(cell.packet.0);
                }
                match self.linecards[dst as usize].reassembler.push(&cell, now) {
                    Ok(Some((packet_id, _bytes))) => {
                        if let Some((meta, stages, idx)) = self.in_fabric.remove(&packet_id) {
                            ctx.schedule(0.0, DraEvent::StageStart { meta, stages, idx });
                        }
                    }
                    Ok(None) => {}
                    Err(_) => {}
                }
            }
            slot.clear();
            self.slot_handles = slot;
        }
        self.ensure_fabric_slot(ctx);
        if !self.slot_scheduled {
            // Queue drained: forfeit fractional credit rather than
            // banking it across the idle gap (see the BDR twin).
            self.capacity_credit = 0.0;
        }
    }

    fn handle_purge(&mut self, ctx: &mut Ctx<'_, DraEvent>) {
        let cutoff = ctx.now() - self.config.router.reassembly_timeout_s;
        for lc in 0..self.config.router.n_lcs {
            let stale = self.linecards[lc].reassembler.purge_collect(cutoff);
            for (_, packet_id) in stale {
                if let Some((meta, _, _)) = self.in_fabric.remove(&packet_id) {
                    self.drop(&meta, DropCause::ReassemblyTimeout);
                }
            }
        }
        ctx.schedule(
            self.config.router.reassembly_timeout_s,
            DraEvent::PurgeReassembly,
        );
    }
}

impl Model for DraRouter {
    type Event = DraEvent;

    fn handle(&mut self, event: DraEvent, ctx: &mut Ctx<'_, DraEvent>) {
        match event {
            DraEvent::Start => {
                self.recompute_bandwidth();
                for lc in 0..self.config.router.n_lcs as u16 {
                    // Only `.dt` matters here: the kick-off record's
                    // payload never becomes a packet (as before).
                    let (first, _) = self.trains[lc as usize].pop(
                        &mut self.generators[lc as usize],
                        &mut self.traffic_rngs[lc as usize],
                        &self.linecards[lc as usize].fib,
                    );
                    ctx.schedule(first.dt, DraEvent::Arrival { lc });
                    self.arm_faults_for_lc(lc, ctx);
                }
                if let Some(injector) = self.config.router.faults.as_ref() {
                    if let Some(d) = injector.arm_eib(ctx.rng()) {
                        ctx.schedule(d * self.config.router.fault_delay_scale, DraEvent::FailEib);
                    }
                }
                ctx.schedule(
                    self.config.router.reassembly_timeout_s,
                    DraEvent::PurgeReassembly,
                );
            }
            DraEvent::Arrival { lc } => self.handle_arrival(lc, ctx),
            DraEvent::StageStart { meta, stages, idx } => self.run_stage(meta, stages, idx, ctx),
            DraEvent::ControlRetry {
                meta,
                stages,
                idx,
                remaining,
                attempt,
            } => self.control_attempt(meta, stages, idx, remaining, attempt, ctx),
            DraEvent::ControlDone {
                meta,
                stages,
                idx,
                remaining,
                attempt,
                tx,
            } => self.handle_control_done(meta, stages, idx, remaining, attempt, tx, ctx),
            DraEvent::FabricSlot => self.handle_fabric_slot(ctx),
            DraEvent::Fail { lc, kind, gen } => {
                if !self.generations.is_current(lc as usize, gen) {
                    return;
                }
                self.fail_component_now(lc, kind, ctx.now());
                if !self.repair_pending[lc as usize] {
                    self.repair_pending[lc as usize] = true;
                    if let Some(injector) = &self.config.router.faults {
                        let delay =
                            injector.repair_delay_h() * self.config.router.fault_delay_scale;
                        ctx.schedule(delay, DraEvent::Repair { lc });
                    }
                }
            }
            DraEvent::FailEib => {
                self.fail_eib_now(ctx.now());
                if let Some(injector) = &self.config.router.faults {
                    let delay = injector.repair_delay_h() * self.config.router.fault_delay_scale;
                    ctx.schedule(delay, DraEvent::RepairEib);
                }
            }
            DraEvent::Repair { lc } => {
                self.repair_lc_now(lc, ctx.now());
                self.arm_faults_for_lc(lc, ctx);
            }
            DraEvent::RepairEib => {
                self.repair_eib_now(ctx.now());
                if let Some(injector) = self.config.router.faults.as_ref() {
                    if let Some(d) = injector.arm_eib(ctx.rng()) {
                        ctx.schedule(d * self.config.router.fault_delay_scale, DraEvent::FailEib);
                    }
                }
            }
            DraEvent::PurgeReassembly => self.handle_purge(ctx),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(n: usize, load: f64) -> DraConfig {
        DraConfig {
            router: BdrConfig {
                n_lcs: n,
                load,
                ..BdrConfig::default()
            },
            eib: EibConfig::default(),
        }
    }

    #[test]
    fn healthy_dra_behaves_like_bdr() {
        let mut sim = DraRouter::simulation(config(4, 0.3), 42);
        sim.run_until(3e-3);
        let m = &sim.model().metrics;
        assert!(m.total_offered_bytes() > 0);
        assert!(
            m.byte_delivery_ratio() > 0.98,
            "{}",
            m.byte_delivery_ratio()
        );
        assert_eq!(m.eib_packets, 0, "EIB must be idle with no failures");
        assert_eq!(m.eib_control_packets, 0);
    }

    #[test]
    fn lfe_failure_is_covered_by_remote_lookup() {
        let mut sim = DraRouter::simulation(config(4, 0.2), 7);
        sim.run_until(1e-3);
        let now = sim.now();
        sim.model_mut()
            .fail_component_now(0, ComponentKind::Lfe, now);
        let delivered_before = sim.model().metrics.lcs[0].delivered_packets;
        sim.run_until(4e-3);
        let m = &sim.model().metrics;
        assert!(
            m.lcs[0].delivered_packets > delivered_before,
            "LC0 must keep delivering via remote lookups"
        );
        assert!(m.lcs[0].covered_packets > 0);
        assert!(
            m.eib_control_packets > 0,
            "REQ_L/REP_L must ride the control lines"
        );
        assert_eq!(
            m.lcs[0].drops(DropCause::IngressDown),
            0,
            "DRA must not drop what BDR would"
        );
    }

    #[test]
    fn sru_failure_is_covered_over_data_lines() {
        let mut sim = DraRouter::simulation(config(4, 0.2), 8);
        sim.run_until(1e-3);
        let now = sim.now();
        sim.model_mut()
            .fail_component_now(0, ComponentKind::Sru, now);
        sim.run_until(4e-3);
        let m = &sim.model().metrics;
        assert!(m.lcs[0].covered_packets > 0, "coverage must kick in");
        assert!(m.eib_packets > 0, "packets must cross the EIB data lines");
        assert!(m.eib_bytes > 0);
    }

    #[test]
    fn pdlu_failure_requires_same_protocol_peer() {
        use dra_net::protocol::ProtocolKind;
        // LC0/LC2 Ethernet, LC1/LC3 ATM: a PDLU failure at 0 is covered
        // by 2.
        let mut cfg = config(4, 0.2);
        cfg.router.protocols = vec![
            ProtocolKind::Ethernet,
            ProtocolKind::Atm,
            ProtocolKind::Ethernet,
            ProtocolKind::Atm,
        ];
        let mut sim = DraRouter::simulation(cfg, 9);
        sim.run_until(1e-3);
        let now = sim.now();
        sim.model_mut()
            .fail_component_now(0, ComponentKind::Pdlu, now);
        sim.run_until(4e-3);
        let m = &sim.model().metrics;
        assert!(m.lcs[0].covered_packets > 0, "Ethernet peer must cover");

        // Now break the only same-protocol peer's SRU (its PIU would
        // not matter — it is not on the coverage path): drops appear.
        let now = sim.now();
        sim.model_mut()
            .fail_component_now(2, ComponentKind::Sru, now);
        sim.run_until(8e-3);
        let m = &sim.model().metrics;
        assert!(
            m.lcs[0].drops(DropCause::NoCoverage) > 0,
            "no same-protocol helper left"
        );
    }

    #[test]
    fn egress_sru_failure_bypassed_via_eib() {
        let mut sim = DraRouter::simulation(config(4, 0.2), 10);
        sim.run_until(1e-3);
        let now = sim.now();
        sim.model_mut()
            .fail_component_now(2, ComponentKind::Sru, now);
        // Packets already planned onto LC2's fabric→egress path at the
        // failure instant may still be lost to the ground-truth check;
        // let them drain before demanding steady-state coverage.
        sim.run_until(1.5e-3);
        let in_flight_losses: u64 = (0..4)
            .map(|i| sim.model().metrics.lcs[i].drops(DropCause::EgressDown))
            .sum();
        sim.run_until(4e-3);
        let m = &sim.model().metrics;
        // Peers keep delivering *to* LC2 over the EIB.
        assert!(m.eib_packets > 0);
        let egress_drops: u64 = (0..4).map(|i| m.lcs[i].drops(DropCause::EgressDown)).sum();
        assert_eq!(
            egress_drops, in_flight_losses,
            "DRA must cover the failed egress SRU once in-flight traffic drains"
        );
    }

    #[test]
    fn dead_eib_reduces_dra_to_bdr() {
        let mut sim = DraRouter::simulation(config(4, 0.2), 11);
        sim.run_until(0.5e-3);
        let now = sim.now();
        sim.model_mut().fail_eib_now(now);
        sim.model_mut()
            .fail_component_now(0, ComponentKind::Lfe, now);
        sim.run_until(2e-3);
        let m = &sim.model().metrics;
        assert!(
            m.lcs[0].drops(DropCause::IngressDown) > 0,
            "no EIB, no coverage"
        );
        assert_eq!(m.lcs[0].covered_packets, 0);
    }

    #[test]
    fn piu_failure_is_not_coverable() {
        let mut sim = DraRouter::simulation(config(4, 0.2), 12);
        sim.run_until(0.5e-3);
        let now = sim.now();
        sim.model_mut()
            .fail_component_now(0, ComponentKind::Piu, now);
        sim.run_until(2e-3);
        let m = &sim.model().metrics;
        assert!(m.lcs[0].drops(DropCause::IngressDown) > 0);
        assert_eq!(m.lcs[0].covered_packets, 0);
    }

    #[test]
    fn multi_port_piu_failure_degrades_proportionally() {
        // Four ports; one PIU dies: ~25% of LC0's ingress traffic is
        // lost, and nothing can cover it — but the rest still flows.
        let mut cfg = config(4, 0.2);
        cfg.router.ports_per_lc = 4;
        let mut sim = DraRouter::simulation(cfg, 55);
        sim.run_until(1e-3);
        let now = sim.now();
        sim.model_mut()
            .fail_component_now(0, ComponentKind::Piu, now);
        let offered_at_fail = sim.model().metrics.lcs[0].offered_packets;
        let drops_at_fail = sim.model().metrics.lcs[0].drops(DropCause::IngressDown);
        sim.run_until(6e-3);
        let m = &sim.model().metrics;
        let offered = m.lcs[0].offered_packets - offered_at_fail;
        let dropped = m.lcs[0].drops(DropCause::IngressDown) - drops_at_fail;
        let frac = dropped as f64 / offered as f64;
        assert!(
            (frac - 0.25).abs() < 0.05,
            "one of four ports down should cost ~25%, got {frac}"
        );
        assert_eq!(m.lcs[0].covered_packets, 0, "PIU loss is uncoverable");
        // The card is still serviceable overall (3 ports live).
        assert!(sim.model().lc_serviceable(0));
        // Repair restores all ports.
        let now = sim.now();
        sim.model_mut().repair_lc_now(0, now);
        assert_eq!(sim.model().linecards[0].piu_failed_ports, 0);
    }

    #[test]
    fn serviceability_signal_tracks_coverage() {
        let mut sim = DraRouter::simulation(config(4, 0.2), 13);
        sim.run_until(0.5e-3);
        assert!(sim.model().lc_serviceable(0));
        let now = sim.now();
        sim.model_mut()
            .fail_component_now(0, ComponentKind::Sru, now);
        assert!(
            sim.model().lc_serviceable(0),
            "covered LC still serviceable"
        );
        let now = sim.now();
        sim.model_mut().fail_eib_now(now);
        assert!(!sim.model().lc_serviceable(0), "no EIB, not serviceable");
        sim.model_mut().repair_eib_now(now);
        sim.model_mut().repair_lc_now(0, now);
        assert!(sim.model().lc_serviceable(0));
    }

    #[test]
    fn repair_restores_normal_path_and_releases_lp() {
        let mut sim = DraRouter::simulation(config(4, 0.2), 14);
        sim.run_until(0.5e-3);
        let now = sim.now();
        sim.model_mut()
            .fail_component_now(0, ComponentKind::Sru, now);
        sim.run_until(2e-3);
        let eib_before = sim.model().metrics.eib_packets;
        assert!(eib_before > 0);
        let now = sim.now();
        sim.model_mut().repair_lc_now(0, now);
        sim.run_until(4e-3);
        // After repair traffic goes back to the fabric; EIB growth stops.
        let eib_after = sim.model().metrics.eib_packets;
        let grown = eib_after - eib_before;
        // A handful already in flight may still land.
        assert!(
            grown < 10,
            "EIB still carrying traffic after repair: {grown}"
        );
    }

    #[test]
    fn latency_accounting_splits_by_path() {
        let mut sim = DraRouter::simulation(config(4, 0.15), 70);
        sim.run_until(1e-3);
        let now = sim.now();
        sim.model_mut()
            .fail_component_now(0, ComponentKind::Lfe, now);
        sim.run_until(4e-3);
        let model = sim.model();
        let normal = model.latency_by_path(PathKind::Normal);
        let lookup = model.latency_by_path(PathKind::RemoteLookup);
        assert!(normal.count() > 0 && lookup.count() > 0);
        assert!(
            lookup.mean() > normal.mean(),
            "remote lookups must cost latency: {} vs {}",
            lookup.mean(),
            normal.mean()
        );
        // No EIB data path was exercised in this scenario.
        assert_eq!(model.latency_by_path(PathKind::IngressEib).count(), 0);
        // Per-path deliveries sum to total deliveries.
        let by_path: u64 = PathKind::ALL
            .iter()
            .map(|&p| model.latency_by_path(p).count())
            .sum();
        let total: u64 = model.metrics.lcs.iter().map(|l| l.delivered_packets).sum();
        assert_eq!(by_path, total);
    }

    #[test]
    fn gossip_window_drops_then_recovers() {
        // With a 1 ms dissemination delay, peers keep using the normal
        // path toward a card whose SRU just died — those packets are
        // lost at the egress ground-truth check — until the fault table
        // converges and coverage takes over.
        let mut cfg = config(4, 0.2);
        cfg.eib.gossip_delay_s = 1e-3;
        let mut sim = DraRouter::simulation(cfg, 77);
        sim.run_until(1e-3);
        let now = sim.now();
        sim.model_mut()
            .fail_component_now(2, ComponentKind::Sru, now);
        sim.run_until(5e-3);
        let m = &sim.model().metrics;
        let window_drops: u64 = (0..4).map(|i| m.lcs[i].drops(DropCause::EgressDown)).sum();
        assert!(
            window_drops > 0,
            "stale views must cost packets during the gossip window"
        );
        assert!(m.eib_packets > 0, "after convergence, coverage must engage");

        // The same scenario with oracle gossip loses nothing.
        let mut cfg0 = config(4, 0.2);
        cfg0.eib.gossip_delay_s = 0.0;
        let mut sim0 = DraRouter::simulation(cfg0, 77);
        sim0.run_until(1e-3);
        let now = sim0.now();
        sim0.model_mut()
            .fail_component_now(2, ComponentKind::Sru, now);
        sim0.run_until(5e-3);
        let m0 = &sim0.model().metrics;
        let drops0: u64 = (0..4).map(|i| m0.lcs[i].drops(DropCause::EgressDown)).sum();
        assert_eq!(drops0, 0, "oracle gossip must not lose packets");
        assert!(
            m0.byte_delivery_ratio() > m.byte_delivery_ratio(),
            "the gossip window must cost measurable goodput"
        );
    }

    #[test]
    fn route_churn_in_service() {
        use dra_net::addr::{Ipv4Addr, Ipv4Prefix};
        let mut sim = DraRouter::simulation(config(4, 0.2), 81);
        sim.run_until(0.5e-3);
        // Announce a more-specific override steering 10.1.128.0/17 to
        // LC3 instead of LC1; traffic keeps flowing.
        let p = Ipv4Prefix::new(Ipv4Addr::from_octets(10, 1, 128, 0), 17);
        sim.model_mut().announce_route(p, 3);
        assert_eq!(sim.model().rp.route_count(), 5);
        sim.run_until(1.5e-3);
        sim.model_mut().withdraw_route(p);
        assert_eq!(sim.model().rp.route_count(), 4);
        sim.run_until(2.5e-3);
        let m = &sim.model().metrics;
        assert!(m.byte_delivery_ratio() > 0.98);
        assert_eq!(m.total_drops(DropCause::NoRoute), 0);
    }

    #[test]
    fn determinism_same_seed() {
        let run = |seed| {
            let mut sim = DraRouter::simulation(config(4, 0.25), seed);
            sim.run_until(1.5e-3);
            (
                sim.model().metrics.total_offered_bytes(),
                sim.model().metrics.total_delivered_bytes(),
                sim.events_processed(),
            )
        };
        assert_eq!(run(21), run(21));
        assert_ne!(run(21).0, run(22).0);
    }

    #[test]
    fn dra_delivers_more_than_bdr_under_identical_failure() {
        use dra_router::bdr::BdrRouter;
        let seed = 99;
        let horizon = 4e-3;
        let fail_at = 1e-3;

        let mut dra = DraRouter::simulation(config(4, 0.2), seed);
        dra.run_until(fail_at);
        let now = dra.now();
        dra.model_mut()
            .fail_component_now(0, ComponentKind::Lfe, now);
        dra.run_until(horizon);
        let d = &dra.model().metrics;

        let mut bdr = BdrRouter::simulation(
            BdrConfig {
                n_lcs: 4,
                load: 0.2,
                ..BdrConfig::default()
            },
            seed,
        );
        bdr.run_until(fail_at);
        let now = bdr.now();
        bdr.model_mut()
            .fail_component_now(0, ComponentKind::Lfe, now);
        bdr.run_until(horizon);
        let b = &bdr.model().metrics;

        assert!(
            d.lcs[0].delivered_packets > b.lcs[0].delivered_packets,
            "DRA {} must beat BDR {} on the failed card",
            d.lcs[0].delivered_packets,
            b.lcs[0].delivered_packets
        );
        assert!(d.byte_delivery_ratio() > b.byte_delivery_ratio());
    }
}
