//! Packet-conservation invariant for both architectures.
//!
//! With arrivals stopped (`BdrConfig::arrival_stop_s`) and the
//! pipeline drained past a few reassembly-purge cycles, every offered
//! packet must resolve to exactly one terminal outcome:
//!
//! ```text
//! offered == ingress_delivered + Σ drops-by-cause    (per linecard)
//! offered == delivered + Σ drops-by-cause            (router totals)
//! ```
//!
//! The per-linecard form uses the ingress-attributed delivery counter
//! because the BDR model credits `delivered_packets` to the egress
//! card while drops are charged to the ingress card.

use dra_core::sim::{DraConfig, DraRouter};
use dra_router::bdr::{BdrConfig, BdrRouter};
use dra_router::components::ComponentKind;
use dra_router::metrics::{DropCause, RouterMetrics};

/// Arrivals stop here; the drain horizon runs several reassembly
/// timeouts past it so purge reclaims every stuck partial.
const STOP_S: f64 = 4e-3;
const DRAIN_S: f64 = 40e-3;

fn config(n_lcs: usize, load: f64) -> BdrConfig {
    BdrConfig {
        n_lcs,
        load,
        arrival_stop_s: Some(STOP_S),
        ..BdrConfig::default()
    }
}

fn assert_conserved(m: &RouterMetrics, label: &str) {
    let mut total_offered = 0u64;
    let mut total_delivered = 0u64;
    let mut total_drops = 0u64;
    for (i, lc) in m.lcs.iter().enumerate() {
        let drops = lc.total_drops();
        assert_eq!(
            lc.offered_packets,
            lc.ingress_delivered + drops,
            "{label}: LC{i} offered {} != ingress-delivered {} + drops {} \
             (by cause: {:?})",
            lc.offered_packets,
            lc.ingress_delivered,
            drops,
            DropCause::ALL.map(|c| (c.name(), lc.drops(c))),
        );
        total_offered += lc.offered_packets;
        total_delivered += lc.delivered_packets;
        total_drops += drops;
    }
    assert!(total_offered > 0, "{label}: no traffic offered");
    assert_eq!(
        total_offered,
        total_delivered + total_drops,
        "{label}: router totals do not conserve"
    );
}

#[test]
fn bdr_healthy_conserves_packets() {
    for seed in [1u64, 42, 1234] {
        let mut sim = BdrRouter::simulation(config(4, 0.4), seed);
        sim.run_until(DRAIN_S);
        assert_conserved(&sim.model().metrics, &format!("bdr healthy seed {seed}"));
    }
}

#[test]
fn bdr_with_faults_conserves_packets() {
    let mut sim = BdrRouter::simulation(config(5, 0.3), 7);
    sim.run_until(1e-3);
    let now = sim.now();
    sim.model_mut()
        .fail_component_now(0, ComponentKind::Sru, now);
    sim.model_mut()
        .fail_component_now(2, ComponentKind::Piu, now);
    sim.run_until(2.5e-3);
    let now = sim.now();
    sim.model_mut().repair_lc_now(0, now);
    sim.run_until(DRAIN_S);
    let m = &sim.model().metrics;
    assert!(
        m.total_drops(DropCause::IngressDown) > 0,
        "faults never bit"
    );
    assert_conserved(m, "bdr faulted");
}

#[test]
fn bdr_overload_conserves_packets_through_voq_overflow() {
    // A tiny VOQ under full load forces VoqOverflow drops, whose
    // stranded partial cells exercise the silent-purge path.
    let cfg = BdrConfig {
        voq_capacity: 8,
        fabric_speedup: 1.0,
        ..config(4, 1.0)
    };
    let mut sim = BdrRouter::simulation(cfg, 3);
    sim.run_until(DRAIN_S);
    let m = &sim.model().metrics;
    assert!(
        m.total_drops(DropCause::VoqOverflow) > 0,
        "overload never overflowed a VOQ"
    );
    assert_conserved(m, "bdr overload");
}

#[test]
fn dra_healthy_conserves_packets() {
    for seed in [1u64, 42, 1234] {
        let cfg = DraConfig {
            router: config(4, 0.4),
            ..Default::default()
        };
        let mut sim = DraRouter::simulation(cfg, seed);
        sim.run_until(DRAIN_S);
        assert_conserved(&sim.model().metrics, &format!("dra healthy seed {seed}"));
    }
}

#[test]
fn dra_with_coverage_conserves_packets() {
    // A failed SRU sends LC0's traffic over the EIB coverage path;
    // conservation must hold across EIB hops, control retries, and
    // any oversubscription drops.
    let cfg = DraConfig {
        router: config(5, 0.3),
        ..Default::default()
    };
    let mut sim = DraRouter::simulation(cfg, 11);
    sim.run_until(1e-3);
    let now = sim.now();
    sim.model_mut()
        .fail_component_now(0, ComponentKind::Sru, now);
    sim.run_until(2.5e-3);
    let now = sim.now();
    sim.model_mut().repair_lc_now(0, now);
    sim.run_until(DRAIN_S);
    let m = &sim.model().metrics;
    assert!(m.eib_packets > 0, "coverage path never used");
    assert_conserved(m, "dra coverage");
}
