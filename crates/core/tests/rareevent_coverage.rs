//! Property test: on randomly generated small configurations, the
//! rare-event estimators' confidence intervals must actually cover the
//! exact Markov answer at (about) the configured confidence level.
//!
//! This is the statistical contract behind every "± ci" the campaign
//! artifacts print: a biased estimator, or a CI formula that ignores
//! the numerator/denominator covariance, fails this test immediately.
//!
//! Coverage is counted **across** cases (a 95% CI is allowed to miss
//! one case in twenty), so the assertion sits on the aggregate: with 24
//! estimator runs at nominal 95%, requiring ≥ 80% coverage keeps the
//! false-failure probability negligible while still catching any real
//! bias. The vendored proptest runner is deterministic by test name,
//! so CI explores the same cases every run.

use dra_core::montecarlo::inflated_rates;
use dra_core::rareevent::{estimate, markov_oracle, RareConfig, RareMethod};
use proptest::strategy::Strategy;
use proptest::test_runner::TestRng;

#[test]
fn estimator_cis_cover_the_exact_answer() {
    let mut rng = TestRng::from_name("estimator_cis_cover_the_exact_answer");
    let mut covered = 0usize;
    let mut total = 0usize;
    let mut misses: Vec<String> = Vec::new();
    for case in 0..12 {
        let n = (3usize..=6).generate(&mut rng);
        let m = (2usize..=n).generate(&mut rng);
        // 10x–1000x the paper's rates: rare enough to exercise the
        // machinery, common enough that 30k cycles yield live CIs for
        // both estimators.
        let scale_exp = (1.0f64..3.0).generate(&mut rng);
        let rates = inflated_rates(10f64.powf(scale_exp));
        let repair_h = (1.0f64..24.0).generate(&mut rng);
        let cfg = RareConfig {
            n,
            m,
            rates,
            mu: 1.0 / repair_h,
            cycles: 30_000,
            seed: rng.next_u64(),
        };
        let exact = markov_oracle(n, m, &rates, cfg.mu).unavailability;
        for method in [
            RareMethod::FailureBiasing { bias: 0.5 },
            RareMethod::Splitting { clones: 50 },
        ] {
            let est = estimate(&cfg, method);
            total += 1;
            if (est.unavailability - exact).abs() <= est.ci_half {
                covered += 1;
            } else {
                misses.push(format!(
                    "case {case} (n={n}, m={m}, x{:.0}, repair {repair_h:.1}h) {}: \
                     {} ± {} vs exact {exact}",
                    10f64.powf(scale_exp),
                    method.name(),
                    est.unavailability,
                    est.ci_half,
                ));
            }
        }
    }
    assert!(
        covered * 5 >= total * 4,
        "CI coverage {covered}/{total} below 80%:\n{}",
        misses.join("\n")
    );
}
