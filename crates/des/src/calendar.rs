//! A calendar-queue event scheduler (Brown 1988, with a min-hint fast
//! path), the priority queue under [`crate::sim::Simulation`].
//!
//! Events are keyed by `(time, seq)` and popped in exactly ascending
//! key order — the same total order a binary heap would give, which is
//! what keeps simulations bit-reproducible across the scheduler swap
//! (see `DESIGN.md`, "Determinism contract").
//!
//! Structure: a power-of-two array of buckets, each a `VecDeque`
//! sorted ascending by key, covering `width` units of simulated time
//! per bucket. An event at time `t` lives in virtual bucket
//! `⌊t/width⌋`, mapped to a physical bucket by masking. Dequeue walks
//! virtual buckets from the current clock position; after a full lap
//! (one "calendar year") with no hit it falls back to a direct scan of
//! all bucket heads, so sparse far-future events (armed repair timers,
//! say) cost one O(buckets) search instead of an unbounded walk.
//!
//! Three departures from the textbook structure, all load-bearing for
//! the router workloads:
//!
//! * **Stage register.** A push into an empty queue parks the event in
//!   a dedicated slot outside the buckets; a push that undercuts it
//!   swaps with it. While staged, the global minimum pops with one
//!   branch and no float math — so the one-event-in-flight shape
//!   (timer chains, self-rescheduling slot trains) runs as fast as a
//!   one-element binary heap.
//! * **Min hint.** Whenever the global minimum is known (after a
//!   resize, after popping an event whose bucket head shares its
//!   virtual bucket, after a failed bounded pop, or when a push lands
//!   below the current hint) it is cached, making the next pop O(1).
//!   Chains that keep one event in flight and same-time event batches
//!   — the two commonest simulator shapes — never re-scan.
//! * **FIFO-friendly buckets.** Buckets sort ascending with the
//!   minimum at the front: same-time events append at the back in
//!   `seq` order and leave from the front, so a batch of N events at
//!   one instant costs O(N), not the O(N²) a sorted-`Vec` insert at
//!   the front would.
//!
//! Bucket count doubles when occupancy exceeds two events per bucket
//! and halves below one per four buckets (the wide hysteresis band
//! keeps an oscillating population from thrashing resizes); each
//! rebuild re-estimates the bucket width from the inter-event gaps of
//! a bounded sample, so the calendar tracks the event density as a
//! simulation moves between regimes (warmup, steady state, drain).
//! Resizes reuse retained storage (a scratch buffer plus the physical
//! bucket vector, which never shrinks) so a steady-state resize
//! performs no heap allocation — the parallel network engine runs one
//! small calendar per logical process and crosses resize boundaries
//! every few barrier windows.

use std::collections::VecDeque;

/// Fewest physical buckets the calendar will shrink to.
const MIN_BUCKETS: usize = 4;
/// Most physical buckets the calendar will grow to.
const MAX_BUCKETS: usize = 1 << 20;
/// Head-sample size for the bucket-width estimate at resize time.
const WIDTH_SAMPLE: usize = 64;

struct Entry<T> {
    /// Virtual bucket `⌊time/width⌋`, cached so the dequeue walk never
    /// re-derives it from floating point.
    vb: u64,
    time: f64,
    seq: u64,
    item: T,
}

/// Cached location of the global minimum event.
#[derive(Clone, Copy)]
struct Hint {
    bucket: usize,
    vb: u64,
    time: f64,
}

/// A calendar queue over items keyed by `(time, seq)`.
///
/// `time` must be finite and non-negative; `(time, seq)` pairs are
/// expected to be unique (the simulation kernel guarantees this by
/// assigning `seq` from a counter). Pops return items in ascending
/// `(time, seq)` order — ties on `time` leave in `seq` order.
///
/// ```
/// use dra_des::calendar::CalendarQueue;
///
/// let mut q = CalendarQueue::new();
/// q.push(2.0, 0, "late");
/// q.push(1.0, 1, "early");
/// q.push(1.0, 2, "early-tie");
/// assert_eq!(q.pop(), Some((1.0, 1, "early")));
/// assert_eq!(q.pop(), Some((1.0, 2, "early-tie")));
/// assert_eq!(q.pop(), Some((2.0, 0, "late")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct CalendarQueue<T> {
    /// Physical bucket storage. Only the first `mask + 1` buckets are
    /// logically active; the tail (left over from a shrink) stays
    /// allocated-but-empty so the next grow refills capacity instead
    /// of allocating. A population that oscillates across a resize
    /// boundary therefore re-files entries through retained storage —
    /// zero heap traffic — rather than reallocating every bucket (the
    /// parallel network engine runs thousands of small per-LP queues
    /// whose event counts swing every barrier window).
    buckets: Vec<VecDeque<Entry<T>>>,
    /// Logical bucket count minus one; always a power of two minus one.
    mask: usize,
    width: f64,
    inv_width: f64,
    /// Events held in `buckets` (the stage is counted separately).
    len: usize,
    /// Lower bound on every bucketed event's virtual bucket: the
    /// dequeue walk resumes here.
    cur_vb: u64,
    hint: Option<Hint>,
    /// Stage register: when `Some`, this event's key is strictly below
    /// every bucketed key, so it is the global minimum and pops O(1)
    /// with no bucket or float work. A push into an empty queue lands
    /// here; a push that undercuts the stage swaps with it. Once taken
    /// it refills only from pushes, not from the buckets — a drain of
    /// bucketed events runs on the hint path instead.
    stage: Option<Entry<T>>,
    /// Scratch buffer for resize re-filing, retained across resizes so
    /// a steady-state resize performs no heap allocation.
    resize_scratch: Vec<Entry<T>>,
}

impl<T> Default for CalendarQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> CalendarQueue<T> {
    /// An empty calendar (unit bucket width until the first resize).
    pub fn new() -> Self {
        CalendarQueue {
            buckets: (0..MIN_BUCKETS).map(|_| VecDeque::new()).collect(),
            mask: MIN_BUCKETS - 1,
            width: 1.0,
            inv_width: 1.0,
            len: 0,
            cur_vb: 0,
            hint: None,
            stage: None,
            resize_scratch: Vec::new(),
        }
    }

    /// Number of queued events.
    #[inline]
    pub fn len(&self) -> usize {
        self.len + self.stage.is_some() as usize
    }

    /// True when nothing is queued.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0 && self.stage.is_none()
    }

    /// Calendar buckets currently in use (the logical count; physical
    /// storage may exceed this after a shrink). Exposed for telemetry:
    /// resizes under load show up as a growing bucket count.
    #[inline]
    pub fn bucket_count(&self) -> usize {
        self.mask + 1
    }

    #[inline]
    fn vb_of(&self, time: f64) -> u64 {
        // Saturating cast: absurdly far-future events all land in one
        // virtual bucket, which is deterministic and merely slow.
        (time * self.inv_width) as u64
    }

    /// Queue `item` at key `(time, seq)`.
    ///
    /// # Panics
    /// Panics if `time` is negative or non-finite.
    pub fn push(&mut self, time: f64, seq: u64, item: T) {
        assert!(
            time.is_finite() && time >= 0.0,
            "calendar queue: time must be finite and nonnegative, got {time}"
        );
        let entry = Entry {
            vb: 0,
            time,
            seq,
            item,
        };
        match &self.stage {
            // Empty queue: the event is the minimum by default and
            // stays out of the buckets entirely. The ubiquitous
            // one-event-in-flight simulation shape (timer chains, slot
            // trains at quiet times) never pays for bucket or float
            // work.
            None if self.len == 0 => self.stage = Some(entry),
            // Undercuts the staged minimum: swap, and file the old
            // stage — still below every bucketed key, hence the bucket
            // minimum — into the calendar proper.
            Some(s) if (time, seq) < (s.time, s.seq) => {
                let old = self
                    .stage
                    .replace(entry)
                    .expect("stage vanished during swap");
                self.bucket_push(old);
            }
            _ => self.bucket_push(entry),
        }
    }

    /// File an entry into the bucket array (`entry.vb` is recomputed).
    fn bucket_push(&mut self, mut entry: Entry<T>) {
        let n = self.mask + 1;
        if self.len + 1 > 2 * n && n < MAX_BUCKETS {
            self.resize(n * 2);
        }
        let (time, seq) = (entry.time, entry.seq);
        let vb = self.vb_of(time);
        entry.vb = vb;
        let idx = vb as usize & self.mask;
        let bucket = &mut self.buckets[idx];
        let append = match bucket.back() {
            None => true,
            Some(b) => (b.time, b.seq) < (time, seq),
        };
        if append {
            bucket.push_back(entry);
        } else {
            let at = bucket.partition_point(|e| (e.time, e.seq) < (time, seq));
            bucket.insert(at, entry);
        }
        self.len += 1;
        if vb < self.cur_vb {
            self.cur_vb = vb;
        }
        // The hint may only name the *global* minimum. It survives a
        // push that lands at or above it (ties go to the hint: `seq`
        // is monotone, so an equal-time push sorts after). A push that
        // undercuts a known minimum — or fills an empty queue — is
        // itself the new minimum. With no cached minimum and other
        // events present, stay agnostic; the next pop scans from the
        // `cur_vb` floor.
        self.hint = match self.hint {
            Some(h) if h.time <= time => Some(h),
            None if self.len > 1 => None,
            _ => Some(Hint {
                bucket: idx,
                vb,
                time,
            }),
        };
    }

    /// Remove and return the minimum-keyed event, if any.
    pub fn pop(&mut self) -> Option<(f64, u64, T)> {
        self.pop_at_or_before(f64::INFINITY)
    }

    /// Remove and return the minimum-keyed event if its time is
    /// `<= horizon`; otherwise leave the queue untouched (and cache
    /// the found minimum so the next call is O(1)).
    pub fn pop_at_or_before(&mut self, horizon: f64) -> Option<(f64, u64, T)> {
        // The staged event, when present, is the global minimum.
        if let Some(s) = &self.stage {
            if s.time > horizon {
                return None;
            }
            let e = self.stage.take().expect("stage vanished during pop");
            return Some((e.time, e.seq, e.item));
        }
        if self.len == 0 {
            return None;
        }
        if let Some(h) = self.hint {
            if h.time > horizon {
                return None;
            }
            return Some(self.take_front(h.bucket, h.vb));
        }
        let mut vb = self.cur_vb;
        let mut scanned = 0usize;
        loop {
            let idx = vb as usize & self.mask;
            if let Some(front) = self.buckets[idx].front() {
                // The bucket front is its minimum; if it belongs to
                // the virtual bucket under the cursor it is the global
                // minimum (earlier events would have a smaller vb).
                if front.vb == vb {
                    if front.time > horizon {
                        self.cur_vb = vb;
                        self.hint = Some(Hint {
                            bucket: idx,
                            vb,
                            time: front.time,
                        });
                        return None;
                    }
                    return Some(self.take_front(idx, vb));
                }
            }
            vb = vb.wrapping_add(1);
            scanned += 1;
            if scanned > self.mask {
                // A whole calendar year without a hit: the remaining
                // events are sparse and far out. Find the minimum by
                // direct scan of the bucket heads.
                return self.direct_pop(horizon);
            }
        }
    }

    /// Visit every queued item mutably, in unspecified order, without
    /// disturbing keys or queue structure. The parallel network engine
    /// uses this at window barriers to rewrite the provenance-arena
    /// handles held by pending events when the arena compacts; any
    /// mutation that left the `(time, seq)` order-relevant state of
    /// the *item* inconsistent with its key is the caller's problem —
    /// keys themselves are not touched.
    pub fn for_each_item_mut(&mut self, mut f: impl FnMut(&mut T)) {
        if let Some(s) = &mut self.stage {
            f(&mut s.item);
        }
        for bucket in &mut self.buckets {
            for e in bucket.iter_mut() {
                f(&mut e.item);
            }
        }
    }

    /// Time of the minimum-keyed event without removing it.
    pub fn min_time(&mut self) -> Option<f64> {
        if let Some(s) = &self.stage {
            return Some(s.time);
        }
        if self.len == 0 {
            return None;
        }
        // A bounded pop below every valid time never removes anything
        // but always leaves the minimum cached in the hint.
        let _ = self.pop_at_or_before(f64::NEG_INFINITY);
        self.hint.map(|h| h.time)
    }

    fn take_front(&mut self, idx: usize, vb: u64) -> (f64, u64, T) {
        let e = self.buckets[idx]
            .pop_front()
            .expect("hinted bucket is empty");
        self.len -= 1;
        self.cur_vb = vb;
        // If the next event shares the popped event's virtual bucket
        // it is the new global minimum: same-time batches drain O(1).
        self.hint = match self.buckets[idx].front() {
            Some(n) if n.vb == vb => Some(Hint {
                bucket: idx,
                vb,
                time: n.time,
            }),
            _ => None,
        };
        // Shrink only below one event per four buckets: with growth at
        // two per bucket this leaves a 8x hysteresis band, so an event
        // population that oscillates around a power-of-two boundary
        // (e.g. a fabric slot's delivery batch draining each slot time)
        // does not thrash grow/shrink resizes — and their allocations —
        // at a steady rate.
        let n = self.mask + 1;
        if self.len < n / 4 && n > MIN_BUCKETS {
            self.resize(n / 2);
        }
        (e.time, e.seq, e.item)
    }

    fn direct_pop(&mut self, horizon: f64) -> Option<(f64, u64, T)> {
        let mut best: Option<(usize, f64, u64, u64)> = None;
        for (idx, b) in self.buckets.iter().enumerate() {
            if let Some(f) = b.front() {
                let better = match best {
                    None => true,
                    Some((_, t, s, _)) => (f.time, f.seq) < (t, s),
                };
                if better {
                    best = Some((idx, f.time, f.seq, f.vb));
                }
            }
        }
        let (idx, time, _seq, vb) = best.expect("non-empty queue with empty buckets");
        self.cur_vb = vb;
        if time > horizon {
            self.hint = Some(Hint {
                bucket: idx,
                vb,
                time,
            });
            return None;
        }
        Some(self.take_front(idx, vb))
    }

    /// Rebuild with `new_n` logical buckets, re-estimating the bucket
    /// width from the current event population.
    ///
    /// Allocation-free in steady state: entries drain into a retained
    /// scratch buffer, the physical bucket vector only ever grows (a
    /// shrink leaves the tail buckets allocated-but-empty for the next
    /// grow to reuse), and the width estimate samples onto the stack.
    /// Resizing can never change pop order — that is a pure function
    /// of the `(time, seq)` keys — so this is byte-identity-safe.
    fn resize(&mut self, new_n: usize) {
        let mut all = std::mem::take(&mut self.resize_scratch);
        all.clear();
        all.reserve(self.len);
        for b in &mut self.buckets {
            all.extend(b.drain(..));
        }
        if let Some(w) = estimate_width(&all) {
            self.width = w;
            self.inv_width = 1.0 / w;
        }
        if self.buckets.len() < new_n {
            self.buckets.resize_with(new_n, VecDeque::new);
        }
        self.mask = new_n - 1;
        let mut min: Option<(f64, u64)> = None;
        for e in &all {
            let key = (e.time, e.seq);
            if min.is_none_or(|m| key < m) {
                min = Some(key);
            }
        }
        for mut e in all.drain(..) {
            e.vb = self.vb_of(e.time);
            let idx = e.vb as usize & self.mask;
            let bucket = &mut self.buckets[idx];
            let append = match bucket.back() {
                None => true,
                Some(b) => (b.time, b.seq) < (e.time, e.seq),
            };
            if append {
                bucket.push_back(e);
            } else {
                let at = bucket.partition_point(|x| (x.time, x.seq) < (e.time, e.seq));
                bucket.insert(at, e);
            }
        }
        self.hint = min.map(|(time, _)| {
            let vb = self.vb_of(time);
            Hint {
                bucket: vb as usize & self.mask,
                vb,
                time,
            }
        });
        self.cur_vb = self.hint.map_or(0, |h| h.vb);
        self.resize_scratch = all;
    }
}

/// Bucket width from the mean inter-event gap of a sample, or `None`
/// when the population gives no signal (fewer than two events, or
/// every sampled gap zero). The sample is the first `WIDTH_SAMPLE`
/// entries in bucket-drain order — an arbitrary but representative
/// slice of the population, chosen over a smallest-k selection so the
/// estimate fits in a stack buffer and resize stays allocation-free.
fn estimate_width<T>(all: &[Entry<T>]) -> Option<f64> {
    if all.len() < 2 {
        return None;
    }
    let sample = WIDTH_SAMPLE.min(all.len());
    let mut buf = [0.0f64; WIDTH_SAMPLE];
    for (slot, e) in buf.iter_mut().zip(all.iter()) {
        *slot = e.time;
    }
    let times = &mut buf[..sample];
    times.sort_unstable_by(f64::total_cmp);
    let mut sum = 0.0;
    let mut n = 0u32;
    for w in times.windows(2) {
        let gap = w[1] - w[0];
        if gap > 0.0 {
            sum += gap;
            n += 1;
        }
    }
    if n == 0 {
        return None;
    }
    // Twice the mean head gap targets ~2 events per bucket.
    Some((2.0 * sum / n as f64).max(f64::MIN_POSITIVE))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_key_order() {
        let mut q = CalendarQueue::new();
        let keys = [
            (5.0, 0),
            (1.0, 1),
            (3.0, 2),
            (1.0, 3),
            (0.0, 4),
            (3.0, 5),
            (2.5, 6),
        ];
        for &(t, s) in &keys {
            q.push(t, s, (t, s));
        }
        let mut sorted = keys.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for want in sorted {
            assert_eq!(q.pop(), Some((want.0, want.1, want)));
        }
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn bounded_pop_respects_horizon() {
        let mut q = CalendarQueue::new();
        q.push(1.0, 0, ());
        q.push(5.0, 1, ());
        assert!(q.pop_at_or_before(0.5).is_none());
        assert_eq!(q.pop_at_or_before(1.0), Some((1.0, 0, ())));
        assert!(q.pop_at_or_before(4.9).is_none());
        assert_eq!(q.len(), 1);
        assert_eq!(q.min_time(), Some(5.0));
        assert_eq!(q.pop_at_or_before(5.0), Some((5.0, 1, ())));
        assert_eq!(q.min_time(), None);
    }

    #[test]
    fn far_future_stragglers_are_found() {
        let mut q = CalendarQueue::new();
        // A dense cluster plus events years of bucket-widths away.
        for s in 0..100 {
            q.push(s as f64 * 1e-6, s, s);
        }
        q.push(1e9, 100, 100);
        q.push(2e9, 101, 101);
        let mut got = Vec::new();
        while let Some((_, _, v)) = q.pop() {
            got.push(v);
        }
        let want: Vec<u64> = (0..102).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn interleaved_push_pop_with_resizes() {
        // Push enough to force growth, drain to force shrink, refill.
        let mut q = CalendarQueue::new();
        let mut seq = 0u64;
        for round in 0..3 {
            for i in 0..500u64 {
                q.push((round * 1000 + i) as f64 * 0.1, seq, seq);
                seq += 1;
            }
            let mut last = (f64::NEG_INFINITY, 0u64);
            for _ in 0..400 {
                let (t, s, _) = q.pop().unwrap();
                assert!(
                    (t, s) > last,
                    "order violated: {:?} after {:?}",
                    (t, s),
                    last
                );
                last = (t, s);
            }
        }
        assert_eq!(q.len(), 300);
    }

    #[test]
    fn oscillating_population_does_not_thrash_resizes() {
        // A population that swings across the grow threshold (like a
        // fabric slot's delivery batch draining every slot time) must
        // settle at one bucket count, not bounce grow/shrink forever.
        let mut q = CalendarQueue::new();
        let mut seq = 0u64;
        let mut t = 0.0;
        for _ in 0..4 {
            while q.len() < 16 {
                t += 1e-6;
                q.push(t, seq, ());
                seq += 1;
            }
        }
        let settled = q.bucket_count();
        for _ in 0..200 {
            while q.len() > 7 {
                q.pop().unwrap();
            }
            while q.len() < 16 {
                t += 1e-6;
                q.push(t, seq, ());
                seq += 1;
            }
            assert_eq!(q.bucket_count(), settled, "resize thrash at seq {seq}");
        }
    }

    #[test]
    fn same_time_batch_leaves_in_seq_order() {
        let mut q = CalendarQueue::new();
        for s in 0..1000u64 {
            q.push(7.25, s, s);
        }
        for want in 0..1000u64 {
            assert_eq!(q.pop(), Some((7.25, want, want)));
        }
    }

    #[test]
    fn push_below_cursor_is_found_first() {
        let mut q = CalendarQueue::new();
        for s in 0..64u64 {
            q.push(100.0 + s as f64, s, s);
        }
        // Advance the cursor past t=50, then push below it.
        assert_eq!(q.pop().map(|(t, _, _)| t), Some(100.0));
        q.push(50.0, 64, 64);
        assert_eq!(q.pop(), Some((50.0, 64, 64)));
    }

    #[test]
    fn for_each_item_mut_visits_everything_and_preserves_order() {
        let mut q = CalendarQueue::new();
        // One staged event plus enough bucketed ones to force resizes.
        for s in 0..300u64 {
            q.push(s as f64 * 0.25, s, s);
        }
        let mut seen = Vec::new();
        q.for_each_item_mut(|v| {
            seen.push(*v);
            *v += 1000;
        });
        seen.sort_unstable();
        assert_eq!(seen, (0..300).collect::<Vec<u64>>());
        for want in 0..300u64 {
            assert_eq!(q.pop(), Some((want as f64 * 0.25, want, want + 1000)));
        }
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan_time() {
        let mut q = CalendarQueue::new();
        q.push(f64::NAN, 0, ());
    }
}
