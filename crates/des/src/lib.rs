//! # dra-des
//!
//! A deterministic discrete-event simulation kernel, plus the random
//! distributions and online statistics the router simulators need.
//!
//! * [`sim`] — the kernel: a [`sim::Simulation`] drives a user-supplied
//!   [`sim::Model`] by delivering events in (time, insertion-order)
//!   order. Same seed, same event sequence — bit-for-bit reproducible.
//! * [`calendar`] — the calendar-queue scheduler under the kernel:
//!   O(1) amortized enqueue/dequeue with the same total order a binary
//!   heap over `(time, seq)` would produce.
//! * [`pdes`] — conservative parallel execution for models that
//!   decompose into logical processes with a static lookahead:
//!   barrier windows, deterministic cross-LP merge, byte-identical
//!   results at every thread count.
//! * [`random`] — inverse-transform samplers (exponential, Pareto,
//!   discrete empirical, …) over any [`rand::Rng`], so no extra
//!   distribution crates are needed.
//! * [`stats`] — Welford mean/variance, time-weighted averages,
//!   logarithmic histograms, counters, and batch-means confidence
//!   intervals.

#![warn(missing_docs)]

pub mod calendar;
pub mod pdes;
pub mod queueing;
pub mod random;
pub mod sim;
pub mod stats;

pub use sim::{Ctx, Model, Simulation};
