//! Conservative parallel discrete-event execution.
//!
//! The kernel in [`sim`](crate::sim) is strictly serial: one clock,
//! one queue. This module adds the classic conservative alternative
//! for models that decompose into **logical processes** (LPs) whose
//! only interaction is timestamped messages with a known minimum
//! latency (the *lookahead* `L`): advance every LP independently
//! through fixed barrier windows of width `L / 2`, exchanging the
//! cross-LP messages each window produced at the barrier.
//!
//! Why `L / 2` and not `L`: an event emitted at local time `t` inside
//! window `k` arrives at `t + L` at the earliest. With window width
//! `W = L / 2` the arrival lands at least a **full window** past the
//! end of window `k + 1`, so the safety argument needs only
//! `arrival > window_end` with a margin of `W` — immune to `f64`
//! rounding at the boundary — while still delivering every message
//! one barrier before the window that could consume it.
//!
//! `L` is a *global minimum*: per-LP-pair lookaheads may be larger
//! (heterogeneous link latencies), in which case those messages are
//! simply delivered **early** — more than one barrier before the
//! window that could consume them. Early delivery is always safe
//! because [`LogicalProcess::accept`] enqueues the message at its own
//! embedded timestamp; the consuming window pops it no sooner either
//! way.
//!
//! Determinism contract (the same discipline the campaign worker pool
//! and telemetry merge already follow): thread count never changes a
//! byte of the result. Three rules enforce it:
//!
//! 1. Windows are a pure function of `(lookahead, horizon)` — never of
//!    the thread count.
//! 2. Cross messages are tagged `(destination, source LP, emission
//!    index within the source's window)` and applied sorted by that
//!    key at the barrier, so the arrival order at any LP is
//!    independent of which thread ran which LP when.
//! 3. LPs are partitioned into contiguous index ranges, but because of
//!    rules 1–2 the partition shape is unobservable to the model.
//!
//! Equal-*timestamp* cross messages from **different** sources are
//! ordered by source id rather than by a global scheduling sequence
//! (which no longer exists); models whose distinct-provenance event
//! times are continuous random variables — every simulation in this
//! workspace — hit that case with probability zero. See
//! `DESIGN.md` for the full fine print.
//!
//! ## Payload sidecar
//!
//! Messages often reference bulk data (the network engine's
//! provenance chains) that would force a heap allocation per message
//! if carried inline. Each LP therefore publishes one
//! [`LogicalProcess::Payload`] value per window alongside its
//! messages — filled through [`Outbox::payload`] during the window,
//! readable (shared) by every receiver's `accept` at the barrier, and
//! handed back to its owner at the next window for reuse. Steady
//! state, the payload buffers cycle without allocating. Models that
//! don't need the sidecar use `Payload = ()`.

use std::sync::{Barrier, Mutex};
use std::time::Instant;

/// One logical process: a self-contained sub-simulation that can
/// advance to a time bound and absorb timestamped cross-LP messages.
pub trait LogicalProcess: Send {
    /// Message type carried between LPs (must embed its own timestamp;
    /// the executor never inspects it).
    type Cross: Send;

    /// Bulk data published once per LP per window alongside its
    /// messages (see the module docs). `Default` seeds the per-LP
    /// buffers; the executor recycles them across windows.
    type Payload: Send + Default;

    /// Advance local state, handling every pending local event with
    /// time ≤ `window_end`. Messages for other LPs — which must be
    /// timestamped at least one lookahead after the emitting event —
    /// go into `out`; any bulk data they reference goes into
    /// [`Outbox::payload`] (stale contents from this LP's previous
    /// window — clear before use).
    fn advance_window(&mut self, window_end: f64, out: &mut Outbox<Self::Cross, Self::Payload>);

    /// Absorb one cross message (enqueue it as a local future event).
    /// Called only between windows, in deterministic `(source,
    /// emission-index)` order; `payload` is the sending LP's sidecar
    /// for the window that emitted `msg`.
    fn accept(&mut self, msg: Self::Cross, payload: &Self::Payload);

    /// Cumulative count of local events this LP has processed, read by
    /// the engine profiler between windows to attribute load. The
    /// default `0` keeps models that don't track it working — their
    /// profiles simply report empty load columns.
    fn events_processed(&self) -> u64 {
        0
    }
}

/// Collector for cross-LP messages emitted during one LP's window.
pub struct Outbox<C, P> {
    events: Vec<(u32, C)>,
    /// The emitting LP's payload sidecar for this window (recycled
    /// storage from its own earlier windows; contents are stale until
    /// the LP resets them).
    pub payload: P,
}

impl<C, P: Default> Outbox<C, P> {
    fn new() -> Self {
        Outbox {
            events: Vec::new(),
            payload: P::default(),
        }
    }

    /// Emit `msg` toward LP `dst`.
    pub fn send(&mut self, dst: u32, msg: C) {
        self.events.push((dst, msg));
    }

    /// Messages emitted so far in this window.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been emitted this window.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// A cross message in transit between windows, tagged with its
/// deterministic merge key.
struct Tagged<C> {
    dst: u32,
    src: u32,
    idx: u32,
    msg: C,
}

/// Summary of one windowed run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowReport {
    /// Barrier windows executed.
    pub windows: u64,
    /// Cross-LP messages exchanged.
    pub cross_messages: u64,
}

/// Engine profile from one [`run_windows_profiled`] call.
///
/// **Non-deterministic**: the `*_ns` fields are wall-clock, so two
/// runs of the same model differ. The event counts are deterministic
/// (they restate what the LPs did), but consumers must keep the whole
/// profile out of any byte-compared artifact section — that is the
/// deterministic-vs-`profile` contract documented in DESIGN.md.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PdesProfile {
    /// Worker threads actually used (after clamping).
    pub threads: usize,
    /// Barrier windows executed.
    pub windows: u64,
    /// Cross-LP messages exchanged.
    pub cross_messages: u64,
    /// Wall-clock of the whole windowed run, nanoseconds.
    pub wall_ns: u64,
    /// Wall-clock all threads spent blocked in `Barrier::wait`,
    /// nanoseconds, summed across threads (a run with zero imbalance
    /// still pays two waits per window for the convoy itself).
    pub barrier_wait_ns: u64,
    /// Events processed per LP, LP-id order (via
    /// [`LogicalProcess::events_processed`]).
    pub lp_events: Vec<u64>,
    /// Windows in which each LP processed at least one event.
    pub lp_busy_windows: Vec<u64>,
    /// Windows in which at least one LP processed an event.
    pub nonempty_windows: u64,
    /// Sum over windows of the busiest LP's event count in that
    /// window — the critical-path event count under perfect balance;
    /// compare against `lp_events.sum() / threads`.
    pub window_max_events_sum: u64,
}

/// Advance `lps` to `horizon` on `threads` scoped threads using
/// conservative barrier windows of width `lookahead / 2`.
///
/// The result is byte-identical at every `threads` value (see the
/// module docs for the contract). `threads` is clamped to
/// `[1, lps.len()]`, and — because the contract makes the worker
/// count unobservable — also to the host's available parallelism:
/// spawning more workers than cores adds barrier-scheduling overhead
/// (two futex convoys per window) without any concurrency in return,
/// so an oversubscribed request silently runs at the widest useful
/// width instead.
///
/// # Panics
/// Panics if `lookahead` or `horizon` is non-positive or non-finite.
/// A panic inside any LP propagates after all threads join.
pub fn run_windows<L: LogicalProcess>(
    lps: &mut [L],
    lookahead: f64,
    horizon: f64,
    threads: usize,
) -> WindowReport {
    run_windows_inner(lps, lookahead, horizon, threads, None)
}

/// [`run_windows`] plus profiling: fills `profile` with per-LP load,
/// per-window occupancy, and barrier-stall wall-clock (replacing its
/// previous contents). Profiling reads wall-clocks and takes one extra
/// lock per thread per window, so the profiled run is marginally
/// slower — but the simulation result is still byte-identical to an
/// unprofiled run at any thread count.
pub fn run_windows_profiled<L: LogicalProcess>(
    lps: &mut [L],
    lookahead: f64,
    horizon: f64,
    threads: usize,
    profile: &mut PdesProfile,
) -> WindowReport {
    run_windows_inner(lps, lookahead, horizon, threads, Some(profile))
}

fn run_windows_inner<L: LogicalProcess>(
    lps: &mut [L],
    lookahead: f64,
    horizon: f64,
    threads: usize,
    profile: Option<&mut PdesProfile>,
) -> WindowReport {
    assert!(
        lookahead > 0.0 && lookahead.is_finite(),
        "run_windows: lookahead must be positive and finite, got {lookahead}"
    );
    assert!(
        horizon >= 0.0 && horizon.is_finite(),
        "run_windows: horizon must be nonnegative and finite, got {horizon}"
    );
    if lps.is_empty() {
        if let Some(p) = profile {
            *p = PdesProfile::default();
        }
        return WindowReport {
            windows: 0,
            cross_messages: 0,
        };
    }
    let width = lookahead / 2.0;
    // Enough windows that the last boundary clamps to exactly
    // `horizon`; at least one so t = 0 events run even at horizon 0.
    let n_windows = ((horizon / width).ceil() as u64).max(1);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(usize::MAX);
    let threads = threads.clamp(1, lps.len()).min(cores);
    let n_lps = lps.len();

    // Contiguous LP ranges per thread (the shape is unobservable —
    // see the module docs — so a simple even split suffices).
    let bound = |t: usize| t * n_lps / threads;
    let mut chunks: Vec<(usize, &mut [L])> = Vec::with_capacity(threads);
    let mut rest = &mut *lps;
    for t in 0..threads {
        let take = bound(t + 1) - bound(t);
        let (head, tail) = rest.split_at_mut(take);
        chunks.push((bound(t), head));
        rest = tail;
    }

    let barrier = Barrier::new(threads);
    let slots: Vec<Mutex<Vec<Tagged<L::Cross>>>> =
        (0..threads).map(|_| Mutex::new(Vec::new())).collect();
    // One payload slot per LP: written by its owner in phase 1, read
    // (shared, under the per-slot lock) by receivers in phase 2, and
    // reclaimed by the owner at its next phase 1 — so each buffer
    // cycles owner → readers → owner without ever allocating again.
    let payloads: Vec<Mutex<L::Payload>> = (0..n_lps)
        .map(|_| Mutex::new(L::Payload::default()))
        .collect();
    let crossings = Mutex::new(0u64);
    // Profiling accumulators: shared per-window (events sum, max LP
    // events) merged under one lock, per-LP busy-window counts, and
    // the summed barrier-stall clock. All untouched when not
    // profiling, so the unprofiled hot loop pays one branch per
    // window and nothing else.
    let profiling = profile.is_some();
    let win_stats: Mutex<Vec<(u64, u64)>> = Mutex::new(if profiling {
        vec![(0, 0); n_windows as usize]
    } else {
        Vec::new()
    });
    let busy: Mutex<Vec<u64>> = Mutex::new(if profiling {
        vec![0; n_lps]
    } else {
        Vec::new()
    });
    let barrier_ns = Mutex::new(0u64);
    let wall_start = Instant::now();

    std::thread::scope(|scope| {
        for (tid, (base, chunk)) in chunks.into_iter().enumerate() {
            let barrier = &barrier;
            let slots = &slots;
            let payloads = &payloads;
            let crossings = &crossings;
            let win_stats = &win_stats;
            let busy = &busy;
            let barrier_ns = &barrier_ns;
            scope.spawn(move || {
                let mut outbox = Outbox::new();
                let mut published = 0u64;
                // Profiling locals: previous cumulative event count
                // per chunk LP (for per-window deltas), per-LP busy
                // windows, and this thread's barrier-stall clock.
                let mut prev: Vec<u64> = if profiling {
                    chunk.iter().map(|lp| lp.events_processed()).collect()
                } else {
                    Vec::new()
                };
                let mut busy_local: Vec<u64> = vec![0; prev.len()];
                let mut wait_ns = 0u64;
                // Staging buffers live across windows: steady state,
                // a window reuses the high-water capacity of earlier
                // ones instead of reallocating per barrier.
                let mut outgoing: Vec<Tagged<L::Cross>> = Vec::new();
                let mut incoming: Vec<Tagged<L::Cross>> = Vec::new();
                for k in 0..n_windows {
                    let end = (width * (k + 1) as f64).min(horizon);
                    // Phase 1: every LP in this chunk advances through
                    // the window, tagging emissions with (src, idx).
                    for (j, lp) in chunk.iter_mut().enumerate() {
                        let g = base + j;
                        {
                            let mut slot = payloads[g].lock().expect("payload slot lock");
                            outbox.payload = std::mem::take(&mut *slot);
                        }
                        lp.advance_window(end, &mut outbox);
                        for (idx, (dst, msg)) in outbox.events.drain(..).enumerate() {
                            debug_assert!((dst as usize) < n_lps, "outbox dst {dst} out of range");
                            outgoing.push(Tagged {
                                dst,
                                src: g as u32,
                                idx: idx as u32,
                                msg,
                            });
                        }
                        {
                            let mut slot = payloads[g].lock().expect("payload slot lock");
                            *slot = std::mem::take(&mut outbox.payload);
                        }
                    }
                    if profiling {
                        let mut sum = 0u64;
                        let mut mx = 0u64;
                        for (j, lp) in chunk.iter().enumerate() {
                            let e = lp.events_processed();
                            let d = e - prev[j];
                            prev[j] = e;
                            if d > 0 {
                                busy_local[j] += 1;
                            }
                            sum += d;
                            mx = mx.max(d);
                        }
                        if sum > 0 {
                            let mut ws = win_stats.lock().expect("window stats lock");
                            let slot = &mut ws[k as usize];
                            slot.0 += sum;
                            slot.1 = slot.1.max(mx);
                        }
                    }
                    published += outgoing.len() as u64;
                    if !outgoing.is_empty() {
                        slots[tid]
                            .lock()
                            .expect("outbox slot lock")
                            .append(&mut outgoing);
                    }
                    if profiling {
                        let t0 = Instant::now();
                        barrier.wait();
                        wait_ns += t0.elapsed().as_nanos() as u64;
                    } else {
                        barrier.wait();
                    }
                    // Phase 2: claim the messages addressed to this
                    // chunk and apply them in (dst, src, idx) order —
                    // a key no thread schedule can perturb. Payload
                    // slots are only read in this phase; owners
                    // reclaim them after the next barrier.
                    let lo = base as u32;
                    let hi = (base + chunk.len()) as u32;
                    for slot in slots.iter() {
                        let mut guard = slot.lock().expect("outbox slot lock");
                        let mut i = 0;
                        while i < guard.len() {
                            if (lo..hi).contains(&guard[i].dst) {
                                incoming.push(guard.swap_remove(i));
                            } else {
                                i += 1;
                            }
                        }
                    }
                    // Unstable sort: the key is unique (one idx per
                    // src emission), so the order is total — and the
                    // unstable algorithm never allocates, keeping the
                    // steady-state barrier heap-free.
                    incoming.sort_unstable_by_key(|t| (t.dst, t.src, t.idx));
                    for t in incoming.drain(..) {
                        let payload = payloads[t.src as usize].lock().expect("payload slot lock");
                        chunk[t.dst as usize - base].accept(t.msg, &payload);
                    }
                    // Phase 3: nobody republishes into a slot another
                    // thread may still be scanning.
                    if profiling {
                        let t0 = Instant::now();
                        barrier.wait();
                        wait_ns += t0.elapsed().as_nanos() as u64;
                    } else {
                        barrier.wait();
                    }
                }
                *crossings.lock().expect("crossing counter") += published;
                if profiling {
                    *barrier_ns.lock().expect("barrier clock") += wait_ns;
                    let mut b = busy.lock().expect("busy windows lock");
                    for (j, v) in busy_local.iter().enumerate() {
                        b[base + j] = *v;
                    }
                }
            });
        }
    });

    let cross_messages = crossings.into_inner().expect("crossing counter");
    if let Some(p) = profile {
        p.threads = threads;
        p.windows = n_windows;
        p.cross_messages = cross_messages;
        p.wall_ns = wall_start.elapsed().as_nanos() as u64;
        p.barrier_wait_ns = barrier_ns.into_inner().expect("barrier clock");
        p.lp_events = lps.iter().map(|lp| lp.events_processed()).collect();
        p.lp_busy_windows = busy.into_inner().expect("busy windows lock");
        let ws = win_stats.into_inner().expect("window stats lock");
        p.nonempty_windows = ws.iter().filter(|w| w.0 > 0).count() as u64;
        p.window_max_events_sum = ws.iter().map(|w| w.1).sum();
    }

    WindowReport {
        windows: n_windows,
        cross_messages,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calendar::CalendarQueue;

    /// Toy LP: a node on a ring that bounces tokens onward with a
    /// fixed per-hop delay and records every arrival it sees.
    struct RingNode {
        id: u32,
        n: u32,
        hop_delay: f64,
        queue: CalendarQueue<u64>,
        seq: u64,
        log: Vec<(u64, f64, u64)>, // (token, time, local order)
    }

    impl RingNode {
        fn new(id: u32, n: u32, hop_delay: f64) -> Self {
            RingNode {
                id,
                n,
                hop_delay,
                queue: CalendarQueue::new(),
                seq: 0,
                log: Vec::new(),
            }
        }

        fn push(&mut self, time: f64, token: u64) {
            let seq = self.seq;
            self.seq += 1;
            self.queue.push(time, seq, token);
        }
    }

    impl LogicalProcess for RingNode {
        type Cross = (f64, u64);
        type Payload = ();

        fn advance_window(&mut self, window_end: f64, out: &mut Outbox<(f64, u64), ()>) {
            while let Some((t, _seq, token)) = self.queue.pop_at_or_before(window_end) {
                let order = self.log.len() as u64;
                self.log.push((token, t, order));
                out.send((self.id + 1) % self.n, (t + self.hop_delay, token));
            }
        }

        fn accept(&mut self, (t, token): (f64, u64), _payload: &()) {
            self.push(t, token);
        }

        fn events_processed(&self) -> u64 {
            self.log.len() as u64
        }
    }

    fn run_ring(n: u32, tokens: u64, threads: usize) -> Vec<Vec<(u64, f64, u64)>> {
        let hop = 1e-3;
        let mut lps: Vec<RingNode> = (0..n).map(|i| RingNode::new(i, n, hop)).collect();
        for tok in 0..tokens {
            // Stagger starts so several tokens circulate at once.
            lps[(tok % n as u64) as usize].push(tok as f64 * 1e-4, tok);
        }
        let report = run_windows(&mut lps, hop, 50e-3, threads);
        assert!(report.windows >= 1);
        assert!(report.cross_messages > 0);
        lps.into_iter().map(|lp| lp.log).collect()
    }

    #[test]
    fn ring_is_thread_count_invariant() {
        let oracle = run_ring(8, 5, 1);
        for threads in [2, 3, 4, 8] {
            assert_eq!(run_ring(8, 5, threads), oracle, "threads = {threads}");
        }
    }

    #[test]
    fn ring_conserves_and_orders_tokens() {
        let logs = run_ring(4, 2, 2);
        let total: usize = logs.iter().map(Vec::len).sum();
        // Each token takes one hop per ms over 50 ms.
        assert!(total >= 90, "expected ~100 arrivals, got {total}");
        for log in &logs {
            for pair in log.windows(2) {
                assert!(pair[0].1 <= pair[1].1, "arrivals out of time order");
            }
        }
    }

    #[test]
    fn same_time_messages_merge_by_source_id() {
        // Every node fires one message at the *same* timestamp into
        // node 0; the accept order at node 0 must be by source id
        // regardless of thread count.
        struct Sink {
            id: u32,
            queue: CalendarQueue<u32>,
            seq: u64,
            fired: bool,
            seen: Vec<u32>,
        }
        impl LogicalProcess for Sink {
            type Cross = (f64, u32);
            type Payload = ();
            fn advance_window(&mut self, end: f64, out: &mut Outbox<(f64, u32), ()>) {
                if !self.fired && end >= 0.0 {
                    self.fired = true;
                    if self.id != 0 {
                        out.send(0, (5e-3, self.id));
                    }
                }
                while let Some((_t, _s, src)) = self.queue.pop_at_or_before(end) {
                    self.seen.push(src);
                }
            }
            fn accept(&mut self, (t, src): (f64, u32), _payload: &()) {
                let seq = self.seq;
                self.seq += 1;
                self.queue.push(t, seq, src);
            }
        }
        for threads in [1, 2, 5] {
            let mut lps: Vec<Sink> = (0..5)
                .map(|id| Sink {
                    id,
                    queue: CalendarQueue::new(),
                    seq: 0,
                    fired: false,
                    seen: Vec::new(),
                })
                .collect();
            run_windows(&mut lps, 2e-3, 10e-3, threads);
            assert_eq!(lps[0].seen, vec![1, 2, 3, 4], "threads = {threads}");
        }
    }

    #[test]
    fn payload_sidecar_travels_with_messages_and_recycles() {
        // Each node publishes a window payload holding the squares of
        // the tokens it forwarded; receivers check the referenced slot
        // matches the message. Exercises owner → reader → owner
        // buffer cycling across many windows and thread counts.
        struct PayloadNode {
            id: u32,
            n: u32,
            queue: CalendarQueue<u64>,
            seq: u64,
            checked: u64,
        }
        impl LogicalProcess for PayloadNode {
            type Cross = (f64, u64, u32); // (time, token, payload index)
            type Payload = Vec<u64>;
            fn advance_window(&mut self, end: f64, out: &mut Outbox<Self::Cross, Vec<u64>>) {
                out.payload.clear();
                while let Some((t, _s, token)) = self.queue.pop_at_or_before(end) {
                    let idx = out.payload.len() as u32;
                    out.payload.push(token * token);
                    out.send((self.id + 1) % self.n, (t + 1e-3, token, idx));
                }
            }
            fn accept(&mut self, (t, token, idx): Self::Cross, payload: &Vec<u64>) {
                assert_eq!(payload[idx as usize], token * token, "payload mismatch");
                self.checked += 1;
                let seq = self.seq;
                self.seq += 1;
                self.queue.push(t, seq, token);
            }
        }
        for threads in [1, 2, 4] {
            let mut lps: Vec<PayloadNode> = (0..4)
                .map(|id| PayloadNode {
                    id,
                    n: 4,
                    queue: CalendarQueue::new(),
                    seq: 0,
                    checked: 0,
                })
                .collect();
            for tok in 0..6u64 {
                let seq = lps[(tok % 4) as usize].seq;
                lps[(tok % 4) as usize].seq = seq + 1;
                let t = tok as f64 * 1e-4;
                lps[(tok % 4) as usize].queue.push(t, seq, tok);
            }
            run_windows(&mut lps, 1e-3, 30e-3, threads);
            let total: u64 = lps.iter().map(|lp| lp.checked).sum();
            assert!(total > 100, "threads={threads}: only {total} checks");
        }
    }

    #[test]
    fn profiled_run_matches_oracle_and_accounts_load() {
        let oracle = run_ring(8, 5, 1);
        for threads in [1, 2, 4] {
            let hop = 1e-3;
            let mut lps: Vec<RingNode> = (0..8).map(|i| RingNode::new(i, 8, hop)).collect();
            for tok in 0..5u64 {
                lps[(tok % 8) as usize].push(tok as f64 * 1e-4, tok);
            }
            let mut profile = PdesProfile::default();
            let report = run_windows_profiled(&mut lps, hop, 50e-3, threads, &mut profile);
            // Profiling must not perturb the simulation.
            let logs: Vec<_> = lps.into_iter().map(|lp| lp.log).collect();
            assert_eq!(logs, oracle, "threads = {threads}");
            // The profile restates what the LPs did.
            assert_eq!(profile.windows, report.windows);
            assert_eq!(profile.cross_messages, report.cross_messages);
            assert_eq!(profile.lp_events.len(), 8);
            let total: u64 = profile.lp_events.iter().sum();
            let expected: u64 = logs.iter().map(|l| l.len() as u64).sum();
            assert_eq!(total, expected);
            assert!(profile.nonempty_windows > 0);
            assert!(profile.nonempty_windows <= profile.windows);
            // Each window's max ≥ its mean share, so the sum of maxes
            // bounds total/lps from above.
            assert!(profile.window_max_events_sum >= total / 8);
            assert!(profile.window_max_events_sum <= total);
            assert!(profile
                .lp_busy_windows
                .iter()
                .all(|&b| b <= profile.windows));
            let busy_total: u64 = profile.lp_busy_windows.iter().sum();
            assert!(busy_total > 0);
            assert!(profile.wall_ns > 0);
            assert!(profile.threads <= 8);
        }
    }

    #[test]
    fn profile_resets_between_runs() {
        let mut profile = PdesProfile {
            lp_events: vec![99; 4],
            windows: 123,
            ..PdesProfile::default()
        };
        let mut none: Vec<RingNode> = Vec::new();
        run_windows_profiled(&mut none, 1.0, 1.0, 2, &mut profile);
        assert_eq!(profile, PdesProfile::default());
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        let mut none: Vec<RingNode> = Vec::new();
        let r = run_windows(&mut none, 1.0, 1.0, 4);
        assert_eq!(r.windows, 0);
        // Horizon 0 still runs one window so t = 0 events fire.
        let mut one = vec![RingNode::new(0, 1, 1.0)];
        one[0].push(0.0, 9);
        let r = run_windows(&mut one, 1.0, 0.0, 3);
        assert_eq!(r.windows, 1);
        assert_eq!(one[0].log.len(), 1);
    }
}
