//! Closed-form queueing results used to validate the DES kernel.
//!
//! The router simulators are, structurally, networks of queues; having
//! M/M/1 and M/G/1 (Pollaczek–Khinchine) formulas in-tree lets the
//! test suite check the *kernel* against theory, independent of the
//! router models built on top.

/// Utilization ρ = λ/μ; must be in `[0, 1)` for a stable queue.
fn check(lambda: f64, mu: f64) -> f64 {
    assert!(
        lambda >= 0.0 && mu > 0.0,
        "rates must be nonnegative/positive"
    );
    let rho = lambda / mu;
    assert!(rho < 1.0, "unstable queue: rho = {rho}");
    rho
}

/// M/M/1 mean number in system: `ρ / (1 − ρ)`.
pub fn mm1_mean_in_system(lambda: f64, mu: f64) -> f64 {
    let rho = check(lambda, mu);
    rho / (1.0 - rho)
}

/// M/M/1 mean time in system (waiting + service): `1 / (μ − λ)`.
pub fn mm1_mean_sojourn(lambda: f64, mu: f64) -> f64 {
    check(lambda, mu);
    1.0 / (mu - lambda)
}

/// M/G/1 mean *waiting* time by Pollaczek–Khinchine:
/// `W = λ·E[S²] / (2(1 − ρ))`, with `E[S²]` the second moment of the
/// service time.
pub fn mg1_mean_wait(lambda: f64, mean_service: f64, second_moment_service: f64) -> f64 {
    assert!(mean_service > 0.0 && second_moment_service >= mean_service * mean_service);
    let rho = check(lambda, 1.0 / mean_service);
    lambda * second_moment_service / (2.0 * (1.0 - rho))
}

/// M/D/1 mean waiting time (deterministic service `d`):
/// `W = ρ·d / (2(1 − ρ))`.
pub fn md1_mean_wait(lambda: f64, service: f64) -> f64 {
    let rho = check(lambda, 1.0 / service);
    rho * service / (2.0 * (1.0 - rho))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random;
    use crate::{Ctx, Model, Simulation};
    use std::collections::VecDeque;

    #[test]
    fn formula_sanity() {
        // rho = 0.5: L = 1, T = 2/mu.
        assert!((mm1_mean_in_system(0.5, 1.0) - 1.0).abs() < 1e-12);
        assert!((mm1_mean_sojourn(0.5, 1.0) - 2.0).abs() < 1e-12);
        // M/D/1 waits are half of M/M/1 waits at the same rho.
        let mm1_wait = mm1_mean_sojourn(0.8, 1.0) - 1.0;
        let md1_wait = md1_mean_wait(0.8, 1.0);
        assert!((md1_wait - mm1_wait / 2.0).abs() < 1e-12);
        // P-K with exponential service (E[S^2] = 2/mu^2) matches M/M/1.
        let pk = mg1_mean_wait(0.8, 1.0, 2.0);
        assert!((pk - mm1_wait).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "unstable")]
    fn unstable_queue_rejected() {
        mm1_mean_in_system(2.0, 1.0);
    }

    /// A single-server FIFO queue as a DES model.
    struct Queue {
        arrival_rate: f64,
        service: ServiceDist,
        waiting: VecDeque<f64>, // arrival times
        busy: bool,
        total_wait: f64,
        served: u64,
        to_serve: u64,
    }

    enum ServiceDist {
        Deterministic(f64),
        Exponential(f64), // rate
    }

    enum Ev {
        Arrival,
        Departure,
    }

    impl Queue {
        fn draw_service(&self, ctx: &mut Ctx<'_, Ev>) -> f64 {
            match self.service {
                ServiceDist::Deterministic(d) => d,
                ServiceDist::Exponential(mu) => random::exponential(ctx.rng(), mu),
            }
        }
    }

    impl Model for Queue {
        type Event = Ev;
        fn handle(&mut self, ev: Ev, ctx: &mut Ctx<'_, Ev>) {
            match ev {
                Ev::Arrival => {
                    let in_system = self.waiting.len() as u64 + u64::from(self.busy);
                    if self.served + in_system < self.to_serve {
                        let gap = random::exponential(ctx.rng(), self.arrival_rate);
                        ctx.schedule(gap, Ev::Arrival);
                    }
                    if self.busy {
                        self.waiting.push_back(ctx.now());
                    } else {
                        self.busy = true;
                        let s = self.draw_service(ctx);
                        ctx.schedule(s, Ev::Departure);
                    }
                }
                Ev::Departure => {
                    self.served += 1;
                    if let Some(arrived) = self.waiting.pop_front() {
                        self.total_wait += ctx.now() - arrived;
                        let s = self.draw_service(ctx);
                        ctx.schedule(s, Ev::Departure);
                    } else {
                        self.busy = false;
                        if self.served >= self.to_serve {
                            ctx.request_stop();
                        }
                    }
                }
            }
        }
    }

    fn run_queue(service: ServiceDist, lambda: f64, n: u64, seed: u64) -> f64 {
        let mut sim = Simulation::new(
            Queue {
                arrival_rate: lambda,
                service,
                waiting: VecDeque::new(),
                busy: false,
                total_wait: 0.0,
                served: 0,
                to_serve: n,
            },
            seed,
        );
        sim.schedule(0.0, Ev::Arrival);
        sim.run_to_completion();
        let m = sim.into_model();
        m.total_wait / m.served as f64
    }

    #[test]
    fn des_md1_queue_matches_pollaczek_khinchine() {
        let (lambda, d) = (0.7, 1.0);
        let measured = run_queue(ServiceDist::Deterministic(d), lambda, 200_000, 9);
        let theory = md1_mean_wait(lambda, d);
        assert!(
            (measured / theory - 1.0).abs() < 0.05,
            "M/D/1 wait: measured {measured:.4} vs theory {theory:.4}"
        );
    }

    #[test]
    fn des_mm1_queue_matches_theory() {
        let (lambda, mu) = (0.6, 1.0);
        let measured = run_queue(ServiceDist::Exponential(mu), lambda, 200_000, 10);
        let theory = mm1_mean_sojourn(lambda, mu) - 1.0 / mu;
        assert!(
            (measured / theory - 1.0).abs() < 0.06,
            "M/M/1 wait: measured {measured:.4} vs theory {theory:.4}"
        );
    }
}
