//! Inverse-transform samplers over any [`rand::Rng`].
//!
//! Implemented here (rather than pulling in `rand_distr`) because the
//! simulators need only a handful of distributions, and owning the code
//! makes the numerical behaviour auditable: every sampler is a few
//! lines of inverse-transform.

use rand::Rng;

/// Sample an exponential with the given `rate` (mean `1/rate`).
///
/// # Panics
/// Panics when `rate` is not strictly positive and finite.
#[inline]
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    assert!(
        rate > 0.0 && rate.is_finite(),
        "exponential: bad rate {rate}"
    );
    // gen::<f64>() is in [0,1); use 1-u in (0,1] so ln() is finite.
    let u: f64 = 1.0 - rng.gen::<f64>();
    -u.ln() / rate
}

/// Sample a bounded Pareto on `[lo, hi]` with shape `alpha`.
///
/// Used for heavy-tailed packet-size and burst-length draws.
#[inline]
pub fn bounded_pareto<R: Rng + ?Sized>(rng: &mut R, alpha: f64, lo: f64, hi: f64) -> f64 {
    assert!(
        alpha > 0.0 && lo > 0.0 && hi > lo,
        "bounded_pareto: bad params"
    );
    let u: f64 = rng.gen();
    let la = lo.powf(alpha);
    let ha = hi.powf(alpha);
    // Inverse CDF of the bounded Pareto.
    (-(u * ha - u * la - ha) / (ha * la))
        .powf(-1.0 / alpha)
        .clamp(lo, hi)
}

/// Sample uniformly from `[lo, hi)`.
#[inline]
pub fn uniform<R: Rng + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
    assert!(hi > lo, "uniform: empty range");
    rng.gen_range(lo..hi)
}

/// Bernoulli trial with probability `p`.
#[inline]
pub fn coin<R: Rng + ?Sized>(rng: &mut R, p: f64) -> bool {
    assert!((0.0..=1.0).contains(&p), "coin: p out of range");
    rng.gen::<f64>() < p
}

/// Sample a geometric count (number of failures before first success)
/// with success probability `p` in (0, 1].
#[inline]
pub fn geometric<R: Rng + ?Sized>(rng: &mut R, p: f64) -> u64 {
    assert!(p > 0.0 && p <= 1.0, "geometric: bad p {p}");
    if p == 1.0 {
        return 0;
    }
    let u: f64 = 1.0 - rng.gen::<f64>();
    (u.ln() / (1.0 - p).ln()).floor() as u64
}

/// Draw an index from `weights` proportionally, given their
/// precomputed sum `total` — **one** uniform variate per draw, walked
/// linearly.
///
/// This is the primitive under competing-risks picks (which transition
/// fires next in a CTMC race) and under *biased* draws for importance
/// sampling: the caller supplies whatever proposal weights it likes and
/// corrects with a likelihood ratio. Zero-weight entries are never
/// selected (the walk passes over them without consuming mass).
///
/// # Panics
/// Panics when `weights` is empty or `total` is not strictly positive.
#[inline]
pub fn weighted_index<R: Rng + ?Sized>(rng: &mut R, weights: &[f64], total: f64) -> usize {
    assert!(
        !weights.is_empty() && total > 0.0 && total.is_finite(),
        "weighted_index: bad inputs"
    );
    let mut x = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        if x < w {
            return i;
        }
        x -= w;
    }
    // Floating-point slack can exhaust the walk; return the last
    // positive-weight entry, as an inverse-CDF draw would.
    weights
        .iter()
        .rposition(|&w| w > 0.0)
        .unwrap_or(weights.len() - 1)
}

/// A discrete empirical distribution over arbitrary items.
///
/// Sampling is O(log n) by binary search on the cumulative weights; the
/// packet-size mixes used by the traffic generators have ≤ 4 entries,
/// but FIB-churn experiments draw from thousands of prefixes.
#[derive(Debug, Clone)]
pub struct Discrete<T: Clone> {
    items: Vec<T>,
    cumulative: Vec<f64>,
}

impl<T: Clone> Discrete<T> {
    /// Build from `(item, weight)` pairs. Weights must be nonnegative
    /// and sum to something positive.
    pub fn new(pairs: &[(T, f64)]) -> Option<Self> {
        if pairs.is_empty() {
            return None;
        }
        let mut items = Vec::with_capacity(pairs.len());
        let mut cumulative = Vec::with_capacity(pairs.len());
        let mut acc = 0.0;
        for (item, w) in pairs {
            if !w.is_finite() || *w < 0.0 {
                return None;
            }
            acc += w;
            items.push(item.clone());
            cumulative.push(acc);
        }
        if acc <= 0.0 {
            return None;
        }
        Some(Discrete { items, cumulative })
    }

    /// Draw one item.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> &T {
        let total = *self.cumulative.last().expect("nonempty");
        let x = rng.gen::<f64>() * total;
        let idx = self.cumulative.partition_point(|&c| c <= x);
        &self.items[idx.min(self.items.len() - 1)]
    }

    /// Number of distinct items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when the distribution has no items (never constructed so).
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(0xD5A)
    }

    #[test]
    fn exponential_mean_and_positivity() {
        let mut r = rng();
        let rate = 0.25;
        let n = 200_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = exponential(&mut r, rate);
            assert!(x >= 0.0);
            sum += x;
        }
        let mean = sum / n as f64;
        assert!(
            (mean - 4.0).abs() < 0.05,
            "sample mean {mean} too far from 4.0"
        );
    }

    #[test]
    fn exponential_memoryless_tail() {
        // P(X > 2/rate) should be e^-2 ~ 0.1353.
        let mut r = rng();
        let rate = 1.0;
        let n = 100_000;
        let count = (0..n).filter(|_| exponential(&mut r, rate) > 2.0).count();
        let p = count as f64 / n as f64;
        assert!((p - (-2.0_f64).exp()).abs() < 0.01, "tail prob {p}");
    }

    #[test]
    #[should_panic(expected = "bad rate")]
    fn exponential_rejects_zero_rate() {
        exponential(&mut rng(), 0.0);
    }

    #[test]
    fn bounded_pareto_stays_in_range() {
        let mut r = rng();
        for _ in 0..10_000 {
            let x = bounded_pareto(&mut r, 1.2, 40.0, 1500.0);
            assert!((40.0..=1500.0).contains(&x), "out of range: {x}");
        }
    }

    #[test]
    fn bounded_pareto_skews_low() {
        // With alpha > 0 most mass is near lo: median well below midpoint.
        let mut r = rng();
        let mut v: Vec<f64> = (0..10_001)
            .map(|_| bounded_pareto(&mut r, 1.2, 40.0, 1500.0))
            .collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = v[v.len() / 2];
        assert!(median < (40.0 + 1500.0) / 2.0, "median {median}");
    }

    #[test]
    fn uniform_and_coin() {
        let mut r = rng();
        for _ in 0..1000 {
            let x = uniform(&mut r, 2.0, 3.0);
            assert!((2.0..3.0).contains(&x));
        }
        let heads = (0..100_000).filter(|_| coin(&mut r, 0.3)).count();
        let p = heads as f64 / 100_000.0;
        assert!((p - 0.3).abs() < 0.01);
    }

    #[test]
    fn geometric_mean() {
        let mut r = rng();
        let p = 0.2;
        let n = 100_000;
        let sum: u64 = (0..n).map(|_| geometric(&mut r, p)).sum();
        let mean = sum as f64 / n as f64;
        // Mean of failures-before-success geometric is (1-p)/p = 4.
        assert!((mean - 4.0).abs() < 0.1, "mean {mean}");
        assert_eq!(geometric(&mut r, 1.0), 0);
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut r = rng();
        let w = [1.0, 3.0, 0.0, 4.0];
        let total: f64 = w.iter().sum();
        let mut counts = [0usize; 4];
        let n = 100_000;
        for _ in 0..n {
            counts[weighted_index(&mut r, &w, total)] += 1;
        }
        assert_eq!(counts[2], 0, "zero-weight entry drawn");
        for (i, &wi) in w.iter().enumerate() {
            let p = counts[i] as f64 / n as f64;
            assert!((p - wi / total).abs() < 0.01, "idx {i}: p={p}");
        }
    }

    #[test]
    fn weighted_index_trailing_zero_weight_never_selected() {
        // Even if fp slack exhausts the walk, the fallback must land on
        // the last *positive* weight, not a trailing zero.
        let mut r = rng();
        let w = [1.0, 0.0];
        for _ in 0..10_000 {
            assert_eq!(weighted_index(&mut r, &w, 1.0), 0);
        }
    }

    #[test]
    #[should_panic(expected = "bad inputs")]
    fn weighted_index_rejects_empty() {
        weighted_index(&mut rng(), &[], 1.0);
    }

    #[test]
    fn discrete_respects_weights() {
        let d = Discrete::new(&[("a", 1.0), ("b", 3.0)]).unwrap();
        let mut r = rng();
        let n = 100_000;
        let b_count = (0..n).filter(|_| *d.sample(&mut r) == "b").count();
        let p = b_count as f64 / n as f64;
        assert!((p - 0.75).abs() < 0.01, "p(b) = {p}");
    }

    #[test]
    fn discrete_zero_weight_items_never_sampled() {
        let d = Discrete::new(&[(1u8, 0.0), (2u8, 1.0), (3u8, 0.0)]).unwrap();
        let mut r = rng();
        for _ in 0..1000 {
            assert_eq!(*d.sample(&mut r), 2);
        }
    }

    #[test]
    fn discrete_rejects_bad_input() {
        assert!(Discrete::<u8>::new(&[]).is_none());
        assert!(Discrete::new(&[(1u8, -1.0)]).is_none());
        assert!(Discrete::new(&[(1u8, 0.0)]).is_none());
        assert!(Discrete::new(&[(1u8, f64::NAN)]).is_none());
    }

    #[test]
    fn discrete_single_item() {
        let d = Discrete::new(&[(7u8, 0.5)]).unwrap();
        assert_eq!(d.len(), 1);
        assert!(!d.is_empty());
        assert_eq!(*d.sample(&mut rng()), 7);
    }
}
