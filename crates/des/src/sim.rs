//! The discrete-event kernel.
//!
//! Design notes:
//!
//! * Events are a user-defined type `M::Event`; the kernel never
//!   inspects them. This keeps the hot path monomorphic — no boxing,
//!   no dynamic dispatch per event.
//! * The priority queue orders by `(time, sequence)`. The sequence
//!   number is assigned at scheduling time, so two events at the same
//!   instant are delivered in the order they were scheduled. This is
//!   what makes runs reproducible across platforms: `f64` ties are
//!   broken deterministically.
//! * The queue itself is a [`CalendarQueue`] — O(1) amortized
//!   push/pop against the O(log n) of the binary heap it replaced,
//!   with the identical `(time, seq)` pop order, so traces (and the
//!   campaign artifacts built from them) are byte-for-byte unchanged
//!   across the swap.
//! * Handlers receive a [`Ctx`], which lets them read the clock, draw
//!   random numbers, schedule further events, and request a stop. New
//!   events go straight into the calendar (the `Ctx` borrows it), so
//!   there is no per-event buffer allocation.

use crate::calendar::CalendarQueue;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// A simulation model: owns all mutable world state and handles events.
pub trait Model {
    /// The event alphabet of this model.
    type Event;

    /// Handle one event. `ctx` provides the clock, RNG, and scheduling.
    fn handle(&mut self, event: Self::Event, ctx: &mut Ctx<'_, Self::Event>);
}

/// Handler-side view of the simulation: clock, RNG, scheduling, stop.
pub struct Ctx<'a, E> {
    now: f64,
    seq: &'a mut u64,
    queue: &'a mut CalendarQueue<E>,
    rng: &'a mut SmallRng,
    stop: &'a mut bool,
}

impl<'a, E> Ctx<'a, E> {
    /// Current simulation time.
    #[inline]
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Schedule `event` to fire `delay` time units from now.
    ///
    /// # Panics
    /// Panics if `delay` is negative or non-finite — scheduling into
    /// the past is always a model bug and must fail loudly.
    pub fn schedule(&mut self, delay: f64, event: E) {
        assert!(
            delay.is_finite() && delay >= 0.0,
            "schedule: delay must be finite and nonnegative, got {delay}"
        );
        let seq = *self.seq;
        *self.seq += 1;
        #[cfg(feature = "telemetry")]
        dra_telemetry::des_scheduled();
        self.queue.push(self.now + delay, seq, event);
    }

    /// Schedule `event` at absolute time `at` (must be ≥ now).
    pub fn schedule_at(&mut self, at: f64, event: E) {
        assert!(
            at.is_finite() && at >= self.now,
            "schedule_at: time {at} is before now ({})",
            self.now
        );
        let seq = *self.seq;
        *self.seq += 1;
        #[cfg(feature = "telemetry")]
        dra_telemetry::des_scheduled();
        self.queue.push(at, seq, event);
    }

    /// The simulation's random number generator.
    #[inline]
    pub fn rng(&mut self) -> &mut SmallRng {
        self.rng
    }

    /// Ask the kernel to stop after this handler returns.
    pub fn request_stop(&mut self) {
        *self.stop = true;
    }
}

/// The simulation executive: owns the model, the clock, the queue, and
/// the RNG.
///
/// ```
/// use dra_des::{Ctx, Model, Simulation};
///
/// // A counter that reschedules itself until it has ticked 3 times.
/// struct Ticker { ticks: u32 }
/// impl Model for Ticker {
///     type Event = ();
///     fn handle(&mut self, _: (), ctx: &mut Ctx<'_, ()>) {
///         self.ticks += 1;
///         if self.ticks < 3 {
///             ctx.schedule(1.5, ());
///         }
///     }
/// }
///
/// let mut sim = Simulation::new(Ticker { ticks: 0 }, 42);
/// sim.schedule(0.0, ());
/// sim.run_to_completion();
/// assert_eq!(sim.model().ticks, 3);
/// assert_eq!(sim.now(), 3.0);
/// ```
pub struct Simulation<M: Model> {
    model: M,
    queue: CalendarQueue<M::Event>,
    now: f64,
    seq: u64,
    rng: SmallRng,
    stop: bool,
    events_processed: u64,
}

impl<M: Model> Simulation<M> {
    /// Create a simulation over `model`, seeded deterministically.
    pub fn new(model: M, seed: u64) -> Self {
        Simulation {
            model,
            queue: CalendarQueue::new(),
            now: 0.0,
            seq: 0,
            rng: SmallRng::seed_from_u64(seed),
            stop: false,
            events_processed: 0,
        }
    }

    /// Current simulation time.
    #[inline]
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Number of events delivered so far.
    #[inline]
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Number of events currently pending.
    #[inline]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Borrow the model (for reading metrics after/between runs).
    #[inline]
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Mutably borrow the model (e.g. to reconfigure between phases).
    #[inline]
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// Consume the simulation, returning the model.
    pub fn into_model(self) -> M {
        self.model
    }

    /// Schedule an event from outside a handler (initial conditions).
    pub fn schedule(&mut self, delay: f64, event: M::Event) {
        assert!(
            delay.is_finite() && delay >= 0.0,
            "schedule: delay must be finite and nonnegative, got {delay}"
        );
        let seq = self.seq;
        self.seq += 1;
        #[cfg(feature = "telemetry")]
        dra_telemetry::des_scheduled();
        self.queue.push(self.now + delay, seq, event);
    }

    /// Deliver the next event, if any. Returns its timestamp.
    pub fn step(&mut self) -> Option<f64> {
        if self.stop {
            return None;
        }
        let (time, _seq, event) = self.queue.pop()?;
        debug_assert!(time >= self.now, "time went backwards");
        self.now = time;
        self.events_processed += 1;
        #[cfg(feature = "telemetry")]
        dra_telemetry::des_event(self.now, self.queue.len(), self.queue.bucket_count());
        let mut ctx = Ctx {
            now: self.now,
            seq: &mut self.seq,
            queue: &mut self.queue,
            rng: &mut self.rng,
            stop: &mut self.stop,
        };
        self.model.handle(event, &mut ctx);
        Some(self.now)
    }

    /// Run until the queue empties, `horizon` is reached, or a handler
    /// requests a stop. Events stamped after `horizon` stay queued and
    /// the clock is advanced exactly to `horizon`.
    ///
    /// Returns the number of events delivered by this call.
    pub fn run_until(&mut self, horizon: f64) -> u64 {
        assert!(horizon.is_finite() && horizon >= self.now);
        let start = self.events_processed;
        while !self.stop {
            // A single bounded pop both finds the head and removes it
            // when in range — no separate peek pass, and a miss caches
            // the found minimum so the next call stays O(1).
            let Some((time, _seq, event)) = self.queue.pop_at_or_before(horizon) else {
                break;
            };
            debug_assert!(time >= self.now, "time went backwards");
            self.now = time;
            self.events_processed += 1;
            #[cfg(feature = "telemetry")]
            dra_telemetry::des_event(self.now, self.queue.len(), self.queue.bucket_count());
            let mut ctx = Ctx {
                now: self.now,
                seq: &mut self.seq,
                queue: &mut self.queue,
                rng: &mut self.rng,
                stop: &mut self.stop,
            };
            self.model.handle(event, &mut ctx);
        }
        if !self.stop {
            self.now = horizon;
        }
        self.events_processed - start
    }

    /// Run until no events remain or a handler stops the simulation.
    pub fn run_to_completion(&mut self) -> u64 {
        let start = self.events_processed;
        while !self.stop && self.step().is_some() {}
        self.events_processed - start
    }

    /// True when a handler has requested a stop.
    pub fn stopped(&self) -> bool {
        self.stop
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A model that records the order events arrive in.
    struct Recorder {
        seen: Vec<(f64, u32)>,
        chain: bool,
        stop_at: Option<u32>,
    }

    impl Model for Recorder {
        type Event = u32;
        fn handle(&mut self, event: u32, ctx: &mut Ctx<'_, u32>) {
            self.seen.push((ctx.now(), event));
            if let Some(s) = self.stop_at {
                if event == s {
                    ctx.request_stop();
                    return;
                }
            }
            if self.chain && event < 5 {
                ctx.schedule(1.0, event + 1);
            }
        }
    }

    fn recorder() -> Recorder {
        Recorder {
            seen: Vec::new(),
            chain: false,
            stop_at: None,
        }
    }

    #[test]
    fn events_delivered_in_time_order() {
        let mut sim = Simulation::new(recorder(), 1);
        sim.schedule(3.0, 30);
        sim.schedule(1.0, 10);
        sim.schedule(2.0, 20);
        sim.run_to_completion();
        assert_eq!(sim.model().seen, vec![(1.0, 10), (2.0, 20), (3.0, 30)]);
    }

    #[test]
    fn ties_broken_by_scheduling_order() {
        let mut sim = Simulation::new(recorder(), 1);
        sim.schedule(1.0, 1);
        sim.schedule(1.0, 2);
        sim.schedule(1.0, 3);
        sim.run_to_completion();
        let events: Vec<u32> = sim.model().seen.iter().map(|&(_, e)| e).collect();
        assert_eq!(events, vec![1, 2, 3]);
    }

    #[test]
    fn handlers_can_schedule_followups() {
        let mut sim = Simulation::new(
            Recorder {
                seen: Vec::new(),
                chain: true,
                stop_at: None,
            },
            1,
        );
        sim.schedule(0.0, 1);
        sim.run_to_completion();
        let events: Vec<u32> = sim.model().seen.iter().map(|&(_, e)| e).collect();
        assert_eq!(events, vec![1, 2, 3, 4, 5]);
        assert_eq!(sim.now(), 4.0);
        assert_eq!(sim.events_processed(), 5);
    }

    #[test]
    fn run_until_respects_horizon() {
        let mut sim = Simulation::new(recorder(), 1);
        sim.schedule(1.0, 1);
        sim.schedule(5.0, 2);
        let n = sim.run_until(3.0);
        assert_eq!(n, 1);
        assert_eq!(sim.now(), 3.0);
        assert_eq!(sim.pending(), 1);
        // Continue to the end.
        sim.run_until(10.0);
        assert_eq!(sim.model().seen.len(), 2);
        assert_eq!(sim.now(), 10.0);
    }

    #[test]
    fn stop_request_halts_immediately() {
        let mut sim = Simulation::new(
            Recorder {
                seen: Vec::new(),
                chain: true,
                stop_at: Some(3),
            },
            1,
        );
        sim.schedule(0.0, 1);
        sim.run_to_completion();
        let events: Vec<u32> = sim.model().seen.iter().map(|&(_, e)| e).collect();
        assert_eq!(events, vec![1, 2, 3]);
        assert!(sim.stopped());
        // Further stepping does nothing.
        assert!(sim.step().is_none());
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        // A model that uses the RNG to decide delays.
        struct Jitter {
            trace: Vec<f64>,
        }
        impl Model for Jitter {
            type Event = u32;
            fn handle(&mut self, ev: u32, ctx: &mut Ctx<'_, u32>) {
                use rand::Rng;
                self.trace.push(ctx.now());
                if ev < 20 {
                    let d: f64 = ctx.rng().gen_range(0.0..2.0);
                    ctx.schedule(d, ev + 1);
                }
            }
        }
        let run = |seed| {
            let mut sim = Simulation::new(Jitter { trace: Vec::new() }, seed);
            sim.schedule(0.0, 0);
            sim.run_to_completion();
            sim.into_model().trace
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    #[should_panic(expected = "nonnegative")]
    fn negative_delay_panics() {
        let mut sim = Simulation::new(recorder(), 1);
        sim.schedule(-1.0, 1);
    }

    #[test]
    fn schedule_at_absolute() {
        struct At;
        impl Model for At {
            type Event = u8;
            fn handle(&mut self, ev: u8, ctx: &mut Ctx<'_, u8>) {
                if ev == 0 {
                    ctx.schedule_at(7.5, 1);
                }
            }
        }
        let mut sim = Simulation::new(At, 1);
        sim.schedule(1.0, 0);
        sim.run_to_completion();
        assert_eq!(sim.now(), 7.5);
    }

    #[test]
    fn empty_simulation_is_fine() {
        let mut sim = Simulation::new(recorder(), 1);
        assert_eq!(sim.run_to_completion(), 0);
        assert_eq!(sim.now(), 0.0);
    }
}
