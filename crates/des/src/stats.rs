//! Online statistics for simulation output analysis.
//!
//! Everything here is single-pass and allocation-free per observation,
//! so metrics can be updated on the simulator's hot path.

/// Welford's online mean/variance accumulator.
#[derive(Debug, Clone)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for Welford {
    /// Same as [`Welford::new`] — a derived `Default` would zero the
    /// min/max trackers instead of starting them at ±∞.
    fn default() -> Self {
        Self::new()
    }
}

impl Welford {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Welford {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (NaN when empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest observation (NaN when empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Half-width of a normal-approximation confidence interval at the
    /// given z-score (1.96 for 95%).
    pub fn ci_half_width(&self, z: f64) -> f64 {
        if self.n < 2 {
            return f64::NAN;
        }
        z * self.std_dev() / (self.n as f64).sqrt()
    }

    /// Merge another accumulator into this one (parallel sweeps).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Bivariate Welford accumulator for **ratio estimators** — the output
/// analysis of regenerative simulation, where the quantity of interest
/// is `E[X]/E[Y]` over i.i.d. cycle pairs `(x_i, y_i)` (e.g. downtime
/// over cycle length).
///
/// Tracks means, variances, *and the covariance* in one pass, because
/// the delta-method confidence interval for a ratio needs all three:
/// the numerator and denominator of one cycle are strongly correlated
/// and treating them as independent misstates the CI.
#[derive(Debug, Clone, Default)]
pub struct Welford2 {
    n: u64,
    mean_x: f64,
    mean_y: f64,
    m2x: f64,
    m2y: f64,
    cxy: f64,
}

impl Welford2 {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one paired observation `(x, y)`.
    #[inline]
    pub fn push(&mut self, x: f64, y: f64) {
        self.n += 1;
        let n = self.n as f64;
        let dx = x - self.mean_x;
        self.mean_x += dx / n;
        let dy = y - self.mean_y;
        self.mean_y += dy / n;
        // Co-moment uses the pre-update x delta and post-update y mean,
        // the standard single-pass covariance recurrence.
        self.cxy += dx * (y - self.mean_y);
        self.m2x += dx * (x - self.mean_x);
        self.m2y += dy * (y - self.mean_y);
    }

    /// Number of paired observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean of the first coordinate.
    pub fn mean_x(&self) -> f64 {
        self.mean_x
    }

    /// Sample mean of the second coordinate.
    pub fn mean_y(&self) -> f64 {
        self.mean_y
    }

    /// Unbiased sample variance of the first coordinate.
    pub fn var_x(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2x / (self.n - 1) as f64
        }
    }

    /// Unbiased sample variance of the second coordinate.
    pub fn var_y(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2y / (self.n - 1) as f64
        }
    }

    /// Unbiased sample covariance.
    pub fn covariance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.cxy / (self.n - 1) as f64
        }
    }

    /// Point estimate of the ratio `E[X]/E[Y]` (NaN when `mean_y` is 0).
    pub fn ratio(&self) -> f64 {
        self.mean_x / self.mean_y
    }

    /// Delta-method confidence half-width for the ratio at z-score `z`:
    /// `Var(R) ≈ (s_xx − 2R·s_xy + R²·s_yy) / (n·ȳ²)`.
    ///
    /// Returns NaN with fewer than two observations or a zero
    /// denominator mean.
    pub fn ratio_ci_half(&self, z: f64) -> f64 {
        if self.n < 2 || self.mean_y == 0.0 {
            return f64::NAN;
        }
        let r = self.ratio();
        let v = self.var_x() - 2.0 * r * self.covariance() + r * r * self.var_y();
        // Cancellation can drive the delta-method variance a hair
        // negative; clamp rather than emit NaN.
        z * (v.max(0.0) / (self.n as f64 * self.mean_y * self.mean_y)).sqrt()
    }

    /// Merge another accumulator into this one (parallel sweeps,
    /// mirroring [`Welford::merge`]).
    pub fn merge(&mut self, other: &Welford2) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let total = n1 + n2;
        let dx = other.mean_x - self.mean_x;
        let dy = other.mean_y - self.mean_y;
        self.m2x += other.m2x + dx * dx * n1 * n2 / total;
        self.m2y += other.m2y + dy * dy * n1 * n2 / total;
        self.cxy += other.cxy + dx * dy * n1 * n2 / total;
        self.mean_x += dx * n2 / total;
        self.mean_y += dy * n2 / total;
        self.n += other.n;
    }
}

/// Time-weighted average of a piecewise-constant signal, e.g. queue
/// length or "is this linecard operational".
#[derive(Debug, Clone)]
pub struct TimeWeighted {
    last_t: f64,
    last_v: f64,
    integral: f64,
    start_t: f64,
}

impl TimeWeighted {
    /// Start tracking at `t0` with initial value `v0`.
    pub fn new(t0: f64, v0: f64) -> Self {
        TimeWeighted {
            last_t: t0,
            last_v: v0,
            integral: 0.0,
            start_t: t0,
        }
    }

    /// Record that the signal changed to `v` at time `t` (≥ last update).
    #[inline]
    pub fn update(&mut self, t: f64, v: f64) {
        debug_assert!(t >= self.last_t, "time went backwards");
        self.integral += self.last_v * (t - self.last_t);
        self.last_t = t;
        self.last_v = v;
    }

    /// Current value of the signal.
    pub fn current(&self) -> f64 {
        self.last_v
    }

    /// Merge a time-adjacent shard into this accumulator (parallel
    /// sweeps split by *time*, mirroring [`Welford::merge`]).
    ///
    /// `other` must track the same signal over a later window:
    /// `other.start_t >= self.last_t`. Any gap between this
    /// accumulator's last update and `other`'s start is bridged with
    /// the current value — exactly what a sequential accumulator would
    /// have integrated, since the signal is piecewise-constant.
    pub fn merge(&mut self, other: &TimeWeighted) {
        debug_assert!(
            other.start_t >= self.last_t,
            "TimeWeighted::merge: shards must be time-adjacent (other starts at {}, self last updated at {})",
            other.start_t,
            self.last_t
        );
        self.integral += self.last_v * (other.start_t - self.last_t) + other.integral;
        self.last_t = other.last_t;
        self.last_v = other.last_v;
    }

    /// Time-weighted mean over `[start, t_end]`.
    pub fn average(&self, t_end: f64) -> f64 {
        debug_assert!(t_end >= self.last_t);
        let span = t_end - self.start_t;
        if span <= 0.0 {
            return self.last_v;
        }
        (self.integral + self.last_v * (t_end - self.last_t)) / span
    }
}

/// A histogram with logarithmically spaced buckets, for latency-style
/// quantities spanning orders of magnitude.
#[derive(Debug, Clone)]
pub struct LogHistogram {
    lo: f64,
    ratio: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total: u64,
}

impl LogHistogram {
    /// Buckets spanning `[lo, hi)` with `n` logarithmic divisions.
    ///
    /// # Panics
    /// Panics unless `0 < lo < hi` and `n > 0`.
    pub fn new(lo: f64, hi: f64, n: usize) -> Self {
        assert!(lo > 0.0 && hi > lo && n > 0, "LogHistogram: bad params");
        LogHistogram {
            lo,
            ratio: (hi / lo).powf(1.0 / n as f64),
            counts: vec![0; n],
            underflow: 0,
            overflow: 0,
            total: 0,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.total += 1;
        if x < self.lo {
            self.underflow += 1;
            return;
        }
        let idx = ((x / self.lo).ln() / self.ratio.ln()).floor() as usize;
        if idx >= self.counts.len() {
            self.overflow += 1;
        } else {
            self.counts[idx] += 1;
        }
    }

    /// Total observations, including under/overflow.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Approximate quantile (returns the geometric midpoint of the
    /// bucket containing quantile `q` in `[0, 1]`).
    ///
    /// `q = 0.0` is the minimum observation's bucket — i.e. the first
    /// *non-empty* bucket, not bucket 0 (which may hold no mass).
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q));
        if self.total == 0 {
            return f64::NAN;
        }
        // `q = 0` would give target 0, which every prefix sum
        // satisfies — clamp to 1 so the scan still has to reach the
        // first observation.
        let target = ((q * self.total as f64).ceil() as u64).max(1);
        let mut acc = self.underflow;
        if acc >= target && self.underflow > 0 {
            return self.lo;
        }
        for (i, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= target {
                let lo = self.lo * self.ratio.powi(i as i32);
                return lo * self.ratio.sqrt();
            }
        }
        f64::INFINITY
    }

    /// Merge another histogram into this one (parallel sweeps,
    /// mirroring [`Welford::merge`]). Bucketed counts are exact, so
    /// merged quantiles equal sequential quantiles bit-for-bit.
    ///
    /// # Panics
    /// Panics unless both histograms were built with the same
    /// `(lo, hi, n)` bucket layout.
    pub fn merge(&mut self, other: &LogHistogram) {
        assert!(
            self.lo == other.lo
                && self.ratio == other.ratio
                && self.counts.len() == other.counts.len(),
            "LogHistogram::merge: bucket layouts differ"
        );
        for (c, &o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.total += other.total;
    }

    /// Count of observations that exceeded the top bucket.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Count below the bottom bucket.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }
}

/// Batch-means confidence interval for a (possibly autocorrelated)
/// steady-state simulation output sequence.
///
/// Splits the series into `batches` contiguous batches, averages each,
/// and treats batch means as independent — the textbook method for DES
/// output analysis.
///
/// Every sample is used: when `samples.len()` is not a multiple of
/// `batches`, the trailing `samples.len() % batches` observations fold
/// into the final batch (its mean is taken over the longer chunk), so
/// the CI really covers as many samples as the caller supplied.
pub fn batch_means_ci(samples: &[f64], batches: usize, z: f64) -> Option<(f64, f64)> {
    if batches < 2 || samples.len() < 2 * batches {
        return None;
    }
    let per = samples.len() / batches;
    let mut w = Welford::new();
    for b in 0..batches {
        let start = b * per;
        let end = if b + 1 == batches {
            samples.len()
        } else {
            start + per
        };
        let chunk = &samples[start..end];
        let mean = chunk.iter().sum::<f64>() / chunk.len() as f64;
        w.push(mean);
    }
    Some((w.mean(), w.ci_half_width(z)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &data {
            w.push(x);
        }
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (data.len() - 1) as f64;
        assert!((w.mean() - mean).abs() < 1e-12);
        assert!((w.variance() - var).abs() < 1e-12);
        assert_eq!(w.min(), 2.0);
        assert_eq!(w.max(), 9.0);
        assert_eq!(w.count(), 8);
    }

    #[test]
    fn welford_empty_and_single() {
        let mut w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        assert!(w.min().is_nan());
        w.push(3.0);
        assert_eq!(w.mean(), 3.0);
        assert_eq!(w.variance(), 0.0);
        assert!(w.ci_half_width(1.96).is_nan());
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let a_data = [1.0, 2.0, 3.0];
        let b_data = [10.0, 20.0, 30.0, 40.0];
        let mut a = Welford::new();
        let mut b = Welford::new();
        let mut all = Welford::new();
        for &x in &a_data {
            a.push(x);
            all.push(x);
        }
        for &x in &b_data {
            b.push(x);
            all.push(x);
        }
        a.merge(&b);
        assert!((a.mean() - all.mean()).abs() < 1e-12);
        assert!((a.variance() - all.variance()).abs() < 1e-12);
        assert_eq!(a.count(), 7);

        // Merging into empty copies the other side.
        let mut e = Welford::new();
        e.merge(&all);
        assert!((e.mean() - all.mean()).abs() < 1e-12);
    }

    #[test]
    fn welford2_matches_naive() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys = [2.0, 3.0, 7.0, 6.0, 10.0];
        let mut w = Welford2::new();
        for (&x, &y) in xs.iter().zip(&ys) {
            w.push(x, y);
        }
        let mx = xs.iter().sum::<f64>() / 5.0;
        let my = ys.iter().sum::<f64>() / 5.0;
        let cov = xs
            .iter()
            .zip(&ys)
            .map(|(x, y)| (x - mx) * (y - my))
            .sum::<f64>()
            / 4.0;
        assert!((w.mean_x() - mx).abs() < 1e-12);
        assert!((w.mean_y() - my).abs() < 1e-12);
        assert!((w.covariance() - cov).abs() < 1e-12);
        assert!((w.ratio() - mx / my).abs() < 1e-12);
        assert!(w.ratio_ci_half(1.96) > 0.0);
    }

    #[test]
    fn welford2_perfectly_correlated_ratio_has_zero_ci() {
        // y = 2x exactly: the ratio x/y is 0.5 with zero sampling
        // noise, which only a covariance-aware CI can see.
        let mut w = Welford2::new();
        for i in 1..=100 {
            let x = i as f64;
            w.push(x, 2.0 * x);
        }
        assert!((w.ratio() - 0.5).abs() < 1e-12);
        assert!(
            w.ratio_ci_half(1.96).abs() < 1e-9,
            "ci {} should vanish",
            w.ratio_ci_half(1.96)
        );
    }

    #[test]
    fn welford2_merge_equals_sequential() {
        let pairs: Vec<(f64, f64)> = (0..50)
            .map(|i| ((i * 7 % 13) as f64, 1.0 + (i * 5 % 11) as f64))
            .collect();
        let mut all = Welford2::new();
        let mut a = Welford2::new();
        let mut b = Welford2::new();
        for (i, &(x, y)) in pairs.iter().enumerate() {
            all.push(x, y);
            if i < 20 {
                a.push(x, y);
            } else {
                b.push(x, y);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean_x() - all.mean_x()).abs() < 1e-12);
        assert!((a.covariance() - all.covariance()).abs() < 1e-9);
        assert!((a.ratio_ci_half(1.96) - all.ratio_ci_half(1.96)).abs() < 1e-12);
    }

    #[test]
    fn time_weighted_average() {
        // Signal: 0 on [0,1), 2 on [1,3), 1 on [3,4].
        let mut tw = TimeWeighted::new(0.0, 0.0);
        tw.update(1.0, 2.0);
        tw.update(3.0, 1.0);
        let avg = tw.average(4.0);
        let expect = (0.0 * 1.0 + 2.0 * 2.0 + 1.0 * 1.0) / 4.0;
        assert!((avg - expect).abs() < 1e-12);
        assert_eq!(tw.current(), 1.0);
    }

    #[test]
    fn time_weighted_zero_span() {
        let tw = TimeWeighted::new(5.0, 3.0);
        assert_eq!(tw.average(5.0), 3.0);
    }

    #[test]
    fn log_histogram_buckets_and_quantiles() {
        let mut h = LogHistogram::new(1e-6, 1.0, 60);
        for i in 1..=1000 {
            h.record(i as f64 * 1e-5);
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.quantile(0.5);
        // True median is 5.0e-3; log buckets give geometric-mid accuracy.
        assert!(
            (p50 / 5.0e-3).ln().abs() < 0.2,
            "p50 {p50} too far from 5e-3"
        );
        let p99 = h.quantile(0.99);
        assert!(p99 > p50);
    }

    #[test]
    fn log_histogram_under_overflow() {
        let mut h = LogHistogram::new(1.0, 10.0, 4);
        h.record(0.5);
        h.record(100.0);
        h.record(3.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.count(), 3);
        // Quantile 1.0 with overflow present reports +inf.
        assert!(h.quantile(1.0).is_infinite());
    }

    #[test]
    fn log_histogram_q0_is_first_nonempty_bucket() {
        // All mass far above bucket 0: q=0 must not report bucket 0's
        // midpoint (the old target-0 bug made `acc >= target` pass on
        // the very first, empty bucket).
        let mut h = LogHistogram::new(1.0, 1000.0, 30);
        h.record(100.0);
        h.record(200.0);
        h.record(400.0);
        let q0 = h.quantile(0.0);
        assert!(
            (50.0..=150.0).contains(&q0),
            "q=0 should land in the minimum's bucket, got {q0}"
        );
        // And it coincides with the smallest positive quantile.
        assert_eq!(q0, h.quantile(1e-9));
    }

    #[test]
    fn log_histogram_q0_with_underflow_reports_lo() {
        let mut h = LogHistogram::new(1.0, 10.0, 4);
        h.record(0.1); // underflow
        h.record(5.0);
        assert_eq!(h.quantile(0.0), 1.0);
    }

    #[test]
    fn log_histogram_all_mass_in_high_buckets() {
        let mut h = LogHistogram::new(1e-6, 1.0, 60);
        for _ in 0..10 {
            h.record(0.5); // top of the range
        }
        let q0 = h.quantile(0.0);
        let q100 = h.quantile(1.0);
        assert!(
            (q0 / 0.5).ln().abs() < 0.3,
            "q=0 must track the mass at 0.5, got {q0}"
        );
        assert_eq!(q0, q100, "single-bucket mass: all quantiles agree");
    }

    #[test]
    fn batch_means_basic() {
        // Constant series: CI should collapse to zero width.
        let samples = vec![5.0; 100];
        let (mean, hw) = batch_means_ci(&samples, 10, 1.96).unwrap();
        assert_eq!(mean, 5.0);
        assert_eq!(hw, 0.0);
    }

    #[test]
    fn batch_means_requires_enough_data() {
        assert!(batch_means_ci(&[1.0, 2.0], 2, 1.96).is_none());
        assert!(batch_means_ci(&[1.0; 100], 1, 1.96).is_none());
    }

    #[test]
    fn batch_means_uses_trailing_remainder() {
        // 103 samples over 10 batches: the last 13 observations form
        // the final batch. Put all the signal in the tail — a version
        // that truncates to 100 samples would report mean 0.
        let mut samples = vec![0.0; 100];
        samples.extend_from_slice(&[30.0, 30.0, 30.0]);
        let (mean, _) = batch_means_ci(&samples, 10, 1.96).unwrap();
        // Batches 0..9 have mean 0; the last (13 samples, 3 of them
        // 30.0) has mean 90/13. Grand mean over batch means:
        let expected = (90.0 / 13.0) / 10.0;
        assert!(
            (mean - expected).abs() < 1e-12,
            "remainder must fold into the last batch: {mean} vs {expected}"
        );
    }

    #[test]
    fn batch_means_covers_true_mean() {
        // AR(1)-ish correlated noise around 10.0.
        let mut x = 0.0;
        let mut state = 12345u64;
        let mut rand01 = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state as f64 / u64::MAX as f64
        };
        let samples: Vec<f64> = (0..10_000)
            .map(|_| {
                x = 0.9 * x + (rand01() - 0.5);
                10.0 + x
            })
            .collect();
        let (mean, hw) = batch_means_ci(&samples, 20, 2.6).unwrap();
        assert!(
            (mean - 10.0).abs() < hw + 0.5,
            "mean {mean} hw {hw} should cover 10"
        );
    }
}
