//! The determinism contract of the scheduler swap, checked by
//! property: over arbitrary interleavings of schedules and steps, the
//! calendar queue must deliver exactly the `(time, seq)` sequence a
//! reference binary heap would — including equal-time ties, bounded
//! pops against a horizon, and pushes below the current cursor.

use dra_des::calendar::CalendarQueue;
use proptest::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Reference min-queue over `(time, seq)`. Times are non-negative and
/// finite, so the IEEE bit pattern orders exactly like the float.
#[derive(Default)]
struct RefHeap {
    heap: BinaryHeap<Reverse<(u64, u64)>>,
}

impl RefHeap {
    fn push(&mut self, time: f64, seq: u64) {
        self.heap.push(Reverse((time.to_bits(), seq)));
    }
    fn pop(&mut self) -> Option<(f64, u64)> {
        self.heap
            .pop()
            .map(|Reverse((bits, seq))| (f64::from_bits(bits), seq))
    }
    fn pop_at_or_before(&mut self, horizon: f64) -> Option<(f64, u64)> {
        match self.heap.peek() {
            Some(&Reverse((bits, _))) if f64::from_bits(bits) <= horizon => self.pop(),
            _ => None,
        }
    }
}

/// Decode a generated `(regime, raw)` pair into an event time. The
/// regimes deliberately cover the shapes that stress different parts
/// of the calendar: coarse grids full of exact ties, dense sub-bucket
/// clusters, and far-future stragglers whole calendar years away.
fn time_of(regime: u32, raw: u32) -> f64 {
    match regime % 4 {
        0 => (raw % 8) as f64 * 0.5,       // tie-heavy coarse grid
        1 => raw as f64 * 1e-6,            // dense cluster
        2 => 1e7 + (raw % 1000) as f64,    // far-future stragglers
        _ => raw as f64 / u32::MAX as f64, // arbitrary fractions
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Identical `(time, seq)` delivery for every interleaving of
    /// schedule/step/bounded-step, then a full drain.
    #[test]
    fn calendar_delivers_heap_order(
        ops in proptest::collection::vec((0u8..10, 0u32..4, any::<u32>()), 1..400),
    ) {
        let mut cal = CalendarQueue::new();
        let mut reference = RefHeap::default();
        let mut seq = 0u64;

        for (kind, regime, raw) in ops {
            match kind {
                // Weighted toward pushes so queues actually grow
                // through resize thresholds.
                0..=5 => {
                    let t = time_of(regime, raw);
                    cal.push(t, seq, seq);
                    reference.push(t, seq);
                    seq += 1;
                }
                6..=8 => {
                    let got = cal.pop().map(|(t, s, _)| (t, s));
                    prop_assert_eq!(got, reference.pop());
                }
                _ => {
                    let horizon = time_of(regime, raw);
                    let got = cal.pop_at_or_before(horizon).map(|(t, s, _)| (t, s));
                    prop_assert_eq!(got, reference.pop_at_or_before(horizon));
                    prop_assert_eq!(cal.min_time(), reference.heap.peek()
                        .map(|&Reverse((bits, _))| f64::from_bits(bits)));
                }
            }
            prop_assert_eq!(cal.len(), reference.heap.len());
        }
        // Full drain must agree to the last event.
        loop {
            let got = cal.pop().map(|(t, s, _)| (t, s));
            let want = reference.pop();
            prop_assert_eq!(got, want);
            if want.is_none() {
                break;
            }
        }
        prop_assert!(cal.is_empty());
    }
}
