//! Sharded-equals-sequential properties for the mergeable statistics.
//!
//! Campaign workers accumulate per-shard `LogHistogram` /
//! `TimeWeighted` state and merge at the end; these properties pin
//! that a merge of shards is indistinguishable from one accumulator
//! that saw everything in order.

use dra_des::stats::{LogHistogram, TimeWeighted};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Histogram counts are exact integers, so a merged pair of shards
    /// must agree with the sequential accumulator bit-for-bit: same
    /// totals, same under/overflow, same quantile at every probe.
    #[test]
    fn log_histogram_merge_equals_sequential(
        // Mantissas and exponents spanning well past [lo, hi) so both
        // underflow and overflow buckets get exercised.
        raw in proptest::collection::vec((1u32..1000, -9i32..4), 0..300),
        split in any::<u32>(),
    ) {
        let values: Vec<f64> = raw
            .iter()
            .map(|&(m, e)| m as f64 * 10f64.powi(e))
            .collect();
        let k = if values.is_empty() { 0 } else { split as usize % values.len() };

        let mut sequential = LogHistogram::new(1e-6, 1.0, 40);
        for &v in &values {
            sequential.record(v);
        }

        let mut shard_a = LogHistogram::new(1e-6, 1.0, 40);
        let mut shard_b = LogHistogram::new(1e-6, 1.0, 40);
        for &v in &values[..k] {
            shard_a.record(v);
        }
        for &v in &values[k..] {
            shard_b.record(v);
        }
        shard_a.merge(&shard_b);

        prop_assert_eq!(shard_a.count(), sequential.count());
        prop_assert_eq!(shard_a.underflow(), sequential.underflow());
        prop_assert_eq!(shard_a.overflow(), sequential.overflow());
        if sequential.count() > 0 {
            for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
                let merged = shard_a.quantile(q);
                let expected = sequential.quantile(q);
                prop_assert!(
                    merged == expected
                        || (merged.is_infinite() && expected.is_infinite()),
                    "q={} merged={} sequential={}", q, merged, expected
                );
            }
        }
    }

    /// A time-weighted accumulator split at an arbitrary update (with
    /// an optional idle gap before the second shard starts, bridged at
    /// the held value) must merge back to the sequential integral.
    #[test]
    fn time_weighted_merge_equals_sequential(
        v0 in -100.0f64..100.0,
        updates in proptest::collection::vec((0.0f64..10.0, -100.0f64..100.0), 0..100),
        split in any::<u32>(),
        gap in 0.0f64..5.0,
        tail in 0.0f64..5.0,
    ) {
        let k = if updates.is_empty() { 0 } else { split as usize % updates.len() };

        // Absolute update times: shard B's window opens `gap` after
        // shard A's last update, so the signal holds its value across
        // the seam — exactly what the piecewise-constant model means.
        let mut t = 0.0;
        let mut abs: Vec<(f64, f64)> = Vec::new();
        let mut v_at_split = v0;
        for (i, &(dt, v)) in updates.iter().enumerate() {
            t += dt;
            if i == k {
                t += gap;
            }
            abs.push((t, v));
            if i < k {
                v_at_split = v;
            }
        }
        let t_split = if k == 0 {
            gap
        } else {
            abs[k - 1].0 + gap
        };
        let t_end = abs.last().map_or(t_split, |&(t, _)| t) + tail;

        let mut sequential = TimeWeighted::new(0.0, v0);
        for &(t, v) in &abs {
            sequential.update(t, v);
        }

        let mut shard_a = TimeWeighted::new(0.0, v0);
        for &(t, v) in &abs[..k] {
            shard_a.update(t, v);
        }
        let mut shard_b = TimeWeighted::new(t_split, v_at_split);
        for &(t, v) in &abs[k..] {
            shard_b.update(t, v);
        }
        shard_a.merge(&shard_b);

        prop_assert_eq!(shard_a.current(), sequential.current());
        let merged_avg = shard_a.average(t_end);
        let expected_avg = sequential.average(t_end);
        prop_assert!(
            (merged_avg - expected_avg).abs() <= 1e-9 * expected_avg.abs().max(1.0),
            "average diverged: merged={} sequential={}", merged_avg, expected_avg
        );
    }
}
