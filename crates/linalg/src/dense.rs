//! Row-major dense matrices and an LU solver with partial pivoting.
//!
//! The paper's Markov models have at most a few hundred states
//! (`(N-2)·(M-1)` interior states plus boundaries for N ≤ 9, M ≤ 8),
//! so a dense LU factorization is both the simplest and the most robust
//! way to solve the steady-state balance equations exactly. Larger
//! chains go through [`crate::iterative`] instead.

use crate::error::LinalgError;
use crate::vector;
use crate::Result;

/// A dense, row-major `f64` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Create a zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Create an identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Build a matrix from a row-major slice of data.
    ///
    /// Returns a `DimensionMismatch` error when `data.len() != rows*cols`.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::DimensionMismatch {
                op: "from_rows",
                lhs: (rows, cols),
                rhs: (data.len(), 1),
            });
        }
        Ok(DenseMatrix { rows, cols, data })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// True when the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Element accessor.
    ///
    /// # Panics
    /// Panics when the index is out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Mutable element accessor.
    ///
    /// # Panics
    /// Panics when the index is out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// Add `v` to the element at `(r, c)`.
    #[inline]
    pub fn add_to(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c] += v;
    }

    /// Borrow a row as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow a row as a slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row out of bounds");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The raw row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Matrix–vector product `A x`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                op: "matvec",
                lhs: (self.rows, self.cols),
                rhs: (x.len(), 1),
            });
        }
        Ok((0..self.rows)
            .map(|r| vector::dot(self.row(r), x))
            .collect())
    }

    /// Vector–matrix product `x^T A` (row vector times matrix).
    ///
    /// This is the natural operation for probability vectors: the
    /// Chapman–Kolmogorov step is `pi' = pi P`.
    pub fn vecmat(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "vecmat",
                lhs: (1, x.len()),
                rhs: (self.rows, self.cols),
            });
        }
        let mut out = vec![0.0; self.cols];
        for (r, &xr) in x.iter().enumerate() {
            if xr != 0.0 {
                vector::axpy(xr, self.row(r), &mut out);
            }
        }
        Ok(out)
    }

    /// Dense matrix product `A B`.
    pub fn matmul(&self, other: &DenseMatrix) -> Result<DenseMatrix> {
        if self.cols != other.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "matmul",
                lhs: (self.rows, self.cols),
                rhs: (other.rows, other.cols),
            });
        }
        let mut out = DenseMatrix::zeros(self.rows, other.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(r, k);
                if a != 0.0 {
                    let src_row = other.row(k);
                    let dst_row = out.row_mut(r);
                    vector::axpy(a, src_row, dst_row);
                }
            }
        }
        Ok(out)
    }

    /// Transposed copy.
    pub fn transpose(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Factorize the (square) matrix as `P A = L U` with partial pivoting.
    pub fn lu(&self) -> Result<LuDecomposition> {
        if !self.is_square() {
            return Err(LinalgError::DimensionMismatch {
                op: "lu",
                lhs: (self.rows, self.cols),
                rhs: (self.cols, self.rows),
            });
        }
        if !vector::all_finite(&self.data) {
            return Err(LinalgError::NotFinite {
                context: "lu input",
            });
        }
        let n = self.rows;
        let mut lu = self.data.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;

        for col in 0..n {
            // Find the pivot: the largest magnitude entry in this column
            // at or below the diagonal.
            let mut pivot_row = col;
            let mut pivot_val = lu[col * n + col].abs();
            for r in (col + 1)..n {
                let v = lu[r * n + col].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val < f64::MIN_POSITIVE {
                return Err(LinalgError::Singular { pivot: col });
            }
            if pivot_row != col {
                for c in 0..n {
                    lu.swap(col * n + c, pivot_row * n + c);
                }
                perm.swap(col, pivot_row);
                sign = -sign;
            }
            let diag = lu[col * n + col];
            for r in (col + 1)..n {
                let factor = lu[r * n + col] / diag;
                lu[r * n + col] = factor;
                if factor != 0.0 {
                    for c in (col + 1)..n {
                        lu[r * n + c] -= factor * lu[col * n + c];
                    }
                }
            }
        }
        Ok(LuDecomposition { n, lu, perm, sign })
    }

    /// Solve `A x = b` via LU factorization.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        self.lu()?.solve(b)
    }

    /// Maximum absolute element, used as a cheap magnitude estimate.
    pub fn max_abs(&self) -> f64 {
        vector::norm_inf(&self.data)
    }
}

/// The result of `P A = L U` factorization; solves and determinants.
#[derive(Debug, Clone)]
pub struct LuDecomposition {
    n: usize,
    /// Packed L (unit diagonal, below) and U (on/above diagonal).
    lu: Vec<f64>,
    /// Row permutation: `perm[i]` is the original row now living at row `i`.
    perm: Vec<usize>,
    sign: f64,
}

impl LuDecomposition {
    /// Order of the factorized matrix.
    pub fn order(&self) -> usize {
        self.n
    }

    /// Solve `A x = b` using the stored factors.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.n;
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "lu solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // Apply the permutation to b, then forward- and back-substitute.
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        for r in 1..n {
            let mut acc = x[r];
            for c in 0..r {
                acc -= self.lu[r * n + c] * x[c];
            }
            x[r] = acc;
        }
        for r in (0..n).rev() {
            let mut acc = x[r];
            for c in (r + 1)..n {
                acc -= self.lu[r * n + c] * x[c];
            }
            x[r] = acc / self.lu[r * n + r];
        }
        Ok(x)
    }

    /// Determinant of the original matrix.
    pub fn det(&self) -> f64 {
        let mut d = self.sign;
        for i in 0..self.n {
            d *= self.lu[i * self.n + i];
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zeros_and_identity() {
        let z = DenseMatrix::zeros(2, 3);
        assert_eq!(z.rows(), 2);
        assert_eq!(z.cols(), 3);
        assert!(z.as_slice().iter().all(|&v| v == 0.0));

        let i = DenseMatrix::identity(3);
        assert_eq!(i.get(0, 0), 1.0);
        assert_eq!(i.get(1, 2), 0.0);
    }

    #[test]
    fn from_rows_validates_length() {
        assert!(DenseMatrix::from_rows(2, 2, vec![1.0; 3]).is_err());
        assert!(DenseMatrix::from_rows(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn matvec_and_vecmat() {
        let a = DenseMatrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        assert_eq!(a.matvec(&[1.0, 0.0, -1.0]).unwrap(), vec![-2.0, -2.0]);
        assert_eq!(a.vecmat(&[1.0, 1.0]).unwrap(), vec![5.0, 7.0, 9.0]);
        assert!(a.matvec(&[1.0]).is_err());
        assert!(a.vecmat(&[1.0]).is_err());
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = DenseMatrix::from_rows(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let i = DenseMatrix::identity(2);
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
    }

    #[test]
    fn transpose_involution() {
        let a = DenseMatrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn lu_solves_known_system() {
        // 2x + y = 5 ; x + 3y = 10  => x = 1, y = 3
        let a = DenseMatrix::from_rows(2, 2, vec![2.0, 1.0, 1.0, 3.0]).unwrap();
        let x = a.solve(&[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn lu_requires_pivoting() {
        // Leading zero on the diagonal forces a row swap.
        let a = DenseMatrix::from_rows(2, 2, vec![0.0, 1.0, 1.0, 0.0]).unwrap();
        let x = a.solve(&[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn lu_detects_singularity() {
        let a = DenseMatrix::from_rows(2, 2, vec![1.0, 2.0, 2.0, 4.0]).unwrap();
        match a.solve(&[1.0, 1.0]) {
            Err(LinalgError::Singular { .. }) => {}
            other => panic!("expected Singular, got {other:?}"),
        }
    }

    #[test]
    fn lu_rejects_nonfinite() {
        let a = DenseMatrix::from_rows(2, 2, vec![1.0, f64::NAN, 0.0, 1.0]).unwrap();
        assert!(matches!(a.lu(), Err(LinalgError::NotFinite { .. })));
    }

    #[test]
    fn lu_rejects_rectangular() {
        let a = DenseMatrix::zeros(2, 3);
        assert!(a.lu().is_err());
    }

    #[test]
    fn determinant_matches_hand_computation() {
        let a = DenseMatrix::from_rows(2, 2, vec![3.0, 1.0, 4.0, 2.0]).unwrap();
        assert!((a.lu().unwrap().det() - 2.0).abs() < 1e-12);
        // Permutation sign: swapping rows flips the determinant.
        let b = DenseMatrix::from_rows(2, 2, vec![4.0, 2.0, 3.0, 1.0]).unwrap();
        assert!((b.lu().unwrap().det() + 2.0).abs() < 1e-12);
    }

    #[test]
    fn solve_rejects_wrong_rhs_length() {
        let a = DenseMatrix::identity(3);
        assert!(a.solve(&[1.0, 2.0]).is_err());
    }

    /// Strategy yielding diagonally dominant matrices, which are always
    /// nonsingular — so LU must succeed and the residual must be tiny.
    fn diag_dominant(n: usize) -> impl Strategy<Value = DenseMatrix> {
        proptest::collection::vec(-1.0..1.0_f64, n * n).prop_map(move |mut data| {
            for i in 0..n {
                let row_sum: f64 = (0..n).map(|j| data[i * n + j].abs()).sum();
                data[i * n + i] = row_sum + 1.0;
            }
            DenseMatrix::from_rows(n, n, data).unwrap()
        })
    }

    proptest! {
        #[test]
        fn lu_residual_small(a in diag_dominant(6), b in proptest::collection::vec(-10.0..10.0_f64, 6)) {
            let x = a.solve(&b).unwrap();
            let ax = a.matvec(&x).unwrap();
            for (l, r) in ax.iter().zip(&b) {
                prop_assert!((l - r).abs() < 1e-8, "residual too large: {} vs {}", l, r);
            }
        }

        #[test]
        fn det_of_product_is_product_of_dets(a in diag_dominant(4), b in diag_dominant(4)) {
            let da = a.lu().unwrap().det();
            let db = b.lu().unwrap().det();
            let dab = a.matmul(&b).unwrap().lu().unwrap().det();
            let scale = da.abs().max(db.abs()).max(1.0);
            prop_assert!((dab - da * db).abs() / (scale * scale) < 1e-6);
        }

        #[test]
        fn matvec_linear(a in diag_dominant(5),
                         x in proptest::collection::vec(-5.0..5.0_f64, 5),
                         y in proptest::collection::vec(-5.0..5.0_f64, 5)) {
            let sum: Vec<f64> = x.iter().zip(&y).map(|(p, q)| p + q).collect();
            let lhs = a.matvec(&sum).unwrap();
            let ax = a.matvec(&x).unwrap();
            let ay = a.matvec(&y).unwrap();
            for i in 0..5 {
                prop_assert!((lhs[i] - (ax[i] + ay[i])).abs() < 1e-9);
            }
        }

        #[test]
        fn vecmat_agrees_with_transpose_matvec(a in diag_dominant(5),
                                               x in proptest::collection::vec(-5.0..5.0_f64, 5)) {
            let lhs = a.vecmat(&x).unwrap();
            let rhs = a.transpose().matvec(&x).unwrap();
            for i in 0..5 {
                prop_assert!((lhs[i] - rhs[i]).abs() < 1e-9);
            }
        }
    }
}
