//! Error type shared by every solver in the crate.

use std::fmt;

/// Errors produced by matrix construction and linear solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Two operands have incompatible dimensions.
    DimensionMismatch {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// Dimensions of the left-hand operand (rows, cols).
        lhs: (usize, usize),
        /// Dimensions of the right-hand operand (rows, cols).
        rhs: (usize, usize),
    },
    /// The matrix is singular (or numerically singular) and cannot be
    /// factorized or solved against.
    Singular {
        /// Pivot column at which the factorization broke down.
        pivot: usize,
    },
    /// An iterative method failed to reach the requested tolerance.
    NoConvergence {
        /// Iterations performed before giving up.
        iterations: usize,
        /// Residual norm at the final iteration.
        residual: f64,
    },
    /// An index was outside the matrix bounds.
    OutOfBounds {
        /// Offending (row, col).
        index: (usize, usize),
        /// Matrix shape (rows, cols).
        shape: (usize, usize),
    },
    /// A value that must be finite was NaN or infinite.
    NotFinite {
        /// Description of where the non-finite value was seen.
        context: &'static str,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch { op, lhs, rhs } => write!(
                f,
                "dimension mismatch in {op}: lhs is {}x{}, rhs is {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            LinalgError::Singular { pivot } => {
                write!(f, "matrix is singular at pivot column {pivot}")
            }
            LinalgError::NoConvergence {
                iterations,
                residual,
            } => write!(
                f,
                "iterative solver failed to converge after {iterations} iterations \
                 (residual {residual:.3e})"
            ),
            LinalgError::OutOfBounds { index, shape } => write!(
                f,
                "index ({}, {}) out of bounds for {}x{} matrix",
                index.0, index.1, shape.0, shape.1
            ),
            LinalgError::NotFinite { context } => {
                write!(f, "non-finite value encountered in {context}")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = LinalgError::DimensionMismatch {
            op: "matvec",
            lhs: (3, 4),
            rhs: (5, 1),
        };
        let s = e.to_string();
        assert!(s.contains("matvec"));
        assert!(s.contains("3x4"));
        assert!(s.contains("5x1"));

        let e = LinalgError::Singular { pivot: 2 };
        assert!(e.to_string().contains("pivot column 2"));

        let e = LinalgError::NoConvergence {
            iterations: 100,
            residual: 1e-3,
        };
        assert!(e.to_string().contains("100 iterations"));

        let e = LinalgError::OutOfBounds {
            index: (9, 9),
            shape: (3, 3),
        };
        assert!(e.to_string().contains("(9, 9)"));

        let e = LinalgError::NotFinite { context: "rhs" };
        assert!(e.to_string().contains("rhs"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinalgError>();
    }
}
