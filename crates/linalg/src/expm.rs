//! Dense matrix exponential by scaling-and-squaring with a Taylor
//! core.
//!
//! Gives the Markov crate a *third* independent transient method
//! (besides uniformization and RK45): `π(t) = π(0) · e^{Qt}`. For the
//! paper's small generators a scaled Taylor series is simple, robust,
//! and plenty accurate; the three methods share no numerical machinery,
//! so their agreement in tests is strong evidence of correctness.

use crate::dense::DenseMatrix;
use crate::error::LinalgError;
use crate::Result;

/// Compute `e^A` for a square matrix.
///
/// Scaling-and-squaring: pick `k` with `‖A‖∞ / 2^k ≤ 1/2`, evaluate a
/// Taylor series of `e^{A/2^k}` to machine-precision convergence, then
/// square `k` times. Intended for the small (≲ few hundred states)
/// dense generators of dependability models; complexity is `O(k·n³)`.
pub fn expm(a: &DenseMatrix) -> Result<DenseMatrix> {
    if !a.is_square() {
        return Err(LinalgError::DimensionMismatch {
            op: "expm",
            lhs: (a.rows(), a.cols()),
            rhs: (a.cols(), a.rows()),
        });
    }
    let n = a.rows();
    if n == 0 {
        return Ok(DenseMatrix::zeros(0, 0));
    }
    // Infinity norm (max absolute row sum).
    let mut norm = 0.0_f64;
    for r in 0..n {
        let s: f64 = a.row(r).iter().map(|v| v.abs()).sum();
        norm = norm.max(s);
    }
    if !norm.is_finite() {
        return Err(LinalgError::NotFinite {
            context: "expm input",
        });
    }
    let k = if norm <= 0.5 {
        0
    } else {
        (norm / 0.5).log2().ceil() as u32
    };
    let mut scaled = a.clone();
    let factor = 0.5_f64.powi(k as i32);
    for r in 0..n {
        crate::vector::scale(factor, scaled.row_mut(r));
    }

    // Taylor: I + B + B²/2! + …, term-by-term until negligible.
    let mut result = DenseMatrix::identity(n);
    let mut term = DenseMatrix::identity(n);
    for j in 1..=64 {
        term = term.matmul(&scaled)?;
        let inv = 1.0 / j as f64;
        for r in 0..n {
            crate::vector::scale(inv, term.row_mut(r));
        }
        for r in 0..n {
            crate::vector::axpy(1.0, term.row(r), result.row_mut(r));
        }
        if term.max_abs() < 1e-18 {
            break;
        }
    }
    // Undo the scaling by repeated squaring.
    for _ in 0..k {
        result = result.matmul(&result)?;
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: &DenseMatrix, b: &DenseMatrix, tol: f64) -> bool {
        a.rows() == b.rows()
            && a.cols() == b.cols()
            && (0..a.rows()).all(|r| {
                a.row(r)
                    .iter()
                    .zip(b.row(r))
                    .all(|(x, y)| (x - y).abs() < tol)
            })
    }

    #[test]
    fn exp_of_zero_is_identity() {
        let z = DenseMatrix::zeros(3, 3);
        assert!(close(&expm(&z).unwrap(), &DenseMatrix::identity(3), 1e-15));
    }

    #[test]
    fn exp_of_diagonal_is_elementwise() {
        let mut d = DenseMatrix::zeros(2, 2);
        d.set(0, 0, 1.0);
        d.set(1, 1, -2.0);
        let e = expm(&d).unwrap();
        assert!((e.get(0, 0) - 1.0_f64.exp()).abs() < 1e-12);
        assert!((e.get(1, 1) - (-2.0_f64).exp()).abs() < 1e-12);
        assert!(e.get(0, 1).abs() < 1e-15);
    }

    #[test]
    fn exp_of_nilpotent_truncates() {
        // N = [[0,1],[0,0]]: e^N = I + N exactly.
        let mut nmat = DenseMatrix::zeros(2, 2);
        nmat.set(0, 1, 1.0);
        let e = expm(&nmat).unwrap();
        assert!((e.get(0, 0) - 1.0).abs() < 1e-15);
        assert!((e.get(0, 1) - 1.0).abs() < 1e-15);
        assert!((e.get(1, 1) - 1.0).abs() < 1e-15);
        assert!(e.get(1, 0).abs() < 1e-15);
    }

    #[test]
    fn semigroup_property() {
        // e^A · e^A = e^{2A}.
        let a = DenseMatrix::from_rows(2, 2, vec![-0.7, 0.7, 0.3, -0.3]).unwrap();
        let e1 = expm(&a).unwrap();
        let sq = e1.matmul(&e1).unwrap();
        let mut a2 = a.clone();
        for r in 0..2 {
            crate::vector::scale(2.0, a2.row_mut(r));
        }
        let e2 = expm(&a2).unwrap();
        assert!(close(&sq, &e2, 1e-12));
    }

    #[test]
    fn generator_exponential_is_stochastic() {
        // A generator's exponential is a transition-probability matrix:
        // nonnegative with unit row sums.
        let q = DenseMatrix::from_rows(3, 3, vec![-2.0, 1.5, 0.5, 0.2, -0.2, 0.0, 0.0, 3.0, -3.0])
            .unwrap();
        let p = expm(&q).unwrap();
        for r in 0..3 {
            let sum: f64 = p.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-12, "row {r} sums to {sum}");
            assert!(p.row(r).iter().all(|&v| v >= -1e-15), "negative prob");
        }
    }

    #[test]
    fn large_norm_uses_scaling() {
        // Norm ~ 40 forces several squarings; closed form for 2-state
        // chain checks accuracy.
        let (l, m) = (12.0, 28.0);
        let q = DenseMatrix::from_rows(2, 2, vec![-l, l, m, -m]).unwrap();
        let p = expm(&q).unwrap();
        // P[0][0] at t=1: m/(l+m) + l/(l+m) e^{-(l+m)}.
        let expect = m / (l + m) + l / (l + m) * (-(l + m)).exp();
        assert!((p.get(0, 0) - expect).abs() < 1e-12);
    }

    #[test]
    fn rejects_rectangular_and_nonfinite() {
        assert!(expm(&DenseMatrix::zeros(2, 3)).is_err());
        let mut bad = DenseMatrix::zeros(2, 2);
        bad.set(0, 0, f64::INFINITY);
        assert!(expm(&bad).is_err());
    }

    #[test]
    fn empty_matrix() {
        let e = expm(&DenseMatrix::zeros(0, 0)).unwrap();
        assert_eq!(e.rows(), 0);
    }
}
