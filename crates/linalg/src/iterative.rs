//! Iterative solvers: Jacobi, Gauss–Seidel, and power iteration.
//!
//! These exist for chains too large for dense LU (the simulator's
//! composite models can reach thousands of states) and to cross-check
//! the direct solver in tests. All methods report the iteration count
//! they used, so benches can compare convergence behaviour.

use crate::error::LinalgError;
use crate::sparse::CsrMatrix;
use crate::vector;
use crate::Result;

/// Options shared by the iterative solvers.
#[derive(Debug, Clone, Copy)]
pub struct IterOptions {
    /// Stop when the max-norm change between successive iterates drops
    /// below this value.
    pub tol: f64,
    /// Hard iteration cap; exceeded means [`LinalgError::NoConvergence`].
    pub max_iters: usize,
}

impl Default for IterOptions {
    fn default() -> Self {
        IterOptions {
            tol: crate::DEFAULT_TOL,
            max_iters: 200_000,
        }
    }
}

/// Outcome of an iterative solve: the solution plus convergence data.
#[derive(Debug, Clone)]
pub struct IterSolution {
    /// The converged vector.
    pub x: Vec<f64>,
    /// Iterations actually performed.
    pub iterations: usize,
    /// Final max-norm update size.
    pub residual: f64,
}

/// Solve `A x = b` by Jacobi iteration.
///
/// Requires a nonzero diagonal. Converges for strictly diagonally
/// dominant systems, which covers shifted generator systems.
pub fn jacobi(a: &CsrMatrix, b: &[f64], opts: IterOptions) -> Result<IterSolution> {
    solve_splitting(a, b, opts, SplitKind::Jacobi)
}

/// Solve `A x = b` by Gauss–Seidel iteration (in-place sweeps).
///
/// Typically converges in far fewer iterations than Jacobi on the same
/// system; the benches quantify this on generator matrices.
pub fn gauss_seidel(a: &CsrMatrix, b: &[f64], opts: IterOptions) -> Result<IterSolution> {
    solve_splitting(a, b, opts, SplitKind::GaussSeidel)
}

enum SplitKind {
    Jacobi,
    GaussSeidel,
}

fn solve_splitting(
    a: &CsrMatrix,
    b: &[f64],
    opts: IterOptions,
    kind: SplitKind,
) -> Result<IterSolution> {
    let n = a.rows();
    if a.cols() != n || b.len() != n {
        return Err(LinalgError::DimensionMismatch {
            op: "iterative solve",
            lhs: (a.rows(), a.cols()),
            rhs: (b.len(), 1),
        });
    }
    // Extract the diagonal once; fail fast on a zero pivot.
    let mut diag = vec![0.0; n];
    for i in 0..n {
        let d = a.get(i, i);
        if d == 0.0 {
            return Err(LinalgError::Singular { pivot: i });
        }
        diag[i] = d;
    }

    let mut x = vec![0.0; n];
    let mut x_next = vec![0.0; n];
    for it in 1..=opts.max_iters {
        let mut delta = 0.0_f64;
        match kind {
            SplitKind::Jacobi => {
                for i in 0..n {
                    let mut acc = b[i];
                    for (c, v) in a.row_entries(i) {
                        if c != i {
                            acc -= v * x[c];
                        }
                    }
                    x_next[i] = acc / diag[i];
                    delta = delta.max((x_next[i] - x[i]).abs());
                }
                std::mem::swap(&mut x, &mut x_next);
            }
            SplitKind::GaussSeidel => {
                for i in 0..n {
                    let mut acc = b[i];
                    for (c, v) in a.row_entries(i) {
                        if c != i {
                            acc -= v * x[c];
                        }
                    }
                    let new = acc / diag[i];
                    delta = delta.max((new - x[i]).abs());
                    x[i] = new;
                }
            }
        }
        if !delta.is_finite() {
            return Err(LinalgError::NotFinite {
                context: "iterative solve diverged",
            });
        }
        if delta < opts.tol {
            return Ok(IterSolution {
                x,
                iterations: it,
                residual: delta,
            });
        }
    }
    Err(LinalgError::NoConvergence {
        iterations: opts.max_iters,
        residual: f64::NAN,
    })
}

/// Stationary distribution of a row-stochastic matrix `P` by power
/// iteration: repeat `pi <- pi P` until the iterate stops moving.
///
/// `P` must be row-stochastic (rows summing to one); the caller is
/// expected to have produced it via uniformization of a generator. The
/// result is L1-normalized. Periodic chains will not converge — the
/// uniformized DTMC of any CTMC is aperiodic whenever the uniformization
/// rate strictly exceeds the largest exit rate, which
/// `dra-markov` guarantees by inflating the rate.
pub fn power_iteration(p: &CsrMatrix, opts: IterOptions) -> Result<IterSolution> {
    let n = p.rows();
    if p.cols() != n {
        return Err(LinalgError::DimensionMismatch {
            op: "power iteration",
            lhs: (p.rows(), p.cols()),
            rhs: (p.cols(), p.rows()),
        });
    }
    if n == 0 {
        return Ok(IterSolution {
            x: Vec::new(),
            iterations: 0,
            residual: 0.0,
        });
    }
    let mut pi = vec![1.0 / n as f64; n];
    let mut next = vec![0.0; n];
    for it in 1..=opts.max_iters {
        p.vecmat_into(&pi, &mut next)?;
        if !vector::normalize_l1(&mut next) {
            return Err(LinalgError::NotFinite {
                context: "power iteration produced a zero/non-finite vector",
            });
        }
        let delta = vector::dist_inf(&pi, &next);
        std::mem::swap(&mut pi, &mut next);
        if delta < opts.tol {
            return Ok(IterSolution {
                x: pi,
                iterations: it,
                residual: delta,
            });
        }
    }
    Err(LinalgError::NoConvergence {
        iterations: opts.max_iters,
        residual: f64::NAN,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::CooBuilder;
    use proptest::prelude::*;

    fn diag_dominant_csr(n: usize, seed: u64) -> CsrMatrix {
        // Simple deterministic pseudo-random fill, then make the
        // diagonal dominant.
        let mut b = CooBuilder::new(n, n);
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        let mut row_abs = vec![0.0; n];
        for r in 0..n {
            for c in 0..n {
                if r != c && (r + c) % 3 != 0 {
                    let v = next();
                    b.push(r, c, v).unwrap();
                    row_abs[r] += v.abs();
                }
            }
        }
        for r in 0..n {
            b.push(r, r, row_abs[r] + 1.0).unwrap();
        }
        b.build()
    }

    #[test]
    fn jacobi_and_gs_agree_with_lu() {
        let a = diag_dominant_csr(10, 42);
        let b: Vec<f64> = (0..10).map(|i| i as f64 - 3.0).collect();
        let exact = a.to_dense().solve(&b).unwrap();
        let opts = IterOptions::default();

        let j = jacobi(&a, &b, opts).unwrap();
        let g = gauss_seidel(&a, &b, opts).unwrap();
        for i in 0..10 {
            assert!((j.x[i] - exact[i]).abs() < 1e-8, "jacobi off at {i}");
            assert!((g.x[i] - exact[i]).abs() < 1e-8, "gs off at {i}");
        }
        // Gauss–Seidel should need no more sweeps than Jacobi here.
        assert!(g.iterations <= j.iterations);
    }

    #[test]
    fn zero_diagonal_is_rejected() {
        let mut b = CooBuilder::new(2, 2);
        b.push(0, 1, 1.0).unwrap();
        b.push(1, 0, 1.0).unwrap();
        let a = b.build();
        assert!(matches!(
            gauss_seidel(&a, &[1.0, 1.0], IterOptions::default()),
            Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn nonconvergence_is_reported() {
        // A rotation-like system Jacobi cannot solve in 3 iterations.
        let a = diag_dominant_csr(6, 7);
        let b = vec![1.0; 6];
        let opts = IterOptions {
            tol: 1e-15,
            max_iters: 2,
        };
        assert!(matches!(
            jacobi(&a, &b, opts),
            Err(LinalgError::NoConvergence { .. })
        ));
    }

    #[test]
    fn power_iteration_two_state_chain() {
        // P = [[0.9, 0.1], [0.5, 0.5]] has stationary pi = (5/6, 1/6).
        let mut b = CooBuilder::new(2, 2);
        b.push(0, 0, 0.9).unwrap();
        b.push(0, 1, 0.1).unwrap();
        b.push(1, 0, 0.5).unwrap();
        b.push(1, 1, 0.5).unwrap();
        let p = b.build();
        let sol = power_iteration(&p, IterOptions::default()).unwrap();
        assert!((sol.x[0] - 5.0 / 6.0).abs() < 1e-9);
        assert!((sol.x[1] - 1.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn power_iteration_identity_converges_immediately() {
        let p = CsrMatrix::identity(3);
        let sol = power_iteration(&p, IterOptions::default()).unwrap();
        for v in &sol.x {
            assert!((v - 1.0 / 3.0).abs() < 1e-12);
        }
        assert_eq!(sol.iterations, 1);
    }

    #[test]
    fn power_iteration_empty_matrix() {
        let p = CsrMatrix::zeros(0, 0);
        let sol = power_iteration(&p, IterOptions::default()).unwrap();
        assert!(sol.x.is_empty());
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let a = CsrMatrix::zeros(3, 2);
        assert!(jacobi(&a, &[1.0; 3], IterOptions::default()).is_err());
        assert!(power_iteration(&a, IterOptions::default()).is_err());
    }

    proptest! {
        #[test]
        fn gs_residual_small_on_random_dd_systems(seed in 0u64..1000,
                                                  scale in 0.1..10.0_f64) {
            let a = diag_dominant_csr(8, seed);
            let b: Vec<f64> = (0..8).map(|i| scale * (i as f64 - 4.0)).collect();
            let sol = gauss_seidel(&a, &b, IterOptions::default()).unwrap();
            let ax = a.matvec(&sol.x).unwrap();
            for i in 0..8 {
                prop_assert!((ax[i] - b[i]).abs() < 1e-7);
            }
        }

        #[test]
        fn power_iteration_fixed_point(p00 in 0.01..0.99_f64, p10 in 0.01..0.99_f64) {
            // Random 2-state stochastic matrix: stationary distribution
            // satisfies pi P = pi.
            let mut b = CooBuilder::new(2, 2);
            b.push(0, 0, p00).unwrap();
            b.push(0, 1, 1.0 - p00).unwrap();
            b.push(1, 0, p10).unwrap();
            b.push(1, 1, 1.0 - p10).unwrap();
            let p = b.build();
            let sol = power_iteration(&p, IterOptions::default()).unwrap();
            let pi_p = p.vecmat(&sol.x).unwrap();
            for i in 0..2 {
                prop_assert!((pi_p[i] - sol.x[i]).abs() < 1e-8);
            }
            // Closed form: pi_0 = p10 / (p10 + (1 - p00)).
            let expect0 = p10 / (p10 + 1.0 - p00);
            prop_assert!((sol.x[0] - expect0).abs() < 1e-6);
        }
    }
}
