//! # dra-linalg
//!
//! Small, dependency-free linear algebra tailored to the needs of the
//! DRA reproduction's Markov solvers:
//!
//! * [`DenseMatrix`] — row-major dense matrices with an LU
//!   decomposition (partial pivoting) for the moderate state spaces of
//!   the paper's models (tens to hundreds of states).
//! * [`CsrMatrix`] / [`CooBuilder`] — compressed-sparse-row matrices
//!   for generator matrices and the uniformized DTMC, where each state
//!   has only a handful of outgoing transitions.
//! * [`iterative`] — Jacobi, Gauss–Seidel, and power iteration for
//!   steady-state distributions on larger chains.
//! * [`vector`] — the handful of BLAS-1 style kernels everything else
//!   is built from.
//!
//! The crate is deliberately `f64`-only: dependability analysis needs
//! the precision (availability values like 0.999999998 must survive the
//! arithmetic), and genericity over scalars would buy nothing here.

#![warn(missing_docs)]
// Index-parallel numerical kernels (walking several arrays by the same
// index) read better with explicit indices than zipped iterators.
#![allow(clippy::needless_range_loop)]

pub mod dense;
pub mod error;
pub mod expm;
pub mod iterative;
pub mod sparse;
pub mod vector;

pub use dense::DenseMatrix;
pub use error::LinalgError;
pub use expm::expm;
pub use sparse::{CooBuilder, CsrMatrix};

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, LinalgError>;

/// Absolute tolerance used by default across solvers and tests.
///
/// Chosen so that availability figures with nine significant nines are
/// still resolved: the solvers iterate to well below the last digit the
/// paper reports.
pub const DEFAULT_TOL: f64 = 1e-12;
