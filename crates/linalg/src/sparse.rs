//! Compressed-sparse-row matrices and their COO builder.
//!
//! CTMC generator matrices are extremely sparse — a state in the
//! paper's models has at most five outgoing transitions — so the Markov
//! crate stores generators in CSR and the uniformization loop is a
//! sequence of sparse vector–matrix products.

use crate::error::LinalgError;
use crate::Result;

/// Triplet (COO) accumulator for building a [`CsrMatrix`].
///
/// Duplicate `(row, col)` entries are summed, which is exactly what a
/// Markov model builder wants: adding two transitions between the same
/// pair of states accumulates their rates.
#[derive(Debug, Clone)]
pub struct CooBuilder {
    rows: usize,
    cols: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl CooBuilder {
    /// Start building a `rows x cols` matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        CooBuilder {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Add `value` at `(row, col)`; duplicates accumulate.
    pub fn push(&mut self, row: usize, col: usize, value: f64) -> Result<()> {
        if row >= self.rows || col >= self.cols {
            return Err(LinalgError::OutOfBounds {
                index: (row, col),
                shape: (self.rows, self.cols),
            });
        }
        if !value.is_finite() {
            return Err(LinalgError::NotFinite {
                context: "CooBuilder::push",
            });
        }
        if value != 0.0 {
            self.entries.push((row, col, value));
        }
        Ok(())
    }

    /// Number of (possibly duplicate) triplets accumulated so far.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no triplets have been added.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Finish building: sort, merge duplicates, and compress to CSR.
    pub fn build(mut self) -> CsrMatrix {
        self.entries.sort_unstable_by_key(|a| (a.0, a.1));

        let mut row_ptr = vec![0usize; self.rows + 1];
        let mut col_idx = Vec::with_capacity(self.entries.len());
        let mut values = Vec::with_capacity(self.entries.len());

        let mut iter = self.entries.into_iter().peekable();
        while let Some((r, c, mut v)) = iter.next() {
            while let Some(&(nr, nc, nv)) = iter.peek() {
                if nr == r && nc == c {
                    v += nv;
                    iter.next();
                } else {
                    break;
                }
            }
            // A merged duplicate pair can cancel to exactly zero; keep it
            // anyway so the structural nonzero pattern stays predictable.
            col_idx.push(c);
            values.push(v);
            row_ptr[r + 1] += 1;
        }
        for r in 0..self.rows {
            row_ptr[r + 1] += row_ptr[r];
        }
        CsrMatrix {
            rows: self.rows,
            cols: self.cols,
            row_ptr,
            col_idx,
            values,
        }
    }
}

/// A compressed-sparse-row `f64` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// An empty (all-zero) matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CsrMatrix {
            rows,
            cols,
            row_ptr: vec![0; rows + 1],
            col_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        CsrMatrix {
            rows: n,
            cols: n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n).collect(),
            values: vec![1.0; n],
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored (structural) nonzeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Iterate over the stored entries of one row as `(col, value)` pairs.
    #[inline]
    pub fn row_entries(&self, r: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.row_ptr[r];
        let hi = self.row_ptr[r + 1];
        self.col_idx[lo..hi]
            .iter()
            .copied()
            .zip(self.values[lo..hi].iter().copied())
    }

    /// Value at `(r, c)`, zero when not stored.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.row_entries(r)
            .find(|&(col, _)| col == c)
            .map(|(_, v)| v)
            .unwrap_or(0.0)
    }

    /// Sparse matrix–vector product `y = A x`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                op: "csr matvec",
                lhs: (self.rows, self.cols),
                rhs: (x.len(), 1),
            });
        }
        let mut y = vec![0.0; self.rows];
        self.matvec_into(x, &mut y)?;
        Ok(y)
    }

    /// `matvec` into a caller-provided buffer (the uniformization hot loop
    /// reuses its buffers to avoid per-iteration allocation).
    pub fn matvec_into(&self, x: &[f64], y: &mut [f64]) -> Result<()> {
        if x.len() != self.cols || y.len() != self.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "csr matvec_into",
                lhs: (self.rows, self.cols),
                rhs: (x.len(), y.len()),
            });
        }
        for r in 0..self.rows {
            let lo = self.row_ptr[r];
            let hi = self.row_ptr[r + 1];
            let mut acc = 0.0;
            for k in lo..hi {
                acc += self.values[k] * x[self.col_idx[k]];
            }
            y[r] = acc;
        }
        Ok(())
    }

    /// Row-vector product `y = x^T A` (probability-vector propagation).
    pub fn vecmat(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "csr vecmat",
                lhs: (1, x.len()),
                rhs: (self.rows, self.cols),
            });
        }
        let mut y = vec![0.0; self.cols];
        self.vecmat_into(x, &mut y)?;
        Ok(y)
    }

    /// `vecmat` into a caller-provided buffer. `y` is cleared first.
    pub fn vecmat_into(&self, x: &[f64], y: &mut [f64]) -> Result<()> {
        if x.len() != self.rows || y.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                op: "csr vecmat_into",
                lhs: (1, x.len()),
                rhs: (self.rows, self.cols),
            });
        }
        y.fill(0.0);
        for (r, &xr) in x.iter().enumerate() {
            if xr == 0.0 {
                continue;
            }
            let lo = self.row_ptr[r];
            let hi = self.row_ptr[r + 1];
            for k in lo..hi {
                y[self.col_idx[k]] += xr * self.values[k];
            }
        }
        Ok(())
    }

    /// Transpose into a new CSR matrix.
    pub fn transpose(&self) -> CsrMatrix {
        let mut builder = CooBuilder::new(self.cols, self.rows);
        for r in 0..self.rows {
            for (c, v) in self.row_entries(r) {
                // Indices came from a valid matrix; push cannot fail.
                builder.push(c, r, v).expect("transpose push");
            }
        }
        builder.build()
    }

    /// Densify; intended for tests and small systems handed to LU.
    pub fn to_dense(&self) -> crate::DenseMatrix {
        let mut d = crate::DenseMatrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for (c, v) in self.row_entries(r) {
                d.add_to(r, c, v);
            }
        }
        d
    }

    /// Scale every stored value by `alpha` in place.
    pub fn scale(&mut self, alpha: f64) {
        for v in &mut self.values {
            *v *= alpha;
        }
    }

    /// Sum of each row, returned as a vector. For a CTMC generator this
    /// must be (numerically) zero for every row — a key model invariant.
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.rows)
            .map(|r| self.row_entries(r).map(|(_, v)| v).sum())
            .collect()
    }

    /// Maximum absolute diagonal entry; for a generator matrix this is
    /// the uniformization rate lower bound.
    pub fn max_abs_diag(&self) -> f64 {
        (0..self.rows.min(self.cols))
            .map(|i| self.get(i, i).abs())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample() -> CsrMatrix {
        // [1 0 2]
        // [0 0 3]
        // [4 5 0]
        let mut b = CooBuilder::new(3, 3);
        b.push(0, 0, 1.0).unwrap();
        b.push(0, 2, 2.0).unwrap();
        b.push(1, 2, 3.0).unwrap();
        b.push(2, 0, 4.0).unwrap();
        b.push(2, 1, 5.0).unwrap();
        b.build()
    }

    #[test]
    fn build_and_get() {
        let m = sample();
        assert_eq!(m.nnz(), 5);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(0, 1), 0.0);
        assert_eq!(m.get(2, 1), 5.0);
    }

    #[test]
    fn duplicates_accumulate() {
        let mut b = CooBuilder::new(2, 2);
        b.push(0, 0, 1.5).unwrap();
        b.push(0, 0, 2.5).unwrap();
        let m = b.build();
        assert_eq!(m.get(0, 0), 4.0);
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn zero_pushes_are_dropped() {
        let mut b = CooBuilder::new(2, 2);
        b.push(0, 1, 0.0).unwrap();
        assert!(b.is_empty());
        assert_eq!(b.build().nnz(), 0);
    }

    #[test]
    fn push_validates() {
        let mut b = CooBuilder::new(2, 2);
        assert!(b.push(2, 0, 1.0).is_err());
        assert!(b.push(0, 0, f64::NAN).is_err());
    }

    #[test]
    fn matvec_matches_dense() {
        let m = sample();
        let x = [1.0, 2.0, 3.0];
        let sparse = m.matvec(&x).unwrap();
        let dense = m.to_dense().matvec(&x).unwrap();
        assert_eq!(sparse, dense);
        assert_eq!(sparse, vec![7.0, 9.0, 14.0]);
    }

    #[test]
    fn vecmat_matches_dense() {
        let m = sample();
        let x = [1.0, 2.0, 3.0];
        let sparse = m.vecmat(&x).unwrap();
        let dense = m.to_dense().vecmat(&x).unwrap();
        assert_eq!(sparse, dense);
        assert_eq!(sparse, vec![13.0, 15.0, 8.0]);
    }

    #[test]
    fn identity_is_noop_for_matvec() {
        let i = CsrMatrix::identity(4);
        let x = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(i.matvec(&x).unwrap(), x.to_vec());
        assert_eq!(i.vecmat(&x).unwrap(), x.to_vec());
    }

    #[test]
    fn transpose_swaps_entries() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.get(2, 0), 2.0);
        assert_eq!(t.get(1, 2), 5.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn dimension_errors() {
        let m = sample();
        assert!(m.matvec(&[1.0]).is_err());
        assert!(m.vecmat(&[1.0]).is_err());
        let mut y = vec![0.0; 2];
        assert!(m.matvec_into(&[1.0, 2.0, 3.0], &mut y).is_err());
    }

    #[test]
    fn row_sums_and_diag() {
        let m = sample();
        assert_eq!(m.row_sums(), vec![3.0, 3.0, 9.0]);
        assert_eq!(m.max_abs_diag(), 1.0);
    }

    #[test]
    fn scale_in_place() {
        let mut m = sample();
        m.scale(2.0);
        assert_eq!(m.get(0, 2), 4.0);
    }

    prop_compose! {
        fn coo_entries(n: usize, max_entries: usize)
                      (entries in proptest::collection::vec(
                          (0..n, 0..n, -100.0..100.0_f64), 0..max_entries))
                      -> Vec<(usize, usize, f64)> {
            entries
        }
    }

    proptest! {
        #[test]
        fn csr_agrees_with_dense_on_random_matrices(
            entries in coo_entries(8, 40),
            x in proptest::collection::vec(-10.0..10.0_f64, 8),
        ) {
            let mut b = CooBuilder::new(8, 8);
            for &(r, c, v) in &entries {
                b.push(r, c, v).unwrap();
            }
            let m = b.build();
            let d = m.to_dense();
            let mv_s = m.matvec(&x).unwrap();
            let mv_d = d.matvec(&x).unwrap();
            let vm_s = m.vecmat(&x).unwrap();
            let vm_d = d.vecmat(&x).unwrap();
            for i in 0..8 {
                prop_assert!((mv_s[i] - mv_d[i]).abs() < 1e-9);
                prop_assert!((vm_s[i] - vm_d[i]).abs() < 1e-9);
            }
        }

        #[test]
        fn transpose_is_involution(entries in coo_entries(6, 24)) {
            let mut b = CooBuilder::new(6, 6);
            for &(r, c, v) in &entries {
                b.push(r, c, v).unwrap();
            }
            let m = b.build();
            // Compare via dense form: double-transpose may reorder
            // structurally-zero entries, but values must match.
            let round = m.transpose().transpose().to_dense();
            let orig = m.to_dense();
            for r in 0..6 {
                for c in 0..6 {
                    prop_assert!((round.get(r, c) - orig.get(r, c)).abs() < 1e-12);
                }
            }
        }

        #[test]
        fn vecmat_is_transpose_matvec(entries in coo_entries(7, 30),
                                      x in proptest::collection::vec(-5.0..5.0_f64, 7)) {
            let mut b = CooBuilder::new(7, 7);
            for &(r, c, v) in &entries {
                b.push(r, c, v).unwrap();
            }
            let m = b.build();
            let lhs = m.vecmat(&x).unwrap();
            let rhs = m.transpose().matvec(&x).unwrap();
            for i in 0..7 {
                prop_assert!((lhs[i] - rhs[i]).abs() < 1e-9);
            }
        }
    }
}
