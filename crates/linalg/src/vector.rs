//! BLAS-1 style kernels on `&[f64]` slices.
//!
//! Every higher-level solver in the crate is written in terms of these
//! few functions, which keeps the numerical behaviour easy to audit and
//! the hot loops easy for LLVM to vectorize (plain slice iteration, no
//! bounds-checked indexing in the inner loops).

/// Dot product of two equal-length slices.
///
/// # Panics
/// Panics in debug builds if the lengths differ; in release builds the
/// shorter length wins (standard `zip` semantics), which is never what
/// a caller wants, hence the debug assertion.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len(), "dot: length mismatch");
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// `y += alpha * x` (the classic axpy kernel).
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `x *= alpha` in place.
#[inline]
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x {
        *xi *= alpha;
    }
}

/// Euclidean (L2) norm.
#[inline]
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// L1 norm (sum of absolute values).
#[inline]
pub fn norm1(x: &[f64]) -> f64 {
    x.iter().map(|v| v.abs()).sum()
}

/// Max (L-infinity) norm.
#[inline]
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
}

/// Max-norm distance between two vectors, `||x - y||_inf`.
#[inline]
pub fn dist_inf(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len(), "dist_inf: length mismatch");
    x.iter()
        .zip(y)
        .fold(0.0_f64, |m, (a, b)| m.max((a - b).abs()))
}

/// Normalize a nonnegative vector so its entries sum to one.
///
/// Used to renormalize probability vectors after numerical drift.
/// Returns `false` (leaving the vector untouched) when the sum is zero
/// or non-finite, so callers can detect a degenerate distribution.
#[inline]
pub fn normalize_l1(x: &mut [f64]) -> bool {
    let s: f64 = x.iter().sum();
    if s <= 0.0 || !s.is_finite() {
        return false;
    }
    scale(1.0 / s, x);
    true
}

/// True when every component is finite.
#[inline]
pub fn all_finite(x: &[f64]) -> bool {
    x.iter().all(|v| v.is_finite())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn axpy_basic() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
    }

    #[test]
    fn scale_basic() {
        let mut x = vec![1.0, -2.0, 4.0];
        scale(0.5, &mut x);
        assert_eq!(x, vec![0.5, -1.0, 2.0]);
    }

    #[test]
    fn norms_basic() {
        let x = [3.0, -4.0];
        assert!((norm2(&x) - 5.0).abs() < 1e-15);
        assert_eq!(norm1(&x), 7.0);
        assert_eq!(norm_inf(&x), 4.0);
    }

    #[test]
    fn dist_inf_basic() {
        assert_eq!(dist_inf(&[1.0, 5.0], &[2.0, 3.0]), 2.0);
        assert_eq!(dist_inf(&[], &[]), 0.0);
    }

    #[test]
    fn normalize_l1_basic() {
        let mut x = vec![1.0, 3.0];
        assert!(normalize_l1(&mut x));
        assert_eq!(x, vec![0.25, 0.75]);
    }

    #[test]
    fn normalize_l1_rejects_zero_and_nonfinite() {
        let mut z = vec![0.0, 0.0];
        assert!(!normalize_l1(&mut z));
        assert_eq!(z, vec![0.0, 0.0]);

        let mut n = vec![f64::NAN, 1.0];
        assert!(!normalize_l1(&mut n));
    }

    #[test]
    fn all_finite_basic() {
        assert!(all_finite(&[0.0, -1.0, 1e300]));
        assert!(!all_finite(&[0.0, f64::INFINITY]));
        assert!(!all_finite(&[f64::NAN]));
    }

    fn vec_strategy(n: usize) -> impl Strategy<Value = Vec<f64>> {
        proptest::collection::vec(-1e3..1e3_f64, n)
    }

    proptest! {
        #[test]
        fn dot_commutes(x in vec_strategy(16), y in vec_strategy(16)) {
            prop_assert!((dot(&x, &y) - dot(&y, &x)).abs() < 1e-9);
        }

        #[test]
        fn dot_bilinear(x in vec_strategy(8), y in vec_strategy(8), a in -10.0..10.0_f64) {
            let ax: Vec<f64> = x.iter().map(|v| a * v).collect();
            prop_assert!((dot(&ax, &y) - a * dot(&x, &y)).abs() < 1e-6);
        }

        #[test]
        fn triangle_inequality(x in vec_strategy(8), y in vec_strategy(8)) {
            let sum: Vec<f64> = x.iter().zip(&y).map(|(a, b)| a + b).collect();
            prop_assert!(norm2(&sum) <= norm2(&x) + norm2(&y) + 1e-9);
        }

        #[test]
        fn normalize_l1_sums_to_one(mut x in proptest::collection::vec(0.001..1e3_f64, 1..32)) {
            prop_assert!(normalize_l1(&mut x));
            let s: f64 = x.iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-12);
        }

        #[test]
        fn norm_ordering(x in vec_strategy(8)) {
            // ||x||_inf <= ||x||_2 <= ||x||_1 for any vector.
            prop_assert!(norm_inf(&x) <= norm2(&x) + 1e-9);
            prop_assert!(norm2(&x) <= norm1(&x) + 1e-9);
        }
    }
}
