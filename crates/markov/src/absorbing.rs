//! Absorbing-state analysis: mean time to absorption and absorption
//! probabilities.
//!
//! Reliability models (the paper's Figure 5) have absorbing failure
//! states; the mean time to absorption from the initial state is the
//! MTTF, a standard single-number dependability summary the repro
//! reports alongside the paper's R(t) curves.

use crate::ctmc::{Ctmc, MarkovError, StateId};
use crate::Result;
use dra_linalg::DenseMatrix;

/// Results of analysing a chain's absorbing structure.
#[derive(Debug, Clone)]
pub struct AbsorbingAnalysis {
    /// Transient (non-absorbing) states in index order.
    pub transient: Vec<StateId>,
    /// Absorbing states in index order.
    pub absorbing: Vec<StateId>,
    /// `mtta[k]` = expected time to absorption starting from
    /// `transient[k]`.
    pub mtta: Vec<f64>,
    /// `absorb_prob[k][a]` = probability that, starting from
    /// `transient[k]`, the chain is eventually absorbed in
    /// `absorbing[a]`.
    pub absorb_prob: Vec<Vec<f64>>,
}

impl AbsorbingAnalysis {
    /// Mean time to absorption from a given state.
    ///
    /// Returns `None` for absorbing states (their MTTA is zero but they
    /// are not in the transient list).
    pub fn mtta_from(&self, s: StateId) -> Option<f64> {
        self.transient
            .iter()
            .position(|&t| t == s)
            .map(|k| self.mtta[k])
    }

    /// Probability of eventual absorption in `target` starting from `s`.
    pub fn absorption_probability(&self, s: StateId, target: StateId) -> Option<f64> {
        let k = self.transient.iter().position(|&t| t == s)?;
        let a = self.absorbing.iter().position(|&t| t == target)?;
        Some(self.absorb_prob[k][a])
    }
}

/// Analyse the absorbing structure of `chain`.
///
/// Solves `Q_TT τ = −1` for the mean times and `Q_TT B = −R` for the
/// absorption probabilities, where `Q_TT` is the generator restricted
/// to transient states and `R` the transient→absorbing rate block.
///
/// Errors with [`MarkovError::BadStructure`] when the chain has no
/// absorbing state, or when some transient state cannot reach any
/// absorbing state (which makes `Q_TT` singular).
pub fn analyze(chain: &Ctmc) -> Result<AbsorbingAnalysis> {
    let absorbing = chain.absorbing_states();
    if absorbing.is_empty() {
        return Err(MarkovError::BadStructure {
            reason: "chain has no absorbing states",
        });
    }
    let is_absorbing: Vec<bool> = {
        let mut v = vec![false; chain.n_states()];
        for &a in &absorbing {
            v[a.index()] = true;
        }
        v
    };
    let transient: Vec<StateId> = chain
        .states()
        .filter(|s| !is_absorbing[s.index()])
        .collect();
    if transient.is_empty() {
        return Ok(AbsorbingAnalysis {
            transient,
            absorbing,
            mtta: Vec::new(),
            absorb_prob: Vec::new(),
        });
    }

    // Dense index of each transient state.
    let mut t_index = vec![usize::MAX; chain.n_states()];
    for (k, &s) in transient.iter().enumerate() {
        t_index[s.index()] = k;
    }
    let nt = transient.len();
    let na = absorbing.len();
    let mut a_index = vec![usize::MAX; chain.n_states()];
    for (k, &s) in absorbing.iter().enumerate() {
        a_index[s.index()] = k;
    }

    let q = chain.generator();
    let mut qtt = DenseMatrix::zeros(nt, nt);
    let mut r = DenseMatrix::zeros(nt, na);
    for (k, &s) in transient.iter().enumerate() {
        for (c, v) in q.row_entries(s.index()) {
            if is_absorbing[c] {
                r.add_to(k, a_index[c], v);
            } else {
                qtt.add_to(k, t_index[c], v);
            }
        }
    }

    let lu = qtt.lu().map_err(|e| match e {
        dra_linalg::LinalgError::Singular { .. } => MarkovError::BadStructure {
            reason: "some transient state cannot reach an absorbing state",
        },
        other => MarkovError::Linalg(other),
    })?;

    // Q_TT tau = -1.
    let minus_ones = vec![-1.0; nt];
    let mtta = lu.solve(&minus_ones)?;
    if mtta.iter().any(|&t| t < -1e-9) {
        return Err(MarkovError::BadStructure {
            reason: "negative mean time to absorption; model is inconsistent",
        });
    }

    // Q_TT b_a = -r_a column by column.
    let mut absorb_prob = vec![vec![0.0; na]; nt];
    for a in 0..na {
        let rhs: Vec<f64> = (0..nt).map(|k| -r.get(k, a)).collect();
        let col = lu.solve(&rhs)?;
        for k in 0..nt {
            absorb_prob[k][a] = col[k].clamp(0.0, 1.0);
        }
    }

    Ok(AbsorbingAnalysis {
        transient,
        absorbing,
        mtta,
        absorb_prob,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctmc::CtmcBuilder;

    #[test]
    fn single_exponential_mttf() {
        let mut b = CtmcBuilder::new();
        let up = b.state("up").unwrap();
        let dead = b.state("dead").unwrap();
        b.rate(up, dead, 2e-5).unwrap();
        let c = b.build().unwrap();
        let a = analyze(&c).unwrap();
        assert_eq!(a.transient, vec![up]);
        assert_eq!(a.absorbing, vec![dead]);
        assert!((a.mtta_from(up).unwrap() - 50_000.0).abs() < 1e-6);
        assert!((a.absorption_probability(up, dead).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn series_of_stages_adds_means() {
        // up -> degraded -> dead: MTTF = 1/r1 + 1/r2.
        let mut b = CtmcBuilder::new();
        let up = b.state("up").unwrap();
        let deg = b.state("degraded").unwrap();
        let dead = b.state("dead").unwrap();
        b.rate(up, deg, 0.5).unwrap();
        b.rate(deg, dead, 0.25).unwrap();
        let c = b.build().unwrap();
        let a = analyze(&c).unwrap();
        assert!((a.mtta_from(up).unwrap() - (2.0 + 4.0)).abs() < 1e-12);
        assert!((a.mtta_from(deg).unwrap() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn competing_absorption_probabilities() {
        // From s, race to A (rate 3) vs B (rate 1): P(A) = 3/4.
        let mut b = CtmcBuilder::new();
        let s = b.state("s").unwrap();
        let a_st = b.state("A").unwrap();
        let b_st = b.state("B").unwrap();
        b.rate(s, a_st, 3.0).unwrap();
        b.rate(s, b_st, 1.0).unwrap();
        let c = b.build().unwrap();
        let an = analyze(&c).unwrap();
        assert!((an.absorption_probability(s, a_st).unwrap() - 0.75).abs() < 1e-12);
        assert!((an.absorption_probability(s, b_st).unwrap() - 0.25).abs() < 1e-12);
        // MTTA is 1/(total rate).
        assert!((an.mtta_from(s).unwrap() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn repair_extends_mttf() {
        // up <-> degraded -> dead. With repair from degraded, MTTF grows.
        let (l1, mu, l2) = (0.1, 1.0, 0.05);
        let mut b = CtmcBuilder::new();
        let up = b.state("up").unwrap();
        let deg = b.state("deg").unwrap();
        let dead = b.state("dead").unwrap();
        b.rate(up, deg, l1).unwrap();
        b.rate(deg, up, mu).unwrap();
        b.rate(deg, dead, l2).unwrap();
        let c = b.build().unwrap();
        let a = analyze(&c).unwrap();
        // Closed form via first-step analysis:
        // t_deg = 1/(mu+l2) + mu/(mu+l2)·t_up ; t_up = 1/l1 + t_deg
        // ⇒ t_up = (1/l1 + 1/(mu+l2)) · (mu+l2)/l2.
        let t_up = (1.0 / l1 + 1.0 / (mu + l2)) * (mu + l2) / l2;
        assert!(
            (a.mtta_from(up).unwrap() - t_up).abs() / t_up < 1e-12,
            "{} vs {t_up}",
            a.mtta_from(up).unwrap()
        );
        assert!(a.mtta_from(up).unwrap() > 1.0 / l1 + 1.0 / l2);
    }

    #[test]
    fn no_absorbing_state_is_an_error() {
        let mut b = CtmcBuilder::new();
        let s = b.state("s").unwrap();
        let t = b.state("t").unwrap();
        b.rate(s, t, 1.0).unwrap();
        b.rate(t, s, 1.0).unwrap();
        let c = b.build().unwrap();
        assert!(matches!(analyze(&c), Err(MarkovError::BadStructure { .. })));
    }

    #[test]
    fn unreachable_absorption_is_an_error() {
        // s <-> t closed class, plus isolated absorbing state a reachable
        // from nothing: Q_TT is singular.
        let mut b = CtmcBuilder::new();
        let s = b.state("s").unwrap();
        let t = b.state("t").unwrap();
        let _a = b.state("a").unwrap();
        b.rate(s, t, 1.0).unwrap();
        b.rate(t, s, 1.0).unwrap();
        let c = b.build().unwrap();
        assert!(matches!(analyze(&c), Err(MarkovError::BadStructure { .. })));
    }

    #[test]
    fn all_absorbing_chain_yields_empty_analysis() {
        let mut b = CtmcBuilder::new();
        b.state("a").unwrap();
        b.state("b").unwrap();
        let c = b.build().unwrap();
        let an = analyze(&c).unwrap();
        assert!(an.transient.is_empty());
        assert_eq!(an.absorbing.len(), 2);
    }

    #[test]
    fn mtta_matches_transient_integration() {
        // Cross-check: MTTF equals the integral of R(t) dt; approximate
        // by a fine trapezoid over the transient solver's output.
        let mut b = CtmcBuilder::new();
        let up = b.state("up").unwrap();
        let deg = b.state("deg").unwrap();
        let dead = b.state("dead").unwrap();
        b.rate(up, deg, 0.4).unwrap();
        b.rate(deg, dead, 0.8).unwrap();
        b.rate(deg, up, 0.3).unwrap();
        let c = b.build().unwrap();
        let a = analyze(&c).unwrap();
        let mttf = a.mtta_from(up).unwrap();

        let pi0 = c.point_mass(up).unwrap();
        let times: Vec<f64> = (0..=4000).map(|i| i as f64 * 0.01).collect();
        let sols =
            crate::transient::transient_many(&c, &pi0, &times, crate::TransientOptions::default())
                .unwrap();
        let mut integral = 0.0;
        for w in sols.windows(2) {
            let r0 = 1.0 - w[0][dead.index()];
            let r1 = 1.0 - w[1][dead.index()];
            integral += 0.5 * (r0 + r1) * 0.01;
        }
        assert!(
            (integral - mttf).abs() < 1e-2,
            "integral {integral} vs mttf {mttf}"
        );
    }
}
