//! CTMC construction: labeled states, rate accumulation, validation.

use dra_linalg::{CooBuilder, CsrMatrix, LinalgError};
use std::collections::HashMap;
use std::fmt;

/// Opaque handle to a state inside one chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StateId(pub(crate) usize);

impl StateId {
    /// The dense index of this state in probability vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

/// Errors from chain construction and solution.
#[derive(Debug, Clone, PartialEq)]
pub enum MarkovError {
    /// A transition rate was negative, NaN, or infinite.
    InvalidRate {
        /// Offending rate value.
        rate: f64,
        /// Source state label.
        from: String,
        /// Destination state label.
        to: String,
    },
    /// A self-loop was requested (`from == to`); CTMC self-loops are
    /// meaningless and always a modelling bug.
    SelfLoop {
        /// State label.
        state: String,
    },
    /// Two states were given the same label.
    DuplicateLabel {
        /// The repeated label.
        label: String,
    },
    /// A `StateId` from a different chain (or out of range) was used.
    UnknownState {
        /// The offending dense index.
        index: usize,
    },
    /// The chain has no states.
    Empty,
    /// An initial distribution was invalid (wrong length, negative
    /// entries, or not summing to one).
    InvalidDistribution {
        /// Description of the violation.
        reason: &'static str,
    },
    /// A time argument was negative or non-finite.
    InvalidTime {
        /// The offending value.
        t: f64,
    },
    /// An underlying linear-algebra operation failed.
    Linalg(LinalgError),
    /// The requested analysis needs at least one absorbing/transient
    /// state split that this chain does not have.
    BadStructure {
        /// Description of the structural problem.
        reason: &'static str,
    },
}

impl fmt::Display for MarkovError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MarkovError::InvalidRate { rate, from, to } => {
                write!(f, "invalid rate {rate} on transition {from} -> {to}")
            }
            MarkovError::SelfLoop { state } => write!(f, "self-loop on state {state}"),
            MarkovError::DuplicateLabel { label } => {
                write!(f, "duplicate state label {label:?}")
            }
            MarkovError::UnknownState { index } => {
                write!(f, "unknown state index {index}")
            }
            MarkovError::Empty => write!(f, "chain has no states"),
            MarkovError::InvalidDistribution { reason } => {
                write!(f, "invalid initial distribution: {reason}")
            }
            MarkovError::InvalidTime { t } => write!(f, "invalid time {t}"),
            MarkovError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
            MarkovError::BadStructure { reason } => {
                write!(f, "chain structure unsuitable: {reason}")
            }
        }
    }
}

impl std::error::Error for MarkovError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MarkovError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for MarkovError {
    fn from(e: LinalgError) -> Self {
        MarkovError::Linalg(e)
    }
}

/// Incremental builder for a [`Ctmc`].
///
/// States are added with human-readable labels (the paper's `(i,j)`,
/// `i_PI`, `T'`, `F`, …); transitions accumulate, so calling
/// [`CtmcBuilder::rate`] twice for the same pair sums the rates — the
/// natural semantics when several physical failure modes map to the
/// same state change.
///
/// ```
/// use dra_markov::{CtmcBuilder, TransientOptions};
///
/// // A repairable component: fails at 1e-3/h, repaired at 0.5/h.
/// let mut b = CtmcBuilder::new();
/// let up = b.state("up").unwrap();
/// let down = b.state("down").unwrap();
/// b.rate(up, down, 1e-3).unwrap();
/// b.rate(down, up, 0.5).unwrap();
/// let chain = b.build().unwrap();
///
/// // Point availability after 100 hours:
/// let pi0 = chain.point_mass(up).unwrap();
/// let pi = dra_markov::transient::transient(&chain, &pi0, 100.0,
///                                           TransientOptions::default()).unwrap();
/// let availability = pi[up.index()];
/// assert!(availability > 0.99 && availability < 1.0);
/// ```
#[derive(Debug, Default)]
pub struct CtmcBuilder {
    labels: Vec<String>,
    by_label: HashMap<String, usize>,
    transitions: Vec<(usize, usize, f64)>,
}

impl CtmcBuilder {
    /// Empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a state with a unique label; returns its handle.
    pub fn state(&mut self, label: impl Into<String>) -> Result<StateId, MarkovError> {
        let label = label.into();
        if self.by_label.contains_key(&label) {
            return Err(MarkovError::DuplicateLabel { label });
        }
        let id = self.labels.len();
        self.by_label.insert(label.clone(), id);
        self.labels.push(label);
        Ok(StateId(id))
    }

    /// Add (accumulate) a transition `from -> to` at `rate` (per unit time).
    ///
    /// A zero rate is accepted and ignored, which lets model builders
    /// write uniform loops without special-casing boundary states.
    pub fn rate(&mut self, from: StateId, to: StateId, rate: f64) -> Result<(), MarkovError> {
        let n = self.labels.len();
        if from.0 >= n {
            return Err(MarkovError::UnknownState { index: from.0 });
        }
        if to.0 >= n {
            return Err(MarkovError::UnknownState { index: to.0 });
        }
        if !rate.is_finite() || rate < 0.0 {
            return Err(MarkovError::InvalidRate {
                rate,
                from: self.labels[from.0].clone(),
                to: self.labels[to.0].clone(),
            });
        }
        if from == to {
            return Err(MarkovError::SelfLoop {
                state: self.labels[from.0].clone(),
            });
        }
        if rate > 0.0 {
            self.transitions.push((from.0, to.0, rate));
        }
        Ok(())
    }

    /// Number of states added so far.
    pub fn n_states(&self) -> usize {
        self.labels.len()
    }

    /// Finalize into an immutable chain.
    pub fn build(self) -> Result<Ctmc, MarkovError> {
        let n = self.labels.len();
        if n == 0 {
            return Err(MarkovError::Empty);
        }
        let mut coo = CooBuilder::new(n, n);
        let mut exit = vec![0.0; n];
        for (from, to, rate) in &self.transitions {
            coo.push(*from, *to, *rate)?;
            exit[*from] += *rate;
        }
        for (i, &e) in exit.iter().enumerate() {
            if e > 0.0 {
                coo.push(i, i, -e)?;
            }
        }
        let generator = coo.build();
        Ok(Ctmc {
            labels: self.labels,
            by_label: self.by_label,
            generator,
            exit_rates: exit,
        })
    }
}

/// An immutable continuous-time Markov chain.
#[derive(Debug, Clone)]
pub struct Ctmc {
    labels: Vec<String>,
    by_label: HashMap<String, usize>,
    /// Infinitesimal generator Q (row sums zero).
    generator: CsrMatrix,
    /// Exit rate of each state (= −Q[i][i]).
    exit_rates: Vec<f64>,
}

impl Ctmc {
    /// Number of states.
    #[inline]
    pub fn n_states(&self) -> usize {
        self.labels.len()
    }

    /// The generator matrix Q.
    #[inline]
    pub fn generator(&self) -> &CsrMatrix {
        &self.generator
    }

    /// Exit rate (total outgoing rate) of a state.
    #[inline]
    pub fn exit_rate(&self, s: StateId) -> f64 {
        self.exit_rates[s.0]
    }

    /// Largest exit rate over all states (the uniformization lower bound).
    pub fn max_exit_rate(&self) -> f64 {
        self.exit_rates.iter().fold(0.0_f64, |m, &v| m.max(v))
    }

    /// Label of a state.
    pub fn label(&self, s: StateId) -> &str {
        &self.labels[s.0]
    }

    /// Look a state up by its label.
    pub fn find(&self, label: &str) -> Option<StateId> {
        self.by_label.get(label).copied().map(StateId)
    }

    /// All states in index order.
    pub fn states(&self) -> impl Iterator<Item = StateId> + '_ {
        (0..self.labels.len()).map(StateId)
    }

    /// The state at dense index `i`, if in range (useful when walking
    /// raw generator rows).
    pub fn state_by_index(&self, i: usize) -> Option<StateId> {
        (i < self.labels.len()).then_some(StateId(i))
    }

    /// States with zero exit rate (absorbing states).
    pub fn absorbing_states(&self) -> Vec<StateId> {
        self.exit_rates
            .iter()
            .enumerate()
            .filter(|(_, &e)| e == 0.0)
            .map(|(i, _)| StateId(i))
            .collect()
    }

    /// A point-mass initial distribution on `s`.
    pub fn point_mass(&self, s: StateId) -> Result<Vec<f64>, MarkovError> {
        if s.0 >= self.n_states() {
            return Err(MarkovError::UnknownState { index: s.0 });
        }
        let mut pi = vec![0.0; self.n_states()];
        pi[s.0] = 1.0;
        Ok(pi)
    }

    /// Validate that `pi0` is a distribution over this chain's states.
    pub fn check_distribution(&self, pi0: &[f64]) -> Result<(), MarkovError> {
        if pi0.len() != self.n_states() {
            return Err(MarkovError::InvalidDistribution {
                reason: "length mismatch",
            });
        }
        if pi0.iter().any(|&p| !(0.0..=1.0 + 1e-12).contains(&p)) {
            return Err(MarkovError::InvalidDistribution {
                reason: "entries must be in [0, 1]",
            });
        }
        let sum: f64 = pi0.iter().sum();
        if (sum - 1.0).abs() > 1e-9 {
            return Err(MarkovError::InvalidDistribution {
                reason: "entries must sum to 1",
            });
        }
        Ok(())
    }

    /// Render the chain as a Graphviz digraph (`dot -Tsvg …`), states
    /// labeled, edges annotated with rates — handy for eyeballing a
    /// model against the paper's Figure 5.
    pub fn to_dot(&self, name: &str) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{name}\" {{");
        let _ = writeln!(out, "  rankdir=LR; node [shape=ellipse];");
        for s in self.states() {
            let shape = if self.exit_rate(s) == 0.0 {
                " shape=doublecircle"
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "  s{} [label=\"{}\"{shape}];",
                s.index(),
                self.label(s)
            );
        }
        for s in self.states() {
            for (c, rate) in self.generator.row_entries(s.index()) {
                if c != s.index() && rate > 0.0 {
                    let _ = writeln!(out, "  s{} -> s{c} [label=\"{rate:.2e}\"];", s.index());
                }
            }
        }
        out.push_str("}\n");
        out
    }

    /// The uniformized DTMC `P = I + Q/Λ` for a rate `Λ ≥ max exit rate`.
    ///
    /// The returned matrix is row-stochastic. Passing `lambda` strictly
    /// above the max exit rate guarantees aperiodicity (every state gets
    /// a self-loop), which [`crate::steady`]'s power iteration relies on.
    pub fn uniformized(&self, lambda: f64) -> Result<CsrMatrix, MarkovError> {
        let max_exit = self.max_exit_rate();
        if !lambda.is_finite() || lambda < max_exit || lambda <= 0.0 {
            return Err(MarkovError::InvalidRate {
                rate: lambda,
                from: "uniformization".into(),
                to: format!("needs lambda >= {max_exit}"),
            });
        }
        let n = self.n_states();
        let mut coo = CooBuilder::new(n, n);
        for r in 0..n {
            let mut diag = 1.0;
            for (c, q) in self.generator.row_entries(r) {
                if c == r {
                    diag += q / lambda;
                } else {
                    coo.push(r, c, q / lambda)?;
                }
            }
            coo.push(r, r, diag)?;
        }
        Ok(coo.build())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_state() -> (Ctmc, StateId, StateId) {
        let mut b = CtmcBuilder::new();
        let up = b.state("up").unwrap();
        let down = b.state("down").unwrap();
        b.rate(up, down, 0.5).unwrap();
        b.rate(down, up, 2.0).unwrap();
        (b.build().unwrap(), up, down)
    }

    #[test]
    fn builder_basics() {
        let (c, up, down) = two_state();
        assert_eq!(c.n_states(), 2);
        assert_eq!(c.label(up), "up");
        assert_eq!(c.find("down"), Some(down));
        assert_eq!(c.find("nope"), None);
        assert_eq!(c.exit_rate(up), 0.5);
        assert_eq!(c.exit_rate(down), 2.0);
        assert_eq!(c.max_exit_rate(), 2.0);
    }

    #[test]
    fn generator_rows_sum_to_zero() {
        let (c, _, _) = two_state();
        for s in c.generator().row_sums() {
            assert!(s.abs() < 1e-15);
        }
    }

    #[test]
    fn duplicate_labels_rejected() {
        let mut b = CtmcBuilder::new();
        b.state("s").unwrap();
        assert!(matches!(
            b.state("s"),
            Err(MarkovError::DuplicateLabel { .. })
        ));
    }

    #[test]
    fn self_loops_rejected() {
        let mut b = CtmcBuilder::new();
        let s = b.state("s").unwrap();
        assert!(matches!(
            b.rate(s, s, 1.0),
            Err(MarkovError::SelfLoop { .. })
        ));
    }

    #[test]
    fn bad_rates_rejected() {
        let mut b = CtmcBuilder::new();
        let s = b.state("s").unwrap();
        let t = b.state("t").unwrap();
        assert!(b.rate(s, t, -1.0).is_err());
        assert!(b.rate(s, t, f64::NAN).is_err());
        assert!(b.rate(s, t, f64::INFINITY).is_err());
        assert!(b.rate(s, t, 0.0).is_ok()); // ignored, not an error
    }

    #[test]
    fn rates_accumulate() {
        let mut b = CtmcBuilder::new();
        let s = b.state("s").unwrap();
        let t = b.state("t").unwrap();
        b.rate(s, t, 1.0).unwrap();
        b.rate(s, t, 2.5).unwrap();
        let c = b.build().unwrap();
        assert_eq!(c.exit_rate(s), 3.5);
        assert_eq!(c.generator().get(0, 1), 3.5);
        assert_eq!(c.generator().get(0, 0), -3.5);
    }

    #[test]
    fn empty_chain_rejected() {
        assert!(matches!(
            CtmcBuilder::new().build(),
            Err(MarkovError::Empty)
        ));
    }

    #[test]
    fn absorbing_states_detected() {
        let mut b = CtmcBuilder::new();
        let a = b.state("a").unwrap();
        let f = b.state("f").unwrap();
        b.rate(a, f, 1.0).unwrap();
        let c = b.build().unwrap();
        assert_eq!(c.absorbing_states(), vec![f]);
    }

    #[test]
    fn point_mass_and_check_distribution() {
        let (c, up, _) = two_state();
        let pi = c.point_mass(up).unwrap();
        assert_eq!(pi, vec![1.0, 0.0]);
        assert!(c.check_distribution(&pi).is_ok());
        assert!(c.check_distribution(&[0.5]).is_err());
        assert!(c.check_distribution(&[0.7, 0.7]).is_err());
        assert!(c.check_distribution(&[-0.1, 1.1]).is_err());
        assert!(c.point_mass(StateId(9)).is_err());
    }

    #[test]
    fn uniformized_is_stochastic() {
        let (c, _, _) = two_state();
        let p = c.uniformized(4.0).unwrap();
        for s in p.row_sums() {
            assert!((s - 1.0).abs() < 1e-15);
        }
        // P = I + Q/4: up row = [1 - 0.125, 0.125]
        assert!((p.get(0, 0) - 0.875).abs() < 1e-15);
        assert!((p.get(0, 1) - 0.125).abs() < 1e-15);
    }

    #[test]
    fn uniformized_rejects_small_lambda() {
        let (c, _, _) = two_state();
        assert!(c.uniformized(1.0).is_err());
        assert!(c.uniformized(f64::NAN).is_err());
    }

    #[test]
    fn dot_export_contains_states_and_rates() {
        let (c, _, _) = two_state();
        let dot = c.to_dot("demo");
        assert!(dot.starts_with("digraph \"demo\""));
        assert!(dot.contains("label=\"up\""));
        assert!(dot.contains("label=\"down\""));
        assert!(dot.contains("s0 -> s1"));
        assert!(dot.contains("5.00e-1")); // 0.5 failure rate
        assert!(dot.ends_with("}\n"));
        // No absorbing state here, so no doublecircle.
        assert!(!dot.contains("doublecircle"));

        // Absorbing states render distinctly.
        let mut b = CtmcBuilder::new();
        let a = b.state("a").unwrap();
        let f = b.state("f").unwrap();
        b.rate(a, f, 1.0).unwrap();
        let dot = b.build().unwrap().to_dot("abs");
        assert!(dot.contains("doublecircle"));
    }

    #[test]
    fn error_display() {
        let e = MarkovError::InvalidRate {
            rate: -1.0,
            from: "a".into(),
            to: "b".into(),
        };
        assert!(e.to_string().contains("a -> b"));
    }
}
