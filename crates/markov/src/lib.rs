//! # dra-markov
//!
//! Continuous-time Markov chains (CTMCs) for dependability analysis,
//! built for the Markov models of the DRA paper (ICPP 2004, §5) but
//! fully general:
//!
//! * [`CtmcBuilder`] / [`Ctmc`] — construct chains from labeled states
//!   and transition rates; the generator is validated (nonnegative
//!   off-diagonals, zero row sums) at build time.
//! * [`transient`] — transient state probabilities π(t) by
//!   **uniformization** (the workhorse; numerically robust for stiff
//!   dependability models) and by an adaptive **RK45** ODE integrator
//!   (used to cross-validate uniformization in tests and benches).
//! * [`steady`] — steady-state distribution by dense LU on the balance
//!   equations, by Gauss–Seidel, or by power iteration on the
//!   uniformized DTMC.
//! * [`absorbing`] — mean time to absorption (MTTF) and absorption
//!   probabilities for chains with absorbing failure states.
//! * [`reward`] — state reward structures: instantaneous expected
//!   reward (e.g. point availability), and probability mass over a
//!   state predicate (e.g. reliability = mass outside the failed set).
//! * [`oracle`] — one-call exact answers (steady-state mass of a state
//!   set, mean hitting time of a state set) used as the ground truth
//!   when validating rare-event estimators on small models.

#![warn(missing_docs)]
// Index-parallel numerical kernels read better with explicit indices.
#![allow(clippy::needless_range_loop)]

pub mod absorbing;
pub mod ctmc;
pub mod oracle;
pub mod phase;
pub mod reward;
pub mod steady;
pub mod transient;

pub use absorbing::AbsorbingAnalysis;
pub use ctmc::{Ctmc, CtmcBuilder, MarkovError, StateId};
pub use steady::SteadyMethod;
pub use transient::TransientOptions;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, MarkovError>;
