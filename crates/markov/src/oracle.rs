//! Exact-answer oracle harness for validating stochastic estimators.
//!
//! Rare-event estimators (importance splitting, likelihood-ratio
//! sampling) are only trustworthy if they can be shown to reproduce
//! exact answers where exact answers exist. On small state spaces the
//! CTMC machinery in this crate *is* that exact answer; this module
//! packages the two quantities an availability estimator must match —
//! the steady-state probability of a state set, and the mean hitting
//! time of a state set — behind one-call helpers so test harnesses in
//! higher crates don't each re-derive the reductions.

use crate::ctmc::{Ctmc, CtmcBuilder, StateId};
use crate::steady::{steady_state, SteadyMethod};
use crate::{absorbing, Result};

/// Exact steady-state probability of being in any of `states`
/// (e.g. unavailability = steady mass of the down set), by dense LU on
/// the balance equations.
pub fn steady_probability(chain: &Ctmc, states: &[StateId]) -> Result<f64> {
    let pi = steady_state(chain, SteadyMethod::DirectLu)?;
    Ok(states.iter().map(|s| pi[s.index()]).sum())
}

/// Exact mean hitting time of the set `targets` starting from `start`
/// (e.g. MTTF = mean hitting time of the down set from the fresh
/// state).
///
/// Built by re-erecting the chain with every target state made
/// absorbing — outgoing rates dropped — and running the absorbing-state
/// analysis. Returns `0.0` when `start` is itself a target.
///
/// # Errors
/// Propagates [`crate::MarkovError::BadStructure`] when `targets` is
/// empty or some transient state cannot reach the target set.
pub fn mean_hitting_time(chain: &Ctmc, start: StateId, targets: &[StateId]) -> Result<f64> {
    if targets.contains(&start) {
        return Ok(0.0);
    }
    let mut b = CtmcBuilder::new();
    let ids: Vec<StateId> = chain
        .states()
        .map(|s| b.state(chain.label(s)))
        .collect::<Result<_>>()?;
    let gen = chain.generator();
    for s in chain.states() {
        if targets.contains(&s) {
            continue; // absorbing in the hitting-time chain
        }
        for (col, v) in gen.row_entries(s.index()) {
            if col != s.index() && v > 0.0 {
                b.rate(ids[s.index()], ids[col], v)?;
            }
        }
    }
    let hit_chain = b.build()?;
    let analysis = absorbing::analyze(&hit_chain)?;
    analysis
        .mtta_from(ids[start.index()])
        .ok_or(crate::MarkovError::BadStructure {
            reason: "start state is not transient in the hitting chain",
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two-state machine-repair model: exact answers are closed-form.
    fn two_state(lambda: f64, mu: f64) -> (Ctmc, StateId, StateId) {
        let mut b = CtmcBuilder::new();
        let up = b.state("up").unwrap();
        let down = b.state("down").unwrap();
        b.rate(up, down, lambda).unwrap();
        b.rate(down, up, mu).unwrap();
        (b.build().unwrap(), up, down)
    }

    #[test]
    fn steady_probability_matches_closed_form() {
        let (chain, _, down) = two_state(2e-5, 1.0 / 3.0);
        let u = steady_probability(&chain, &[down]).unwrap();
        let expect = 2e-5 / (2e-5 + 1.0 / 3.0);
        assert!((u - expect).abs() < 1e-15, "{u} vs {expect}");
    }

    #[test]
    fn mean_hitting_time_matches_closed_form() {
        let (chain, up, down) = two_state(2e-5, 1.0 / 3.0);
        let mttf = mean_hitting_time(&chain, up, &[down]).unwrap();
        assert!((mttf - 1.0 / 2e-5).abs() / (1.0 / 2e-5) < 1e-12);
        // Hitting a set containing the start is instantaneous.
        assert_eq!(mean_hitting_time(&chain, down, &[down]).unwrap(), 0.0);
    }

    #[test]
    fn mean_hitting_time_three_state_chain() {
        // up --a--> mid --b--> down, with repair mid --r--> up.
        // First-step analysis: T_up = 1/a + T_mid,
        // T_mid = 1/(b+r) + r/(b+r) * T_up.
        let (a, bb, r) = (0.5, 0.25, 2.0);
        let mut builder = CtmcBuilder::new();
        let up = builder.state("up").unwrap();
        let mid = builder.state("mid").unwrap();
        let down = builder.state("down").unwrap();
        builder.rate(up, mid, a).unwrap();
        builder.rate(mid, down, bb).unwrap();
        builder.rate(mid, up, r).unwrap();
        builder.rate(down, up, 1.0).unwrap(); // repair keeps it ergodic
        let chain = builder.build().unwrap();

        let t = mean_hitting_time(&chain, up, &[down]).unwrap();
        let denom = bb + r;
        let expect = (1.0 / a + 1.0 / denom) / (1.0 - r / denom);
        assert!((t - expect).abs() < 1e-10, "{t} vs {expect}");
    }
}
