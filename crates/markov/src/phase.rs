//! Phase-type repair: turn a reliability chain into an availability
//! chain whose repair time is Erlang-k distributed.
//!
//! The paper assumes repair "take\[s\] a fixed amount of time" but then
//! uses a Markov model, which forces an exponential repair. An
//! Erlang-k repair (k phases at rate kμ each; same mean 1/μ, variance
//! 1/(kμ²)) interpolates between the exponential (k = 1) and the fixed
//! time (k → ∞), so sweeping k quantifies how much the distribution
//! assumption matters — for the availability figures, very little,
//! because stationary availability of an alternating-renewal process
//! depends on the repair *mean* to first order.

use crate::ctmc::{Ctmc, CtmcBuilder, MarkovError, StateId};
use crate::Result;

/// Build an availability chain from a (no-repair) `base` chain by
/// attaching an Erlang-`k` repair clock that starts ticking in every
/// state except `start` and, on completion, resets the system to
/// `start`.
///
/// Returns the new chain, its start state, and the images of each base
/// state: `images[s][j]` is base state `s` in repair phase `j`
/// (`j = 0` is only meaningful for `start`; degraded states exist for
/// phases `0..k`).
pub fn with_erlang_repair(
    base: &Ctmc,
    start: StateId,
    mu: f64,
    k: usize,
) -> Result<(Ctmc, StateId, Vec<Vec<StateId>>)> {
    if !mu.is_finite() || mu <= 0.0 {
        return Err(MarkovError::InvalidRate {
            rate: mu,
            from: "erlang repair".into(),
            to: "needs mu > 0".into(),
        });
    }
    if k == 0 {
        return Err(MarkovError::BadStructure {
            reason: "Erlang repair needs at least one phase",
        });
    }
    let n = base.n_states();
    let mut b = CtmcBuilder::new();

    // images[s][j]: the (state, phase) product state. `start` has a
    // single image; every other state has k phase images.
    let mut images: Vec<Vec<StateId>> = Vec::with_capacity(n);
    for s in base.states() {
        if s == start {
            images.push(vec![b.state(format!("{}|ok", base.label(s)))?]);
        } else {
            let mut phases = Vec::with_capacity(k);
            for j in 0..k {
                phases.push(b.state(format!("{}|r{j}", base.label(s)))?);
            }
            images.push(phases);
        }
    }
    let new_start = images[start.index()][0];
    let phase_rate = mu * k as f64;

    for s in base.states() {
        let from_images: &[StateId] = &images[s.index()];
        // Base transitions preserve the repair phase; leaving `start`
        // begins phase 0.
        for (c, rate) in base.generator().row_entries(s.index()) {
            if c == s.index() || rate <= 0.0 {
                continue;
            }
            let to = StateId(c);
            if s == start {
                let target = images[to.index()][0];
                b.rate(new_start, target, rate)?;
            } else {
                for (j, &img) in from_images.iter().enumerate() {
                    // A base transition into `start` (unusual for a
                    // reliability chain) abandons the repair clock.
                    let target = if to == start {
                        new_start
                    } else {
                        images[to.index()][j]
                    };
                    b.rate(img, target, rate)?;
                }
            }
        }
        // Repair phases advance; the last completes the hot swap.
        if s != start {
            for j in 0..k {
                let target = if j + 1 < k {
                    images[s.index()][j + 1]
                } else {
                    new_start
                };
                b.rate(images[s.index()][j], target, phase_rate)?;
            }
        }
    }

    Ok((b.build()?, new_start, images))
}

/// Probability mass on the images of `base_state` under a distribution
/// over the phase-expanded chain.
pub fn mass_on(images: &[Vec<StateId>], base_state: StateId, pi: &[f64]) -> f64 {
    images[base_state.index()]
        .iter()
        .map(|s| pi[s.index()])
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::steady::{steady_state, SteadyMethod};

    /// A pure-death base chain: up -> down at lambda.
    fn base() -> (Ctmc, StateId, StateId) {
        let mut b = CtmcBuilder::new();
        let up = b.state("up").unwrap();
        let down = b.state("down").unwrap();
        b.rate(up, down, 2e-5).unwrap();
        (b.build().unwrap(), up, down)
    }

    #[test]
    fn k1_reduces_to_exponential_repair() {
        let (chain, up, down) = base();
        let mu = 1.0 / 3.0;
        let (expanded, start, images) = with_erlang_repair(&chain, up, mu, 1).unwrap();
        assert_eq!(expanded.n_states(), 2);
        let pi = steady_state(&expanded, SteadyMethod::DirectLu).unwrap();
        let a = mass_on(&images, up, &pi);
        let expect = mu / (mu + 2e-5);
        assert!((a - expect).abs() < 1e-12, "{a} vs {expect}");
        assert_eq!(start.index(), images[up.index()][0].index());
        let _ = down;
    }

    #[test]
    fn alternating_renewal_insensitivity() {
        // For a single-failure system, stationary availability is
        // MTTF/(MTTF + MTTR) for *any* repair distribution — so it
        // must not move with k.
        let (chain, up, _) = base();
        let mu = 1.0 / 3.0;
        let mut prev: Option<f64> = None;
        for k in [1usize, 2, 4, 8, 16] {
            let (expanded, _, images) = with_erlang_repair(&chain, up, mu, k).unwrap();
            let pi = steady_state(&expanded, SteadyMethod::DirectLu).unwrap();
            let a = mass_on(&images, up, &pi);
            if let Some(p) = prev {
                assert!(
                    (a - p).abs() < 1e-12,
                    "k={k}: availability moved from {p} to {a}"
                );
            }
            prev = Some(a);
        }
    }

    #[test]
    fn state_count_scales_with_phases() {
        let (chain, up, _) = base();
        for k in 1..=4 {
            let (expanded, _, _) = with_erlang_repair(&chain, up, 0.5, k).unwrap();
            // 1 start image + k images of "down".
            assert_eq!(expanded.n_states(), 1 + k);
        }
    }

    #[test]
    fn multi_state_base_chain() {
        // up -> deg -> down; repair from any degraded state.
        let mut b = CtmcBuilder::new();
        let up = b.state("up").unwrap();
        let deg = b.state("deg").unwrap();
        let down = b.state("down").unwrap();
        b.rate(up, deg, 1e-3).unwrap();
        b.rate(deg, down, 5e-4).unwrap();
        let chain = b.build().unwrap();
        let mu = 0.25;
        let (expanded, _, images) = with_erlang_repair(&chain, up, mu, 3).unwrap();
        // 1 + 3 + 3 states; generator conservative.
        assert_eq!(expanded.n_states(), 7);
        for s in expanded.generator().row_sums() {
            assert!(s.abs() < 1e-15);
        }
        let pi = steady_state(&expanded, SteadyMethod::DirectLu).unwrap();
        let a_up = mass_on(&images, up, &pi);
        let a_down = mass_on(&images, down, &pi);
        assert!(a_up > 0.99, "mostly up: {a_up}");
        assert!(a_down < 5e-3, "rarely fully down: {a_down}");
        let total: f64 = pi.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_parameters() {
        let (chain, up, _) = base();
        assert!(with_erlang_repair(&chain, up, 0.0, 2).is_err());
        assert!(with_erlang_repair(&chain, up, -1.0, 2).is_err());
        assert!(with_erlang_repair(&chain, up, f64::NAN, 2).is_err());
        assert!(with_erlang_repair(&chain, up, 0.5, 0).is_err());
    }
}
