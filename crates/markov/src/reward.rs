//! Reward structures over chain states.
//!
//! Dependability metrics are rewards: *point availability* is the
//! expected value of an indicator reward (1 on operational states) at
//! time t; *reliability* is the same on a chain whose failure states
//! are absorbing; *interval availability* is the time-averaged
//! accumulated reward.

use crate::ctmc::{Ctmc, MarkovError, StateId};
use crate::transient::{transient_many, TransientOptions};
use crate::Result;

/// A per-state reward vector bound to a chain's state space.
#[derive(Debug, Clone)]
pub struct Rewards {
    values: Vec<f64>,
}

impl Rewards {
    /// Zero reward on every state of `chain`.
    pub fn zeros(chain: &Ctmc) -> Self {
        Rewards {
            values: vec![0.0; chain.n_states()],
        }
    }

    /// Indicator reward: 1.0 on the listed states, 0.0 elsewhere.
    pub fn indicator(chain: &Ctmc, states: &[StateId]) -> Result<Self> {
        let mut r = Self::zeros(chain);
        for &s in states {
            if s.index() >= r.values.len() {
                return Err(MarkovError::UnknownState { index: s.index() });
            }
            r.values[s.index()] = 1.0;
        }
        Ok(r)
    }

    /// Indicator reward on the complement of the listed states — the
    /// usual "operational" reward given a failed-state list.
    pub fn complement_indicator(chain: &Ctmc, failed: &[StateId]) -> Result<Self> {
        let mut r = Rewards {
            values: vec![1.0; chain.n_states()],
        };
        for &s in failed {
            if s.index() >= r.values.len() {
                return Err(MarkovError::UnknownState { index: s.index() });
            }
            r.values[s.index()] = 0.0;
        }
        Ok(r)
    }

    /// Set an individual state's reward.
    pub fn set(&mut self, s: StateId, value: f64) -> Result<()> {
        if s.index() >= self.values.len() {
            return Err(MarkovError::UnknownState { index: s.index() });
        }
        self.values[s.index()] = value;
        Ok(())
    }

    /// Expected reward under a probability vector.
    pub fn expect(&self, pi: &[f64]) -> Result<f64> {
        if pi.len() != self.values.len() {
            return Err(MarkovError::InvalidDistribution {
                reason: "length mismatch with reward vector",
            });
        }
        Ok(dra_linalg::vector::dot(&self.values, pi))
    }

    /// The raw reward vector.
    pub fn as_slice(&self) -> &[f64] {
        &self.values
    }
}

/// Expected instantaneous reward at each of several time points:
/// `E[r(X(t))]` for `t` in `times`.
pub fn expected_at_times(
    chain: &Ctmc,
    pi0: &[f64],
    rewards: &Rewards,
    times: &[f64],
    opts: TransientOptions,
) -> Result<Vec<f64>> {
    let sols = transient_many(chain, pi0, times, opts)?;
    sols.iter().map(|pi| rewards.expect(pi)).collect()
}

/// Accumulated reward over `[0, t]` by trapezoidal quadrature on a
/// uniform grid of `steps` intervals: `∫₀ᵗ E[r(X(s))] ds`.
///
/// Dividing by `t` yields interval availability. The grid trapezoid is
/// deliberate: it reuses the incremental multi-time transient solver,
/// and dependability rewards are smooth except at t=0.
pub fn accumulated(
    chain: &Ctmc,
    pi0: &[f64],
    rewards: &Rewards,
    t: f64,
    steps: usize,
    opts: TransientOptions,
) -> Result<f64> {
    if !t.is_finite() || t <= 0.0 {
        return Err(MarkovError::InvalidTime { t });
    }
    if steps == 0 {
        return Err(MarkovError::InvalidTime { t: 0.0 });
    }
    let times: Vec<f64> = (0..=steps).map(|i| t * i as f64 / steps as f64).collect();
    let vals = expected_at_times(chain, pi0, rewards, &times, opts)?;
    let h = t / steps as f64;
    let mut integral = 0.0;
    for w in vals.windows(2) {
        integral += 0.5 * (w[0] + w[1]) * h;
    }
    Ok(integral)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctmc::CtmcBuilder;
    use crate::steady::{steady_state, SteadyMethod};

    fn repairable(lambda: f64, mu: f64) -> (Ctmc, StateId, StateId) {
        let mut b = CtmcBuilder::new();
        let up = b.state("up").unwrap();
        let down = b.state("down").unwrap();
        b.rate(up, down, lambda).unwrap();
        b.rate(down, up, mu).unwrap();
        (b.build().unwrap(), up, down)
    }

    #[test]
    fn indicator_and_complement() {
        let (c, up, down) = repairable(0.1, 1.0);
        let r = Rewards::indicator(&c, &[up]).unwrap();
        assert_eq!(r.as_slice(), &[1.0, 0.0]);
        let rc = Rewards::complement_indicator(&c, &[down]).unwrap();
        assert_eq!(rc.as_slice(), r.as_slice());
    }

    #[test]
    fn expect_is_dot_product() {
        let (c, up, _) = repairable(0.1, 1.0);
        let mut r = Rewards::zeros(&c);
        r.set(up, 10.0).unwrap();
        assert_eq!(r.expect(&[0.25, 0.75]).unwrap(), 2.5);
        assert!(r.expect(&[1.0]).is_err());
    }

    #[test]
    fn point_availability_converges_to_steady_state() {
        let (c, up, down) = repairable(0.2, 2.0);
        let pi0 = c.point_mass(up).unwrap();
        let r = Rewards::complement_indicator(&c, &[down]).unwrap();
        let vals =
            expected_at_times(&c, &pi0, &r, &[0.0, 100.0], TransientOptions::default()).unwrap();
        assert_eq!(vals[0], 1.0);
        let ss = steady_state(&c, SteadyMethod::DirectLu).unwrap();
        let a_inf = r.expect(&ss).unwrap();
        assert!((vals[1] - a_inf).abs() < 1e-10);
    }

    #[test]
    fn interval_availability_between_point_values() {
        let (c, up, down) = repairable(0.5, 1.0);
        let pi0 = c.point_mass(up).unwrap();
        let r = Rewards::complement_indicator(&c, &[down]).unwrap();
        let t = 10.0;
        let acc = accumulated(&c, &pi0, &r, t, 400, TransientOptions::default()).unwrap();
        let interval_avail = acc / t;
        // Interval availability starts at 1 and decays toward the
        // steady-state value; it must lie strictly between them.
        let ss = steady_state(&c, SteadyMethod::DirectLu).unwrap();
        let a_inf = r.expect(&ss).unwrap();
        assert!(interval_avail > a_inf && interval_avail < 1.0);
    }

    #[test]
    fn accumulated_validates_inputs() {
        let (c, up, _) = repairable(0.5, 1.0);
        let pi0 = c.point_mass(up).unwrap();
        let r = Rewards::zeros(&c);
        assert!(accumulated(&c, &pi0, &r, -1.0, 10, TransientOptions::default()).is_err());
        assert!(accumulated(&c, &pi0, &r, 1.0, 0, TransientOptions::default()).is_err());
    }

    #[test]
    fn unknown_state_rejected() {
        let (c, _, _) = repairable(0.5, 1.0);
        let mut r = Rewards::zeros(&c);
        assert!(r.set(StateId(7), 1.0).is_err());
        assert!(Rewards::indicator(&c, &[StateId(9)]).is_err());
    }
}
