//! Steady-state distributions: π Q = 0, Σπ = 1.
//!
//! All methods require a chain with a *unique* stationary distribution
//! (irreducible, as the paper's availability models with repair are).
//! Reducible chains make the balance system singular, which the direct
//! method reports as an error rather than returning garbage.

use crate::ctmc::{Ctmc, MarkovError};
use crate::Result;
use dra_linalg::iterative::{self, IterOptions};
use dra_linalg::DenseMatrix;

/// Which algorithm computes the stationary distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SteadyMethod {
    /// Dense LU on the balance equations with one equation replaced by
    /// the normalization constraint. Exact (to rounding); the default
    /// for the paper's model sizes.
    DirectLu,
    /// Gauss–Seidel on the same (replaced) system. For chains too large
    /// to densify.
    GaussSeidel,
    /// Power iteration on the uniformized DTMC. Never needs a matrix
    /// factorization; slowest convergence.
    Power,
}

/// Compute the stationary distribution of `chain` using `method`.
pub fn steady_state(chain: &Ctmc, method: SteadyMethod) -> Result<Vec<f64>> {
    let n = chain.n_states();
    if n == 1 {
        return Ok(vec![1.0]);
    }
    match method {
        SteadyMethod::DirectLu => direct_lu(chain),
        SteadyMethod::GaussSeidel => gauss_seidel(chain),
        SteadyMethod::Power => power(chain),
    }
}

/// Build the dense system `A x = b` encoding `Q^T x = 0` with row
/// `anchor` replaced by `1^T x = 1`.
fn balance_system(chain: &Ctmc, anchor: usize) -> (DenseMatrix, Vec<f64>) {
    let n = chain.n_states();
    let q = chain.generator();
    let mut a = DenseMatrix::zeros(n, n);
    for r in 0..n {
        for (c, v) in q.row_entries(r) {
            // Q^T: entry (c, r) gets Q[r][c].
            if c != anchor {
                a.add_to(c, r, v);
            }
        }
    }
    for c in 0..n {
        a.set(anchor, c, 1.0);
    }
    let mut b = vec![0.0; n];
    b[anchor] = 1.0;
    (a, b)
}

fn direct_lu(chain: &Ctmc) -> Result<Vec<f64>> {
    let (a, b) = balance_system(chain, 0);
    let mut x = a.solve(&b)?;
    sanitize(&mut x)?;
    Ok(x)
}

fn gauss_seidel(chain: &Ctmc) -> Result<Vec<f64>> {
    // The replaced-row system has diagonal entries −exit_i (nonzero for
    // non-absorbing states) and 1.0 on the anchor row. Build it sparse.
    let n = chain.n_states();
    let q = chain.generator();
    let anchor = 0usize;
    let mut coo = dra_linalg::CooBuilder::new(n, n);
    for r in 0..n {
        for (c, v) in q.row_entries(r) {
            if c != anchor {
                coo.push(c, r, v)?;
            }
        }
    }
    for c in 0..n {
        coo.push(anchor, c, 1.0)?;
    }
    let a = coo.build();
    let mut b = vec![0.0; n];
    b[anchor] = 1.0;
    let sol = iterative::gauss_seidel(&a, &b, IterOptions::default())?;
    let mut x = sol.x;
    sanitize(&mut x)?;
    Ok(x)
}

fn power(chain: &Ctmc) -> Result<Vec<f64>> {
    let lambda = chain.max_exit_rate() * 1.05;
    if lambda == 0.0 {
        // No transitions at all: every distribution is stationary; the
        // uniform one is the canonical answer.
        let n = chain.n_states();
        return Ok(vec![1.0 / n as f64; n]);
    }
    let p = chain.uniformized(lambda)?;
    let sol = iterative::power_iteration(
        &p,
        IterOptions {
            tol: 1e-14,
            max_iters: 5_000_000,
        },
    )?;
    Ok(sol.x)
}

/// Clamp tiny negative rounding artifacts and renormalize; reject
/// genuinely negative solutions (symptom of a reducible chain slipping
/// past the singularity check).
fn sanitize(x: &mut [f64]) -> Result<()> {
    for v in x.iter_mut() {
        if *v < 0.0 {
            if *v < -1e-9 {
                return Err(MarkovError::BadStructure {
                    reason: "balance solution has negative components; \
                             the chain likely has no unique stationary distribution",
                });
            }
            *v = 0.0;
        }
    }
    if !dra_linalg::vector::normalize_l1(x) {
        return Err(MarkovError::BadStructure {
            reason: "balance solution sums to zero",
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctmc::CtmcBuilder;

    fn repairable(lambda: f64, mu: f64) -> Ctmc {
        let mut b = CtmcBuilder::new();
        let up = b.state("up").unwrap();
        let down = b.state("down").unwrap();
        b.rate(up, down, lambda).unwrap();
        b.rate(down, up, mu).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn two_state_closed_form_all_methods() {
        let (l, m) = (2e-5, 1.0 / 3.0);
        let c = repairable(l, m);
        let expect_up = m / (l + m);
        for method in [
            SteadyMethod::DirectLu,
            SteadyMethod::GaussSeidel,
            SteadyMethod::Power,
        ] {
            let pi = steady_state(&c, method).unwrap();
            assert!(
                (pi[0] - expect_up).abs() < 1e-10,
                "{method:?}: got {} want {expect_up}",
                pi[0]
            );
        }
    }

    #[test]
    fn mm1k_queue_is_geometric() {
        // M/M/1/K birth-death chain: pi_i proportional to rho^i.
        let (lam, mu, k) = (0.6, 1.0, 5usize);
        let rho: f64 = lam / mu;
        let mut b = CtmcBuilder::new();
        let states: Vec<_> = (0..=k).map(|i| b.state(format!("q{i}")).unwrap()).collect();
        for i in 0..k {
            b.rate(states[i], states[i + 1], lam).unwrap();
            b.rate(states[i + 1], states[i], mu).unwrap();
        }
        let c = b.build().unwrap();
        let norm: f64 = (0..=k).map(|i| rho.powi(i as i32)).sum();
        for method in [
            SteadyMethod::DirectLu,
            SteadyMethod::GaussSeidel,
            SteadyMethod::Power,
        ] {
            let pi = steady_state(&c, method).unwrap();
            for i in 0..=k {
                let expect = rho.powi(i as i32) / norm;
                assert!(
                    (pi[i] - expect).abs() < 1e-8,
                    "{method:?} state {i}: {} vs {expect}",
                    pi[i]
                );
            }
        }
    }

    #[test]
    fn single_state_chain() {
        let mut b = CtmcBuilder::new();
        b.state("only").unwrap();
        let c = b.build().unwrap();
        assert_eq!(steady_state(&c, SteadyMethod::DirectLu).unwrap(), vec![1.0]);
    }

    #[test]
    fn steady_state_agrees_with_long_horizon_transient() {
        let c = repairable(0.05, 0.4);
        let pi_ss = steady_state(&c, SteadyMethod::DirectLu).unwrap();
        let pi0 = c.point_mass(c.find("up").unwrap()).unwrap();
        let pi_t =
            crate::transient::transient(&c, &pi0, 1_000.0, crate::TransientOptions::default())
                .unwrap();
        for i in 0..2 {
            assert!((pi_ss[i] - pi_t[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn stationarity_fixed_point() {
        // pi Q must be (numerically) zero.
        let c = repairable(0.3, 0.9);
        let pi = steady_state(&c, SteadyMethod::DirectLu).unwrap();
        let flow = c.generator().vecmat(&pi).unwrap();
        for v in flow {
            assert!(v.abs() < 1e-12);
        }
    }

    #[test]
    fn reducible_chain_reports_structure_error() {
        // Two disconnected repairable pairs: no unique stationary dist.
        let mut b = CtmcBuilder::new();
        let a0 = b.state("a0").unwrap();
        let a1 = b.state("a1").unwrap();
        let c0 = b.state("c0").unwrap();
        let c1 = b.state("c1").unwrap();
        b.rate(a0, a1, 1.0).unwrap();
        b.rate(a1, a0, 1.0).unwrap();
        b.rate(c0, c1, 1.0).unwrap();
        b.rate(c1, c0, 1.0).unwrap();
        let chain = b.build().unwrap();
        // Direct LU must either flag singularity or (rounding permitting)
        // some structure error; it must never return silently.
        match steady_state(&chain, SteadyMethod::DirectLu) {
            Err(_) => {}
            Ok(pi) => {
                // If rounding let LU "solve" it, the result must at least
                // be a valid distribution satisfying piQ=0 — verify rather
                // than accept silently.
                let flow = chain.generator().vecmat(&pi).unwrap();
                assert!(
                    flow.iter().all(|v| v.abs() < 1e-8),
                    "non-stationary output accepted"
                );
            }
        }
    }
}
