//! Transient solution π(t): uniformization and an RK45 cross-check.
//!
//! Uniformization writes `π(t) = Σ_k Pois(Λt; k) · π0 Pᵏ` where
//! `P = I + Q/Λ` and `Λ` is at least the largest exit rate. It is the
//! standard method for dependability models because every term is a
//! convex combination — no subtractive cancellation, probabilities stay
//! in `[0,1]` by construction.
//!
//! Two practical measures make it robust for the paper's horizons
//! (t up to 60 000 h with repair rates up to 1/3 per hour, i.e.
//! Λt ≈ 2·10⁴):
//!
//! 1. **Stepping** — the horizon is split so each step has
//!    `Λ·Δt ≤ max_step_mass` (default 64), keeping the Poisson weights
//!    comfortably inside `f64` range without Fox–Glynn scaling.
//! 2. **Steady-state detection** — when successive DTMC iterates stop
//!    moving (max-norm below `ss_tol`), the remaining Poisson tail is
//!    applied in one shot. Chains with repair reach this fixed point
//!    quickly, collapsing the cost of long horizons.

use crate::ctmc::{Ctmc, MarkovError};
use crate::Result;
use dra_linalg::vector;

/// Options for the uniformization solver.
#[derive(Debug, Clone, Copy)]
pub struct TransientOptions {
    /// Poisson tail truncation: terms are accumulated until their
    /// cumulative weight reaches `1 - epsilon`.
    pub epsilon: f64,
    /// Steady-state detection threshold on successive DTMC iterates.
    pub ss_tol: f64,
    /// Maximum Poisson mean per internal step (`Λ·Δt` cap).
    pub max_step_mass: f64,
}

impl Default for TransientOptions {
    fn default() -> Self {
        TransientOptions {
            epsilon: 1e-12,
            ss_tol: 1e-14,
            max_step_mass: 64.0,
        }
    }
}

/// Compute π(t) for a single time point by uniformization.
pub fn transient(chain: &Ctmc, pi0: &[f64], t: f64, opts: TransientOptions) -> Result<Vec<f64>> {
    let mut out = transient_many(chain, pi0, &[t], opts)?;
    Ok(out.pop().expect("one time point requested"))
}

/// Compute π(t) for several time points in one pass.
///
/// `times` must be sorted ascending and nonnegative; the solver
/// propagates incrementally from each time to the next, so a full
/// reliability curve costs barely more than its last point.
pub fn transient_many(
    chain: &Ctmc,
    pi0: &[f64],
    times: &[f64],
    opts: TransientOptions,
) -> Result<Vec<Vec<f64>>> {
    chain.check_distribution(pi0)?;
    for w in times.windows(2) {
        if w[0] > w[1] {
            return Err(MarkovError::InvalidTime { t: w[1] });
        }
    }
    if let Some(&t) = times.first() {
        if t.is_nan() || t < 0.0 || !times.iter().all(|t| t.is_finite()) {
            return Err(MarkovError::InvalidTime { t });
        }
    }

    let max_exit = chain.max_exit_rate();
    // A chain with no transitions never moves.
    if max_exit == 0.0 {
        return Ok(times.iter().map(|_| pi0.to_vec()).collect());
    }
    // Inflate Λ a little: guarantees self-loops (aperiodicity) and gives
    // slightly better steady-state detection behaviour.
    let lambda = max_exit * 1.02;
    let p = chain.uniformized(lambda)?;

    let mut results = Vec::with_capacity(times.len());
    let mut pi = pi0.to_vec();
    let mut prev_t = 0.0_f64;
    let mut ws = UniformWorkspace::new(pi.len());

    for &t in times {
        let mut remaining = t - prev_t;
        while remaining > 0.0 {
            let step = remaining.min(opts.max_step_mass / lambda);
            uniformization_step(&p, &mut pi, &mut ws, lambda * step, opts)?;
            remaining -= step;
        }
        prev_t = t;
        results.push(pi.clone());
    }
    Ok(results)
}

/// Scratch vectors for [`uniformization_step`], hoisted out of the
/// per-step loop so a whole time grid (a Fig 6/7 sweep is thousands of
/// internal steps) reuses one workspace allocation.
#[derive(Debug)]
struct UniformWorkspace {
    /// `vecmat` target, swapped with `v` each DTMC iteration.
    scratch: Vec<f64>,
    /// Accumulator for the Poisson-weighted sum; swapped into `pi`.
    out: Vec<f64>,
    /// Current DTMC iterate `π0 Pᵏ`.
    v: Vec<f64>,
}

impl UniformWorkspace {
    fn new(n: usize) -> Self {
        UniformWorkspace {
            scratch: vec![0.0; n],
            out: vec![0.0; n],
            v: vec![0.0; n],
        }
    }
}

/// Advance `pi` by one uniformization step with Poisson mean `m`.
fn uniformization_step(
    p: &dra_linalg::CsrMatrix,
    pi: &mut Vec<f64>,
    ws: &mut UniformWorkspace,
    m: f64,
    opts: TransientOptions,
) -> Result<()> {
    debug_assert!(m.is_finite() && m >= 0.0);
    if m == 0.0 {
        return Ok(());
    }
    let UniformWorkspace { scratch, out, v } = ws;
    out.fill(0.0);

    // Poisson weights computed iteratively: w_0 = e^-m, w_{k+1} = w_k * m/(k+1).
    let mut weight = (-m).exp();
    let mut cum = weight;
    vector::axpy(weight, pi, out);

    // Generous cap: mean + 10 sqrt(mean) + 64 covers epsilon = 1e-12
    // for any m <= max_step_mass.
    let k_cap = (m + 10.0 * m.sqrt() + 64.0).ceil() as usize;
    let mut k = 0usize;
    v.copy_from_slice(pi);

    while cum < 1.0 - opts.epsilon && k < k_cap {
        // v <- v P
        p.vecmat_into(v, scratch)?;
        std::mem::swap(v, scratch);
        k += 1;
        weight *= m / k as f64;
        cum += weight;
        vector::axpy(weight, v, out);

        // Steady-state shortcut: once vP == v, all further terms add
        // the same vector; fold the entire Poisson tail in at once.
        if vector::dist_inf(v, scratch) < opts.ss_tol {
            let tail = (1.0 - cum).max(0.0);
            vector::axpy(tail, v, out);
            cum = 1.0;
            break;
        }
    }

    // Compensate any truncated tail mass so the result stays a
    // distribution (the truncation error is below epsilon by design).
    if cum > 0.0 && cum < 1.0 {
        vector::scale(1.0 / cum, out);
    }
    std::mem::swap(pi, out);
    Ok(())
}

/// Options for the RK45 integrator.
#[derive(Debug, Clone, Copy)]
pub struct OdeOptions {
    /// Local error tolerance (per component, mixed abs/rel).
    pub tol: f64,
    /// Initial step size; adapted from there.
    pub h0: f64,
    /// Smallest step before the integrator gives up.
    pub h_min: f64,
    /// Maximum number of accepted+rejected steps.
    pub max_steps: usize,
}

impl Default for OdeOptions {
    fn default() -> Self {
        OdeOptions {
            tol: 1e-10,
            h0: 1.0,
            h_min: 1e-12,
            max_steps: 50_000_000,
        }
    }
}

/// Compute π(t) by integrating the Kolmogorov forward equations
/// `dπ/dt = π Q` with an adaptive Cash–Karp RK45 scheme.
///
/// This exists to cross-validate uniformization: the two methods share
/// no code beyond the generator, so agreement to many digits is strong
/// evidence both are right. RK45 on stiff dependability models is slow
/// (steps shrink to ~1/Λ); prefer [`transient`] in production use.
pub fn transient_rk45(chain: &Ctmc, pi0: &[f64], t: f64, opts: OdeOptions) -> Result<Vec<f64>> {
    chain.check_distribution(pi0)?;
    if !t.is_finite() || t < 0.0 {
        return Err(MarkovError::InvalidTime { t });
    }
    let q = chain.generator();
    let n = pi0.len();
    let mut y = pi0.to_vec();
    if t == 0.0 {
        return Ok(y);
    }

    // Cash–Karp coefficients.
    const B2: [f64; 1] = [1.0 / 5.0];
    const B3: [f64; 2] = [3.0 / 40.0, 9.0 / 40.0];
    const B4: [f64; 3] = [3.0 / 10.0, -9.0 / 10.0, 6.0 / 5.0];
    const B5: [f64; 4] = [-11.0 / 54.0, 5.0 / 2.0, -70.0 / 27.0, 35.0 / 27.0];
    const B6: [f64; 5] = [
        1631.0 / 55296.0,
        175.0 / 512.0,
        575.0 / 13824.0,
        44275.0 / 110592.0,
        253.0 / 4096.0,
    ];
    const C5: [f64; 6] = [
        37.0 / 378.0,
        0.0,
        250.0 / 621.0,
        125.0 / 594.0,
        0.0,
        512.0 / 1771.0,
    ];
    const C4: [f64; 6] = [
        2825.0 / 27648.0,
        0.0,
        18575.0 / 48384.0,
        13525.0 / 55296.0,
        277.0 / 14336.0,
        1.0 / 4.0,
    ];

    let deriv = |y: &[f64], out: &mut Vec<f64>| -> Result<()> {
        q.vecmat_into(y, out)?;
        Ok(())
    };

    let mut h = opts.h0.min(t);
    let mut time = 0.0_f64;
    let mut k: Vec<Vec<f64>> = (0..6).map(|_| vec![0.0; n]).collect();
    let mut ytmp = vec![0.0; n];
    let mut steps = 0usize;

    while time < t {
        steps += 1;
        if steps > opts.max_steps {
            return Err(MarkovError::Linalg(
                dra_linalg::LinalgError::NoConvergence {
                    iterations: opts.max_steps,
                    residual: t - time,
                },
            ));
        }
        if time + h > t {
            h = t - time;
        }

        deriv(&y, &mut k[0])?;
        stage(&y, &mut ytmp, &k, &B2, h);
        deriv(&ytmp, &mut k[1])?;
        stage(&y, &mut ytmp, &k, &B3, h);
        deriv(&ytmp, &mut k[2])?;
        stage(&y, &mut ytmp, &k, &B4, h);
        deriv(&ytmp, &mut k[3])?;
        stage(&y, &mut ytmp, &k, &B5, h);
        deriv(&ytmp, &mut k[4])?;
        stage(&y, &mut ytmp, &k, &B6, h);
        deriv(&ytmp, &mut k[5])?;

        // 5th order solution and embedded 4th order error estimate.
        let mut err = 0.0_f64;
        for i in 0..n {
            let mut y5 = y[i];
            let mut y4 = y[i];
            for s in 0..6 {
                y5 += h * C5[s] * k[s][i];
                y4 += h * C4[s] * k[s][i];
            }
            ytmp[i] = y5;
            let scale = 1e-12 + y5.abs();
            err = err.max(((y5 - y4) / scale).abs());
        }

        if err <= opts.tol {
            time += h;
            std::mem::swap(&mut y, &mut ytmp);
            // Probabilities drift by rounding; renormalize gently.
            vector::normalize_l1(&mut y);
        }

        // Standard step-size controller with safety factor.
        let factor = if err > 0.0 {
            0.9 * (opts.tol / err).powf(0.2)
        } else {
            4.0
        };
        h *= factor.clamp(0.2, 4.0);
        if h < opts.h_min {
            return Err(MarkovError::Linalg(
                dra_linalg::LinalgError::NoConvergence {
                    iterations: steps,
                    residual: h,
                },
            ));
        }
    }
    Ok(y)
}

/// Compute π(t) via the dense matrix exponential: `π(t) = π(0)·e^{Qt}`.
///
/// The third independent transient method (after uniformization and
/// RK45) — it shares no numerical machinery with either. Densifies the
/// generator, so it is only suitable for small chains (the paper's
/// models qualify comfortably).
pub fn transient_expm(chain: &Ctmc, pi0: &[f64], t: f64) -> Result<Vec<f64>> {
    chain.check_distribution(pi0)?;
    if !t.is_finite() || t < 0.0 {
        return Err(MarkovError::InvalidTime { t });
    }
    let mut qt = chain.generator().to_dense();
    for r in 0..qt.rows() {
        vector::scale(t, qt.row_mut(r));
    }
    let p = dra_linalg::expm(&qt)?;
    let mut pi = p.vecmat(pi0)?;
    // e^{Qt} is stochastic up to rounding; tidy the result.
    for v in pi.iter_mut() {
        if *v < 0.0 && *v > -1e-12 {
            *v = 0.0;
        }
    }
    vector::normalize_l1(&mut pi);
    Ok(pi)
}

/// Form `ytmp = y + h * Σ coeffs[s] * k[s]`.
fn stage(y: &[f64], ytmp: &mut [f64], k: &[Vec<f64>], coeffs: &[f64], h: f64) {
    ytmp.copy_from_slice(y);
    for (s, &c) in coeffs.iter().enumerate() {
        if c != 0.0 {
            vector::axpy(h * c, &k[s], ytmp);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctmc::CtmcBuilder;

    /// Two-state availability model with closed-form transient solution:
    /// `A(t) = μ/(λ+μ) + λ/(λ+μ) e^{-(λ+μ)t}` starting from "up".
    fn repairable(lambda: f64, mu: f64) -> Ctmc {
        let mut b = CtmcBuilder::new();
        let up = b.state("up").unwrap();
        let down = b.state("down").unwrap();
        b.rate(up, down, lambda).unwrap();
        b.rate(down, up, mu).unwrap();
        b.build().unwrap()
    }

    fn closed_form_avail(lambda: f64, mu: f64, t: f64) -> f64 {
        mu / (lambda + mu) + lambda / (lambda + mu) * (-(lambda + mu) * t).exp()
    }

    #[test]
    fn uniformization_matches_closed_form() {
        let (l, m) = (0.3, 1.5);
        let c = repairable(l, m);
        let pi0 = c.point_mass(c.find("up").unwrap()).unwrap();
        for &t in &[0.0, 0.1, 1.0, 5.0, 50.0] {
            let pi = transient(&c, &pi0, t, TransientOptions::default()).unwrap();
            let expect = closed_form_avail(l, m, t);
            assert!(
                (pi[0] - expect).abs() < 1e-10,
                "t={t}: got {} expected {expect}",
                pi[0]
            );
        }
    }

    #[test]
    fn uniformization_handles_stiff_long_horizon() {
        // Paper-like rates: failures ~1e-5/h, repair 1/3 per hour, 60 kh.
        let (l, m) = (2e-5, 1.0 / 3.0);
        let c = repairable(l, m);
        let pi0 = c.point_mass(c.find("up").unwrap()).unwrap();
        let pi = transient(&c, &pi0, 60_000.0, TransientOptions::default()).unwrap();
        let expect = closed_form_avail(l, m, 60_000.0);
        assert!((pi[0] - expect).abs() < 1e-9, "got {} want {expect}", pi[0]);
    }

    #[test]
    fn pure_death_reliability_is_exponential() {
        let mut b = CtmcBuilder::new();
        let up = b.state("up").unwrap();
        let dead = b.state("dead").unwrap();
        b.rate(up, dead, 2e-5).unwrap();
        let c = b.build().unwrap();
        let pi0 = c.point_mass(up).unwrap();
        let pi = transient(&c, &pi0, 40_000.0, TransientOptions::default()).unwrap();
        let expect = (-0.8_f64).exp();
        assert!((pi[0] - expect).abs() < 1e-10);
        assert!((pi[1] - (1.0 - expect)).abs() < 1e-10);
    }

    #[test]
    fn transient_many_is_consistent_with_single_calls() {
        let c = repairable(0.2, 1.0);
        let pi0 = c.point_mass(c.find("up").unwrap()).unwrap();
        let times = [0.5, 1.0, 2.0, 8.0];
        let many = transient_many(&c, &pi0, &times, TransientOptions::default()).unwrap();
        for (i, &t) in times.iter().enumerate() {
            let single = transient(&c, &pi0, t, TransientOptions::default()).unwrap();
            assert!((many[i][0] - single[0]).abs() < 1e-11);
        }
    }

    #[test]
    fn transient_rejects_bad_inputs() {
        let c = repairable(0.2, 1.0);
        let pi0 = c.point_mass(c.find("up").unwrap()).unwrap();
        assert!(transient(&c, &pi0, -1.0, TransientOptions::default()).is_err());
        assert!(transient(&c, &pi0, f64::NAN, TransientOptions::default()).is_err());
        assert!(transient(&c, &[1.0], 1.0, TransientOptions::default()).is_err());
        assert!(
            transient_many(&c, &pi0, &[2.0, 1.0], TransientOptions::default()).is_err(),
            "unsorted times must be rejected"
        );
    }

    #[test]
    fn no_transition_chain_is_constant() {
        let mut b = CtmcBuilder::new();
        let a = b.state("a").unwrap();
        b.state("b").unwrap();
        let c = b.build().unwrap();
        let pi0 = c.point_mass(a).unwrap();
        let pi = transient(&c, &pi0, 100.0, TransientOptions::default()).unwrap();
        assert_eq!(pi, pi0);
    }

    #[test]
    fn result_is_a_distribution() {
        let c = repairable(0.7, 0.9);
        let pi0 = c.point_mass(c.find("up").unwrap()).unwrap();
        for &t in &[0.3, 3.0, 30.0, 300.0] {
            let pi = transient(&c, &pi0, t, TransientOptions::default()).unwrap();
            let sum: f64 = pi.iter().sum();
            assert!((sum - 1.0).abs() < 1e-12);
            assert!(pi.iter().all(|&p| (0.0..=1.0 + 1e-12).contains(&p)));
        }
    }

    #[test]
    fn rk45_matches_closed_form() {
        let (l, m) = (0.3, 1.5);
        let c = repairable(l, m);
        let pi0 = c.point_mass(c.find("up").unwrap()).unwrap();
        for &t in &[0.1, 1.0, 10.0] {
            let pi = transient_rk45(&c, &pi0, t, OdeOptions::default()).unwrap();
            let expect = closed_form_avail(l, m, t);
            assert!(
                (pi[0] - expect).abs() < 1e-8,
                "t={t}: got {} expected {expect}",
                pi[0]
            );
        }
    }

    #[test]
    fn rk45_and_uniformization_agree() {
        // Three-state chain with no closed form handy.
        let mut b = CtmcBuilder::new();
        let s0 = b.state("s0").unwrap();
        let s1 = b.state("s1").unwrap();
        let s2 = b.state("s2").unwrap();
        b.rate(s0, s1, 0.8).unwrap();
        b.rate(s1, s2, 0.4).unwrap();
        b.rate(s2, s0, 1.1).unwrap();
        b.rate(s1, s0, 0.2).unwrap();
        let c = b.build().unwrap();
        let pi0 = c.point_mass(s0).unwrap();
        let a = transient(&c, &pi0, 3.7, TransientOptions::default()).unwrap();
        let b2 = transient_rk45(&c, &pi0, 3.7, OdeOptions::default()).unwrap();
        for i in 0..3 {
            assert!(
                (a[i] - b2[i]).abs() < 1e-7,
                "state {i}: {} vs {}",
                a[i],
                b2[i]
            );
        }
    }

    #[test]
    fn rk45_t_zero_is_identity() {
        let c = repairable(0.5, 0.5);
        let pi0 = c.point_mass(c.find("up").unwrap()).unwrap();
        assert_eq!(
            transient_rk45(&c, &pi0, 0.0, OdeOptions::default()).unwrap(),
            pi0
        );
    }

    #[test]
    fn expm_matches_closed_form() {
        let (l, m) = (0.3, 1.5);
        let c = repairable(l, m);
        let pi0 = c.point_mass(c.find("up").unwrap()).unwrap();
        for &t in &[0.0, 0.5, 3.0, 20.0] {
            let pi = transient_expm(&c, &pi0, t).unwrap();
            let expect = closed_form_avail(l, m, t);
            assert!(
                (pi[0] - expect).abs() < 1e-12,
                "t={t}: {} vs {expect}",
                pi[0]
            );
        }
    }

    #[test]
    fn three_methods_agree() {
        // Uniformization, RK45, and the matrix exponential share no
        // numerical machinery; agreement pins the transient solution.
        let mut b = CtmcBuilder::new();
        let s0 = b.state("s0").unwrap();
        let s1 = b.state("s1").unwrap();
        let s2 = b.state("s2").unwrap();
        let s3 = b.state("s3").unwrap();
        b.rate(s0, s1, 0.9).unwrap();
        b.rate(s1, s2, 0.5).unwrap();
        b.rate(s2, s3, 0.3).unwrap();
        b.rate(s3, s0, 1.4).unwrap();
        b.rate(s2, s0, 0.2).unwrap();
        let c = b.build().unwrap();
        let pi0 = c.point_mass(s0).unwrap();
        let t = 2.6;
        let uni = transient(&c, &pi0, t, TransientOptions::default()).unwrap();
        let ode = transient_rk45(&c, &pi0, t, OdeOptions::default()).unwrap();
        let exp = transient_expm(&c, &pi0, t).unwrap();
        for i in 0..4 {
            assert!((uni[i] - exp[i]).abs() < 1e-10, "uni vs expm at {i}");
            assert!((ode[i] - exp[i]).abs() < 1e-7, "rk45 vs expm at {i}");
        }
    }

    #[test]
    fn expm_rejects_bad_time() {
        let c = repairable(0.5, 0.5);
        let pi0 = c.point_mass(c.find("up").unwrap()).unwrap();
        assert!(transient_expm(&c, &pi0, -1.0).is_err());
        assert!(transient_expm(&c, &pi0, f64::NAN).is_err());
    }
}
