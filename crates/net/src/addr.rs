//! IPv4 addresses and prefixes.
//!
//! A tiny purpose-built type instead of `std::net::Ipv4Addr` because
//! the FIBs need bit arithmetic (`nth_bit`, masking, covering checks)
//! that std doesn't expose, and the traffic generators build addresses
//! from raw `u32`s on the hot path.

use std::fmt;
use std::str::FromStr;

/// An IPv4 address as a plain `u32` in host order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ipv4Addr(pub u32);

impl Ipv4Addr {
    /// Build from dotted-quad octets.
    pub const fn from_octets(a: u8, b: u8, c: u8, d: u8) -> Self {
        Ipv4Addr(((a as u32) << 24) | ((b as u32) << 16) | ((c as u32) << 8) | d as u32)
    }

    /// The four octets, most significant first.
    pub const fn octets(self) -> [u8; 4] {
        [
            (self.0 >> 24) as u8,
            (self.0 >> 16) as u8,
            (self.0 >> 8) as u8,
            self.0 as u8,
        ]
    }

    /// The `n`-th bit counted from the most significant (bit 0).
    ///
    /// # Panics
    /// Panics when `n >= 32`.
    #[inline]
    pub fn bit(self, n: u8) -> bool {
        assert!(n < 32, "bit index out of range");
        (self.0 >> (31 - n)) & 1 == 1
    }
}

impl fmt::Display for Ipv4Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.octets();
        write!(f, "{}.{}.{}.{}", o[0], o[1], o[2], o[3])
    }
}

/// Error parsing an address or prefix from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddrParseError(pub String);

impl fmt::Display for AddrParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid address/prefix: {}", self.0)
    }
}
impl std::error::Error for AddrParseError {}

impl FromStr for Ipv4Addr {
    type Err = AddrParseError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let parts: Vec<&str> = s.split('.').collect();
        if parts.len() != 4 {
            return Err(AddrParseError(s.to_string()));
        }
        let mut octets = [0u8; 4];
        for (i, p) in parts.iter().enumerate() {
            octets[i] = p.parse().map_err(|_| AddrParseError(s.to_string()))?;
        }
        Ok(Ipv4Addr::from_octets(
            octets[0], octets[1], octets[2], octets[3],
        ))
    }
}

/// An IPv4 prefix: an address plus a mask length in `0..=32`.
///
/// The address is canonicalized at construction — bits beyond the mask
/// are cleared — so two spellings of the same prefix compare equal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ipv4Prefix {
    addr: Ipv4Addr,
    len: u8,
}

impl Ipv4Prefix {
    /// Construct, canonicalizing the host bits to zero.
    ///
    /// # Panics
    /// Panics when `len > 32`.
    pub fn new(addr: Ipv4Addr, len: u8) -> Self {
        assert!(len <= 32, "prefix length out of range");
        Ipv4Prefix {
            addr: Ipv4Addr(addr.0 & Self::mask(len)),
            len,
        }
    }

    /// The default route `0.0.0.0/0`.
    pub const fn default_route() -> Self {
        Ipv4Prefix {
            addr: Ipv4Addr(0),
            len: 0,
        }
    }

    /// Network mask for a given length.
    #[inline]
    pub fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len)
        }
    }

    /// The canonical network address.
    #[inline]
    pub fn addr(self) -> Ipv4Addr {
        self.addr
    }

    /// Mask length.
    // `len` here is a mask length, not a container size; an `is_empty`
    // would be meaningless (see `is_default` for the /0 case).
    #[allow(clippy::len_without_is_empty)]
    #[inline]
    pub fn len(self) -> u8 {
        self.len
    }

    /// True for the zero-length default route.
    #[inline]
    pub fn is_default(self) -> bool {
        self.len == 0
    }

    /// Does this prefix cover `addr`?
    #[inline]
    pub fn contains(self, addr: Ipv4Addr) -> bool {
        (addr.0 & Self::mask(self.len)) == self.addr.0
    }

    /// Does this prefix cover (is it a supernet of, or equal to) `other`?
    pub fn covers(self, other: Ipv4Prefix) -> bool {
        self.len <= other.len && self.contains(other.addr)
    }
}

impl fmt::Display for Ipv4Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.addr, self.len)
    }
}

impl FromStr for Ipv4Prefix {
    type Err = AddrParseError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr_s, len_s) = s.split_once('/').ok_or_else(|| AddrParseError(s.into()))?;
        let addr: Ipv4Addr = addr_s.parse()?;
        let len: u8 = len_s.parse().map_err(|_| AddrParseError(s.into()))?;
        if len > 32 {
            return Err(AddrParseError(s.into()));
        }
        Ok(Ipv4Prefix::new(addr, len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn octet_round_trip() {
        let a = Ipv4Addr::from_octets(192, 168, 1, 77);
        assert_eq!(a.octets(), [192, 168, 1, 77]);
        assert_eq!(a.to_string(), "192.168.1.77");
    }

    #[test]
    fn parse_addr() {
        let a: Ipv4Addr = "10.0.0.1".parse().unwrap();
        assert_eq!(a, Ipv4Addr::from_octets(10, 0, 0, 1));
        assert!("10.0.0".parse::<Ipv4Addr>().is_err());
        assert!("10.0.0.256".parse::<Ipv4Addr>().is_err());
        assert!("ten.zero.zero.one".parse::<Ipv4Addr>().is_err());
    }

    #[test]
    fn bit_indexing_msb_first() {
        let a = Ipv4Addr(0x8000_0001);
        assert!(a.bit(0));
        assert!(!a.bit(1));
        assert!(a.bit(31));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bit_index_bounds() {
        Ipv4Addr(0).bit(32);
    }

    #[test]
    fn prefix_canonicalizes() {
        let p = Ipv4Prefix::new(Ipv4Addr::from_octets(10, 1, 2, 3), 8);
        assert_eq!(p.addr(), Ipv4Addr::from_octets(10, 0, 0, 0));
        let q: Ipv4Prefix = "10.99.0.0/8".parse().unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn prefix_contains() {
        let p: Ipv4Prefix = "192.168.0.0/16".parse().unwrap();
        assert!(p.contains("192.168.255.1".parse().unwrap()));
        assert!(!p.contains("192.169.0.1".parse().unwrap()));
        assert!(Ipv4Prefix::default_route().contains("1.2.3.4".parse().unwrap()));
    }

    #[test]
    fn prefix_covers() {
        let p8: Ipv4Prefix = "10.0.0.0/8".parse().unwrap();
        let p16: Ipv4Prefix = "10.5.0.0/16".parse().unwrap();
        assert!(p8.covers(p16));
        assert!(!p16.covers(p8));
        assert!(p8.covers(p8));
        assert!(Ipv4Prefix::default_route().covers(p8));
    }

    #[test]
    fn mask_edges() {
        assert_eq!(Ipv4Prefix::mask(0), 0);
        assert_eq!(Ipv4Prefix::mask(32), u32::MAX);
        assert_eq!(Ipv4Prefix::mask(24), 0xFFFF_FF00);
    }

    #[test]
    fn prefix_parse_errors() {
        assert!("10.0.0.0".parse::<Ipv4Prefix>().is_err());
        assert!("10.0.0.0/33".parse::<Ipv4Prefix>().is_err());
        assert!("10.0.0.0/x".parse::<Ipv4Prefix>().is_err());
    }

    #[test]
    fn display_prefix() {
        let p: Ipv4Prefix = "172.16.0.0/12".parse().unwrap();
        assert_eq!(p.to_string(), "172.16.0.0/12");
        assert!(p.len() == 12 && !p.is_default());
        assert!(Ipv4Prefix::default_route().is_default());
    }
}
