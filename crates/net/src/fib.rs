//! Longest-prefix-match forwarding tables (the LFE's core data
//! structure).
//!
//! Four implementations behind the [`Fib`] trait:
//!
//! * [`LinearFib`] — the obviously-correct reference: a flat list
//!   scanned for the longest covering prefix. Used as the oracle in
//!   property tests and for tiny tables.
//! * [`TrieFib`] — a binary trie, one bit per level. Updates are O(32);
//!   retained as an executable spec of LPM semantics.
//! * [`StrideFib`] — a multibit trie with 8-bit strides and controlled
//!   prefix expansion; lookups touch at most four nodes. Removal
//!   collapses only the affected stride subtree (the old
//!   rebuild-from-store path survives as
//!   [`StrideFib::remove_via_rebuild`], the oracle for the
//!   incremental one).
//! * [`Dir248Fib`] — a DIR-24-8-style compiled table: one flat
//!   2^24-entry array indexed by the top 24 address bits plus 256-entry
//!   spill blocks for /25–/32 routes. One or two loads per lookup, a
//!   batched [`Dir248Fib::lookup_batch`] API for the ingress hot path,
//!   and *incremental* updates. This is what the simulators' linecards
//!   run.
//!
//! Next hops are `u16` egress linecard indices — all the router
//! simulator needs.

use crate::addr::{Ipv4Addr, Ipv4Prefix};
use std::collections::HashMap;

/// A longest-prefix-match table mapping prefixes to next hops.
///
/// ```
/// use dra_net::fib::{Fib, TrieFib};
///
/// let mut fib = TrieFib::new();
/// fib.insert("10.0.0.0/8".parse().unwrap(), 1);
/// fib.insert("10.1.0.0/16".parse().unwrap(), 2);
///
/// // The longest matching prefix wins.
/// assert_eq!(fib.lookup("10.1.2.3".parse().unwrap()), Some(2));
/// assert_eq!(fib.lookup("10.9.9.9".parse().unwrap()), Some(1));
/// assert_eq!(fib.lookup("11.0.0.1".parse().unwrap()), None);
/// ```
pub trait Fib {
    /// Insert (or replace) a route; returns the previous next hop.
    fn insert(&mut self, prefix: Ipv4Prefix, next_hop: u16) -> Option<u16>;

    /// Remove a route; returns its next hop if present.
    fn remove(&mut self, prefix: Ipv4Prefix) -> Option<u16>;

    /// Longest-prefix-match lookup.
    fn lookup(&self, addr: Ipv4Addr) -> Option<u16>;

    /// Number of routes installed.
    fn len(&self) -> usize;

    /// True when no routes are installed.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// ---------------------------------------------------------------------------
// LinearFib
// ---------------------------------------------------------------------------

/// Reference implementation: linear scan for the longest covering prefix.
#[derive(Debug, Default, Clone)]
pub struct LinearFib {
    routes: Vec<(Ipv4Prefix, u16)>,
}

impl LinearFib {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Fib for LinearFib {
    fn insert(&mut self, prefix: Ipv4Prefix, next_hop: u16) -> Option<u16> {
        for (p, nh) in &mut self.routes {
            if *p == prefix {
                return Some(std::mem::replace(nh, next_hop));
            }
        }
        self.routes.push((prefix, next_hop));
        None
    }

    fn remove(&mut self, prefix: Ipv4Prefix) -> Option<u16> {
        let pos = self.routes.iter().position(|(p, _)| *p == prefix)?;
        Some(self.routes.swap_remove(pos).1)
    }

    fn lookup(&self, addr: Ipv4Addr) -> Option<u16> {
        self.routes
            .iter()
            .filter(|(p, _)| p.contains(addr))
            .max_by_key(|(p, _)| p.len())
            .map(|&(_, nh)| nh)
    }

    fn len(&self) -> usize {
        self.routes.len()
    }
}

// ---------------------------------------------------------------------------
// TrieFib
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct TrieNode {
    children: [Option<Box<TrieNode>>; 2],
    next_hop: Option<u16>,
}

impl TrieNode {
    fn is_leafless(&self) -> bool {
        self.next_hop.is_none() && self.children[0].is_none() && self.children[1].is_none()
    }
}

/// Binary (unibit) trie FIB.
#[derive(Debug, Default)]
pub struct TrieFib {
    root: TrieNode,
    len: usize,
}

impl TrieFib {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Remove along the bit path, pruning empty branches on the way out.
    fn remove_rec(node: &mut TrieNode, prefix: Ipv4Prefix, depth: u8) -> Option<u16> {
        if depth == prefix.len() {
            return node.next_hop.take();
        }
        let bit = prefix.addr().bit(depth) as usize;
        let child = node.children[bit].as_mut()?;
        let removed = Self::remove_rec(child, prefix, depth + 1);
        if removed.is_some() && child.is_leafless() {
            node.children[bit] = None;
        }
        removed
    }
}

impl Fib for TrieFib {
    fn insert(&mut self, prefix: Ipv4Prefix, next_hop: u16) -> Option<u16> {
        let mut node = &mut self.root;
        for depth in 0..prefix.len() {
            let bit = prefix.addr().bit(depth) as usize;
            node = node.children[bit].get_or_insert_with(Default::default);
        }
        let old = node.next_hop.replace(next_hop);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    fn remove(&mut self, prefix: Ipv4Prefix) -> Option<u16> {
        let removed = Self::remove_rec(&mut self.root, prefix, 0);
        if removed.is_some() {
            self.len -= 1;
        }
        removed
    }

    fn lookup(&self, addr: Ipv4Addr) -> Option<u16> {
        let mut best = self.root.next_hop;
        let mut node = &self.root;
        for depth in 0..32 {
            let bit = addr.bit(depth) as usize;
            match &node.children[bit] {
                Some(child) => {
                    node = child;
                    if node.next_hop.is_some() {
                        best = node.next_hop;
                    }
                }
                None => break,
            }
        }
        best
    }

    fn len(&self) -> usize {
        self.len
    }
}

// ---------------------------------------------------------------------------
// StrideFib
// ---------------------------------------------------------------------------

/// One 8-bit-stride node: 256 expanded entries plus 256 child slots.
struct StrideNode {
    /// Best (longest) prefix terminating in this node for each byte
    /// value, as `(next_hop, prefix_len)`.
    entries: Vec<Option<(u16, u8)>>,
    children: Vec<Option<Box<StrideNode>>>,
}

impl StrideNode {
    fn new() -> Self {
        StrideNode {
            entries: vec![None; 256],
            children: (0..256).map(|_| None).collect(),
        }
    }
}

impl std::fmt::Debug for StrideNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let filled = self.entries.iter().filter(|e| e.is_some()).count();
        let kids = self.children.iter().filter(|c| c.is_some()).count();
        write!(f, "StrideNode({filled} entries, {kids} children)")
    }
}

/// Multibit trie with 8-bit strides and controlled prefix expansion.
#[derive(Debug)]
pub struct StrideFib {
    root: StrideNode,
    /// The authoritative route store; removal consults it for the
    /// surviving ancestor that backfills un-expanded entries.
    store: HashMap<Ipv4Prefix, u16>,
    /// Next hop for the default route, which expands to "everything".
    default_route: Option<u16>,
}

impl Default for StrideFib {
    fn default() -> Self {
        Self::new()
    }
}

impl StrideFib {
    /// Empty table.
    pub fn new() -> Self {
        StrideFib {
            root: StrideNode::new(),
            store: HashMap::new(),
            default_route: None,
        }
    }

    fn insert_into_trie(root: &mut StrideNode, prefix: Ipv4Prefix, next_hop: u16) {
        debug_assert!(prefix.len() > 0, "default route handled separately");
        let octets = prefix.addr().octets();
        let mut node = root;
        let mut depth = 0u8; // bits consumed
        loop {
            let byte = octets[(depth / 8) as usize] as usize;
            let remaining = prefix.len() - depth;
            if remaining <= 8 {
                // Expand within this node: the prefix covers 2^(8-remaining)
                // consecutive byte values.
                let span = 1usize << (8 - remaining);
                let base = byte & !(span - 1);
                for e in &mut node.entries[base..base + span] {
                    // Longer prefixes win; equal length means replacement.
                    if e.is_none_or(|(_, plen)| plen <= prefix.len()) {
                        *e = Some((next_hop, prefix.len()));
                    }
                }
                return;
            }
            node = node.children[byte].get_or_insert_with(|| Box::new(StrideNode::new()));
            depth += 8;
        }
    }

    fn rebuild(&mut self) {
        self.root = StrideNode::new();
        for (&prefix, &nh) in &self.store {
            if prefix.is_default() {
                continue;
            }
            Self::insert_into_trie(&mut self.root, prefix, nh);
        }
    }

    /// Remove a route by rebuilding the whole trie from the store —
    /// the pre-incremental behaviour, retained as the executable spec
    /// (and test oracle) for the subtree-collapsing [`Fib::remove`].
    pub fn remove_via_rebuild(&mut self, prefix: Ipv4Prefix) -> Option<u16> {
        let old = self.store.remove(&prefix)?;
        if prefix.is_default() {
            self.default_route = None;
        } else {
            self.rebuild();
        }
        Some(old)
    }

    /// Undo one route's expansion in its terminal node, walking only
    /// the stride path (no rebuild). Entries the route owns (stored
    /// length equals the removed length — equal-length prefixes are
    /// disjoint, so nothing else can have written that length inside
    /// this range) fall back to the longest surviving ancestor that
    /// terminates in the same node. Returns true when `node` is empty
    /// afterwards so the caller can prune the subtree.
    fn remove_from_trie(
        node: &mut StrideNode,
        store: &HashMap<Ipv4Prefix, u16>,
        prefix: Ipv4Prefix,
        depth: u8,
    ) -> bool {
        let octets = prefix.addr().octets();
        let byte = octets[(depth / 8) as usize] as usize;
        let remaining = prefix.len() - depth;
        if remaining <= 8 {
            let span = 1usize << (8 - remaining);
            let base = byte & !(span - 1);
            // Longest ancestor terminating in this node: lengths
            // (depth, prefix.len()) cover exactly the candidates that
            // could replace the removed expansion here.
            let mut repl = None;
            for l in (depth + 1..prefix.len()).rev() {
                if let Some(&nh) = store.get(&Ipv4Prefix::new(prefix.addr(), l)) {
                    repl = Some((nh, l));
                    break;
                }
            }
            for e in &mut node.entries[base..base + span] {
                if e.is_some_and(|(_, plen)| plen == prefix.len()) {
                    *e = repl;
                }
            }
        } else if let Some(child) = node.children[byte].as_mut() {
            if Self::remove_from_trie(child, store, prefix, depth + 8) {
                node.children[byte] = None;
            }
        }
        node.entries.iter().all(Option::is_none) && node.children.iter().all(Option::is_none)
    }
}

impl Fib for StrideFib {
    fn insert(&mut self, prefix: Ipv4Prefix, next_hop: u16) -> Option<u16> {
        let old = self.store.insert(prefix, next_hop);
        if prefix.is_default() {
            let prev = self.default_route.replace(next_hop);
            return old.or(prev);
        }
        if old.is_some() {
            // Replacing a route with the same length: the expansion rule
            // `plen <= prefix.len()` overwrites stale entries in place.
            Self::insert_into_trie(&mut self.root, prefix, next_hop);
        } else {
            Self::insert_into_trie(&mut self.root, prefix, next_hop);
        }
        old
    }

    fn remove(&mut self, prefix: Ipv4Prefix) -> Option<u16> {
        let old = self.store.remove(&prefix)?;
        if prefix.is_default() {
            self.default_route = None;
        } else {
            Self::remove_from_trie(&mut self.root, &self.store, prefix, 0);
        }
        Some(old)
    }

    fn lookup(&self, addr: Ipv4Addr) -> Option<u16> {
        let octets = addr.octets();
        let mut best = self.default_route;
        let mut node = &self.root;
        for &byte in &octets {
            let idx = byte as usize;
            if let Some((nh, _)) = node.entries[idx] {
                best = Some(nh);
            }
            match &node.children[idx] {
                Some(child) => node = child,
                None => break,
            }
        }
        best
    }

    fn len(&self) -> usize {
        self.store.len()
    }
}

// ---------------------------------------------------------------------------
// Dir248Fib
// ---------------------------------------------------------------------------

/// Entry flag: the entry holds a valid `(next_hop, prefix_len)` route.
const DIR_VALID: u32 = 1 << 31;
/// Base-entry flag: the entry is a pointer into the spill-block arena.
const DIR_SPILL: u32 = 1 << 30;
/// Low bits carrying a spill-block index (or the route payload).
const DIR_PAYLOAD: u32 = (1 << 24) - 1;
/// Bit offset of the prefix length inside a valid entry.
const DIR_PLEN_SHIFT: u32 = 16;
/// Routes this long or shorter live in the 256-entry `/8` table.
const SHORT_MAX_LEN: u8 = 8;
/// Routes up to this length live in the 2^24 base array.
const BASE_MAX_LEN: u8 = 24;

/// Spill-block budget: the same bounded-preallocation discipline the
/// fabric applies to its 4M-cell arena. 2^16 blocks (one per /24 that
/// holds a route longer than /24) caps spill memory at 64 MiB — far
/// beyond any table the simulators or benches build, and hit only by a
/// hostile workload, which should fail loudly rather than grow without
/// bound.
const DIR248_SPILL_BUDGET_BLOCKS: usize = 1 << 16;

#[inline]
fn dir_encode(next_hop: u16, plen: u8) -> u32 {
    DIR_VALID | ((plen as u32) << DIR_PLEN_SHIFT) | next_hop as u32
}

#[inline]
fn dir_plen(entry: u32) -> u8 {
    ((entry >> DIR_PLEN_SHIFT) & 0x3F) as u8
}

/// One 256-entry spill block: the low-byte expansion of a `/24` that
/// contains at least one route longer than /24.
#[derive(Debug, Clone)]
struct SpillBlock {
    /// Best route per low-byte value, same encoding as base entries
    /// (never a spill pointer). An empty entry falls through to the
    /// short-route table, exactly like an empty base entry.
    entries: [u32; 256],
    /// Number of installed routes with length ≥ 25 expanded into this
    /// block; when it returns to zero the block collapses back into a
    /// single base entry and is recycled through the freelist.
    long_routes: u32,
}

/// DIR-24-8-style compiled LPM table.
///
/// Layout (the classic hardware split, scaled to this simulator's /32
/// IPv4 space):
///
/// * `base` — 2^24 `u32` entries indexed by the top 24 address bits.
///   An entry is either empty, a packed `(next_hop, prefix_len)` for
///   the best route of length 9–24 covering that /24, or a pointer to
///   a spill block.
/// * spill blocks — 256 entries indexed by the low byte, for /24s that
///   contain at least one route longer than /24. Blocks come from an
///   indexed arena with a LIFO freelist (the fabric's cell-arena
///   idiom) and collapse back to a direct entry when their last long
///   route is withdrawn.
/// * `short8` — 256 entries indexed by the top byte for routes of
///   length 0–8, so a /0 or /1 route costs 256 writes instead of
///   millions of base-array writes. Base/spill entries always beat it
///   (their routes are strictly longer), so lookup consults it only on
///   a base/spill miss.
///
/// Updates are **incremental**: an insert expands the route over its
/// covered entries (longer-prefix-wins), a removal rewrites only the
/// entries the route owns, backfilling them with the longest surviving
/// ancestor found by probing the authoritative store at each shorter
/// length (≤ 32 hash probes). No rebuild, ever — route churn while
/// traffic flows is exactly the regime the faceoff campaigns simulate.
///
/// A lookup is one or two dependent loads ([`Dir248Fib::lookup_batch`]
/// overlaps them across independent addresses); the base array is
/// allocated zeroed so untouched /24 pages stay unmapped copy-on-write
/// zero pages and cost no resident memory.
pub struct Dir248Fib {
    base: Vec<u32>,
    short8: Box<[u32; 256]>,
    spill: Vec<SpillBlock>,
    spill_free: Vec<u32>,
    /// Authoritative route set: replacement detection, `len()`, and
    /// the ancestor probes that make removal incremental.
    store: HashMap<Ipv4Prefix, u16>,
    /// Bumped on every successful mutation; lets callers that cache
    /// batched lookup results detect route churn.
    generation: u64,
}

impl Default for Dir248Fib {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Dir248Fib {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dir248Fib")
            .field("routes", &self.store.len())
            .field("spill_blocks", &(self.spill.len() - self.spill_free.len()))
            .field("memory_bytes", &self.memory_bytes())
            .finish()
    }
}

impl Dir248Fib {
    /// Empty table. The 64 MiB base array is requested zeroed, so the
    /// kernel lends zero pages until a /24 is actually written.
    pub fn new() -> Self {
        Dir248Fib {
            base: vec![0u32; 1 << 24],
            short8: Box::new([0u32; 256]),
            spill: Vec::new(),
            spill_free: Vec::new(),
            store: HashMap::new(),
            generation: 0,
        }
    }

    /// Mutation counter: changes exactly when a lookup result could.
    /// Callers holding results from [`Dir248Fib::lookup_batch`] compare
    /// generations to decide whether a cached next hop is still valid.
    #[inline]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Bytes committed to the compiled table: the base array, the
    /// spill arena (live + free-listed blocks), the short-route table,
    /// and an estimate of the store's footprint. The accounting mirrors
    /// the fabric arena's budget discipline; spill growth is capped by
    /// [`DIR248_SPILL_BUDGET_BLOCKS`].
    pub fn memory_bytes(&self) -> usize {
        self.base.len() * std::mem::size_of::<u32>()
            + self.spill.capacity() * std::mem::size_of::<SpillBlock>()
            + self.spill_free.capacity() * std::mem::size_of::<u32>()
            + std::mem::size_of::<[u32; 256]>()
            + self.store.capacity() * std::mem::size_of::<(Ipv4Prefix, u16)>()
    }

    /// Spill blocks currently expanded (live, not free-listed).
    pub fn spill_blocks(&self) -> usize {
        self.spill.len() - self.spill_free.len()
    }

    /// Longest proper ancestor of `prefix` with length in
    /// `[min_len, prefix.len())`, as an encoded entry (0 = none).
    /// Costs at most 24 hash probes of the authoritative store.
    fn ancestor_entry(&self, prefix: Ipv4Prefix, min_len: u8) -> u32 {
        for l in (min_len..prefix.len()).rev() {
            if let Some(&nh) = self.store.get(&Ipv4Prefix::new(prefix.addr(), l)) {
                return dir_encode(nh, l);
            }
        }
        0
    }

    /// Overwrite `e` if the new route wins (empty entries lose to
    /// anything; equal lengths mean replacement of the same route).
    #[inline]
    fn expand_into(e: &mut u32, encoded: u32, plen: u8) {
        if *e & DIR_VALID == 0 || dir_plen(*e) <= plen {
            *e = encoded;
        }
    }

    /// Ensure the /24 at base index `bi` is backed by a spill block,
    /// seeding a fresh block with the current direct entry (every
    /// route of length ≤ 24 covers the whole /24 uniformly).
    fn ensure_spill(&mut self, bi: usize) -> usize {
        let e = self.base[bi];
        if e & DIR_SPILL != 0 {
            return (e & DIR_PAYLOAD) as usize;
        }
        let block = SpillBlock {
            entries: [e; 256],
            long_routes: 0,
        };
        let idx = match self.spill_free.pop() {
            Some(i) => {
                self.spill[i as usize] = block;
                i as usize
            }
            None => {
                assert!(
                    self.spill.len() < DIR248_SPILL_BUDGET_BLOCKS,
                    "Dir248Fib spill arena exceeded its {DIR248_SPILL_BUDGET_BLOCKS}-block budget"
                );
                self.spill.push(block);
                self.spill.len() - 1
            }
        };
        self.base[bi] = DIR_SPILL | idx as u32;
        idx
    }

    #[inline]
    fn lookup_entry(&self, addr: u32) -> u32 {
        let e = self.base[(addr >> 8) as usize];
        let e = if e & DIR_SPILL != 0 {
            self.spill[(e & DIR_PAYLOAD) as usize].entries[(addr & 0xFF) as usize]
        } else {
            e
        };
        if e & DIR_VALID != 0 {
            e
        } else {
            self.short8[(addr >> 24) as usize]
        }
    }

    /// Batched longest-prefix match: `out[i]` becomes the next hop for
    /// `addrs[i]`. Allocation-free; the loop is unrolled over small
    /// chunks so the base-array loads of independent addresses overlap
    /// instead of serializing behind each spill/short resolution.
    ///
    /// # Panics
    /// If `addrs` and `out` differ in length.
    pub fn lookup_batch(&self, addrs: &[Ipv4Addr], out: &mut [Option<u16>]) {
        assert_eq!(
            addrs.len(),
            out.len(),
            "lookup_batch slices must have equal lengths"
        );
        const LANES: usize = 8;
        let mut chunks = addrs.chunks_exact(LANES);
        let mut out_chunks = out.chunks_exact_mut(LANES);
        for (a, o) in (&mut chunks).zip(&mut out_chunks) {
            // First touch every base entry (independent loads the CPU
            // can issue together), then resolve spill/short fallbacks.
            let mut first = [0u32; LANES];
            for (f, addr) in first.iter_mut().zip(a) {
                *f = self.base[(addr.0 >> 8) as usize];
            }
            for ((&f, addr), slot) in first.iter().zip(a).zip(o.iter_mut()) {
                let e = if f & DIR_SPILL != 0 {
                    self.spill[(f & DIR_PAYLOAD) as usize].entries[(addr.0 & 0xFF) as usize]
                } else {
                    f
                };
                let e = if e & DIR_VALID != 0 {
                    e
                } else {
                    self.short8[(addr.0 >> 24) as usize]
                };
                *slot = (e & DIR_VALID != 0).then_some(e as u16);
            }
        }
        for (a, o) in chunks.remainder().iter().zip(out_chunks.into_remainder()) {
            let e = self.lookup_entry(a.0);
            *o = (e & DIR_VALID != 0).then_some(e as u16);
        }
    }
}

impl Fib for Dir248Fib {
    fn insert(&mut self, prefix: Ipv4Prefix, next_hop: u16) -> Option<u16> {
        let old = self.store.insert(prefix, next_hop);
        self.generation += 1;
        let len = prefix.len();
        let encoded = dir_encode(next_hop, len);
        if len <= SHORT_MAX_LEN {
            let start = (prefix.addr().0 >> 24) as usize;
            let span = 1usize << (SHORT_MAX_LEN - len);
            for e in &mut self.short8[start..start + span] {
                Self::expand_into(e, encoded, len);
            }
        } else if len <= BASE_MAX_LEN {
            let start = (prefix.addr().0 >> 8) as usize;
            let span = 1usize << (BASE_MAX_LEN - len);
            for bi in start..start + span {
                let e = self.base[bi];
                if e & DIR_SPILL != 0 {
                    // The /24 is expanded: the route covers all of it,
                    // so it competes inside every spill entry.
                    let block = &mut self.spill[(e & DIR_PAYLOAD) as usize];
                    for s in block.entries.iter_mut() {
                        Self::expand_into(s, encoded, len);
                    }
                } else {
                    Self::expand_into(&mut self.base[bi], encoded, len);
                }
            }
        } else {
            let bi = (prefix.addr().0 >> 8) as usize;
            let idx = self.ensure_spill(bi);
            let start = (prefix.addr().0 & 0xFF) as usize;
            let span = 1usize << (32 - len);
            let block = &mut self.spill[idx];
            for s in &mut block.entries[start..start + span] {
                Self::expand_into(s, encoded, len);
            }
            if old.is_none() {
                block.long_routes += 1;
            }
        }
        old
    }

    fn remove(&mut self, prefix: Ipv4Prefix) -> Option<u16> {
        let old = self.store.remove(&prefix)?;
        self.generation += 1;
        let len = prefix.len();
        if len <= SHORT_MAX_LEN {
            let repl = self.ancestor_entry(prefix, 0);
            let start = (prefix.addr().0 >> 24) as usize;
            let span = 1usize << (SHORT_MAX_LEN - len);
            for e in &mut self.short8[start..start + span] {
                if *e & DIR_VALID != 0 && dir_plen(*e) == len {
                    *e = repl;
                }
            }
        } else if len <= BASE_MAX_LEN {
            // Entries the route owns carry exactly its length (equal
            // lengths are disjoint prefixes; longer routes stored here
            // were backfilled with replacements of at least our length
            // when they went away). Ancestors shorter than 9 bits live
            // in the short table, so the backfill floor is 9.
            let repl = self.ancestor_entry(prefix, SHORT_MAX_LEN + 1);
            let start = (prefix.addr().0 >> 8) as usize;
            let span = 1usize << (BASE_MAX_LEN - len);
            for bi in start..start + span {
                let e = self.base[bi];
                if e & DIR_SPILL != 0 {
                    let block = &mut self.spill[(e & DIR_PAYLOAD) as usize];
                    for s in block.entries.iter_mut() {
                        if *s & DIR_VALID != 0 && dir_plen(*s) == len {
                            *s = repl;
                        }
                    }
                } else if e & DIR_VALID != 0 && dir_plen(e) == len {
                    self.base[bi] = repl;
                }
            }
        } else {
            let repl = self.ancestor_entry(prefix, SHORT_MAX_LEN + 1);
            let bi = (prefix.addr().0 >> 8) as usize;
            let e = self.base[bi];
            debug_assert!(e & DIR_SPILL != 0, "long route without a spill block");
            let idx = (e & DIR_PAYLOAD) as usize;
            let start = (prefix.addr().0 & 0xFF) as usize;
            let span = 1usize << (32 - len);
            let block = &mut self.spill[idx];
            for s in &mut block.entries[start..start + span] {
                if *s & DIR_VALID != 0 && dir_plen(*s) == len {
                    *s = repl;
                }
            }
            block.long_routes -= 1;
            if block.long_routes == 0 {
                // Last long route gone: every surviving route covering
                // this /24 covers it uniformly — collapse back to a
                // direct entry and recycle the block.
                let covering = Ipv4Prefix::new(prefix.addr(), BASE_MAX_LEN + 1);
                self.base[bi] = self.ancestor_entry(covering, SHORT_MAX_LEN + 1);
                self.spill_free.push(idx as u32);
            }
        }
        Some(old)
    }

    fn lookup(&self, addr: Ipv4Addr) -> Option<u16> {
        let e = self.lookup_entry(addr.0);
        (e & DIR_VALID != 0).then_some(e as u16)
    }

    fn len(&self) -> usize {
        self.store.len()
    }
}

// ---------------------------------------------------------------------------
// Synthetic route tables
// ---------------------------------------------------------------------------

/// Generate a deterministic synthetic route table of `n` prefixes with
/// an Internet-like length mix (most routes /16–/24), mapping to
/// `n_ports` next hops. Substitutes for a real BGP dump (none is
/// shipped with the paper); only the LPM code path matters here.
pub fn synthetic_routes(n: usize, n_ports: u16, seed: u64) -> Vec<(Ipv4Prefix, u16)> {
    assert!(n_ports > 0);
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let r = next();
        // Length mix: 10% /8-/15, 60% /16-/23, 30% /24-/28.
        let len = match r % 10 {
            0 => 8 + (next() % 8) as u8,
            1..=6 => 16 + (next() % 8) as u8,
            _ => 24 + (next() % 5) as u8,
        };
        let addr = Ipv4Addr(next() as u32);
        let nh = (next() % n_ports as u64) as u16;
        out.push((Ipv4Prefix::new(addr, len), nh));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn pfx(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    /// Run one scripted scenario against any Fib implementation.
    fn scenario(fib: &mut dyn Fib) {
        assert!(fib.is_empty());
        assert_eq!(fib.lookup(ip("10.0.0.1")), None);

        fib.insert(pfx("10.0.0.0/8"), 1);
        fib.insert(pfx("10.1.0.0/16"), 2);
        fib.insert(pfx("10.1.2.0/24"), 3);
        assert_eq!(fib.len(), 3);

        // Longest match wins.
        assert_eq!(fib.lookup(ip("10.1.2.3")), Some(3));
        assert_eq!(fib.lookup(ip("10.1.9.9")), Some(2));
        assert_eq!(fib.lookup(ip("10.9.9.9")), Some(1));
        assert_eq!(fib.lookup(ip("11.0.0.1")), None);

        // Replacement returns the old hop and keeps len.
        assert_eq!(fib.insert(pfx("10.1.0.0/16"), 7), Some(2));
        assert_eq!(fib.len(), 3);
        assert_eq!(fib.lookup(ip("10.1.9.9")), Some(7));

        // Default route catches everything.
        fib.insert(Ipv4Prefix::default_route(), 9);
        assert_eq!(fib.lookup(ip("11.0.0.1")), Some(9));
        assert_eq!(fib.lookup(ip("10.1.2.3")), Some(3));

        // Removal re-exposes shorter prefixes.
        assert_eq!(fib.remove(pfx("10.1.2.0/24")), Some(3));
        assert_eq!(fib.lookup(ip("10.1.2.3")), Some(7));
        assert_eq!(fib.remove(pfx("10.1.2.0/24")), None);
        assert_eq!(fib.remove(Ipv4Prefix::default_route()), Some(9));
        assert_eq!(fib.lookup(ip("11.0.0.1")), None);
        assert_eq!(fib.len(), 2);
    }

    #[test]
    fn linear_scenario() {
        scenario(&mut LinearFib::new());
    }

    #[test]
    fn trie_scenario() {
        scenario(&mut TrieFib::new());
    }

    #[test]
    fn stride_scenario() {
        scenario(&mut StrideFib::new());
    }

    #[test]
    fn dir248_scenario() {
        scenario(&mut Dir248Fib::new());
    }

    #[test]
    fn host_routes_work() {
        for fib in [
            &mut TrieFib::new() as &mut dyn Fib,
            &mut StrideFib::new(),
            &mut LinearFib::new(),
            &mut Dir248Fib::new(),
        ] {
            fib.insert(pfx("1.2.3.4/32"), 5);
            assert_eq!(fib.lookup(ip("1.2.3.4")), Some(5));
            assert_eq!(fib.lookup(ip("1.2.3.5")), None);
        }
    }

    #[test]
    fn sibling_prefixes_do_not_interfere() {
        for fib in [
            &mut TrieFib::new() as &mut dyn Fib,
            &mut StrideFib::new(),
            &mut LinearFib::new(),
            &mut Dir248Fib::new(),
        ] {
            fib.insert(pfx("128.0.0.0/1"), 1);
            fib.insert(pfx("0.0.0.0/1"), 2);
            assert_eq!(fib.lookup(ip("200.0.0.1")), Some(1));
            assert_eq!(fib.lookup(ip("100.0.0.1")), Some(2));
        }
    }

    #[test]
    fn dir248_spill_blocks_expand_and_collapse() {
        let mut fib = Dir248Fib::new();
        fib.insert(pfx("10.20.30.0/24"), 1);
        assert_eq!(fib.spill_blocks(), 0, "no long route, no block");
        fib.insert(pfx("10.20.30.128/25"), 2);
        fib.insert(pfx("10.20.30.200/30"), 3);
        assert_eq!(fib.spill_blocks(), 1, "one /24 expanded");
        assert_eq!(fib.lookup(ip("10.20.30.1")), Some(1));
        assert_eq!(fib.lookup(ip("10.20.30.129")), Some(2));
        assert_eq!(fib.lookup(ip("10.20.30.201")), Some(3));
        // Withdrawing the /30 re-exposes the /25 underneath it.
        assert_eq!(fib.remove(pfx("10.20.30.200/30")), Some(3));
        assert_eq!(fib.lookup(ip("10.20.30.201")), Some(2));
        assert_eq!(fib.spill_blocks(), 1);
        // Withdrawing the last long route collapses the block back to
        // the covering /24.
        assert_eq!(fib.remove(pfx("10.20.30.128/25")), Some(2));
        assert_eq!(fib.spill_blocks(), 0);
        assert_eq!(fib.lookup(ip("10.20.30.129")), Some(1));
        // The recycled block is reused, not re-allocated.
        fib.insert(pfx("10.99.0.4/31"), 4);
        assert_eq!(fib.spill_blocks(), 1);
        assert_eq!(fib.lookup(ip("10.99.0.5")), Some(4));
    }

    #[test]
    fn dir248_generation_tracks_mutations() {
        let mut fib = Dir248Fib::new();
        let g0 = fib.generation();
        fib.insert(pfx("10.0.0.0/8"), 1);
        let g1 = fib.generation();
        assert_ne!(g0, g1);
        // A failed removal is not a mutation.
        assert_eq!(fib.remove(pfx("11.0.0.0/8")), None);
        assert_eq!(fib.generation(), g1);
        // Replacement is.
        fib.insert(pfx("10.0.0.0/8"), 2);
        assert_ne!(fib.generation(), g1);
    }

    #[test]
    fn dir248_memory_accounting_is_sane() {
        let mut fib = Dir248Fib::new();
        let empty = fib.memory_bytes();
        assert!(empty >= (1 << 24) * 4, "base array must be accounted");
        fib.insert(pfx("10.20.30.40/32"), 1);
        assert!(fib.memory_bytes() > empty, "spill block must be accounted");
    }

    #[test]
    fn lookup_batch_agrees_with_lookup() {
        let mut fib = Dir248Fib::new();
        for (p, nh) in synthetic_routes(5000, 16, 7) {
            fib.insert(p, nh);
        }
        fib.insert(Ipv4Prefix::default_route(), 15);
        // A mix of covered and uncovered addresses, length not a
        // multiple of the unrolled lane width.
        let mut state = 0x1234_5678_9abc_def0u64;
        let addrs: Vec<Ipv4Addr> = (0..1003)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                Ipv4Addr(state as u32)
            })
            .collect();
        let mut out = vec![None; addrs.len()];
        fib.lookup_batch(&addrs, &mut out);
        for (a, got) in addrs.iter().zip(&out) {
            assert_eq!(*got, fib.lookup(*a), "batch mismatch at {a}");
        }
    }

    #[test]
    fn stride_incremental_remove_matches_rebuild_oracle() {
        // Drive the incremental removal against the retained
        // rebuild-from-store path over a scripted churn sequence.
        let routes = synthetic_routes(300, 8, 21);
        let mut inc = StrideFib::new();
        let mut oracle = StrideFib::new();
        for &(p, nh) in &routes {
            inc.insert(p, nh);
            oracle.insert(p, nh);
        }
        let probes: Vec<Ipv4Addr> = routes.iter().map(|(p, _)| p.addr()).collect();
        for (i, &(p, _)) in routes.iter().enumerate() {
            if i % 3 == 0 {
                assert_eq!(inc.remove(p), oracle.remove_via_rebuild(p));
                for &a in &probes {
                    assert_eq!(inc.lookup(a), oracle.lookup(a), "mismatch at {a}");
                }
            }
        }
        assert_eq!(inc.len(), oracle.len());
    }

    #[test]
    fn stride_boundary_lengths() {
        // Lengths exactly on stride boundaries (8, 16, 24, 32) exercise
        // the expand-vs-descend decision.
        let mut fib = StrideFib::new();
        fib.insert(pfx("10.0.0.0/8"), 8);
        fib.insert(pfx("10.20.0.0/16"), 16);
        fib.insert(pfx("10.20.30.0/24"), 24);
        fib.insert(pfx("10.20.30.40/32"), 32);
        assert_eq!(fib.lookup(ip("10.20.30.40")), Some(32));
        assert_eq!(fib.lookup(ip("10.20.30.41")), Some(24));
        assert_eq!(fib.lookup(ip("10.20.31.1")), Some(16));
        assert_eq!(fib.lookup(ip("10.21.0.1")), Some(8));
    }

    #[test]
    fn trie_prunes_on_remove() {
        let mut fib = TrieFib::new();
        fib.insert(pfx("10.20.30.0/24"), 1);
        fib.remove(pfx("10.20.30.0/24"));
        // Root must be leafless again (no dangling chain of nodes).
        assert!(fib.root.is_leafless());
    }

    #[test]
    fn synthetic_routes_shape() {
        let routes = synthetic_routes(1000, 16, 42);
        assert_eq!(routes.len(), 1000);
        assert!(routes.iter().all(|(p, nh)| p.len() >= 8 && *nh < 16));
        // Deterministic for a fixed seed.
        assert_eq!(routes, synthetic_routes(1000, 16, 42));
        assert_ne!(routes, synthetic_routes(1000, 16, 43));
    }

    /// Arbitrary prefix strategy for property tests.
    fn prefix_strategy() -> impl Strategy<Value = Ipv4Prefix> {
        (any::<u32>(), 0u8..=32).prop_map(|(addr, len)| Ipv4Prefix::new(Ipv4Addr(addr), len))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn tries_agree_with_linear_reference(
            routes in proptest::collection::vec((prefix_strategy(), 0u16..8), 1..80),
            probes in proptest::collection::vec(any::<u32>(), 32),
        ) {
            let mut lin = LinearFib::new();
            let mut trie = TrieFib::new();
            let mut stride = StrideFib::new();
            let mut dir = Dir248Fib::new();
            for &(p, nh) in &routes {
                lin.insert(p, nh);
                trie.insert(p, nh);
                stride.insert(p, nh);
                dir.insert(p, nh);
            }
            prop_assert_eq!(lin.len(), trie.len());
            prop_assert_eq!(lin.len(), stride.len());
            prop_assert_eq!(lin.len(), dir.len());
            for &a in &probes {
                let addr = Ipv4Addr(a);
                let expect = lin.lookup(addr);
                prop_assert_eq!(trie.lookup(addr), expect, "trie mismatch at {}", addr);
                prop_assert_eq!(stride.lookup(addr), expect, "stride mismatch at {}", addr);
                prop_assert_eq!(dir.lookup(addr), expect, "dir248 mismatch at {}", addr);
            }
            // Probe the route addresses themselves (guaranteed hits).
            for &(p, _) in &routes {
                let expect = lin.lookup(p.addr());
                prop_assert_eq!(trie.lookup(p.addr()), expect);
                prop_assert_eq!(stride.lookup(p.addr()), expect);
                prop_assert_eq!(dir.lookup(p.addr()), expect);
            }
        }

        #[test]
        fn removal_keeps_implementations_in_agreement(
            routes in proptest::collection::vec((prefix_strategy(), 0u16..8), 1..40),
            remove_mask in proptest::collection::vec(any::<bool>(), 40),
            probes in proptest::collection::vec(any::<u32>(), 16),
        ) {
            let mut lin = LinearFib::new();
            let mut trie = TrieFib::new();
            let mut stride = StrideFib::new();
            let mut dir = Dir248Fib::new();
            for &(p, nh) in &routes {
                lin.insert(p, nh);
                trie.insert(p, nh);
                stride.insert(p, nh);
                dir.insert(p, nh);
            }
            for (i, &(p, _)) in routes.iter().enumerate() {
                if remove_mask[i % remove_mask.len()] {
                    let a = lin.remove(p);
                    let b = trie.remove(p);
                    let c = stride.remove(p);
                    let d = dir.remove(p);
                    prop_assert_eq!(a, b);
                    prop_assert_eq!(a, c);
                    prop_assert_eq!(a, d);
                }
            }
            prop_assert_eq!(lin.len(), trie.len());
            prop_assert_eq!(lin.len(), stride.len());
            prop_assert_eq!(lin.len(), dir.len());
            for &a in &probes {
                let addr = Ipv4Addr(a);
                let expect = lin.lookup(addr);
                prop_assert_eq!(trie.lookup(addr), expect);
                prop_assert_eq!(stride.lookup(addr), expect);
                prop_assert_eq!(dir.lookup(addr), expect);
            }
        }
    }
}
