//! Longest-prefix-match forwarding tables (the LFE's core data
//! structure).
//!
//! Three implementations behind the [`Fib`] trait:
//!
//! * [`LinearFib`] — the obviously-correct reference: a flat list
//!   scanned for the longest covering prefix. Used as the oracle in
//!   property tests and for tiny tables.
//! * [`TrieFib`] — a binary trie, one bit per level. Updates are O(32);
//!   the default choice when the FIB churns.
//! * [`StrideFib`] — a multibit trie with 8-bit strides and controlled
//!   prefix expansion; lookups touch at most four nodes. Removal
//!   rebuilds from the retained prefix store, mirroring real compiled
//!   FIBs that are regenerated off the critical path.
//!
//! Next hops are `u16` egress linecard indices — all the router
//! simulator needs.

use crate::addr::{Ipv4Addr, Ipv4Prefix};
use std::collections::HashMap;

/// A longest-prefix-match table mapping prefixes to next hops.
///
/// ```
/// use dra_net::fib::{Fib, TrieFib};
///
/// let mut fib = TrieFib::new();
/// fib.insert("10.0.0.0/8".parse().unwrap(), 1);
/// fib.insert("10.1.0.0/16".parse().unwrap(), 2);
///
/// // The longest matching prefix wins.
/// assert_eq!(fib.lookup("10.1.2.3".parse().unwrap()), Some(2));
/// assert_eq!(fib.lookup("10.9.9.9".parse().unwrap()), Some(1));
/// assert_eq!(fib.lookup("11.0.0.1".parse().unwrap()), None);
/// ```
pub trait Fib {
    /// Insert (or replace) a route; returns the previous next hop.
    fn insert(&mut self, prefix: Ipv4Prefix, next_hop: u16) -> Option<u16>;

    /// Remove a route; returns its next hop if present.
    fn remove(&mut self, prefix: Ipv4Prefix) -> Option<u16>;

    /// Longest-prefix-match lookup.
    fn lookup(&self, addr: Ipv4Addr) -> Option<u16>;

    /// Number of routes installed.
    fn len(&self) -> usize;

    /// True when no routes are installed.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// ---------------------------------------------------------------------------
// LinearFib
// ---------------------------------------------------------------------------

/// Reference implementation: linear scan for the longest covering prefix.
#[derive(Debug, Default, Clone)]
pub struct LinearFib {
    routes: Vec<(Ipv4Prefix, u16)>,
}

impl LinearFib {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Fib for LinearFib {
    fn insert(&mut self, prefix: Ipv4Prefix, next_hop: u16) -> Option<u16> {
        for (p, nh) in &mut self.routes {
            if *p == prefix {
                return Some(std::mem::replace(nh, next_hop));
            }
        }
        self.routes.push((prefix, next_hop));
        None
    }

    fn remove(&mut self, prefix: Ipv4Prefix) -> Option<u16> {
        let pos = self.routes.iter().position(|(p, _)| *p == prefix)?;
        Some(self.routes.swap_remove(pos).1)
    }

    fn lookup(&self, addr: Ipv4Addr) -> Option<u16> {
        self.routes
            .iter()
            .filter(|(p, _)| p.contains(addr))
            .max_by_key(|(p, _)| p.len())
            .map(|&(_, nh)| nh)
    }

    fn len(&self) -> usize {
        self.routes.len()
    }
}

// ---------------------------------------------------------------------------
// TrieFib
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct TrieNode {
    children: [Option<Box<TrieNode>>; 2],
    next_hop: Option<u16>,
}

impl TrieNode {
    fn is_leafless(&self) -> bool {
        self.next_hop.is_none() && self.children[0].is_none() && self.children[1].is_none()
    }
}

/// Binary (unibit) trie FIB.
#[derive(Debug, Default)]
pub struct TrieFib {
    root: TrieNode,
    len: usize,
}

impl TrieFib {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Remove along the bit path, pruning empty branches on the way out.
    fn remove_rec(node: &mut TrieNode, prefix: Ipv4Prefix, depth: u8) -> Option<u16> {
        if depth == prefix.len() {
            return node.next_hop.take();
        }
        let bit = prefix.addr().bit(depth) as usize;
        let child = node.children[bit].as_mut()?;
        let removed = Self::remove_rec(child, prefix, depth + 1);
        if removed.is_some() && child.is_leafless() {
            node.children[bit] = None;
        }
        removed
    }
}

impl Fib for TrieFib {
    fn insert(&mut self, prefix: Ipv4Prefix, next_hop: u16) -> Option<u16> {
        let mut node = &mut self.root;
        for depth in 0..prefix.len() {
            let bit = prefix.addr().bit(depth) as usize;
            node = node.children[bit].get_or_insert_with(Default::default);
        }
        let old = node.next_hop.replace(next_hop);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    fn remove(&mut self, prefix: Ipv4Prefix) -> Option<u16> {
        let removed = Self::remove_rec(&mut self.root, prefix, 0);
        if removed.is_some() {
            self.len -= 1;
        }
        removed
    }

    fn lookup(&self, addr: Ipv4Addr) -> Option<u16> {
        let mut best = self.root.next_hop;
        let mut node = &self.root;
        for depth in 0..32 {
            let bit = addr.bit(depth) as usize;
            match &node.children[bit] {
                Some(child) => {
                    node = child;
                    if node.next_hop.is_some() {
                        best = node.next_hop;
                    }
                }
                None => break,
            }
        }
        best
    }

    fn len(&self) -> usize {
        self.len
    }
}

// ---------------------------------------------------------------------------
// StrideFib
// ---------------------------------------------------------------------------

/// One 8-bit-stride node: 256 expanded entries plus 256 child slots.
struct StrideNode {
    /// Best (longest) prefix terminating in this node for each byte
    /// value, as `(next_hop, prefix_len)`.
    entries: Vec<Option<(u16, u8)>>,
    children: Vec<Option<Box<StrideNode>>>,
}

impl StrideNode {
    fn new() -> Self {
        StrideNode {
            entries: vec![None; 256],
            children: (0..256).map(|_| None).collect(),
        }
    }
}

impl std::fmt::Debug for StrideNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let filled = self.entries.iter().filter(|e| e.is_some()).count();
        let kids = self.children.iter().filter(|c| c.is_some()).count();
        write!(f, "StrideNode({filled} entries, {kids} children)")
    }
}

/// Multibit trie with 8-bit strides and controlled prefix expansion.
#[derive(Debug)]
pub struct StrideFib {
    root: StrideNode,
    /// The authoritative route store; removal rebuilds the trie from it.
    store: HashMap<Ipv4Prefix, u16>,
    /// Next hop for the default route, which expands to "everything".
    default_route: Option<u16>,
}

impl Default for StrideFib {
    fn default() -> Self {
        Self::new()
    }
}

impl StrideFib {
    /// Empty table.
    pub fn new() -> Self {
        StrideFib {
            root: StrideNode::new(),
            store: HashMap::new(),
            default_route: None,
        }
    }

    fn insert_into_trie(root: &mut StrideNode, prefix: Ipv4Prefix, next_hop: u16) {
        debug_assert!(prefix.len() > 0, "default route handled separately");
        let octets = prefix.addr().octets();
        let mut node = root;
        let mut depth = 0u8; // bits consumed
        loop {
            let byte = octets[(depth / 8) as usize] as usize;
            let remaining = prefix.len() - depth;
            if remaining <= 8 {
                // Expand within this node: the prefix covers 2^(8-remaining)
                // consecutive byte values.
                let span = 1usize << (8 - remaining);
                let base = byte & !(span - 1);
                for e in &mut node.entries[base..base + span] {
                    // Longer prefixes win; equal length means replacement.
                    if e.is_none_or(|(_, plen)| plen <= prefix.len()) {
                        *e = Some((next_hop, prefix.len()));
                    }
                }
                return;
            }
            node = node.children[byte].get_or_insert_with(|| Box::new(StrideNode::new()));
            depth += 8;
        }
    }

    fn rebuild(&mut self) {
        self.root = StrideNode::new();
        for (&prefix, &nh) in &self.store {
            if prefix.is_default() {
                continue;
            }
            Self::insert_into_trie(&mut self.root, prefix, nh);
        }
    }
}

impl Fib for StrideFib {
    fn insert(&mut self, prefix: Ipv4Prefix, next_hop: u16) -> Option<u16> {
        let old = self.store.insert(prefix, next_hop);
        if prefix.is_default() {
            let prev = self.default_route.replace(next_hop);
            return old.or(prev);
        }
        if old.is_some() {
            // Replacing a route with the same length: the expansion rule
            // `plen <= prefix.len()` overwrites stale entries in place.
            Self::insert_into_trie(&mut self.root, prefix, next_hop);
        } else {
            Self::insert_into_trie(&mut self.root, prefix, next_hop);
        }
        old
    }

    fn remove(&mut self, prefix: Ipv4Prefix) -> Option<u16> {
        let old = self.store.remove(&prefix)?;
        if prefix.is_default() {
            self.default_route = None;
        } else {
            // Expanded entries cannot be un-expanded in place; rebuild
            // from the store (real compiled FIBs regenerate off-path).
            self.rebuild();
        }
        Some(old)
    }

    fn lookup(&self, addr: Ipv4Addr) -> Option<u16> {
        let octets = addr.octets();
        let mut best = self.default_route;
        let mut node = &self.root;
        for &byte in &octets {
            let idx = byte as usize;
            if let Some((nh, _)) = node.entries[idx] {
                best = Some(nh);
            }
            match &node.children[idx] {
                Some(child) => node = child,
                None => break,
            }
        }
        best
    }

    fn len(&self) -> usize {
        self.store.len()
    }
}

// ---------------------------------------------------------------------------
// Synthetic route tables
// ---------------------------------------------------------------------------

/// Generate a deterministic synthetic route table of `n` prefixes with
/// an Internet-like length mix (most routes /16–/24), mapping to
/// `n_ports` next hops. Substitutes for a real BGP dump (none is
/// shipped with the paper); only the LPM code path matters here.
pub fn synthetic_routes(n: usize, n_ports: u16, seed: u64) -> Vec<(Ipv4Prefix, u16)> {
    assert!(n_ports > 0);
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let r = next();
        // Length mix: 10% /8-/15, 60% /16-/23, 30% /24-/28.
        let len = match r % 10 {
            0 => 8 + (next() % 8) as u8,
            1..=6 => 16 + (next() % 8) as u8,
            _ => 24 + (next() % 5) as u8,
        };
        let addr = Ipv4Addr(next() as u32);
        let nh = (next() % n_ports as u64) as u16;
        out.push((Ipv4Prefix::new(addr, len), nh));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn pfx(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    /// Run one scripted scenario against any Fib implementation.
    fn scenario(fib: &mut dyn Fib) {
        assert!(fib.is_empty());
        assert_eq!(fib.lookup(ip("10.0.0.1")), None);

        fib.insert(pfx("10.0.0.0/8"), 1);
        fib.insert(pfx("10.1.0.0/16"), 2);
        fib.insert(pfx("10.1.2.0/24"), 3);
        assert_eq!(fib.len(), 3);

        // Longest match wins.
        assert_eq!(fib.lookup(ip("10.1.2.3")), Some(3));
        assert_eq!(fib.lookup(ip("10.1.9.9")), Some(2));
        assert_eq!(fib.lookup(ip("10.9.9.9")), Some(1));
        assert_eq!(fib.lookup(ip("11.0.0.1")), None);

        // Replacement returns the old hop and keeps len.
        assert_eq!(fib.insert(pfx("10.1.0.0/16"), 7), Some(2));
        assert_eq!(fib.len(), 3);
        assert_eq!(fib.lookup(ip("10.1.9.9")), Some(7));

        // Default route catches everything.
        fib.insert(Ipv4Prefix::default_route(), 9);
        assert_eq!(fib.lookup(ip("11.0.0.1")), Some(9));
        assert_eq!(fib.lookup(ip("10.1.2.3")), Some(3));

        // Removal re-exposes shorter prefixes.
        assert_eq!(fib.remove(pfx("10.1.2.0/24")), Some(3));
        assert_eq!(fib.lookup(ip("10.1.2.3")), Some(7));
        assert_eq!(fib.remove(pfx("10.1.2.0/24")), None);
        assert_eq!(fib.remove(Ipv4Prefix::default_route()), Some(9));
        assert_eq!(fib.lookup(ip("11.0.0.1")), None);
        assert_eq!(fib.len(), 2);
    }

    #[test]
    fn linear_scenario() {
        scenario(&mut LinearFib::new());
    }

    #[test]
    fn trie_scenario() {
        scenario(&mut TrieFib::new());
    }

    #[test]
    fn stride_scenario() {
        scenario(&mut StrideFib::new());
    }

    #[test]
    fn host_routes_work() {
        for fib in [
            &mut TrieFib::new() as &mut dyn Fib,
            &mut StrideFib::new(),
            &mut LinearFib::new(),
        ] {
            fib.insert(pfx("1.2.3.4/32"), 5);
            assert_eq!(fib.lookup(ip("1.2.3.4")), Some(5));
            assert_eq!(fib.lookup(ip("1.2.3.5")), None);
        }
    }

    #[test]
    fn sibling_prefixes_do_not_interfere() {
        for fib in [
            &mut TrieFib::new() as &mut dyn Fib,
            &mut StrideFib::new(),
            &mut LinearFib::new(),
        ] {
            fib.insert(pfx("128.0.0.0/1"), 1);
            fib.insert(pfx("0.0.0.0/1"), 2);
            assert_eq!(fib.lookup(ip("200.0.0.1")), Some(1));
            assert_eq!(fib.lookup(ip("100.0.0.1")), Some(2));
        }
    }

    #[test]
    fn stride_boundary_lengths() {
        // Lengths exactly on stride boundaries (8, 16, 24, 32) exercise
        // the expand-vs-descend decision.
        let mut fib = StrideFib::new();
        fib.insert(pfx("10.0.0.0/8"), 8);
        fib.insert(pfx("10.20.0.0/16"), 16);
        fib.insert(pfx("10.20.30.0/24"), 24);
        fib.insert(pfx("10.20.30.40/32"), 32);
        assert_eq!(fib.lookup(ip("10.20.30.40")), Some(32));
        assert_eq!(fib.lookup(ip("10.20.30.41")), Some(24));
        assert_eq!(fib.lookup(ip("10.20.31.1")), Some(16));
        assert_eq!(fib.lookup(ip("10.21.0.1")), Some(8));
    }

    #[test]
    fn trie_prunes_on_remove() {
        let mut fib = TrieFib::new();
        fib.insert(pfx("10.20.30.0/24"), 1);
        fib.remove(pfx("10.20.30.0/24"));
        // Root must be leafless again (no dangling chain of nodes).
        assert!(fib.root.is_leafless());
    }

    #[test]
    fn synthetic_routes_shape() {
        let routes = synthetic_routes(1000, 16, 42);
        assert_eq!(routes.len(), 1000);
        assert!(routes.iter().all(|(p, nh)| p.len() >= 8 && *nh < 16));
        // Deterministic for a fixed seed.
        assert_eq!(routes, synthetic_routes(1000, 16, 42));
        assert_ne!(routes, synthetic_routes(1000, 16, 43));
    }

    /// Arbitrary prefix strategy for property tests.
    fn prefix_strategy() -> impl Strategy<Value = Ipv4Prefix> {
        (any::<u32>(), 0u8..=32).prop_map(|(addr, len)| Ipv4Prefix::new(Ipv4Addr(addr), len))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn tries_agree_with_linear_reference(
            routes in proptest::collection::vec((prefix_strategy(), 0u16..8), 1..80),
            probes in proptest::collection::vec(any::<u32>(), 32),
        ) {
            let mut lin = LinearFib::new();
            let mut trie = TrieFib::new();
            let mut stride = StrideFib::new();
            for &(p, nh) in &routes {
                lin.insert(p, nh);
                trie.insert(p, nh);
                stride.insert(p, nh);
            }
            prop_assert_eq!(lin.len(), trie.len());
            prop_assert_eq!(lin.len(), stride.len());
            for &a in &probes {
                let addr = Ipv4Addr(a);
                let expect = lin.lookup(addr);
                prop_assert_eq!(trie.lookup(addr), expect, "trie mismatch at {}", addr);
                prop_assert_eq!(stride.lookup(addr), expect, "stride mismatch at {}", addr);
            }
            // Probe the route addresses themselves (guaranteed hits).
            for &(p, _) in &routes {
                let expect = lin.lookup(p.addr());
                prop_assert_eq!(trie.lookup(p.addr()), expect);
                prop_assert_eq!(stride.lookup(p.addr()), expect);
            }
        }

        #[test]
        fn removal_keeps_implementations_in_agreement(
            routes in proptest::collection::vec((prefix_strategy(), 0u16..8), 1..40),
            remove_mask in proptest::collection::vec(any::<bool>(), 40),
            probes in proptest::collection::vec(any::<u32>(), 16),
        ) {
            let mut lin = LinearFib::new();
            let mut trie = TrieFib::new();
            let mut stride = StrideFib::new();
            for &(p, nh) in &routes {
                lin.insert(p, nh);
                trie.insert(p, nh);
                stride.insert(p, nh);
            }
            for (i, &(p, _)) in routes.iter().enumerate() {
                if remove_mask[i % remove_mask.len()] {
                    let a = lin.remove(p);
                    let b = trie.remove(p);
                    let c = stride.remove(p);
                    prop_assert_eq!(a, b);
                    prop_assert_eq!(a, c);
                }
            }
            prop_assert_eq!(lin.len(), trie.len());
            prop_assert_eq!(lin.len(), stride.len());
            for &a in &probes {
                let addr = Ipv4Addr(a);
                let expect = lin.lookup(addr);
                prop_assert_eq!(trie.lookup(addr), expect);
                prop_assert_eq!(stride.lookup(addr), expect);
            }
        }
    }
}
