//! # dra-net
//!
//! The network substrate under the router simulators:
//!
//! * [`addr`] — IPv4 addresses and prefixes with the arithmetic the
//!   FIBs need.
//! * [`fib`] — two longest-prefix-match forwarding tables behind one
//!   trait: a path-compressed binary trie and a multibit-stride table.
//!   The LFE (local forwarding engine) of every linecard holds one, and
//!   DRA's lookup-offload path (REQ_L/REP_L) performs the same lookup
//!   on a remote linecard.
//! * [`packet`] — simulation-level packets: sizes, protocol tags, and
//!   timestamps rather than byte buffers.
//! * [`protocol`] — L2 protocol engines (Ethernet, POS, ATM). These
//!   model the PDLU of the paper: everything protocol-dependent
//!   (framing overhead, encap/decap work) lives behind the
//!   [`protocol::ProtocolEngine`] trait.
//! * [`sar`] — segmentation and reassembly into fixed-size cells for
//!   the crossbar fabric (ATM-like 48-byte payloads).
//! * [`traffic`] — open-loop traffic generators: Poisson with a
//!   trimodal packet-size mix, CBR, bursty on-off, and synthetic trace
//!   replay.
//! * [`trace`] — CSV serialization of traces, so an experiment's exact
//!   input can be pinned and replayed bit-identically.

#![warn(missing_docs)]

pub mod addr;
pub mod fib;
pub mod packet;
pub mod protocol;
pub mod sar;
pub mod trace;
pub mod traffic;

pub use addr::{Ipv4Addr, Ipv4Prefix};
pub use fib::{Dir248Fib, Fib, StrideFib, TrieFib};
pub use packet::{Packet, PacketId, PortId};
pub use protocol::{ProtocolEngine, ProtocolKind};
