//! Simulation-level packets.
//!
//! The simulators track packet *metadata* — sizes, addresses, protocol
//! tags, timestamps — not payload bytes; dependability and bandwidth
//! metrics never look inside the payload, and carrying buffers would
//! only slow the event loop down.

use crate::addr::Ipv4Addr;
use crate::protocol::ProtocolKind;

/// Globally unique packet identity within one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PacketId(pub u64);

/// A linecard port index (linecard-local).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PortId(pub u16);

/// One IP packet in flight through the router.
#[derive(Debug, Clone, PartialEq)]
pub struct Packet {
    /// Unique identity, assigned by the generator.
    pub id: PacketId,
    /// Source address (used only for flow accounting).
    pub src: Ipv4Addr,
    /// Destination address — drives the FIB lookup.
    pub dst: Ipv4Addr,
    /// IP-layer length in bytes (header + payload), before any L2
    /// encapsulation.
    pub ip_bytes: u32,
    /// The L2 protocol of the *ingress* link this packet arrived on.
    pub ingress_protocol: ProtocolKind,
    /// Simulation time the packet hit the ingress PIU.
    pub arrived_at: f64,
}

impl Packet {
    /// Minimum legal IP packet the simulators generate (a bare header).
    pub const MIN_BYTES: u32 = 20;
    /// Largest packet the generators produce (standard Ethernet MTU).
    pub const MAX_BYTES: u32 = 1500;

    /// Construct a packet, clamping the size into the legal range.
    pub fn new(
        id: PacketId,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        ip_bytes: u32,
        ingress_protocol: ProtocolKind,
        arrived_at: f64,
    ) -> Self {
        Packet {
            id,
            src,
            dst,
            ip_bytes: ip_bytes.clamp(Self::MIN_BYTES, Self::MAX_BYTES),
            ingress_protocol,
            arrived_at,
        }
    }

    /// Serialization time of this packet at `rate_bps` (seconds).
    #[inline]
    pub fn wire_time(&self, rate_bps: f64) -> f64 {
        debug_assert!(rate_bps > 0.0);
        self.ip_bytes as f64 * 8.0 / rate_bps
    }
}

/// Monotone packet-id allocator.
#[derive(Debug, Default, Clone)]
pub struct PacketIdGen(u64);

impl PacketIdGen {
    /// Fresh allocator starting at id 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocator starting at an arbitrary id — give each linecard a
    /// disjoint range (e.g. `lc << 48`) so ids stay globally unique.
    pub fn starting_at(first: u64) -> Self {
        PacketIdGen(first)
    }

    /// Allocate the next id.
    #[inline]
    pub fn next_id(&mut self) -> PacketId {
        let id = PacketId(self.0);
        self.0 += 1;
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(n: u32) -> Ipv4Addr {
        Ipv4Addr(n)
    }

    #[test]
    fn size_is_clamped() {
        let p = Packet::new(
            PacketId(0),
            addr(1),
            addr(2),
            5,
            ProtocolKind::Ethernet,
            0.0,
        );
        assert_eq!(p.ip_bytes, Packet::MIN_BYTES);
        let p = Packet::new(
            PacketId(0),
            addr(1),
            addr(2),
            1_000_000,
            ProtocolKind::Ethernet,
            0.0,
        );
        assert_eq!(p.ip_bytes, Packet::MAX_BYTES);
    }

    #[test]
    fn wire_time_scales_with_rate() {
        let p = Packet::new(PacketId(0), addr(1), addr(2), 1000, ProtocolKind::Pos, 0.0);
        let t10g = p.wire_time(10e9);
        let t1g = p.wire_time(1e9);
        assert!((t10g - 8e-7).abs() < 1e-15);
        assert!((t1g / t10g - 10.0).abs() < 1e-9);
    }

    #[test]
    fn id_gen_is_monotone_and_unique() {
        let mut g = PacketIdGen::new();
        let a = g.next_id();
        let b = g.next_id();
        assert_ne!(a, b);
        assert!(a < b);
    }
}
