//! L2 protocol engines — the software model of the paper's PDLU.
//!
//! DRA's key structural move is pulling all protocol-dependent work out
//! of the PIU/SRU into a Protocol-Dependent Logic Unit realized as an
//! FPGA/ASIC programmed per protocol. Here that unit is a
//! [`ProtocolEngine`]: it knows its [`ProtocolKind`], its framing
//! overhead, and how long (de)encapsulation takes. Two engines are
//! interchangeable for coverage purposes **iff their kinds match** —
//! exactly the paper's rule that a failed PDLU may only be covered by a
//! healthy linecard implementing the same protocol.

use std::fmt;

/// The link-layer protocol a linecard terminates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProtocolKind {
    /// IEEE 802.3 Ethernet.
    Ethernet,
    /// Packet-over-SONET (PPP in HDLC-like framing).
    Pos,
    /// ATM with AAL5 adaptation.
    Atm,
}

impl ProtocolKind {
    /// All supported kinds, for iteration in tests and sweeps.
    pub const ALL: [ProtocolKind; 3] =
        [ProtocolKind::Ethernet, ProtocolKind::Pos, ProtocolKind::Atm];
}

impl fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolKind::Ethernet => write!(f, "ethernet"),
            ProtocolKind::Pos => write!(f, "pos"),
            ProtocolKind::Atm => write!(f, "atm"),
        }
    }
}

/// The protocol-dependent logic of one linecard.
///
/// Implementations model only what the dependability and bandwidth
/// analyses can observe: wire overhead and processing latency.
pub trait ProtocolEngine: fmt::Debug + Send {
    /// The protocol this engine implements.
    fn kind(&self) -> ProtocolKind;

    /// Bytes on the wire for an IP packet of `ip_bytes`.
    fn wire_bytes(&self, ip_bytes: u32) -> u32;

    /// Seconds of PDLU processing to encapsulate or decapsulate a
    /// packet of `ip_bytes` (fixed per-packet cost plus per-byte cost).
    fn processing_delay(&self, ip_bytes: u32) -> f64;

    /// Can this engine stand in for `other`? True exactly when the
    /// protocol kinds match (the paper's PDLU-coverage rule).
    fn can_cover(&self, other: ProtocolKind) -> bool {
        self.kind() == other
    }
}

/// Shared cost model: per-packet fixed latency plus per-byte latency.
/// Values are representative of hardware line-speed engines; only their
/// *relative* magnitudes matter to the simulation results.
#[derive(Debug, Clone, Copy)]
struct CostModel {
    per_packet_s: f64,
    per_byte_s: f64,
}

impl CostModel {
    #[inline]
    fn delay(&self, bytes: u32) -> f64 {
        self.per_packet_s + self.per_byte_s * bytes as f64
    }
}

/// IEEE 802.3 engine: 14B header + 4B FCS, 64B minimum frame.
#[derive(Debug, Clone, Copy)]
pub struct EthernetEngine {
    cost: CostModel,
}

impl Default for EthernetEngine {
    fn default() -> Self {
        EthernetEngine {
            cost: CostModel {
                per_packet_s: 50e-9,
                per_byte_s: 0.1e-9,
            },
        }
    }
}

impl ProtocolEngine for EthernetEngine {
    fn kind(&self) -> ProtocolKind {
        ProtocolKind::Ethernet
    }
    fn wire_bytes(&self, ip_bytes: u32) -> u32 {
        // 14B header + 4B FCS, padded to the 64B minimum frame.
        (ip_bytes + 18).max(64)
    }
    fn processing_delay(&self, ip_bytes: u32) -> f64 {
        self.cost.delay(ip_bytes)
    }
}

/// Packet-over-SONET engine: PPP in HDLC-like framing, 9B overhead.
#[derive(Debug, Clone, Copy)]
pub struct PosEngine {
    cost: CostModel,
}

impl Default for PosEngine {
    fn default() -> Self {
        PosEngine {
            cost: CostModel {
                per_packet_s: 40e-9,
                per_byte_s: 0.08e-9,
            },
        }
    }
}

impl ProtocolEngine for PosEngine {
    fn kind(&self) -> ProtocolKind {
        ProtocolKind::Pos
    }
    fn wire_bytes(&self, ip_bytes: u32) -> u32 {
        // Flag + address + control + protocol + FCS ≈ 9 bytes.
        ip_bytes + 9
    }
    fn processing_delay(&self, ip_bytes: u32) -> f64 {
        self.cost.delay(ip_bytes)
    }
}

/// ATM/AAL5 engine: 8B trailer, padding to a 48B multiple, 5B header
/// per 53B cell.
#[derive(Debug, Clone, Copy)]
pub struct AtmEngine {
    cost: CostModel,
}

impl Default for AtmEngine {
    fn default() -> Self {
        AtmEngine {
            cost: CostModel {
                per_packet_s: 70e-9,
                per_byte_s: 0.12e-9,
            },
        }
    }
}

impl ProtocolEngine for AtmEngine {
    fn kind(&self) -> ProtocolKind {
        ProtocolKind::Atm
    }
    fn wire_bytes(&self, ip_bytes: u32) -> u32 {
        // AAL5: payload + 8B trailer, padded up to a multiple of 48,
        // then 53/48 cell tax.
        let aal5 = ip_bytes + 8;
        let cells = aal5.div_ceil(48);
        cells * 53
    }
    fn processing_delay(&self, ip_bytes: u32) -> f64 {
        self.cost.delay(ip_bytes)
    }
}

/// Construct the default engine for a protocol kind.
pub fn engine_for(kind: ProtocolKind) -> Box<dyn ProtocolEngine> {
    match kind {
        ProtocolKind::Ethernet => Box::new(EthernetEngine::default()),
        ProtocolKind::Pos => Box::new(PosEngine::default()),
        ProtocolKind::Atm => Box::new(AtmEngine::default()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_distinct_and_display() {
        let names: Vec<String> = ProtocolKind::ALL.iter().map(|k| k.to_string()).collect();
        assert_eq!(names, vec!["ethernet", "pos", "atm"]);
    }

    #[test]
    fn ethernet_overhead_and_minimum_frame() {
        let e = EthernetEngine::default();
        assert_eq!(e.wire_bytes(1500), 1518);
        assert_eq!(e.wire_bytes(20), 64, "small packets pad to 64B");
    }

    #[test]
    fn pos_overhead() {
        let e = PosEngine::default();
        assert_eq!(e.wire_bytes(1500), 1509);
        assert_eq!(e.wire_bytes(20), 29);
    }

    #[test]
    fn atm_cell_tax() {
        let e = AtmEngine::default();
        // 40B IP packet: +8 trailer = 48 -> 1 cell -> 53B.
        assert_eq!(e.wire_bytes(40), 53);
        // 41B: 49 -> 2 cells -> 106B.
        assert_eq!(e.wire_bytes(41), 106);
        // 1500B: 1508 -> ceil(1508/48)=32 cells -> 1696B.
        assert_eq!(e.wire_bytes(1500), 32 * 53);
    }

    #[test]
    fn coverage_rule_is_same_kind_only() {
        let eth = EthernetEngine::default();
        assert!(eth.can_cover(ProtocolKind::Ethernet));
        assert!(!eth.can_cover(ProtocolKind::Pos));
        assert!(!eth.can_cover(ProtocolKind::Atm));
    }

    #[test]
    fn processing_delay_grows_with_size() {
        for kind in ProtocolKind::ALL {
            let e = engine_for(kind);
            assert_eq!(e.kind(), kind);
            let small = e.processing_delay(40);
            let large = e.processing_delay(1500);
            assert!(large > small, "{kind}: delay must grow with size");
            assert!(small > 0.0);
        }
    }

    #[test]
    fn engine_for_round_trips_kind() {
        for kind in ProtocolKind::ALL {
            assert_eq!(engine_for(kind).kind(), kind);
        }
    }
}
