//! Segmentation and reassembly (the SRU's data path).
//!
//! The crossbar fabric moves fixed-size cells, so the ingress SRU
//! segments each packet and the egress SRU reassembles it — exactly the
//! BDR/DRA structure in the paper (the EIB, by contrast, carries whole
//! packets, which the paper lists as one of the bus's advantages).
//!
//! Cells are ATM-like: 48 payload bytes under a 5-byte header, plus a
//! small internal tag. Only metadata travels in the simulator; the cell
//! count and byte overheads are what the fabric timing needs.
//!
//! The reassembler is allocation-free on the per-packet path: partial
//! packets live in a slot arena recycled through a LIFO freelist, and
//! the `(ingress, PacketId)` key maps to a slot through an
//! open-addressed, power-of-two index table with tombstone deletion.
//! Received-cell bitmaps are inline (`2 × u64`, enough for any packet
//! the traffic models emit) with a heap spill only for totals > 128.

use crate::packet::{Packet, PacketId};

/// Payload bytes per fabric cell.
pub const CELL_PAYLOAD: u32 = 48;
/// Header bytes per fabric cell.
pub const CELL_HEADER: u32 = 5;
/// Total cell size on the fabric.
pub const CELL_BYTES: u32 = CELL_PAYLOAD + CELL_HEADER;

/// One fabric cell carrying a slice of a packet.
///
/// `Copy`: a cell is 16 bytes of plain metadata, and the fabric's
/// arena relies on moving cells out of slab slots by copy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cell {
    /// Source linecard index.
    pub src_lc: u16,
    /// Destination linecard index.
    pub dst_lc: u16,
    /// The packet this cell belongs to.
    pub packet: PacketId,
    /// Cell sequence number within the packet, from 0.
    pub seq: u16,
    /// Total number of cells in the packet.
    pub total: u16,
    /// Payload bytes actually used (< CELL_PAYLOAD only in the last cell).
    pub payload_bytes: u32,
}

impl Cell {
    /// Is this the last cell of its packet?
    #[inline]
    pub fn is_last(&self) -> bool {
        self.seq + 1 == self.total
    }
}

/// Number of cells needed for a packet of `ip_bytes`.
#[inline]
pub fn cells_for(ip_bytes: u32) -> u16 {
    ip_bytes.div_ceil(CELL_PAYLOAD).max(1) as u16
}

/// Iterator over the fabric cells of one packet, in sequence order.
///
/// Produced by [`segment_cells`]; lets the fabric enqueue a packet's
/// cell train without materializing a `Vec<Cell>` per packet.
#[derive(Debug, Clone)]
pub struct SegmentIter {
    src_lc: u16,
    dst_lc: u16,
    packet: PacketId,
    total: u16,
    seq: u16,
    remaining: u32,
}

impl Iterator for SegmentIter {
    type Item = Cell;

    #[inline]
    fn next(&mut self) -> Option<Cell> {
        if self.seq >= self.total {
            return None;
        }
        let payload = self.remaining.min(CELL_PAYLOAD);
        self.remaining -= payload;
        let cell = Cell {
            src_lc: self.src_lc,
            dst_lc: self.dst_lc,
            packet: self.packet,
            seq: self.seq,
            total: self.total,
            payload_bytes: payload,
        };
        self.seq += 1;
        Some(cell)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = (self.total - self.seq) as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for SegmentIter {}

/// Segment a packet into fabric cells addressed `src_lc -> dst_lc`,
/// yielding the cells lazily (no allocation).
#[inline]
pub fn segment_cells(packet: &Packet, src_lc: u16, dst_lc: u16) -> SegmentIter {
    SegmentIter {
        src_lc,
        dst_lc,
        packet: packet.id,
        total: cells_for(packet.ip_bytes),
        seq: 0,
        remaining: packet.ip_bytes,
    }
}

/// Segment a packet into fabric cells addressed `src_lc -> dst_lc`.
pub fn segment(packet: &Packet, src_lc: u16, dst_lc: u16) -> Vec<Cell> {
    segment_cells(packet, src_lc, dst_lc).collect()
}

/// Reassembly error causes, counted by the egress metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReassemblyError {
    /// A cell arrived for a packet whose earlier cells disagree on the
    /// total count (corruption or mis-routing).
    InconsistentTotal,
    /// The same (packet, seq) arrived twice.
    DuplicateCell,
    /// A cell's sequence number exceeds the advertised total.
    SeqOutOfRange,
}

/// Inline received-bitmap words per slot (128 cells; a 1500-byte
/// packet segments into 32).
const INLINE_WORDS: usize = 2;
const INLINE_CELLS: u16 = (INLINE_WORDS * 64) as u16;

/// Index-table sentinel: bucket never used.
const EMPTY: u32 = u32::MAX;
/// Index-table sentinel: bucket vacated by a deletion (probing must
/// continue past it, but inserts may reuse it).
const TOMBSTONE: u32 = u32::MAX - 1;

/// Per-packet reassembly state, recycled through the slot freelist.
#[derive(Debug)]
struct Slot {
    src_lc: u16,
    packet: PacketId,
    total: u16,
    count: u16,
    bytes: u32,
    first_seen_at: f64,
    /// Received-cell bitmap for `total <= INLINE_CELLS` (the common
    /// case; no heap traffic on the per-packet path).
    received: [u64; INLINE_WORDS],
    /// Spill bitmap, used instead of `received` when `total` needs
    /// more than `INLINE_CELLS` bits.
    overflow: Vec<u64>,
}

impl Slot {
    /// Test-and-set the bit for `seq`; returns whether it was already set.
    #[inline]
    fn mark(&mut self, seq: u16) -> bool {
        let words: &mut [u64] = if self.overflow.is_empty() {
            &mut self.received
        } else {
            &mut self.overflow
        };
        let w = (seq / 64) as usize;
        let bit = 1u64 << (seq % 64);
        let dup = words[w] & bit != 0;
        words[w] |= bit;
        dup
    }
}

/// Egress-side reassembler keyed by (source linecard, packet id).
///
/// Tolerates arbitrary interleaving across packets and out-of-order
/// cells within a packet. Stale partial packets (whose remaining cells
/// were dropped upstream, e.g. by a failed linecard) are reclaimed by
/// [`Reassembler::purge_older_than`].
///
/// Internally an open-addressed slot table: steady-state `push` does
/// no allocation (slots recycle through a freelist, the bitmap is
/// inline) and completion/poison removal is O(1) via tombstones.
#[derive(Debug)]
pub struct Reassembler {
    /// Open-addressed bucket array of slot ids (power-of-two length).
    index: Vec<u32>,
    slots: Vec<Slot>,
    /// LIFO freelist of vacated `slots` entries.
    free: Vec<u32>,
    /// Partial packets currently resident.
    live: usize,
    /// TOMBSTONE buckets in `index` (cleared on rehash).
    tombstones: usize,
}

impl Default for Reassembler {
    fn default() -> Self {
        Self::new()
    }
}

/// SplitMix64 finalizer over the (src_lc, packet) key.
#[inline]
fn slot_hash(src_lc: u16, packet: PacketId) -> u64 {
    let mut z = packet
        .0
        .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(src_lc as u64 + 1));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Reassembler {
    const INITIAL_BUCKETS: usize = 16;

    /// Empty reassembler.
    pub fn new() -> Self {
        Self {
            index: vec![EMPTY; Self::INITIAL_BUCKETS],
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            tombstones: 0,
        }
    }

    /// Number of packets currently partially assembled.
    pub fn in_flight(&self) -> usize {
        self.live
    }

    /// Locate the bucket holding `(src_lc, packet)`, if resident.
    #[inline]
    fn find(&self, src_lc: u16, packet: PacketId) -> Option<usize> {
        let mask = self.index.len() - 1;
        let mut pos = slot_hash(src_lc, packet) as usize & mask;
        loop {
            match self.index[pos] {
                EMPTY => return None,
                TOMBSTONE => {}
                id => {
                    let s = &self.slots[id as usize];
                    if s.src_lc == src_lc && s.packet == packet {
                        return Some(pos);
                    }
                }
            }
            pos = (pos + 1) & mask;
        }
    }

    /// Vacate `bucket`, returning its slot to the freelist.
    #[inline]
    fn release(&mut self, bucket: usize) {
        let id = self.index[bucket];
        debug_assert!(id != EMPTY && id != TOMBSTONE);
        self.index[bucket] = TOMBSTONE;
        self.tombstones += 1;
        self.free.push(id);
        self.live -= 1;
    }

    /// Grow (or just de-tombstone) the index and reinsert live slots.
    fn rehash(&mut self, min_buckets: usize) {
        let buckets = min_buckets.next_power_of_two().max(Self::INITIAL_BUCKETS);
        let old = std::mem::replace(&mut self.index, vec![EMPTY; buckets]);
        self.tombstones = 0;
        let mask = buckets - 1;
        for id in old {
            if id == EMPTY || id == TOMBSTONE {
                continue;
            }
            let s = &self.slots[id as usize];
            let mut pos = slot_hash(s.src_lc, s.packet) as usize & mask;
            while self.index[pos] != EMPTY {
                pos = (pos + 1) & mask;
            }
            self.index[pos] = id;
        }
    }

    /// Insert a fresh slot for `(src_lc, packet)`; returns its bucket.
    fn insert_slot(&mut self, src_lc: u16, packet: PacketId, total: u16, now: f64) -> usize {
        // Keep load factor (live + tombstones) under 3/4.
        if (self.live + self.tombstones + 1) * 4 > self.index.len() * 3 {
            self.rehash(self.index.len() * 2);
        }
        let overflow = if total > INLINE_CELLS {
            vec![0u64; total.div_ceil(64) as usize]
        } else {
            Vec::new()
        };
        let id = match self.free.pop() {
            Some(id) => {
                let s = &mut self.slots[id as usize];
                s.src_lc = src_lc;
                s.packet = packet;
                s.total = total;
                s.count = 0;
                s.bytes = 0;
                s.first_seen_at = now;
                s.received = [0; INLINE_WORDS];
                s.overflow = overflow;
                id
            }
            None => {
                self.slots.push(Slot {
                    src_lc,
                    packet,
                    total,
                    count: 0,
                    bytes: 0,
                    first_seen_at: now,
                    received: [0; INLINE_WORDS],
                    overflow,
                });
                (self.slots.len() - 1) as u32
            }
        };
        let mask = self.index.len() - 1;
        let mut pos = slot_hash(src_lc, packet) as usize & mask;
        loop {
            match self.index[pos] {
                EMPTY => break,
                TOMBSTONE => {
                    self.tombstones -= 1;
                    break;
                }
                _ => pos = (pos + 1) & mask,
            }
        }
        self.index[pos] = id;
        self.live += 1;
        pos
    }

    /// Accept one cell at simulation time `now`.
    ///
    /// Returns `Ok(Some((packet_id, bytes)))` when this cell completes
    /// its packet, `Ok(None)` when more cells are pending.
    pub fn push(
        &mut self,
        cell: &Cell,
        now: f64,
    ) -> Result<Option<(PacketId, u32)>, ReassemblyError> {
        if cell.seq >= cell.total {
            return Err(ReassemblyError::SeqOutOfRange);
        }
        let bucket = match self.find(cell.src_lc, cell.packet) {
            Some(b) => b,
            None => self.insert_slot(cell.src_lc, cell.packet, cell.total, now),
        };
        let slot = &mut self.slots[self.index[bucket] as usize];
        if slot.total != cell.total {
            // Totals disagree: drop the whole partial, it is poisoned.
            self.release(bucket);
            return Err(ReassemblyError::InconsistentTotal);
        }
        if slot.mark(cell.seq) {
            return Err(ReassemblyError::DuplicateCell);
        }
        slot.count += 1;
        slot.bytes += cell.payload_bytes;
        if slot.count == cell.total {
            let bytes = slot.bytes;
            self.release(bucket);
            #[cfg(feature = "telemetry")]
            {
                use dra_telemetry as tm;
                tm::counter_add(tm::ids::PACKETS_REASSEMBLED, 1);
                tm::event(
                    tm::EventKind::Reassembly,
                    cell.packet.0,
                    cell.src_lc as u32,
                    bytes,
                );
            }
            Ok(Some((cell.packet, bytes)))
        } else {
            Ok(None)
        }
    }

    /// Drop partial packets first seen before `cutoff`; returns how many
    /// were reclaimed (counted as reassembly-timeout losses).
    pub fn purge_older_than(&mut self, cutoff: f64) -> usize {
        let mut purged = 0;
        for bucket in 0..self.index.len() {
            let id = self.index[bucket];
            if id == EMPTY || id == TOMBSTONE {
                continue;
            }
            if self.slots[id as usize].first_seen_at < cutoff {
                self.release(bucket);
                purged += 1;
            }
        }
        purged
    }

    /// Like [`Reassembler::purge_older_than`] but returns the purged
    /// `(src_lc, packet_id)` keys so the caller can reconcile its own
    /// in-flight bookkeeping.
    pub fn purge_collect(&mut self, cutoff: f64) -> Vec<(u16, PacketId)> {
        let mut stale = Vec::new();
        for bucket in 0..self.index.len() {
            let id = self.index[bucket];
            if id == EMPTY || id == TOMBSTONE {
                continue;
            }
            let s = &self.slots[id as usize];
            if s.first_seen_at < cutoff {
                stale.push((s.src_lc, s.packet));
                self.release(bucket);
            }
        }
        stale
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Ipv4Addr;
    use crate::protocol::ProtocolKind;
    use proptest::prelude::*;

    fn packet(id: u64, bytes: u32) -> Packet {
        Packet::new(
            PacketId(id),
            Ipv4Addr(1),
            Ipv4Addr(2),
            bytes,
            ProtocolKind::Ethernet,
            0.0,
        )
    }

    #[test]
    fn cell_count_boundaries() {
        assert_eq!(cells_for(1), 1);
        assert_eq!(cells_for(48), 1);
        assert_eq!(cells_for(49), 2);
        assert_eq!(cells_for(96), 2);
        assert_eq!(cells_for(1500), 32);
    }

    #[test]
    fn segment_preserves_bytes_and_order() {
        let p = packet(7, 100);
        let cells = segment(&p, 0, 3);
        assert_eq!(cells.len(), 3);
        assert_eq!(cells.iter().map(|c| c.payload_bytes).sum::<u32>(), 100);
        assert_eq!(cells[0].payload_bytes, 48);
        assert_eq!(cells[2].payload_bytes, 4);
        assert!(cells[2].is_last());
        assert!(!cells[0].is_last());
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(c.seq as usize, i);
            assert_eq!(c.total, 3);
            assert_eq!((c.src_lc, c.dst_lc), (0, 3));
        }
    }

    #[test]
    fn segment_cells_iterator_matches_segment() {
        for bytes in [1u32, 47, 48, 49, 100, 1500] {
            let p = packet(11, bytes);
            let eager = segment(&p, 2, 5);
            let iter = segment_cells(&p, 2, 5);
            assert_eq!(iter.len(), eager.len());
            let lazy: Vec<Cell> = iter.collect();
            assert_eq!(lazy, eager, "bytes={bytes}");
        }
    }

    #[test]
    fn reassembly_in_order() {
        let p = packet(1, 120);
        let cells = segment(&p, 0, 1);
        let mut r = Reassembler::new();
        for (i, c) in cells.iter().enumerate() {
            let out = r.push(c, 0.0).unwrap();
            if i + 1 == cells.len() {
                assert_eq!(out, Some((PacketId(1), 120)));
            } else {
                assert_eq!(out, None);
            }
        }
        assert_eq!(r.in_flight(), 0);
    }

    #[test]
    fn reassembly_out_of_order_and_interleaved() {
        let pa = packet(1, 100);
        let pb = packet(2, 100);
        let ca = segment(&pa, 0, 1);
        let cb = segment(&pb, 3, 1);
        let mut r = Reassembler::new();
        // Interleave, reversed within each packet.
        assert_eq!(r.push(&ca[2], 0.0).unwrap(), None);
        assert_eq!(r.push(&cb[2], 0.0).unwrap(), None);
        assert_eq!(r.push(&ca[1], 0.0).unwrap(), None);
        assert_eq!(r.push(&cb[1], 0.0).unwrap(), None);
        assert_eq!(r.in_flight(), 2);
        assert_eq!(r.push(&ca[0], 0.0).unwrap(), Some((PacketId(1), 100)));
        assert_eq!(r.push(&cb[0], 0.0).unwrap(), Some((PacketId(2), 100)));
    }

    #[test]
    fn same_packet_id_from_different_sources_kept_apart() {
        let p = packet(9, 60);
        let from0 = segment(&p, 0, 1);
        let from1 = segment(&p, 1, 1);
        let mut r = Reassembler::new();
        assert_eq!(r.push(&from0[0], 0.0).unwrap(), None);
        assert_eq!(r.push(&from1[0], 0.0).unwrap(), None);
        assert_eq!(r.in_flight(), 2);
    }

    #[test]
    fn duplicate_cell_rejected() {
        let p = packet(1, 100);
        let cells = segment(&p, 0, 1);
        let mut r = Reassembler::new();
        r.push(&cells[0], 0.0).unwrap();
        assert_eq!(r.push(&cells[0], 0.0), Err(ReassemblyError::DuplicateCell));
    }

    #[test]
    fn inconsistent_total_poisons_partial() {
        let p = packet(1, 100);
        let cells = segment(&p, 0, 1);
        let mut r = Reassembler::new();
        r.push(&cells[0], 0.0).unwrap();
        let mut bad = cells[1];
        bad.total = 9;
        assert_eq!(r.push(&bad, 0.0), Err(ReassemblyError::InconsistentTotal));
        assert_eq!(r.in_flight(), 0, "poisoned partial must be dropped");
    }

    #[test]
    fn seq_out_of_range_rejected() {
        let p = packet(1, 100);
        let mut bad = segment(&p, 0, 1)[0];
        bad.seq = bad.total;
        let mut r = Reassembler::new();
        assert_eq!(r.push(&bad, 0.0), Err(ReassemblyError::SeqOutOfRange));
    }

    #[test]
    fn purge_reclaims_stale_partials() {
        let pa = packet(1, 100);
        let pb = packet(2, 100);
        let mut r = Reassembler::new();
        r.push(&segment(&pa, 0, 1)[0], 1.0).unwrap();
        r.push(&segment(&pb, 0, 1)[0], 5.0).unwrap();
        assert_eq!(r.purge_older_than(2.0), 1);
        assert_eq!(r.in_flight(), 1);
    }

    #[test]
    fn purge_collect_returns_stale_keys() {
        let mut r = Reassembler::new();
        for id in 0..6u64 {
            let p = packet(id, 100);
            r.push(&segment(&p, (id % 3) as u16, 1)[0], id as f64)
                .unwrap();
        }
        let mut stale = r.purge_collect(3.0);
        stale.sort();
        let expect: Vec<(u16, PacketId)> = (0..3u64)
            .map(|id| ((id % 3) as u16, PacketId(id)))
            .collect();
        assert_eq!(stale, expect);
        assert_eq!(r.in_flight(), 3);
        assert_eq!(r.purge_collect(0.0), vec![]);
    }

    #[test]
    fn slots_recycle_through_freelist() {
        let mut r = Reassembler::new();
        // Complete many single-cell packets; the arena should stay at
        // one slot rather than growing per packet.
        for id in 0..1000u64 {
            let p = packet(id, 40);
            let c = segment(&p, 0, 1);
            assert_eq!(r.push(&c[0], 0.0).unwrap(), Some((PacketId(id), 40)));
        }
        assert_eq!(r.in_flight(), 0);
        assert_eq!(r.slots.len(), 1, "completed slots must be reused");
    }

    #[test]
    fn index_survives_growth_and_heavy_churn() {
        let mut r = Reassembler::new();
        // Open 200 two-cell partials, then finish them in reverse.
        let packets: Vec<Packet> = (0..200u64).map(|id| packet(id, 96)).collect();
        for p in &packets {
            assert_eq!(r.push(&segment(p, 0, 1)[0], 0.0).unwrap(), None);
        }
        assert_eq!(r.in_flight(), 200);
        for p in packets.iter().rev() {
            let done = r.push(&segment(p, 0, 1)[1], 0.0).unwrap();
            assert_eq!(done, Some((p.id, 96)));
        }
        assert_eq!(r.in_flight(), 0);
    }

    #[test]
    fn oversized_total_uses_overflow_bitmap() {
        // total = 200 > 128 inline bits: exercise the spill path.
        let mut r = Reassembler::new();
        let total = 200u16;
        for seq in (0..total).rev() {
            let c = Cell {
                src_lc: 0,
                dst_lc: 1,
                packet: PacketId(42),
                seq,
                total,
                payload_bytes: 48,
            };
            let out = r.push(&c, 0.0).unwrap();
            if seq == 0 {
                assert_eq!(out, Some((PacketId(42), 48 * total as u32)));
            } else {
                assert_eq!(out, None);
            }
        }
        assert_eq!(r.in_flight(), 0);
    }

    proptest! {
        #[test]
        fn any_permutation_reassembles(bytes in 20u32..1500, seed in 0u64..1000) {
            let p = packet(1, bytes);
            let mut cells = segment(&p, 0, 1);
            // Deterministic shuffle.
            let mut s = seed | 1;
            for i in (1..cells.len()).rev() {
                s ^= s << 13; s ^= s >> 7; s ^= s << 17;
                cells.swap(i, (s as usize) % (i + 1));
            }
            let mut r = Reassembler::new();
            let mut done = None;
            for c in &cells {
                if let Some(d) = r.push(c, 0.0).unwrap() {
                    done = Some(d);
                }
            }
            prop_assert_eq!(done, Some((PacketId(1), bytes.clamp(20, 1500))));
            prop_assert_eq!(r.in_flight(), 0);
        }

        #[test]
        fn segmentation_byte_conservation(bytes in 20u32..1500) {
            let p = packet(1, bytes);
            let cells = segment(&p, 2, 4);
            let total: u32 = cells.iter().map(|c| c.payload_bytes).sum();
            prop_assert_eq!(total, p.ip_bytes);
            prop_assert_eq!(cells.len(), cells_for(p.ip_bytes) as usize);
            // All but the last cell are full.
            for c in &cells[..cells.len() - 1] {
                prop_assert_eq!(c.payload_bytes, CELL_PAYLOAD);
            }
        }
    }
}
