//! Segmentation and reassembly (the SRU's data path).
//!
//! The crossbar fabric moves fixed-size cells, so the ingress SRU
//! segments each packet and the egress SRU reassembles it — exactly the
//! BDR/DRA structure in the paper (the EIB, by contrast, carries whole
//! packets, which the paper lists as one of the bus's advantages).
//!
//! Cells are ATM-like: 48 payload bytes under a 5-byte header, plus a
//! small internal tag. Only metadata travels in the simulator; the cell
//! count and byte overheads are what the fabric timing needs.

use crate::packet::{Packet, PacketId};
use std::collections::HashMap;

/// Payload bytes per fabric cell.
pub const CELL_PAYLOAD: u32 = 48;
/// Header bytes per fabric cell.
pub const CELL_HEADER: u32 = 5;
/// Total cell size on the fabric.
pub const CELL_BYTES: u32 = CELL_PAYLOAD + CELL_HEADER;

/// One fabric cell carrying a slice of a packet.
///
/// `Copy`: a cell is 16 bytes of plain metadata, and the fabric's
/// arena relies on moving cells out of slab slots by copy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cell {
    /// Source linecard index.
    pub src_lc: u16,
    /// Destination linecard index.
    pub dst_lc: u16,
    /// The packet this cell belongs to.
    pub packet: PacketId,
    /// Cell sequence number within the packet, from 0.
    pub seq: u16,
    /// Total number of cells in the packet.
    pub total: u16,
    /// Payload bytes actually used (< CELL_PAYLOAD only in the last cell).
    pub payload_bytes: u32,
}

impl Cell {
    /// Is this the last cell of its packet?
    #[inline]
    pub fn is_last(&self) -> bool {
        self.seq + 1 == self.total
    }
}

/// Number of cells needed for a packet of `ip_bytes`.
#[inline]
pub fn cells_for(ip_bytes: u32) -> u16 {
    ip_bytes.div_ceil(CELL_PAYLOAD).max(1) as u16
}

/// Segment a packet into fabric cells addressed `src_lc -> dst_lc`.
pub fn segment(packet: &Packet, src_lc: u16, dst_lc: u16) -> Vec<Cell> {
    let total = cells_for(packet.ip_bytes);
    let mut remaining = packet.ip_bytes;
    (0..total)
        .map(|seq| {
            let payload = remaining.min(CELL_PAYLOAD);
            remaining -= payload;
            Cell {
                src_lc,
                dst_lc,
                packet: packet.id,
                seq,
                total,
                payload_bytes: payload,
            }
        })
        .collect()
}

/// Reassembly error causes, counted by the egress metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReassemblyError {
    /// A cell arrived for a packet whose earlier cells disagree on the
    /// total count (corruption or mis-routing).
    InconsistentTotal,
    /// The same (packet, seq) arrived twice.
    DuplicateCell,
    /// A cell's sequence number exceeds the advertised total.
    SeqOutOfRange,
}

/// Per-packet reassembly state.
#[derive(Debug)]
struct Partial {
    received: Vec<bool>,
    count: u16,
    bytes: u32,
    first_seen_at: f64,
}

/// Egress-side reassembler keyed by (source linecard, packet id).
///
/// Tolerates arbitrary interleaving across packets and out-of-order
/// cells within a packet. Stale partial packets (whose remaining cells
/// were dropped upstream, e.g. by a failed linecard) are reclaimed by
/// [`Reassembler::purge_older_than`].
#[derive(Debug, Default)]
pub struct Reassembler {
    partials: HashMap<(u16, PacketId), Partial>,
}

impl Reassembler {
    /// Empty reassembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of packets currently partially assembled.
    pub fn in_flight(&self) -> usize {
        self.partials.len()
    }

    /// Accept one cell at simulation time `now`.
    ///
    /// Returns `Ok(Some((packet_id, bytes)))` when this cell completes
    /// its packet, `Ok(None)` when more cells are pending.
    pub fn push(
        &mut self,
        cell: &Cell,
        now: f64,
    ) -> Result<Option<(PacketId, u32)>, ReassemblyError> {
        if cell.seq >= cell.total {
            return Err(ReassemblyError::SeqOutOfRange);
        }
        let key = (cell.src_lc, cell.packet);
        let partial = self.partials.entry(key).or_insert_with(|| Partial {
            received: vec![false; cell.total as usize],
            count: 0,
            bytes: 0,
            first_seen_at: now,
        });
        if partial.received.len() != cell.total as usize {
            // Totals disagree: drop the whole partial, it is poisoned.
            self.partials.remove(&key);
            return Err(ReassemblyError::InconsistentTotal);
        }
        if partial.received[cell.seq as usize] {
            return Err(ReassemblyError::DuplicateCell);
        }
        partial.received[cell.seq as usize] = true;
        partial.count += 1;
        partial.bytes += cell.payload_bytes;
        if partial.count == cell.total {
            let done = self.partials.remove(&key).expect("present");
            Ok(Some((cell.packet, done.bytes)))
        } else {
            Ok(None)
        }
    }

    /// Drop partial packets first seen before `cutoff`; returns how many
    /// were reclaimed (counted as reassembly-timeout losses).
    pub fn purge_older_than(&mut self, cutoff: f64) -> usize {
        let before = self.partials.len();
        self.partials.retain(|_, p| p.first_seen_at >= cutoff);
        before - self.partials.len()
    }

    /// Like [`Reassembler::purge_older_than`] but returns the purged
    /// `(src_lc, packet_id)` keys so the caller can reconcile its own
    /// in-flight bookkeeping.
    pub fn purge_collect(&mut self, cutoff: f64) -> Vec<(u16, PacketId)> {
        let stale: Vec<(u16, PacketId)> = self
            .partials
            .iter()
            .filter(|(_, p)| p.first_seen_at < cutoff)
            .map(|(&k, _)| k)
            .collect();
        for k in &stale {
            self.partials.remove(k);
        }
        stale
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Ipv4Addr;
    use crate::protocol::ProtocolKind;
    use proptest::prelude::*;

    fn packet(id: u64, bytes: u32) -> Packet {
        Packet::new(
            PacketId(id),
            Ipv4Addr(1),
            Ipv4Addr(2),
            bytes,
            ProtocolKind::Ethernet,
            0.0,
        )
    }

    #[test]
    fn cell_count_boundaries() {
        assert_eq!(cells_for(1), 1);
        assert_eq!(cells_for(48), 1);
        assert_eq!(cells_for(49), 2);
        assert_eq!(cells_for(96), 2);
        assert_eq!(cells_for(1500), 32);
    }

    #[test]
    fn segment_preserves_bytes_and_order() {
        let p = packet(7, 100);
        let cells = segment(&p, 0, 3);
        assert_eq!(cells.len(), 3);
        assert_eq!(cells.iter().map(|c| c.payload_bytes).sum::<u32>(), 100);
        assert_eq!(cells[0].payload_bytes, 48);
        assert_eq!(cells[2].payload_bytes, 4);
        assert!(cells[2].is_last());
        assert!(!cells[0].is_last());
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(c.seq as usize, i);
            assert_eq!(c.total, 3);
            assert_eq!((c.src_lc, c.dst_lc), (0, 3));
        }
    }

    #[test]
    fn reassembly_in_order() {
        let p = packet(1, 120);
        let cells = segment(&p, 0, 1);
        let mut r = Reassembler::new();
        for (i, c) in cells.iter().enumerate() {
            let out = r.push(c, 0.0).unwrap();
            if i + 1 == cells.len() {
                assert_eq!(out, Some((PacketId(1), 120)));
            } else {
                assert_eq!(out, None);
            }
        }
        assert_eq!(r.in_flight(), 0);
    }

    #[test]
    fn reassembly_out_of_order_and_interleaved() {
        let pa = packet(1, 100);
        let pb = packet(2, 100);
        let ca = segment(&pa, 0, 1);
        let cb = segment(&pb, 3, 1);
        let mut r = Reassembler::new();
        // Interleave, reversed within each packet.
        assert_eq!(r.push(&ca[2], 0.0).unwrap(), None);
        assert_eq!(r.push(&cb[2], 0.0).unwrap(), None);
        assert_eq!(r.push(&ca[1], 0.0).unwrap(), None);
        assert_eq!(r.push(&cb[1], 0.0).unwrap(), None);
        assert_eq!(r.in_flight(), 2);
        assert_eq!(r.push(&ca[0], 0.0).unwrap(), Some((PacketId(1), 100)));
        assert_eq!(r.push(&cb[0], 0.0).unwrap(), Some((PacketId(2), 100)));
    }

    #[test]
    fn same_packet_id_from_different_sources_kept_apart() {
        let p = packet(9, 60);
        let from0 = segment(&p, 0, 1);
        let from1 = segment(&p, 1, 1);
        let mut r = Reassembler::new();
        assert_eq!(r.push(&from0[0], 0.0).unwrap(), None);
        assert_eq!(r.push(&from1[0], 0.0).unwrap(), None);
        assert_eq!(r.in_flight(), 2);
    }

    #[test]
    fn duplicate_cell_rejected() {
        let p = packet(1, 100);
        let cells = segment(&p, 0, 1);
        let mut r = Reassembler::new();
        r.push(&cells[0], 0.0).unwrap();
        assert_eq!(r.push(&cells[0], 0.0), Err(ReassemblyError::DuplicateCell));
    }

    #[test]
    fn inconsistent_total_poisons_partial() {
        let p = packet(1, 100);
        let cells = segment(&p, 0, 1);
        let mut r = Reassembler::new();
        r.push(&cells[0], 0.0).unwrap();
        let mut bad = cells[1];
        bad.total = 9;
        assert_eq!(r.push(&bad, 0.0), Err(ReassemblyError::InconsistentTotal));
        assert_eq!(r.in_flight(), 0, "poisoned partial must be dropped");
    }

    #[test]
    fn seq_out_of_range_rejected() {
        let p = packet(1, 100);
        let mut bad = segment(&p, 0, 1)[0];
        bad.seq = bad.total;
        let mut r = Reassembler::new();
        assert_eq!(r.push(&bad, 0.0), Err(ReassemblyError::SeqOutOfRange));
    }

    #[test]
    fn purge_reclaims_stale_partials() {
        let pa = packet(1, 100);
        let pb = packet(2, 100);
        let mut r = Reassembler::new();
        r.push(&segment(&pa, 0, 1)[0], 1.0).unwrap();
        r.push(&segment(&pb, 0, 1)[0], 5.0).unwrap();
        assert_eq!(r.purge_older_than(2.0), 1);
        assert_eq!(r.in_flight(), 1);
    }

    proptest! {
        #[test]
        fn any_permutation_reassembles(bytes in 20u32..1500, seed in 0u64..1000) {
            let p = packet(1, bytes);
            let mut cells = segment(&p, 0, 1);
            // Deterministic shuffle.
            let mut s = seed | 1;
            for i in (1..cells.len()).rev() {
                s ^= s << 13; s ^= s >> 7; s ^= s << 17;
                cells.swap(i, (s as usize) % (i + 1));
            }
            let mut r = Reassembler::new();
            let mut done = None;
            for c in &cells {
                if let Some(d) = r.push(c, 0.0).unwrap() {
                    done = Some(d);
                }
            }
            prop_assert_eq!(done, Some((PacketId(1), bytes.clamp(20, 1500))));
            prop_assert_eq!(r.in_flight(), 0);
        }

        #[test]
        fn segmentation_byte_conservation(bytes in 20u32..1500) {
            let p = packet(1, bytes);
            let cells = segment(&p, 2, 4);
            let total: u32 = cells.iter().map(|c| c.payload_bytes).sum();
            prop_assert_eq!(total, p.ip_bytes);
            prop_assert_eq!(cells.len(), cells_for(p.ip_bytes) as usize);
            // All but the last cell are full.
            for c in &cells[..cells.len() - 1] {
                prop_assert_eq!(c.payload_bytes, CELL_PAYLOAD);
            }
        }
    }
}
