//! Trace serialization: write [`crate::traffic::Arrival`] sequences to
//! CSV and read them back.
//!
//! The substitution rule for the paper's unavailable production traces
//! (DESIGN.md §2) is synthetic generation; serializing those traces
//! lets an experiment pin its exact input — re-running months later,
//! or on another machine, replays byte-identical traffic without
//! trusting RNG-version stability.
//!
//! Format: a header line, then `dt_seconds,ip_bytes,dst_ipv4` rows
//! (`dst` in dotted-quad form). Hand-rolled on purpose: three columns
//! do not justify a serde dependency.

use crate::addr::Ipv4Addr;
use crate::traffic::Arrival;
use std::fmt::Write as _;
use std::str::FromStr;

/// The header written to (and required from) every trace file.
pub const HEADER: &str = "dt_s,ip_bytes,dst";

/// Errors from trace parsing.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceError {
    /// The first line was not the expected header.
    BadHeader(String),
    /// A data row failed to parse.
    BadRow {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        reason: String,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::BadHeader(h) => write!(f, "bad trace header {h:?} (want {HEADER:?})"),
            TraceError::BadRow { line, reason } => write!(f, "trace line {line}: {reason}"),
        }
    }
}

impl std::error::Error for TraceError {}

/// Render a trace as CSV text.
pub fn to_csv(trace: &[Arrival]) -> String {
    let mut out = String::with_capacity(trace.len() * 24 + HEADER.len() + 1);
    out.push_str(HEADER);
    out.push('\n');
    for a in trace {
        // 17 significant digits round-trip any f64 exactly.
        let _ = writeln!(out, "{:.17e},{},{}", a.dt, a.ip_bytes, a.dst);
    }
    out
}

/// Parse a trace from CSV text (as produced by [`to_csv`]).
pub fn from_csv(text: &str) -> Result<Vec<Arrival>, TraceError> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, h)) if h.trim() == HEADER => {}
        Some((_, h)) => return Err(TraceError::BadHeader(h.to_string())),
        None => return Err(TraceError::BadHeader(String::new())),
    }
    let mut out = Vec::new();
    for (idx, line) in lines {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split(',');
        let (dt_s, bytes_s, dst_s) = match (parts.next(), parts.next(), parts.next(), parts.next())
        {
            (Some(a), Some(b), Some(c), None) => (a, b, c),
            _ => {
                return Err(TraceError::BadRow {
                    line: idx + 1,
                    reason: "expected exactly three fields".into(),
                })
            }
        };
        let dt: f64 = dt_s.parse().map_err(|_| TraceError::BadRow {
            line: idx + 1,
            reason: format!("bad dt {dt_s:?}"),
        })?;
        if !dt.is_finite() || dt < 0.0 {
            return Err(TraceError::BadRow {
                line: idx + 1,
                reason: format!("dt out of range: {dt}"),
            });
        }
        let ip_bytes: u32 = bytes_s.parse().map_err(|_| TraceError::BadRow {
            line: idx + 1,
            reason: format!("bad size {bytes_s:?}"),
        })?;
        let dst = Ipv4Addr::from_str(dst_s).map_err(|_| TraceError::BadRow {
            line: idx + 1,
            reason: format!("bad address {dst_s:?}"),
        })?;
        out.push(Arrival { dt, ip_bytes, dst });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::synthesize_trace;

    fn bases() -> Vec<Ipv4Addr> {
        vec![Ipv4Addr::from_octets(10, 0, 0, 0)]
    }

    #[test]
    fn round_trip_is_exact() {
        let trace = synthesize_trace(500, 1.5e9, &bases(), 0xCAFE);
        let csv = to_csv(&trace);
        let back = from_csv(&csv).unwrap();
        assert_eq!(trace, back, "f64 round-trip must be bit-exact");
    }

    #[test]
    fn empty_trace_round_trips() {
        let csv = to_csv(&[]);
        assert_eq!(csv.trim(), HEADER);
        assert_eq!(from_csv(&csv).unwrap(), Vec::new());
    }

    #[test]
    fn header_is_enforced() {
        assert!(matches!(
            from_csv("nope\n1,2,3.4.5.6"),
            Err(TraceError::BadHeader(_))
        ));
        assert!(matches!(from_csv(""), Err(TraceError::BadHeader(_))));
    }

    #[test]
    fn bad_rows_are_located() {
        let text = format!("{HEADER}\n1.0e0,100,10.0.0.1\nbogus,100,10.0.0.1");
        match from_csv(&text) {
            Err(TraceError::BadRow { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected BadRow, got {other:?}"),
        }
        // Wrong field count.
        let text = format!("{HEADER}\n1.0e0,100");
        assert!(matches!(from_csv(&text), Err(TraceError::BadRow { .. })));
        // Negative dt.
        let text = format!("{HEADER}\n-1.0e0,100,10.0.0.1");
        assert!(matches!(from_csv(&text), Err(TraceError::BadRow { .. })));
        // Bad address.
        let text = format!("{HEADER}\n1.0e0,100,10.0.0");
        assert!(matches!(from_csv(&text), Err(TraceError::BadRow { .. })));
    }

    #[test]
    fn blank_lines_are_tolerated() {
        let text = format!("{HEADER}\n1.0e0,100,10.0.0.1\n\n2.0e0,200,10.0.0.2\n");
        let t = from_csv(&text).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t[1].ip_bytes, 200);
    }

    #[test]
    fn replayed_trace_drives_the_generator() {
        use crate::traffic::{TraceGen, TrafficGen};
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let trace = synthesize_trace(50, 1e9, &bases(), 7);
        let csv = to_csv(&trace);
        let loaded = from_csv(&csv).unwrap();
        let mut gen = TraceGen::new(loaded).unwrap();
        let mut rng = SmallRng::seed_from_u64(0);
        for expect in &trace {
            assert_eq!(&gen.next_arrival(&mut rng), expect);
        }
    }
}
