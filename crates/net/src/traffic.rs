//! Open-loop traffic generators.
//!
//! The paper's performance analysis depends on one traffic parameter:
//! the mean link utilization `L` (15%–70%, citing its reference \[3\]). These
//! generators produce packet arrival processes with a controllable mean
//! load so the simulator can sweep the same axis; the bursty and trace
//! generators exist to show DRA's behaviour is not an artifact of
//! Poisson smoothness.

use crate::addr::Ipv4Addr;
use crate::packet::{Packet, PacketIdGen};
use crate::protocol::ProtocolKind;
use dra_des::random::{self, Discrete};
use rand::Rng;

/// The next packet to inject: wait `dt` seconds, then `packet` arrives.
///
/// `Copy`: 16 bytes of plain data, so generators and the ingress
/// lookup trains hand arrivals around by value without cloning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Arrival {
    /// Inter-arrival gap from the previous packet (seconds).
    pub dt: f64,
    /// IP bytes of the arriving packet.
    pub ip_bytes: u32,
    /// Destination address to look up.
    pub dst: Ipv4Addr,
}

/// A source of packet arrivals for one ingress port.
pub trait TrafficGen: std::fmt::Debug + Send {
    /// Draw the next arrival.
    fn next_arrival<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Arrival
    where
        Self: Sized;

    /// The generator's configured mean offered load in bits/second.
    fn mean_load_bps(&self) -> f64;
}

/// The classic trimodal Internet packet-size mix (IMIX-like):
/// 40 B (58%), 576 B (33%), 1500 B (9%).
pub fn imix_sizes() -> Discrete<u32> {
    Discrete::new(&[(40u32, 0.58), (576, 0.33), (1500, 0.09)]).expect("static weights valid")
}

/// Mean size in bytes of the [`imix_sizes`] mix.
pub fn imix_mean_bytes() -> f64 {
    40.0 * 0.58 + 576.0 * 0.33 + 1500.0 * 0.09
}

/// Draw a uniformly random destination address covered by one of the
/// generator's target prefixes — a cheap stand-in for real flow
/// structure (only the FIB lookup result matters downstream).
fn random_dst<R: Rng + ?Sized>(rng: &mut R, space: &Discrete<Ipv4Addr>) -> Ipv4Addr {
    let base = *space.sample(rng);
    // Randomize the low byte to spread across a /24 around the base.
    Ipv4Addr((base.0 & 0xFFFF_FF00) | (rng.gen::<u8>() as u32))
}

/// Poisson arrivals with IMIX sizes at a target mean load.
#[derive(Debug)]
pub struct PoissonGen {
    /// Packet arrival rate (packets/second) derived from the load.
    rate_pps: f64,
    load_bps: f64,
    sizes: Discrete<u32>,
    dsts: Discrete<Ipv4Addr>,
}

impl PoissonGen {
    /// A generator offering `load_bps` toward addresses drawn around
    /// the given bases (all equally likely).
    pub fn new(load_bps: f64, dst_bases: &[Ipv4Addr]) -> Self {
        assert!(load_bps > 0.0, "load must be positive");
        assert!(!dst_bases.is_empty(), "need at least one destination");
        let sizes = imix_sizes();
        let rate_pps = load_bps / (imix_mean_bytes() * 8.0);
        let dsts = Discrete::new(&dst_bases.iter().map(|&a| (a, 1.0)).collect::<Vec<_>>())
            .expect("nonempty");
        PoissonGen {
            rate_pps,
            load_bps,
            sizes,
            dsts,
        }
    }
}

impl TrafficGen for PoissonGen {
    fn next_arrival<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Arrival {
        Arrival {
            dt: random::exponential(rng, self.rate_pps),
            ip_bytes: *self.sizes.sample(rng),
            dst: random_dst(rng, &self.dsts),
        }
    }

    fn mean_load_bps(&self) -> f64 {
        self.load_bps
    }
}

/// Constant-bit-rate arrivals: fixed size, fixed spacing.
#[derive(Debug)]
pub struct CbrGen {
    period: f64,
    bytes: u32,
    load_bps: f64,
    dsts: Discrete<Ipv4Addr>,
}

impl CbrGen {
    /// CBR at `load_bps` using packets of `bytes`.
    pub fn new(load_bps: f64, bytes: u32, dst_bases: &[Ipv4Addr]) -> Self {
        assert!(load_bps > 0.0 && bytes > 0);
        assert!(!dst_bases.is_empty());
        let period = bytes as f64 * 8.0 / load_bps;
        let dsts = Discrete::new(&dst_bases.iter().map(|&a| (a, 1.0)).collect::<Vec<_>>())
            .expect("nonempty");
        CbrGen {
            period,
            bytes,
            load_bps,
            dsts,
        }
    }
}

impl TrafficGen for CbrGen {
    fn next_arrival<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Arrival {
        Arrival {
            dt: self.period,
            ip_bytes: self.bytes,
            dst: random_dst(rng, &self.dsts),
        }
    }

    fn mean_load_bps(&self) -> f64 {
        self.load_bps
    }
}

/// Markov-modulated on-off source: exponential ON and OFF sojourns;
/// while ON, Poisson arrivals at the peak rate. Mean load is
/// `peak · on/(on+off)`.
#[derive(Debug)]
pub struct OnOffGen {
    peak_pps: f64,
    mean_on_s: f64,
    mean_off_s: f64,
    load_bps: f64,
    sizes: Discrete<u32>,
    dsts: Discrete<Ipv4Addr>,
    /// Remaining time in the current ON period (0 = currently OFF).
    on_remaining: f64,
}

impl OnOffGen {
    /// A bursty source with the given mean load and burstiness
    /// (`peak_factor` = peak/mean rate, > 1).
    pub fn new(load_bps: f64, peak_factor: f64, mean_on_s: f64, dst_bases: &[Ipv4Addr]) -> Self {
        assert!(load_bps > 0.0 && peak_factor > 1.0 && mean_on_s > 0.0);
        assert!(!dst_bases.is_empty());
        let duty = 1.0 / peak_factor;
        let mean_off_s = mean_on_s * (1.0 - duty) / duty;
        let peak_bps = load_bps * peak_factor;
        let peak_pps = peak_bps / (imix_mean_bytes() * 8.0);
        let dsts = Discrete::new(&dst_bases.iter().map(|&a| (a, 1.0)).collect::<Vec<_>>())
            .expect("nonempty");
        OnOffGen {
            peak_pps,
            mean_on_s,
            mean_off_s,
            load_bps,
            sizes: imix_sizes(),
            dsts,
            on_remaining: 0.0,
        }
    }
}

impl TrafficGen for OnOffGen {
    fn next_arrival<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Arrival {
        let mut dt = 0.0;
        loop {
            if self.on_remaining <= 0.0 {
                // In an OFF period: wait it out, then start a burst.
                dt += random::exponential(rng, 1.0 / self.mean_off_s);
                self.on_remaining = random::exponential(rng, 1.0 / self.mean_on_s);
            }
            let gap = random::exponential(rng, self.peak_pps);
            if gap <= self.on_remaining {
                self.on_remaining -= gap;
                dt += gap;
                return Arrival {
                    dt,
                    ip_bytes: *self.sizes.sample(rng),
                    dst: random_dst(rng, &self.dsts),
                };
            }
            // Burst ended before the next arrival: burn the remainder.
            dt += self.on_remaining;
            self.on_remaining = 0.0;
        }
    }

    fn mean_load_bps(&self) -> f64 {
        self.load_bps
    }
}

/// Replays a fixed synthetic trace cyclically — the substitution for
/// production traces the paper's authors didn't publish. Generate one
/// with [`synthesize_trace`] and replay it for exactly repeatable
/// cross-architecture comparisons (BDR vs DRA see byte-identical input).
#[derive(Debug, Clone)]
pub struct TraceGen {
    trace: Vec<Arrival>,
    pos: usize,
    load_bps: f64,
}

impl TraceGen {
    /// Wrap a pre-generated trace.
    pub fn new(trace: Vec<Arrival>) -> Option<Self> {
        if trace.is_empty() {
            return None;
        }
        let total_bits: f64 = trace.iter().map(|a| a.ip_bytes as f64 * 8.0).sum();
        let total_time: f64 = trace.iter().map(|a| a.dt).sum();
        if total_time <= 0.0 {
            return None;
        }
        Some(TraceGen {
            trace,
            pos: 0,
            load_bps: total_bits / total_time,
        })
    }

    /// Length of the underlying trace.
    pub fn len(&self) -> usize {
        self.trace.len()
    }

    /// True when the trace is empty (never constructed so).
    pub fn is_empty(&self) -> bool {
        self.trace.is_empty()
    }
}

impl TrafficGen for TraceGen {
    fn next_arrival<R: Rng + ?Sized>(&mut self, _rng: &mut R) -> Arrival {
        let a = self.trace[self.pos];
        self.pos = (self.pos + 1) % self.trace.len();
        a
    }

    fn mean_load_bps(&self) -> f64 {
        self.load_bps
    }
}

/// Produce a reusable synthetic trace of `n` arrivals at `load_bps`
/// from a seeded Poisson/IMIX source.
pub fn synthesize_trace(
    n: usize,
    load_bps: f64,
    dst_bases: &[Ipv4Addr],
    seed: u64,
) -> Vec<Arrival> {
    use rand::SeedableRng;
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
    let mut gen = PoissonGen::new(load_bps, dst_bases);
    (0..n).map(|_| gen.next_arrival(&mut rng)).collect()
}

/// Helper that stamps arrivals into [`Packet`]s.
#[derive(Debug)]
pub struct PacketFactory {
    ids: PacketIdGen,
    src: Ipv4Addr,
    protocol: ProtocolKind,
}

impl PacketFactory {
    /// Packets from `src` over links of the given protocol.
    pub fn new(src: Ipv4Addr, protocol: ProtocolKind) -> Self {
        PacketFactory {
            ids: PacketIdGen::new(),
            src,
            protocol,
        }
    }

    /// Materialize an [`Arrival`] as a [`Packet`] arriving `now`.
    pub fn make(&mut self, arrival: &Arrival, now: f64) -> Packet {
        Packet::new(
            self.ids.next_id(),
            self.src,
            arrival.dst,
            arrival.ip_bytes,
            self.protocol,
            now,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn bases() -> Vec<Ipv4Addr> {
        vec![
            Ipv4Addr::from_octets(10, 0, 0, 0),
            Ipv4Addr::from_octets(10, 1, 0, 0),
        ]
    }

    fn measure_load<G: TrafficGen>(gen: &mut G, n: usize, seed: u64) -> f64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut bits = 0.0;
        let mut time = 0.0;
        for _ in 0..n {
            let a = gen.next_arrival(&mut rng);
            bits += a.ip_bytes as f64 * 8.0;
            time += a.dt;
        }
        bits / time
    }

    #[test]
    fn poisson_hits_target_load() {
        let target = 1.5e9; // 1.5 Gbps = 15% of a 10G port
        let mut gen = PoissonGen::new(target, &bases());
        let measured = measure_load(&mut gen, 200_000, 7);
        assert!(
            (measured / target - 1.0).abs() < 0.03,
            "measured {measured:.3e} vs target {target:.3e}"
        );
        assert_eq!(gen.mean_load_bps(), target);
    }

    #[test]
    fn cbr_is_exactly_periodic() {
        let mut gen = CbrGen::new(1e9, 1000, &bases());
        let mut rng = SmallRng::seed_from_u64(1);
        let a = gen.next_arrival(&mut rng);
        let b = gen.next_arrival(&mut rng);
        assert_eq!(a.dt, b.dt);
        assert_eq!(a.ip_bytes, 1000);
        assert!((a.dt - 8e-6).abs() < 1e-12);
    }

    #[test]
    fn onoff_hits_target_load_and_is_bursty() {
        let target = 2e9;
        // Short bursts (~30 packets each) so the load estimate averages
        // over thousands of on/off cycles.
        let mut gen = OnOffGen::new(target, 4.0, 1e-5, &bases());
        let measured = measure_load(&mut gen, 300_000, 11);
        assert!(
            (measured / target - 1.0).abs() < 0.05,
            "measured {measured:.3e} vs target {target:.3e}"
        );
        // Burstiness: squared coefficient of variation of gaps must
        // exceed Poisson's (which is 1).
        let mut rng = SmallRng::seed_from_u64(13);
        let gaps: Vec<f64> = (0..100_000)
            .map(|_| gen.next_arrival(&mut rng).dt)
            .collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
        let scv = var / (mean * mean);
        assert!(scv > 1.2, "on-off gaps not bursty enough: scv={scv}");
    }

    #[test]
    fn trace_replay_is_exact_and_cyclic() {
        let trace = synthesize_trace(50, 1e9, &bases(), 99);
        let mut gen = TraceGen::new(trace.clone()).unwrap();
        let mut rng = SmallRng::seed_from_u64(0);
        for a in &trace {
            assert_eq!(&gen.next_arrival(&mut rng), a);
        }
        // Wraps around.
        assert_eq!(&gen.next_arrival(&mut rng), &trace[0]);
        assert_eq!(gen.len(), 50);
        assert!(!gen.is_empty());
    }

    #[test]
    fn trace_rejects_degenerate_input() {
        assert!(TraceGen::new(vec![]).is_none());
        let zero_time = vec![Arrival {
            dt: 0.0,
            ip_bytes: 100,
            dst: Ipv4Addr(0),
        }];
        assert!(TraceGen::new(zero_time).is_none());
    }

    #[test]
    fn imix_mean_is_consistent() {
        let mut rng = SmallRng::seed_from_u64(3);
        let sizes = imix_sizes();
        let n = 200_000;
        let sum: u64 = (0..n).map(|_| *sizes.sample(&mut rng) as u64).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean / imix_mean_bytes() - 1.0).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn packet_factory_stamps_metadata() {
        let mut f = PacketFactory::new(Ipv4Addr(42), ProtocolKind::Atm);
        let arrival = Arrival {
            dt: 0.0,
            ip_bytes: 576,
            dst: Ipv4Addr(7),
        };
        let p1 = f.make(&arrival, 1.5);
        let p2 = f.make(&arrival, 2.5);
        assert_ne!(p1.id, p2.id);
        assert_eq!(p1.src, Ipv4Addr(42));
        assert_eq!(p1.dst, Ipv4Addr(7));
        assert_eq!(p1.ingress_protocol, ProtocolKind::Atm);
        assert_eq!(p1.arrived_at, 1.5);
    }

    #[test]
    fn destinations_spread_across_bases() {
        let mut gen = PoissonGen::new(1e9, &bases());
        let mut rng = SmallRng::seed_from_u64(5);
        let mut in_first = 0;
        let n = 10_000;
        for _ in 0..n {
            let a = gen.next_arrival(&mut rng);
            if a.dst.octets()[1] == 0 {
                in_first += 1;
            }
        }
        let frac = in_first as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.05, "base split {frac}");
    }
}
