//! Four-way FIB equivalence under churn.
//!
//! `LinearFib` is the executable oracle; `TrieFib`, `StrideFib`, and
//! `Dir248Fib` must agree with it — on lookups *and* on the return
//! values of every insert/remove — under arbitrary interleavings of
//! operations. The in-module proptests in `fib.rs` cover the
//! insert-everything-then-probe shape; this harness covers the harder
//! shape, where removes and lookups land between inserts and the
//! incremental update paths (trie node pruning, stride unwinding,
//! DIR-24-8 spill-block collapse) run mid-stream.
//!
//! The prefix pool is deliberately adversarial for `Dir248Fib`:
//! addresses are confined to eight /8s with only the low 16 bits free,
//! so /25–/32 routes pile into shared /24 blocks (spill sharing and
//! collapse), and the length distribution is biased toward the
//! spill range and includes /0 (default-route shadowing).

use dra_net::addr::{Ipv4Addr, Ipv4Prefix};
use dra_net::fib::{Dir248Fib, Fib, LinearFib, StrideFib, TrieFib};
use proptest::prelude::*;

#[derive(Debug, Clone, Copy)]
enum Op {
    /// Insert pool[raw % len] with the given next hop. Re-inserting a
    /// pooled prefix with a different hop exercises replacement.
    Insert(usize, u16),
    /// Remove pool[raw % len] (often present, sometimes not).
    Remove(usize),
    /// Longest-prefix-match probe at an arbitrary address.
    Lookup(u32),
}

fn plen_strategy() -> impl Strategy<Value = u8> {
    // The shim's prop_oneof! is unweighted; the /25–/32 arm appears
    // twice to bias the mix toward spill-block prefixes.
    prop_oneof![Just(0u8), 1u8..=8, 9u8..=24, 25u8..=32, 25u8..=32]
}

fn pool_strategy() -> impl Strategy<Value = Vec<Ipv4Prefix>> {
    proptest::collection::vec(
        (0u32..8, any::<u32>(), plen_strategy()).prop_map(|(hi, lo, len)| {
            let addr = (hi << 24) | (lo & 0x0000_FFFF);
            Ipv4Prefix::new(Ipv4Addr(addr), len)
        }),
        4..24,
    )
}

fn ops_strategy() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (any::<usize>(), 0u16..8).prop_map(|(i, nh)| Op::Insert(i, nh)),
            (any::<usize>(), 0u16..8).prop_map(|(i, nh)| Op::Insert(i, nh)),
            (any::<usize>()).prop_map(Op::Remove),
            any::<u32>().prop_map(Op::Lookup),
        ],
        1..120,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn churn_keeps_all_four_impls_in_agreement(
        pool in pool_strategy(),
        ops in ops_strategy(),
        probes in proptest::collection::vec(any::<u32>(), 24),
    ) {
        let mut lin = LinearFib::new();
        let mut trie = TrieFib::new();
        let mut stride = StrideFib::new();
        let mut dir = Dir248Fib::new();

        for op in &ops {
            match *op {
                Op::Insert(raw, nh) => {
                    let p = pool[raw % pool.len()];
                    let expect = lin.insert(p, nh);
                    prop_assert_eq!(trie.insert(p, nh), expect, "trie insert {}", p);
                    prop_assert_eq!(stride.insert(p, nh), expect, "stride insert {}", p);
                    prop_assert_eq!(dir.insert(p, nh), expect, "dir248 insert {}", p);
                }
                Op::Remove(raw) => {
                    let p = pool[raw % pool.len()];
                    let expect = lin.remove(p);
                    prop_assert_eq!(trie.remove(p), expect, "trie remove {}", p);
                    prop_assert_eq!(stride.remove(p), expect, "stride remove {}", p);
                    prop_assert_eq!(dir.remove(p), expect, "dir248 remove {}", p);
                }
                Op::Lookup(a) => {
                    let addr = Ipv4Addr(a);
                    let expect = lin.lookup(addr);
                    prop_assert_eq!(trie.lookup(addr), expect, "trie lookup {}", addr);
                    prop_assert_eq!(stride.lookup(addr), expect, "stride lookup {}", addr);
                    prop_assert_eq!(dir.lookup(addr), expect, "dir248 lookup {}", addr);
                }
            }
            prop_assert_eq!(lin.len(), trie.len());
            prop_assert_eq!(lin.len(), stride.len());
            prop_assert_eq!(lin.len(), dir.len());
        }

        // Final sweep: pooled prefixes (guaranteed interesting), their
        // broadcast neighbours (last-host edge of any spill block), and
        // arbitrary probes — scalar on all four, then one batched pass
        // on the compiled table to pin lookup_batch == lookup.
        let mut sweep: Vec<Ipv4Addr> = Vec::new();
        for p in &pool {
            sweep.push(p.addr());
            sweep.push(Ipv4Addr(p.addr().0 | 0xFF));
        }
        sweep.extend(probes.iter().map(|&a| Ipv4Addr(a)));

        let mut batched = vec![None; sweep.len()];
        dir.lookup_batch(&sweep, &mut batched);
        for (&addr, &got) in sweep.iter().zip(&batched) {
            let expect = lin.lookup(addr);
            prop_assert_eq!(trie.lookup(addr), expect, "trie sweep {}", addr);
            prop_assert_eq!(stride.lookup(addr), expect, "stride sweep {}", addr);
            prop_assert_eq!(dir.lookup(addr), expect, "dir248 sweep {}", addr);
            prop_assert_eq!(got, expect, "dir248 batched sweep {}", addr);
        }
    }
}

/// The ISSUE's named cases, pinned deterministically so a proptest seed
/// change can never silently stop covering them.
#[test]
fn default_route_shadowing_and_spill_collapse() {
    let mut lin = LinearFib::new();
    let mut trie = TrieFib::new();
    let mut stride = StrideFib::new();
    let mut dir = Dir248Fib::new();

    let all: [&mut dyn Fib; 4] = [&mut lin, &mut trie, &mut stride, &mut dir];
    let script: &[(&str, &str, u16)] = &[
        ("insert", "0.0.0.0/0", 1),     // default route
        ("insert", "10.1.2.0/24", 2),   // base-table route
        ("insert", "10.1.2.128/25", 3), // forces a spill block
        ("insert", "10.1.2.130/32", 4), // host route in the same block
        ("insert", "10.1.2.130/32", 5), // replacement, same block
        ("remove", "10.1.2.130/32", 0),
        ("remove", "10.1.2.128/25", 0), // block empties: collapse to /24
        ("remove", "10.1.2.0/24", 0),   // falls back to the default
    ];
    let checkpoints: &[&str] = &["10.1.2.130", "10.1.2.1", "10.9.9.9", "11.0.0.1"];

    let mut fibs = all;
    for &(verb, pfx, nh) in script {
        let p: Ipv4Prefix = pfx.parse().unwrap();
        let results: Vec<Option<u16>> = fibs
            .iter_mut()
            .map(|f| match verb {
                "insert" => f.insert(p, nh),
                _ => f.remove(p),
            })
            .collect();
        assert!(
            results.windows(2).all(|w| w[0] == w[1]),
            "divergent {verb} {pfx}: {results:?}"
        );
        for &probe in checkpoints {
            let addr: Ipv4Addr = probe.parse().unwrap();
            let got: Vec<Option<u16>> = fibs.iter().map(|f| f.lookup(addr)).collect();
            assert!(
                got.windows(2).all(|w| w[0] == w[1]),
                "divergent lookup {probe} after {verb} {pfx}: {got:?}"
            );
        }
    }
    // Only the default route remains.
    assert_eq!(fibs[0].len(), 1);
    assert_eq!(fibs[3].lookup("10.1.2.130".parse().unwrap()), Some(1));
}
