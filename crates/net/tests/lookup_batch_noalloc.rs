//! Proof that the compiled-FIB hot path never touches the heap.
//!
//! This lives in its own integration-test binary because
//! `#[global_allocator]` is per-binary: the counting allocator below
//! must not tax (or be perturbed by) the rest of the suite.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use dra_net::addr::Ipv4Addr;
use dra_net::fib::{synthetic_routes, Dir248Fib, Fib};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

#[test]
fn lookup_and_lookup_batch_are_allocation_free() {
    let mut fib = Dir248Fib::new();
    for (p, nh) in synthetic_routes(10_000, 64, 0xD1F8) {
        fib.insert(p, nh);
    }
    let addrs: Vec<Ipv4Addr> = (0..4096u32)
        .map(|i| Ipv4Addr(i.wrapping_mul(0x9E37_79B9)))
        .collect();
    let mut out = vec![None; addrs.len()];

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    fib.lookup_batch(&addrs, &mut out);
    let mut scalar_hits = 0usize;
    for &a in &addrs {
        scalar_hits += usize::from(fib.lookup(a).is_some());
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "lookup/lookup_batch must not allocate on the hot path"
    );

    // Sanity: the table actually resolved traffic, and the batch agrees
    // with the scalar path.
    let batch_hits = out.iter().filter(|o| o.is_some()).count();
    assert!(batch_hits > 0, "synthetic table resolved nothing");
    assert_eq!(batch_hits, scalar_hits);
}
