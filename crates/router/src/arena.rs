//! A slab allocator for fabric cells.
//!
//! The crossbar's hot path moves the same [`Cell`] several times per
//! slot when cells live inline in the VOQ deques: enqueue copies it
//! in, the matched dequeue copies it out, and the caller copies it
//! again to release the fabric borrow. The arena stores each admitted
//! cell exactly once and hands out 4-byte [`CellHandle`]s; the
//! grant/accept/transfer machinery then shuffles handles, and the cell
//! itself is read back only when it actually leaves the fabric.
//!
//! Handles are plain indices into the slab, so they stay valid for the
//! cell's whole residency — the slab may reserve more memory as the
//! high-water mark rises (amortized, never in steady state), but a
//! slot index never changes once assigned. Freed slots are recycled
//! LIFO through an indexed freelist.

use dra_net::sar::Cell;

/// An opaque 4-byte ticket for a cell resident in a [`CellArena`].
///
/// Valid from [`CellArena::alloc`] until the matching
/// [`CellArena::take`]; using a handle after `take` (or a handle from
/// a different arena) yields an unrelated cell. The fabric is the only
/// issuer, and its slot contract (every returned handle is taken
/// exactly once) keeps that from arising.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CellHandle(u32);

impl CellHandle {
    /// The slab index this handle refers to.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Fixed-slab cell storage with an indexed freelist.
///
/// `alloc` pops the freelist (or extends the slab while warming up to
/// the high-water mark), `take` copies the cell out and pushes the
/// slot back. Both are O(1); steady state performs no allocation.
#[derive(Debug)]
pub struct CellArena {
    slots: Vec<Cell>,
    free: Vec<u32>,
}

impl CellArena {
    /// An arena with room for `capacity` cells before any slab growth.
    pub fn with_capacity(capacity: usize) -> Self {
        CellArena {
            slots: Vec::with_capacity(capacity),
            free: Vec::new(),
        }
    }

    /// Cells currently resident.
    pub fn len(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// True when no cell is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Slab slots existing right now (resident + free).
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Admit a cell; returns its handle.
    #[inline]
    pub fn alloc(&mut self, cell: Cell) -> CellHandle {
        match self.free.pop() {
            Some(i) => {
                self.slots[i as usize] = cell;
                CellHandle(i)
            }
            None => {
                let i = u32::try_from(self.slots.len()).expect("arena exceeds u32 handles");
                self.slots.push(cell);
                CellHandle(i)
            }
        }
    }

    /// Read a resident cell.
    #[inline]
    pub fn get(&self, h: CellHandle) -> &Cell {
        &self.slots[h.index()]
    }

    /// Remove a cell, recycling its slot.
    #[inline]
    pub fn take(&mut self, h: CellHandle) -> Cell {
        let cell = self.slots[h.index()];
        self.free.push(h.0);
        cell
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dra_net::packet::PacketId;

    fn cell(id: u64) -> Cell {
        Cell {
            src_lc: 0,
            dst_lc: 1,
            packet: PacketId(id),
            seq: 0,
            total: 1,
            payload_bytes: 48,
        }
    }

    #[test]
    fn alloc_take_roundtrip() {
        let mut a = CellArena::with_capacity(4);
        let h = a.alloc(cell(7));
        assert_eq!(a.len(), 1);
        assert_eq!(a.get(h).packet, PacketId(7));
        assert_eq!(a.take(h).packet, PacketId(7));
        assert!(a.is_empty());
    }

    #[test]
    fn freelist_exhaustion_grows_then_recycles() {
        // Exhaust the pre-sized slab, grow past it, then free
        // everything and verify the freelist recycles slots instead of
        // growing the slab further.
        let mut a = CellArena::with_capacity(4);
        let handles: Vec<CellHandle> = (0..10).map(|k| a.alloc(cell(k))).collect();
        assert_eq!(a.len(), 10);
        assert_eq!(a.slot_count(), 10, "slab grew to the high-water mark");
        for (k, &h) in handles.iter().enumerate() {
            assert_eq!(a.take(h).packet, PacketId(k as u64));
        }
        assert!(a.is_empty());
        let reused: Vec<CellHandle> = (100..110).map(|k| a.alloc(cell(k))).collect();
        assert_eq!(a.slot_count(), 10, "recycled slots, no slab growth");
        // LIFO freelist: the last-freed slot is handed out first.
        assert_eq!(reused[0], *handles.last().unwrap());
        for (k, &h) in reused.iter().enumerate() {
            assert_eq!(a.get(h).packet, PacketId(100 + k as u64));
        }
    }

    #[test]
    fn interleaved_alloc_free_keeps_cells_apart() {
        let mut a = CellArena::with_capacity(2);
        let h1 = a.alloc(cell(1));
        let h2 = a.alloc(cell(2));
        a.take(h1);
        let h3 = a.alloc(cell(3));
        assert_eq!(h3.index(), h1.index(), "freed slot reused");
        assert_eq!(a.get(h2).packet, PacketId(2), "resident cell untouched");
        assert_eq!(a.get(h3).packet, PacketId(3));
    }
}
