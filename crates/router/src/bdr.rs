//! The BDR (basic distributed router) packet-level model — the
//! baseline DRA is compared against.
//!
//! Pipeline per packet (Figure 1 of the paper): ingress PIU → (BDR's
//! fused protocol logic) → SRU segmentation + LFE lookup → crossbar
//! fabric as cells → egress SRU reassembly → egress PIU → wire.
//!
//! BDR's defining dependability property: **any** component failure on
//! a linecard takes all of that linecard's ports offline until the card
//! is replaced. Ingress traffic at a failed card and traffic destined
//! to it are dropped and counted.

use crate::arena::CellHandle;
use crate::components::ComponentKind;
use crate::fabric::Crossbar;
use crate::faults::{FaultInjector, Generations};
use crate::ingress::ArrivalTrain;
use crate::linecard::Linecard;
use crate::metrics::{note_drop, DropCause, LcMetrics, RouterMetrics};
use dra_des::{Ctx, Model, Simulation};
use dra_net::addr::{Ipv4Addr, Ipv4Prefix};
use dra_net::fib::Fib;
use dra_net::packet::{Packet, PacketId, PacketIdGen};
use dra_net::protocol::ProtocolKind;
use dra_net::sar::{segment_cells, CELL_BYTES};
use dra_net::traffic::PoissonGen;
use std::collections::HashMap;

/// Configuration for a BDR simulation.
#[derive(Debug, Clone)]
pub struct BdrConfig {
    /// Number of linecards.
    pub n_lcs: usize,
    /// Protocol per linecard; cycled if shorter than `n_lcs`.
    pub protocols: Vec<ProtocolKind>,
    /// Port line rate (bits/second). The paper uses 10 Gbps cards.
    pub port_rate_bps: f64,
    /// Offered load as a fraction of the port rate (the paper's `L`).
    pub load: f64,
    /// Cells per virtual output queue.
    pub voq_capacity: usize,
    /// iSLIP iterations per fabric slot.
    pub islip_iterations: usize,
    /// Total switching planes.
    pub fabric_planes_total: usize,
    /// Planes needed for full capacity.
    pub fabric_planes_required: usize,
    /// Fabric speedup relative to the line rate (≥ 1).
    pub fabric_speedup: f64,
    /// External ports per linecard (each behind its own PIU; a PIU
    /// failure disconnects one port's share of the traffic).
    pub ports_per_lc: u16,
    /// Reassembly timeout (seconds).
    pub reassembly_timeout_s: f64,
    /// Optional stochastic fault injection.
    pub faults: Option<FaultInjector>,
    /// Sampled fault/repair delays (in the injector's rate units,
    /// hours for the paper's rates) are multiplied by this to become
    /// simulation seconds. 3600 maps paper-hours to sim-seconds
    /// faithfully; tests use small values to accelerate failures.
    pub fault_delay_scale: f64,
    /// Stop drawing new arrivals at this sim-time (`None` = never).
    /// Running the simulation past the stop drains the pipeline, so
    /// every offered packet resolves to delivered-or-dropped and the
    /// conservation invariant `offered == delivered + Σ drops` holds
    /// exactly.
    pub arrival_stop_s: Option<f64>,
}

impl Default for BdrConfig {
    fn default() -> Self {
        BdrConfig {
            n_lcs: 6,
            protocols: vec![ProtocolKind::Ethernet],
            port_rate_bps: 10e9,
            load: 0.15,
            voq_capacity: 1024,
            islip_iterations: 2,
            fabric_planes_total: 5,
            fabric_planes_required: 4,
            fabric_speedup: 2.0,
            ports_per_lc: 1,
            reassembly_timeout_s: 10e-3,
            faults: None,
            fault_delay_scale: 3600.0,
            arrival_stop_s: None,
        }
    }
}

impl BdrConfig {
    /// The protocol assigned to linecard `lc`.
    pub fn protocol_of(&self, lc: usize) -> ProtocolKind {
        self.protocols[lc % self.protocols.len()]
    }

    /// The `/16` prefix owned by (routed to) linecard `lc`.
    pub fn prefix_of(lc: usize) -> Ipv4Prefix {
        Ipv4Prefix::new(Ipv4Addr::from_octets(10, lc as u8, 0, 0), 16)
    }

    /// A destination base address inside `lc`'s prefix.
    pub fn dst_base_of(lc: usize) -> Ipv4Addr {
        Ipv4Addr::from_octets(10, lc as u8, 0, 0)
    }
}

/// Events driving the BDR model.
#[derive(Debug)]
pub enum BdrEvent {
    /// Kick-off: arm traffic, faults, and housekeeping.
    Start,
    /// Next packet arrives at linecard `lc`'s ingress port.
    Arrival {
        /// Ingress linecard.
        lc: u16,
    },
    /// Ingress pipeline finished; cells are ready for the fabric.
    IngressDone {
        /// Ingress linecard.
        lc: u16,
        /// The packet being switched.
        packet: Packet,
        /// Egress linecard chosen by the LFE.
        egress: u16,
    },
    /// One fabric cell slot.
    FabricSlot,
    /// Egress pipeline finished; the packet leaves the router.
    EgressDone {
        /// Egress linecard.
        lc: u16,
        /// IP bytes delivered.
        ip_bytes: u32,
        /// Ingress timestamp, for latency accounting.
        arrived_at: f64,
        /// The delivered packet (telemetry lifecycle tracking).
        packet: PacketId,
        /// Ingress linecard, for ingress-attributed delivery
        /// accounting (conservation invariant).
        ingress: u16,
    },
    /// A component fails (stamped with the LC's repair generation).
    Fail {
        /// Affected linecard.
        lc: u16,
        /// Failing unit.
        kind: ComponentKind,
        /// Repair generation this event was armed under.
        gen: u32,
    },
    /// Hot-swap repair completes: the whole card is replaced.
    Repair {
        /// Repaired linecard.
        lc: u16,
    },
    /// Periodic reassembly garbage collection.
    PurgeReassembly,
}

/// Metadata for a packet inside the fabric.
#[derive(Debug, Clone, Copy)]
struct InFlight {
    arrived_at: f64,
    ip_bytes: u32,
    ingress: u16,
}

/// The BDR router model. Drive it with [`dra_des::Simulation`] or the
/// convenience constructor [`BdrRouter::simulation`].
#[derive(Debug)]
pub struct BdrRouter {
    /// Configuration this router was built from.
    pub config: BdrConfig,
    /// The linecards.
    pub linecards: Vec<Linecard>,
    /// The switching fabric.
    pub fabric: Crossbar,
    /// Collected metrics.
    pub metrics: RouterMetrics,
    /// The route processor owning the master RIB.
    pub rp: crate::rp::RouteProcessor,
    generators: Vec<PoissonGen>,
    /// Dedicated per-LC RNG streams for traffic, decoupled from the
    /// simulation RNG so two architectures (or two fault scripts) see
    /// byte-identical offered traffic under the same seed regardless
    /// of how much randomness their internals consume.
    traffic_rngs: Vec<rand::rngs::SmallRng>,
    /// Per-LC pre-resolved arrival trains (batched FIB lookups).
    trains: Vec<ArrivalTrain>,
    id_gens: Vec<PacketIdGen>,
    in_flight: HashMap<PacketId, InFlight>,
    generations: Generations,
    repair_pending: Vec<bool>,
    slot_time_s: f64,
    slot_scheduled: bool,
    capacity_credit: f64,
    /// Reused copy of the cells moved in the current fabric slot, so
    /// delivery can run `&mut self` handlers while iterating without
    /// holding the fabric's borrow (and without allocating per slot).
    slot_handles: Vec<CellHandle>,
}

impl BdrRouter {
    /// Build a router (linecards, FIBs, generators) from `config`.
    /// `seed` feeds the per-LC traffic RNG streams (the simulation's
    /// own RNG, seeded separately, covers faults and arbitration).
    pub fn new(config: BdrConfig, seed: u64) -> Self {
        assert!(config.n_lcs >= 2, "need at least two linecards");
        assert!(
            (0.0..=1.0).contains(&config.load) && config.load > 0.0,
            "load must be in (0, 1]"
        );
        assert!(config.fabric_speedup >= 1.0);

        let mut linecards: Vec<Linecard> = (0..config.n_lcs)
            .map(|i| {
                Linecard::with_ports(
                    i as u16,
                    config.protocol_of(i),
                    config.port_rate_bps,
                    config.ports_per_lc,
                )
            })
            .collect();
        // Full mesh routing, distributed by the route processor as in
        // Figure 1: every card learns every destination prefix.
        let mut rp = crate::rp::RouteProcessor::new();
        for dst in 0..config.n_lcs {
            rp.announce(BdrConfig::prefix_of(dst), dst as u16);
        }
        rp.distribute(&mut linecards);
        // Each card offers `load × rate` spread uniformly over the others.
        let generators: Vec<PoissonGen> = (0..config.n_lcs)
            .map(|i| {
                let bases: Vec<Ipv4Addr> = (0..config.n_lcs)
                    .filter(|&j| j != i)
                    .map(BdrConfig::dst_base_of)
                    .collect();
                PoissonGen::new(config.load * config.port_rate_bps, &bases)
            })
            .collect();
        let traffic_rngs = (0..config.n_lcs)
            .map(|i| {
                use rand::SeedableRng;
                rand::rngs::SmallRng::seed_from_u64(
                    seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (i as u64 + 1),
                )
            })
            .collect();
        let id_gens = (0..config.n_lcs)
            .map(|i| PacketIdGen::starting_at((i as u64) << 48))
            .collect();

        let fabric = Crossbar::new(
            config.n_lcs,
            config.voq_capacity,
            config.islip_iterations,
            config.fabric_planes_total,
            config.fabric_planes_required,
        );
        let slot_time_s = CELL_BYTES as f64 * 8.0 / (config.port_rate_bps * config.fabric_speedup);
        let metrics = RouterMetrics::new(config.n_lcs);
        let generations = Generations::new(config.n_lcs);
        let repair_pending = vec![false; config.n_lcs];
        let trains = (0..config.n_lcs).map(|_| ArrivalTrain::new()).collect();

        BdrRouter {
            config,
            linecards,
            fabric,
            metrics,
            rp,
            generators,
            traffic_rngs,
            trains,
            id_gens,
            in_flight: HashMap::new(),
            generations,
            repair_pending,
            slot_time_s,
            slot_scheduled: false,
            capacity_credit: 0.0,
            slot_handles: Vec::new(),
        }
    }

    /// Wrap the router in a seeded simulation with the start event
    /// queued at t = 0.
    pub fn simulation(config: BdrConfig, seed: u64) -> Simulation<BdrRouter> {
        let mut sim = Simulation::new(BdrRouter::new(config, seed), seed);
        sim.schedule(0.0, BdrEvent::Start);
        sim
    }

    /// Can linecard `lc` currently pass traffic (BDR rule: every unit
    /// on the routing path must be healthy)?
    pub fn lc_operational(&self, lc: u16) -> bool {
        self.linecards[lc as usize]
            .components
            .operational_standalone()
    }

    /// Fail a component immediately (deterministic fault scripting).
    /// A PIU failure takes down *one port*; the aggregate PIU health
    /// reads failed only when every port is gone.
    pub fn fail_component_now(&mut self, lc: u16, kind: ComponentKind, now: f64) {
        if kind == ComponentKind::Piu {
            self.linecards[lc as usize].fail_piu_port();
        } else {
            self.linecards[lc as usize]
                .components
                .set(kind, crate::components::Health::Failed);
        }
        self.refresh_availability(lc, now);
    }

    /// Repair a linecard immediately (deterministic fault scripting).
    pub fn repair_lc_now(&mut self, lc: u16, now: f64) {
        self.linecards[lc as usize].repair_all();
        self.generations.bump(lc as usize);
        self.repair_pending[lc as usize] = false;
        self.refresh_availability(lc, now);
    }

    /// Announce a route at the RP and push it to every card's FIB
    /// (an in-service route update; the paper's internal bus carries
    /// exactly this traffic).
    pub fn announce_route(&mut self, prefix: dra_net::addr::Ipv4Prefix, next_hop: u16) {
        self.rp.announce(prefix, next_hop);
        for lc in &mut self.linecards {
            lc.fib.insert(prefix, next_hop);
        }
    }

    /// Withdraw a route everywhere.
    pub fn withdraw_route(&mut self, prefix: dra_net::addr::Ipv4Prefix) {
        self.rp.withdraw(prefix);
        for lc in &mut self.linecards {
            lc.fib.remove(prefix);
        }
    }

    fn refresh_availability(&mut self, lc: u16, now: f64) {
        let up = if self.lc_operational(lc) { 1.0 } else { 0.0 };
        self.metrics.lcs[lc as usize].availability.update(now, up);
    }

    fn metrics_of(&mut self, lc: u16) -> &mut LcMetrics {
        &mut self.metrics.lcs[lc as usize]
    }

    fn ensure_fabric_slot(&mut self, ctx: &mut Ctx<'_, BdrEvent>) {
        if !self.slot_scheduled && !self.fabric.is_empty() {
            self.slot_scheduled = true;
            ctx.schedule(self.slot_time_s, BdrEvent::FabricSlot);
        }
    }

    fn arm_faults_for_lc(&mut self, lc: u16, ctx: &mut Ctx<'_, BdrEvent>) {
        let Some(injector) = self.config.faults.as_ref() else {
            return;
        };
        let scale = self.config.fault_delay_scale;
        let gen = self.generations.current(lc as usize);
        for (kind, delay) in injector.arm_linecard(ctx.rng()) {
            ctx.schedule(delay * scale, BdrEvent::Fail { lc, kind, gen });
        }
    }

    fn handle_arrival(&mut self, lc: u16, ctx: &mut Ctx<'_, BdrEvent>) {
        // Draw and schedule the next arrival first, so drops don't stall
        // the arrival process. The train resolves the FIB lookup in
        // batch; `route` is exactly what `fib.lookup(dst)` returns now.
        let (arrival, route) = self.trains[lc as usize].pop(
            &mut self.generators[lc as usize],
            &mut self.traffic_rngs[lc as usize],
            &self.linecards[lc as usize].fib,
        );
        let next_at = ctx.now() + arrival.dt;
        if self.config.arrival_stop_s.is_none_or(|stop| next_at < stop) {
            ctx.schedule(arrival.dt, BdrEvent::Arrival { lc });
        }

        let packet = Packet::new(
            self.id_gens[lc as usize].next_id(),
            BdrConfig::dst_base_of(lc as usize),
            arrival.dst,
            arrival.ip_bytes,
            self.linecards[lc as usize].protocol,
            ctx.now(),
        );
        self.metrics_of(lc).offer(packet.ip_bytes);
        #[cfg(feature = "telemetry")]
        {
            use dra_telemetry as tm;
            tm::counter_add(tm::ids::ARRIVALS, 1);
            tm::counter_add(tm::ids::FIB_LOOKUPS, 1);
            tm::event(
                tm::EventKind::Arrival,
                packet.id.0,
                lc as u32,
                packet.ip_bytes,
            );
            tm::track_arrival(packet.id.0, lc as u32, packet.ip_bytes);
            if let Some(egress) = route {
                tm::event(
                    tm::EventKind::FibLookup,
                    packet.id.0,
                    lc as u32,
                    egress as u32,
                );
            }
        }

        if !self.lc_operational(lc) {
            self.metrics_of(lc)
                .drop_packet(DropCause::IngressDown, packet.ip_bytes);
            note_drop(packet.id, DropCause::IngressDown, lc);
            return;
        }
        // A partially PIU-failed card has lost that share of its
        // external links: the affected ports' arrivals never enter.
        let piu_loss = self.linecards[lc as usize].piu_loss_fraction();
        if piu_loss > 0.0 && dra_des::random::coin(ctx.rng(), piu_loss) {
            self.metrics_of(lc)
                .drop_packet(DropCause::IngressDown, packet.ip_bytes);
            note_drop(packet.id, DropCause::IngressDown, lc);
            return;
        }
        let Some(egress) = route else {
            self.metrics_of(lc)
                .drop_packet(DropCause::NoRoute, packet.ip_bytes);
            note_drop(packet.id, DropCause::NoRoute, lc);
            return;
        };
        if !self.lc_operational(egress) {
            self.metrics_of(lc)
                .drop_packet(DropCause::EgressDown, packet.ip_bytes);
            note_drop(packet.id, DropCause::EgressDown, lc);
            return;
        }
        // Likewise for the egress card's disconnected ports.
        let egress_loss = self.linecards[egress as usize].piu_loss_fraction();
        if egress_loss > 0.0 && dra_des::random::coin(ctx.rng(), egress_loss) {
            self.metrics_of(lc)
                .drop_packet(DropCause::EgressDown, packet.ip_bytes);
            note_drop(packet.id, DropCause::EgressDown, lc);
            return;
        }
        if !self.fabric.operational() {
            self.metrics_of(lc)
                .drop_packet(DropCause::FabricDown, packet.ip_bytes);
            note_drop(packet.id, DropCause::FabricDown, lc);
            return;
        }
        let delay = self.linecards[lc as usize].ingress_delay(&packet);
        ctx.schedule(delay, BdrEvent::IngressDone { lc, packet, egress });
    }

    fn handle_ingress_done(
        &mut self,
        lc: u16,
        packet: Packet,
        egress: u16,
        ctx: &mut Ctx<'_, BdrEvent>,
    ) {
        let mut overflowed = false;
        for cell in segment_cells(&packet, lc, egress) {
            if self.fabric.enqueue(cell).is_err() {
                overflowed = true;
                break;
            }
        }
        if overflowed {
            self.metrics_of(lc)
                .drop_packet(DropCause::VoqOverflow, packet.ip_bytes);
            note_drop(packet.id, DropCause::VoqOverflow, lc);
            // Any cells already enqueued will strand in the egress
            // reassembler and be reclaimed by the periodic purge.
        } else {
            #[cfg(feature = "telemetry")]
            {
                use dra_telemetry as tm;
                tm::counter_add(
                    tm::ids::VOQ_ENQUEUED_CELLS,
                    dra_net::sar::cells_for(packet.ip_bytes) as u64,
                );
                tm::event(
                    tm::EventKind::VoqEnqueue,
                    packet.id.0,
                    lc as u32,
                    egress as u32,
                );
                tm::mark_lookup_done(packet.id.0);
                tm::mark_voq_enqueue(packet.id.0);
            }
            self.in_flight.insert(
                packet.id,
                InFlight {
                    arrived_at: packet.arrived_at,
                    ip_bytes: packet.ip_bytes,
                    ingress: lc,
                },
            );
        }
        self.ensure_fabric_slot(ctx);
    }

    fn handle_fabric_slot(&mut self, ctx: &mut Ctx<'_, BdrEvent>) {
        self.slot_scheduled = false;
        if !self.fabric.operational() {
            // Fabric dead: cells stay queued until planes are repaired.
            // The slot train stops here, so any fractional credit must
            // not survive to the restart — it would serve an
            // above-capacity burst the moment planes come back.
            self.capacity_credit = 0.0;
            return;
        }
        // Degraded fabric: serve slots at the reduced rate by credit.
        self.capacity_credit += self.fabric.capacity_fraction();
        if self.capacity_credit >= 1.0 {
            self.capacity_credit -= 1.0;
            let now = ctx.now();
            // Collect the slot's winners as 4-byte handles, then take
            // each cell out of the arena as it is delivered: delivery
            // below needs `&mut self` (metrics, reassembly).
            let mut slot = std::mem::take(&mut self.slot_handles);
            self.fabric.schedule_slot_handles(&mut slot);
            for &h in &slot {
                let cell = self.fabric.take_cell(h);
                let egress = cell.dst_lc;
                #[cfg(feature = "telemetry")]
                {
                    use dra_telemetry as tm;
                    tm::counter_add(tm::ids::CELLS_SWITCHED, 1);
                    tm::event(
                        tm::EventKind::FabricTransit,
                        cell.packet.0,
                        cell.src_lc as u32,
                        egress as u32,
                    );
                    tm::mark_cell_switched(cell.packet.0);
                }
                match self.linecards[egress as usize].reassembler.push(&cell, now) {
                    Ok(Some((packet_id, ip_bytes))) => {
                        let Some(meta) = self.in_flight.remove(&packet_id) else {
                            continue; // stranded overflow remnant
                        };
                        if !self.lc_operational(egress) {
                            self.metrics_of(meta.ingress)
                                .drop_packet(DropCause::EgressDown, ip_bytes);
                            note_drop(packet_id, DropCause::EgressDown, meta.ingress);
                            continue;
                        }
                        let delay = self.linecards[egress as usize].egress_delay(ip_bytes);
                        ctx.schedule(
                            delay,
                            BdrEvent::EgressDone {
                                lc: egress,
                                ip_bytes,
                                arrived_at: meta.arrived_at,
                                packet: packet_id,
                                ingress: meta.ingress,
                            },
                        );
                    }
                    Ok(None) => {}
                    Err(_) => {
                        // Corrupted/duplicate cell: drop silently; the
                        // purge pass will reclaim the partial.
                    }
                }
            }
            slot.clear();
            self.slot_handles = slot;
        }
        self.ensure_fabric_slot(ctx);
        if !self.slot_scheduled {
            // Queue drained: the slot train stops. Forfeit leftover
            // fractional credit — banking it across the idle gap would
            // let a degraded fabric open the next busy period with a
            // burst above its capacity fraction.
            self.capacity_credit = 0.0;
        }
    }

    fn handle_fail(&mut self, lc: u16, kind: ComponentKind, gen: u32, ctx: &mut Ctx<'_, BdrEvent>) {
        if !self.generations.is_current(lc as usize, gen) {
            return; // stale: the card was replaced since this was armed
        }
        self.linecards[lc as usize]
            .components
            .set(kind, crate::components::Health::Failed);
        self.refresh_availability(lc, ctx.now());
        if !self.repair_pending[lc as usize] {
            self.repair_pending[lc as usize] = true;
            if let Some(injector) = &self.config.faults {
                let delay = injector.repair_delay_h() * self.config.fault_delay_scale;
                ctx.schedule(delay, BdrEvent::Repair { lc });
            }
        }
    }

    fn handle_repair(&mut self, lc: u16, ctx: &mut Ctx<'_, BdrEvent>) {
        self.linecards[lc as usize].repair_all();
        self.generations.bump(lc as usize);
        self.repair_pending[lc as usize] = false;
        self.refresh_availability(lc, ctx.now());
        self.arm_faults_for_lc(lc, ctx);
    }

    fn handle_purge(&mut self, ctx: &mut Ctx<'_, BdrEvent>) {
        let cutoff = ctx.now() - self.config.reassembly_timeout_s;
        for lc in 0..self.config.n_lcs {
            let stale = self.linecards[lc].reassembler.purge_collect(cutoff);
            for (_, packet_id) in stale {
                if let Some(meta) = self.in_flight.remove(&packet_id) {
                    self.metrics.lcs[meta.ingress as usize]
                        .drop_packet(DropCause::ReassemblyTimeout, meta.ip_bytes);
                    note_drop(packet_id, DropCause::ReassemblyTimeout, meta.ingress);
                }
            }
        }
        ctx.schedule(self.config.reassembly_timeout_s, BdrEvent::PurgeReassembly);
    }
}

impl Model for BdrRouter {
    type Event = BdrEvent;

    fn handle(&mut self, event: BdrEvent, ctx: &mut Ctx<'_, BdrEvent>) {
        match event {
            BdrEvent::Start => {
                for lc in 0..self.config.n_lcs as u16 {
                    // Only `.dt` matters here: the kick-off record's
                    // payload never becomes a packet (as before).
                    let (first, _) = self.trains[lc as usize].pop(
                        &mut self.generators[lc as usize],
                        &mut self.traffic_rngs[lc as usize],
                        &self.linecards[lc as usize].fib,
                    );
                    ctx.schedule(first.dt, BdrEvent::Arrival { lc });
                    self.arm_faults_for_lc(lc, ctx);
                }
                ctx.schedule(self.config.reassembly_timeout_s, BdrEvent::PurgeReassembly);
            }
            BdrEvent::Arrival { lc } => self.handle_arrival(lc, ctx),
            BdrEvent::IngressDone { lc, packet, egress } => {
                self.handle_ingress_done(lc, packet, egress, ctx)
            }
            BdrEvent::FabricSlot => self.handle_fabric_slot(ctx),
            BdrEvent::EgressDone {
                lc,
                ip_bytes,
                arrived_at,
                packet,
                ingress,
            } => {
                let now = ctx.now();
                self.metrics.lcs[lc as usize].deliver(ip_bytes, now - arrived_at);
                self.metrics.lcs[ingress as usize].ingress_delivered += 1;
                let _ = packet;
                #[cfg(feature = "telemetry")]
                {
                    use dra_telemetry as tm;
                    tm::counter_add(tm::ids::DELIVERED, 1);
                    tm::event(tm::EventKind::Deliver, packet.0, lc as u32, ip_bytes);
                    tm::finish_packet(packet.0);
                }
            }
            BdrEvent::Fail { lc, kind, gen } => self.handle_fail(lc, kind, gen, ctx),
            BdrEvent::Repair { lc } => self.handle_repair(lc, ctx),
            BdrEvent::PurgeReassembly => self.handle_purge(ctx),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dra_net::sar::Cell;

    fn small_config(load: f64) -> BdrConfig {
        BdrConfig {
            n_lcs: 4,
            load,
            ..BdrConfig::default()
        }
    }

    #[test]
    fn healthy_router_delivers_nearly_everything() {
        let mut sim = BdrRouter::simulation(small_config(0.3), 42);
        sim.run_until(5e-3);
        let m = &sim.model().metrics;
        let offered = m.total_offered_bytes();
        assert!(offered > 0, "no traffic generated");
        let ratio = m.byte_delivery_ratio();
        // In-flight packets at the horizon keep this slightly below 1.
        assert!(ratio > 0.98, "delivery ratio {ratio}");
        for cause in DropCause::ALL {
            assert_eq!(m.total_drops(cause), 0, "unexpected drops: {cause}");
        }
    }

    #[test]
    fn latency_is_sane() {
        let mut sim = BdrRouter::simulation(small_config(0.2), 1);
        sim.run_until(2e-3);
        let m = &sim.model().metrics;
        for lc in &m.lcs {
            if lc.latency.count() > 0 {
                // A 10G router moves a packet in microseconds.
                assert!(lc.latency.mean() > 0.0);
                assert!(lc.latency.mean() < 100e-6, "mean {}", lc.latency.mean());
            }
        }
    }

    #[test]
    fn failed_ingress_lc_drops_its_traffic() {
        let mut sim = BdrRouter::simulation(small_config(0.2), 7);
        sim.run_until(1e-3);
        let now = sim.now();
        sim.model_mut()
            .fail_component_now(0, ComponentKind::Lfe, now);
        sim.run_until(2e-3);
        let m = &sim.model().metrics;
        assert!(
            m.lcs[0].drops(DropCause::IngressDown) > 0,
            "LC0 should drop its ingress traffic after LFE failure"
        );
        // Other cards keep delivering.
        assert!(m.lcs[1].delivered_packets > 0);
    }

    #[test]
    fn traffic_to_failed_lc_is_dropped_as_egress_down() {
        let mut sim = BdrRouter::simulation(small_config(0.2), 7);
        sim.run_until(1e-3);
        let now = sim.now();
        sim.model_mut()
            .fail_component_now(2, ComponentKind::Sru, now);
        sim.run_until(2e-3);
        let m = &sim.model().metrics;
        let egress_drops: u64 = (0..4).map(|i| m.lcs[i].drops(DropCause::EgressDown)).sum();
        assert!(egress_drops > 0, "peers should drop traffic to failed LC2");
    }

    #[test]
    fn repair_restores_service() {
        let mut sim = BdrRouter::simulation(small_config(0.2), 9);
        sim.run_until(0.5e-3);
        let now = sim.now();
        sim.model_mut()
            .fail_component_now(0, ComponentKind::Sru, now);
        sim.run_until(1.0e-3);
        let delivered_down = sim.model().metrics.lcs[0].delivered_packets;
        let now = sim.now();
        sim.model_mut().repair_lc_now(0, now);
        sim.run_until(3.0e-3);
        let delivered_after = sim.model().metrics.lcs[0].delivered_packets;
        assert!(
            delivered_after > delivered_down,
            "LC0 must deliver again after repair"
        );
        let avail = sim.model().metrics.lcs[0].availability.average(sim.now());
        assert!(avail < 1.0 && avail > 0.5, "availability {avail}");
    }

    #[test]
    fn offered_load_matches_config() {
        let cfg = small_config(0.5);
        let rate = cfg.port_rate_bps;
        let mut sim = BdrRouter::simulation(cfg, 3);
        let horizon = 5e-3;
        sim.run_until(horizon);
        let m = &sim.model().metrics;
        for lc in &m.lcs {
            let offered_bps = lc.offered_bytes as f64 * 8.0 / horizon;
            assert!(
                (offered_bps / (0.5 * rate) - 1.0).abs() < 0.1,
                "offered {offered_bps:.3e} vs target {:.3e}",
                0.5 * rate
            );
        }
    }

    #[test]
    fn stochastic_faults_fire_and_repair() {
        use crate::faults::FaultGranularity;
        let mut cfg = small_config(0.1);
        // Accelerated: MTTF (1/2e-5 = 50000 rate-units) scaled so
        // failures land inside a 5 ms run, repairs (3 units) follow.
        cfg.faults = Some(FaultInjector::new(3.0, FaultGranularity::WholeLc));
        cfg.fault_delay_scale = 1e-3 / 50_000.0;
        let mut sim = BdrRouter::simulation(cfg, 11);
        sim.run_until(20e-3);
        let m = &sim.model().metrics;
        let total_ingress_drops: u64 = m.lcs.iter().map(|l| l.drops(DropCause::IngressDown)).sum();
        assert!(total_ingress_drops > 0, "accelerated faults never fired");
        // Availability strictly between 0 and 1 on at least one card.
        let now = sim.now();
        let avg: f64 = m
            .lcs
            .iter()
            .map(|l| l.availability.average(now))
            .sum::<f64>()
            / m.lcs.len() as f64;
        assert!(avg > 0.0 && avg < 1.0, "avg availability {avg}");
    }

    #[test]
    fn multi_port_piu_failure_costs_one_ports_share() {
        let mut cfg = small_config(0.2);
        cfg.ports_per_lc = 4;
        let mut sim = BdrRouter::simulation(cfg, 61);
        sim.run_until(1e-3);
        let now = sim.now();
        sim.model_mut()
            .fail_component_now(0, ComponentKind::Piu, now);
        let offered0 = sim.model().metrics.lcs[0].offered_packets;
        let drops0 = sim.model().metrics.lcs[0].drops(DropCause::IngressDown);
        sim.run_until(6e-3);
        let m = &sim.model().metrics;
        let frac = (m.lcs[0].drops(DropCause::IngressDown) - drops0) as f64
            / (m.lcs[0].offered_packets - offered0) as f64;
        assert!(
            (frac - 0.25).abs() < 0.05,
            "one of four ports down should cost ~25%, got {frac}"
        );
        // Other units remain healthy: the card still forwards the rest.
        assert!(sim.model().lc_operational(0));
    }

    #[test]
    fn determinism_same_seed() {
        let run = |seed| {
            let mut sim = BdrRouter::simulation(small_config(0.3), seed);
            sim.run_until(1e-3);
            let m = &sim.model().metrics;
            (
                m.total_offered_bytes(),
                m.total_delivered_bytes(),
                sim.events_processed(),
            )
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5).0, run(6).0);
    }

    #[test]
    fn fabric_degradation_slows_but_does_not_stop_delivery() {
        let mut cfg = small_config(0.6);
        cfg.fabric_speedup = 1.0; // remove headroom so degradation bites
        let mut sim = BdrRouter::simulation(cfg, 13);
        sim.run_until(1e-3);
        // Fail two planes: spare covers one, the second costs 25%.
        sim.model_mut().fabric.fail_plane();
        sim.model_mut().fabric.fail_plane();
        assert_eq!(sim.model().fabric.capacity_fraction(), 0.75);
        sim.run_until(4e-3);
        let m = &sim.model().metrics;
        assert!(m.total_delivered_bytes() > 0);
    }

    #[test]
    fn degraded_fabric_credit_does_not_bank_across_idle_gaps() {
        // 3-of-4 planes (capacity 0.75): a busy period that drains
        // mid-credit-cycle must not bank the fractional remainder —
        // the next busy period after an idle gap has to re-earn a full
        // credit before its first transfer, or degraded fabrics would
        // open every busy period with an above-capacity burst.
        let cell = |id: u64| Cell {
            src_lc: 0,
            dst_lc: 1,
            packet: PacketId(id),
            seq: 0,
            total: 1,
            payload_bytes: 48,
        };
        // No Start event: the only activity is the slots we inject.
        let mut sim = Simulation::new(BdrRouter::new(small_config(0.3), 5), 5);
        sim.model_mut().fabric.fail_plane(); // spare absorbs it
        sim.model_mut().fabric.fail_plane(); // 3 of 4 required
        assert_eq!(sim.model().fabric.capacity_fraction(), 0.75);

        // Busy period 1: two cells. Credit walks 0.75 (no serve),
        // 1.5 (serve), 1.25 (serve, drain) — ending with 0.25 earned
        // but unspent as the slot train stops.
        sim.model_mut().fabric.enqueue(cell(1)).unwrap();
        sim.model_mut().fabric.enqueue(cell(2)).unwrap();
        sim.schedule(0.0, BdrEvent::FabricSlot);
        sim.run_until(0.5e-3);
        assert!(sim.model().fabric.is_empty(), "period 1 should drain");

        // Idle gap, then busy period 2. The first slot after the gap
        // must NOT transfer: 0.75 credit is below a full slot. Banked
        // credit (0.25 + 0.75 = 1.0) would serve immediately.
        sim.model_mut().fabric.enqueue(cell(3)).unwrap();
        sim.model_mut().fabric.enqueue(cell(4)).unwrap();
        sim.schedule(0.5e-3, BdrEvent::FabricSlot);
        sim.step().expect("injected slot should fire");
        assert_eq!(
            sim.model().fabric.queued_cells(),
            2,
            "first post-idle slot served on banked credit"
        );
        // The period still drains at the degraded rate.
        let horizon = sim.now() + 0.5e-3;
        sim.run_until(horizon);
        assert!(sim.model().fabric.is_empty(), "period 2 should drain");
    }
}
