//! Linecard functional units, their health, and the paper's failure
//! rates.
//!
//! The unit names follow the paper exactly: PIU (physical interface
//! unit), PDLU (protocol-dependent logic unit — only present under
//! DRA; BDR folds its function into PIU/SRU), SRU (segmentation and
//! reassembly unit), LFE (local forwarding engine), plus the per-LC
//! EIB bus controller that DRA adds.

use std::fmt;

/// One functional unit of a linecard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ComponentKind {
    /// Physical interface unit (per-port media interface).
    Piu,
    /// Protocol-dependent logic unit (DRA only).
    Pdlu,
    /// Segmentation and reassembly unit.
    Sru,
    /// Local forwarding engine (FIB lookup).
    Lfe,
    /// EIB bus controller (DRA only).
    BusController,
}

impl ComponentKind {
    /// All unit kinds, in a fixed order.
    pub const ALL: [ComponentKind; 5] = [
        ComponentKind::Piu,
        ComponentKind::Pdlu,
        ComponentKind::Sru,
        ComponentKind::Lfe,
        ComponentKind::BusController,
    ];

    /// Is this unit protocol-independent (PI in the paper's terms)?
    ///
    /// The paper's Markov model groups SRU and LFE as the "PI units";
    /// PIU is excluded from the analysis (assumed fault-free, since a
    /// PIU failure simply disconnects the external link).
    pub fn is_pi_unit(self) -> bool {
        matches!(self, ComponentKind::Sru | ComponentKind::Lfe)
    }
}

impl fmt::Display for ComponentKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ComponentKind::Piu => write!(f, "PIU"),
            ComponentKind::Pdlu => write!(f, "PDLU"),
            ComponentKind::Sru => write!(f, "SRU"),
            ComponentKind::Lfe => write!(f, "LFE"),
            ComponentKind::BusController => write!(f, "BC"),
        }
    }
}

/// Health of one unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Health {
    /// Functioning normally.
    #[default]
    Healthy,
    /// Permanently failed (until repaired/replaced).
    Failed,
}

/// Health of every unit on one linecard.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LcComponents {
    /// Physical interface unit health.
    pub piu: Health,
    /// Protocol-dependent logic unit health.
    pub pdlu: Health,
    /// Segmentation/reassembly unit health.
    pub sru: Health,
    /// Forwarding engine health.
    pub lfe: Health,
    /// EIB bus controller health.
    pub bus_controller: Health,
}

impl LcComponents {
    /// A fully healthy linecard.
    pub fn healthy() -> Self {
        Self::default()
    }

    /// Health of one unit.
    pub fn get(&self, kind: ComponentKind) -> Health {
        match kind {
            ComponentKind::Piu => self.piu,
            ComponentKind::Pdlu => self.pdlu,
            ComponentKind::Sru => self.sru,
            ComponentKind::Lfe => self.lfe,
            ComponentKind::BusController => self.bus_controller,
        }
    }

    /// Set the health of one unit.
    pub fn set(&mut self, kind: ComponentKind, health: Health) {
        match kind {
            ComponentKind::Piu => self.piu = health,
            ComponentKind::Pdlu => self.pdlu = health,
            ComponentKind::Sru => self.sru = health,
            ComponentKind::Lfe => self.lfe = health,
            ComponentKind::BusController => self.bus_controller = health,
        }
    }

    /// Repair everything (hot-swap replaces the whole card).
    pub fn repair_all(&mut self) {
        *self = Self::healthy();
    }

    /// Units currently failed.
    pub fn failed_units(&self) -> Vec<ComponentKind> {
        ComponentKind::ALL
            .into_iter()
            .filter(|&k| self.get(k) == Health::Failed)
            .collect()
    }

    /// All units healthy?
    pub fn all_healthy(&self) -> bool {
        self.failed_units().is_empty()
    }

    /// Can this linecard route packets *without any external help*
    /// (the BDR operational condition)? PDLU and bus controller are
    /// DRA-only units, but a failed PDLU means the LC cannot frame
    /// traffic, so it counts; a failed BC does not affect the regular
    /// fabric path.
    pub fn operational_standalone(&self) -> bool {
        self.piu == Health::Healthy
            && self.pdlu == Health::Healthy
            && self.sru == Health::Healthy
            && self.lfe == Health::Healthy
    }

    /// Are the paper's "PI units" (SRU, LFE) all healthy?
    pub fn pi_units_healthy(&self) -> bool {
        self.sru == Health::Healthy && self.lfe == Health::Healthy
    }
}

/// Component failure rates per hour — the paper's §5 constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FailureRates {
    /// λ_LC: whole-linecard failure rate (BDR granularity).
    pub lc: f64,
    /// λ_LPD: PDLU failure rate.
    pub pdlu: f64,
    /// λ_LPI: protocol-independent units (SRU + LFE combined).
    pub pi_units: f64,
    /// λ_BC: per-LC bus controller.
    pub bus_controller: f64,
    /// λ_BUS: the EIB passive lines.
    pub eib: f64,
}

impl FailureRates {
    /// The exact constants from §5 of the paper (per hour).
    pub const PAPER: FailureRates = FailureRates {
        lc: 2.0e-5,
        pdlu: 6.0e-6,
        pi_units: 1.4e-5,
        bus_controller: 1.0e-6,
        eib: 1.0e-6,
    };

    /// λ_PD: combined LC_inter PDLU + its bus controller (paper: 7e-6).
    pub fn inter_pdlu(&self) -> f64 {
        self.pdlu + self.bus_controller
    }

    /// λ_PI: combined LC_inter PI units + its bus controller (paper: 1.5e-5).
    pub fn inter_pi(&self) -> f64 {
        self.pi_units + self.bus_controller
    }

    /// Sanity check: the split rates must sum to the LC rate.
    pub fn is_consistent(&self) -> bool {
        (self.pdlu + self.pi_units - self.lc).abs() < 1e-12
            && self.pdlu > 0.0
            && self.pi_units > 0.0
            && self.bus_controller >= 0.0
            && self.eib >= 0.0
    }
}

impl Default for FailureRates {
    fn default() -> Self {
        Self::PAPER
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_rates_match_section_5() {
        let r = FailureRates::PAPER;
        assert_eq!(r.lc, 2.0e-5);
        assert_eq!(r.pdlu, 6.0e-6);
        assert_eq!(r.pi_units, 1.4e-5);
        assert_eq!(r.bus_controller, 1.0e-6);
        assert_eq!(r.eib, 1.0e-6);
        // Derived combined rates quoted in the paper's assumption 4.
        assert!((r.inter_pdlu() - 7.0e-6).abs() < 1e-18);
        assert!((r.inter_pi() - 1.5e-5).abs() < 1e-18);
        assert!(r.is_consistent());
    }

    #[test]
    fn inconsistent_rates_detected() {
        let mut r = FailureRates::PAPER;
        r.pdlu = 1.0e-5; // no longer sums to lc
        assert!(!r.is_consistent());
    }

    #[test]
    fn health_get_set_round_trip() {
        let mut c = LcComponents::healthy();
        assert!(c.all_healthy());
        for kind in ComponentKind::ALL {
            c.set(kind, Health::Failed);
            assert_eq!(c.get(kind), Health::Failed);
            c.set(kind, Health::Healthy);
        }
        assert!(c.all_healthy());
    }

    #[test]
    fn failed_units_lists_exactly_failures() {
        let mut c = LcComponents::healthy();
        c.set(ComponentKind::Lfe, Health::Failed);
        c.set(ComponentKind::Piu, Health::Failed);
        assert_eq!(
            c.failed_units(),
            vec![ComponentKind::Piu, ComponentKind::Lfe]
        );
    }

    #[test]
    fn standalone_operation_rules() {
        let mut c = LcComponents::healthy();
        assert!(c.operational_standalone());
        c.set(ComponentKind::BusController, Health::Failed);
        assert!(
            c.operational_standalone(),
            "BC failure must not affect the fabric path"
        );
        c.set(ComponentKind::Sru, Health::Failed);
        assert!(!c.operational_standalone());
        c.repair_all();
        assert!(c.operational_standalone() && c.all_healthy());
    }

    #[test]
    fn pi_unit_classification() {
        assert!(ComponentKind::Sru.is_pi_unit());
        assert!(ComponentKind::Lfe.is_pi_unit());
        assert!(!ComponentKind::Pdlu.is_pi_unit());
        assert!(!ComponentKind::Piu.is_pi_unit());
        assert!(!ComponentKind::BusController.is_pi_unit());
    }

    #[test]
    fn pi_units_healthy_tracks_sru_lfe() {
        let mut c = LcComponents::healthy();
        assert!(c.pi_units_healthy());
        c.set(ComponentKind::Pdlu, Health::Failed);
        assert!(c.pi_units_healthy());
        c.set(ComponentKind::Lfe, Health::Failed);
        assert!(!c.pi_units_healthy());
    }

    #[test]
    fn display_names() {
        let names: Vec<String> = ComponentKind::ALL.iter().map(|k| k.to_string()).collect();
        assert_eq!(names, vec!["PIU", "PDLU", "SRU", "LFE", "BC"]);
    }
}
